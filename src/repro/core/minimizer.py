"""Crash-input minimization.

The agent saves raw 2 KiB inputs for "subsequent manual analysis and
debugging" (§4.5). Analysis is far easier when the input is canonical:
this module implements a deterministic delta-debugging pass that zeroes
as much of the input as possible while the replayed case still produces
the *same anomaly signature*.

Zeroing is the right normal form here because the input regions are
directive streams — a zero byte means "first template, first field,
bit 0, default everything" — so a minimized input reads as "golden state
plus exactly these deviations".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import Agent, AgentConfig
from repro.core.reports import CrashReport
from repro.fuzzer.input import FuzzInput


@dataclass
class MinimizationResult:
    """Outcome of one minimization."""

    original: FuzzInput
    minimized: FuzzInput
    signature: str
    replays: int

    @property
    def zero_bytes(self) -> int:
        """Number of zeroed bytes in the minimized input."""
        return sum(1 for b in self.minimized.data if b == 0)

    @property
    def nonzero_bytes(self) -> int:
        """Number of surviving non-zero bytes."""
        return len(self.minimized.data) - self.zero_bytes

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"minimized to {self.nonzero_bytes} non-zero bytes "
                f"({self.replays} replays) for {self.signature}")


class CrashMinimizer:
    """Delta-debugging over the fuzzing input, signature-preserving."""

    def __init__(self, agent_config: AgentConfig,
                 *, max_replays: int = 400) -> None:
        self.agent_config = agent_config
        self.max_replays = max_replays
        self.replays = 0

    def _reproduces(self, data: bytes, signature: str) -> bool:
        """Replay *data* on a fresh agent; does the same anomaly appear?"""
        if self.replays >= self.max_replays:
            return False
        self.replays += 1
        agent = Agent(self.agent_config)
        outcome = agent.run_case(FuzzInput(data))
        return any(a.signature() == signature for a in outcome.anomalies)

    def minimize(self, report: CrashReport) -> MinimizationResult:
        """Zero out as much of the report's input as possible."""
        signature = report.anomaly.signature()
        data = bytearray(report.fuzz_input.data)
        self.replays = 0

        if not self._reproduces(bytes(data), signature):
            # Not deterministically reproducible from the input alone
            # (e.g. the anomaly needed a particular queue lineage);
            # return it untouched rather than corrupt it.
            return MinimizationResult(report.fuzz_input, report.fuzz_input,
                                      signature, self.replays)

        # Coarse-to-fine block zeroing: 256 -> 64 -> 16 -> 4 -> 1 bytes.
        for block in (256, 64, 16, 4, 1):
            offset = 0
            while offset < len(data) and self.replays < self.max_replays:
                chunk = bytes(data[offset:offset + block])
                if any(chunk):
                    data[offset:offset + block] = bytes(len(chunk))
                    if not self._reproduces(bytes(data), signature):
                        data[offset:offset + block] = chunk  # restore
                offset += block

        return MinimizationResult(report.fuzz_input, FuzzInput(bytes(data)),
                                  signature, self.replays)
