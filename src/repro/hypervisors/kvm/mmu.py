"""KVM MMU model: root validation, shadow paging, PDPTE loading.

Two of the paper's KVM findings live here:

* **CVE-2023-30456** (§5.5.1): with EPT disabled, a VMCS12 combining the
  "IA-32e mode guest" entry control with ``guest CR4.PAE = 0`` passes the
  (buggy) consistency checks; KVM then "interprets CR4.PAE literally and
  mismanages page tables" — modelled as an out-of-bounds index into the
  4-entry PDPTE cache during the L2 page walk, reported by UBSAN.

* **Shadow-root bug** (§5.5.1, second bug / Table 6 #3): an invalid EPT
  pointer makes ``mmu_check_root()`` fail, and pre-patch KVM responds
  with a *triple-fault VM exit even though the L2 VM never started*. The
  fix [10] loads a dummy root backed by the zero page instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.paging import PdpteCache, pae_pdpte_index
from repro.hypervisors.memory import GuestMemory


@dataclass
class MmuRoot:
    """The active paging root for one vCPU context."""

    hpa: int
    dummy: bool = False


@dataclass
class KvmMmu:
    """Per-vCPU MMU state (struct kvm_mmu, heavily abridged)."""

    memory: GuestMemory
    pdptrs: PdpteCache = field(default_factory=PdpteCache)
    root: MmuRoot | None = None

    #: The zero page used by the patched dummy-root path.
    ZERO_PAGE_HPA = 0x0

    def mmu_check_root(self, root_gpa: int) -> bool:
        """Validate that a guest paging root refers to visible memory.

        Mirrors KVM's ``mmu_check_root()``: the root must fall inside a
        memslot (our guest RAM window) — a format-valid pointer into
        unbacked space still fails here.
        """
        return self.memory.in_guest_ram(root_gpa)

    def load_root(self, root_gpa: int, *, dummy_root_patch: bool) -> bool:
        """Load a new paging root, applying the dummy-root fix if enabled.

        Returns True when a usable root is installed. Pre-patch, an
        invisible root installs nothing and the caller mis-handles the
        failure; post-patch we install a dummy root backed by the zero
        page so later guest accesses take a clean fault.
        """
        if self.mmu_check_root(root_gpa):
            self.root = MmuRoot(root_gpa & ~0xFFF)
            return True
        if dummy_root_patch:
            self.root = MmuRoot(self.ZERO_PAGE_HPA, dummy=True)
            return True
        self.root = None
        return False

    def load_pdptrs(self, cr3: int, *, believed_long_mode: bool,
                    pae_enabled: bool, walk_address: int) -> int | None:
        """Load the PAE PDPTE cache for a guest page walk.

        Returns the index written when it was out of bounds (the UBSAN
        condition), or None when the load was clean. The index KVM uses
        depends on the paging mode it *believes* the guest is in; the
        CVE-2023-30456 confusion is ``believed_long_mode=True`` while the
        PDPTE cache (sized for ``pae_enabled`` legacy paging) is active.
        """
        if believed_long_mode and not pae_enabled:
            # KVM takes CR4.PAE literally: the walk uses long-mode index
            # bits against the 4-entry legacy cache.
            index = pae_pdpte_index(walk_address, long_mode_guest=True)
            self.pdptrs.load(index, cr3 | 0x1)
            if self.pdptrs.oob_write is not None:
                return index
            return None
        index = pae_pdpte_index(walk_address, long_mode_guest=False)
        self.pdptrs.load(index, cr3 | 0x1)
        return None
