"""The simulated Xen host hypervisor (Xen 4.18 analogue).

Coverage measurement targets :mod:`repro.hypervisors.xen.nested_vmx` and
:mod:`repro.hypervisors.xen.nested_svm`, matching the paper's restriction
to ``xen/arch/x86/hvm/{vmx/vvmx, svm/nestedsvm}.c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_EFER, MsrFile
from repro.arch.registers import Efer
from repro.hypervisors.base import (
    ExecResult,
    GuestInstruction,
    L0Hypervisor,
    VcpuConfig,
)
from repro.hypervisors.l2map import AMD_L2_EXITS, INTEL_L2_EXITS, svm_exception_code
from repro.hypervisors.memory import GuestMemory
from repro.hypervisors.xen.nested_svm import NsvmState, XenNestedSvm
from repro.hypervisors.xen.nested_vmx import NvmxState, XenNestedVmx

VMX_MNEMONICS = frozenset(XenNestedVmx.HANDLERS)
SVM_MNEMONICS = frozenset(XenNestedSvm.HANDLERS)


@dataclass
class XenVcpu:
    """One vCPU of the L1 HVM guest."""

    vendor: Vendor
    memory: GuestMemory
    nvmx: NvmxState = field(default_factory=NvmxState)
    nsvm: NsvmState = field(default_factory=NsvmState)
    msrs: MsrFile = field(default_factory=MsrFile)

    @property
    def level(self) -> int:
        """Guest level currently executing (1 or 2)."""
        in_l2 = self.nvmx.guest_mode if self.vendor is Vendor.INTEL else self.nsvm.guest_mode
        return 2 if in_l2 else 1


class XenHypervisor(L0Hypervisor):
    """L0 Xen with nested HVM enabled."""

    name = "xen"

    def __init__(self, config: VcpuConfig,
                 patched: frozenset[str] = frozenset()) -> None:
        super().__init__(config)
        self.memory = GuestMemory()
        self.patched = patched
        if config.vendor is Vendor.INTEL:
            from repro.vmx.msr_caps import capabilities_for_features

            self.nested_vmx = XenNestedVmx(
                self, self.memory,
                caps=capabilities_for_features(config.features),
                patched=patched)
            self.nested_svm = None
        else:
            self.nested_vmx = None
            self.nested_svm = XenNestedSvm(
                self, self.memory,
                vgif_supported=config.enabled("vgif"),
                patched=patched)

    def create_vcpu(self) -> XenVcpu:
        """Create the (single) vCPU of the fuzz-harness VM."""
        vcpu = XenVcpu(self.config.vendor, self.memory)
        if self.config.vendor is Vendor.AMD:
            vcpu.nsvm.vgif_enabled = self.config.enabled("vgif")
        return vcpu

    def execute(self, vcpu: XenVcpu, instr: GuestInstruction) -> ExecResult:
        """Execute one guest instruction at its requested level."""
        if self.crashed:
            return ExecResult.fault("host is down")
        if instr.level == 2 and vcpu.level == 2:
            return self._execute_l2(vcpu, instr)
        return self._execute_l1(vcpu, instr)

    def _execute_l1(self, vcpu: XenVcpu, instr: GuestInstruction) -> ExecResult:
        mnemonic = instr.mnemonic
        if vcpu.vendor is Vendor.INTEL and mnemonic in VMX_MNEMONICS:
            assert self.nested_vmx is not None
            return self.nested_vmx.handle(vcpu.nvmx, instr)
        if vcpu.vendor is Vendor.AMD and mnemonic in SVM_MNEMONICS:
            assert self.nested_svm is not None
            return self.nested_svm.handle(vcpu.nsvm, instr)
        return self._emulate_plain(vcpu, instr)

    def _emulate_plain(self, vcpu: XenVcpu, instr: GuestInstruction) -> ExecResult:
        mnemonic = instr.mnemonic
        if mnemonic == "cpuid":
            return ExecResult.success("cpuid", value=0x000A20F1)
        if mnemonic == "rdmsr":
            return ExecResult.success("rdmsr", value=vcpu.msrs.read(instr.op("msr")))
        if mnemonic == "wrmsr":
            index, value = instr.op("msr"), instr.op("value")
            vcpu.msrs.write(index, value)
            if index == IA32_EFER:
                vcpu.nsvm.svme = bool(value & Efer.SVME)
            return ExecResult.success("wrmsr")
        if mnemonic == "mov_cr":
            if instr.op("cr") == 4 and instr.op("write", 1):
                vcpu.nvmx.cr4 = instr.op("value")
            return ExecResult.success("mov cr emulated")
        return ExecResult.success(f"{mnemonic} emulated", value=0)

    def _execute_l2(self, vcpu: XenVcpu, instr: GuestInstruction) -> ExecResult:
        if vcpu.vendor is Vendor.INTEL:
            nested = self.nested_vmx
            assert nested is not None
            reason = INTEL_L2_EXITS.get(instr.mnemonic)
            if reason is None:
                return ExecResult.success("no exit", level=2)
            vvmcs = nested._vvmcs(vcpu.nvmx)
            if vvmcs is None:
                return ExecResult.fault("L2 active without vvmcs")
            if nested.l1_wants_exit(vvmcs, reason, instr):
                nested.virtual_vmexit(vcpu.nvmx, vvmcs, int(reason),
                                      qualification=instr.op("value"))
                return ExecResult.success(f"L2 exit {reason.name} -> L1",
                                          exit_reason=int(reason), level=1)
            return ExecResult.success(f"L2 exit {reason.name} handled by Xen",
                                      level=2, exit_reason=int(reason))

        nested = self.nested_svm
        assert nested is not None
        code = AMD_L2_EXITS.get(instr.mnemonic)
        if code is None:
            return ExecResult.success("no exit", level=2)
        if instr.mnemonic == "exception":
            code = svm_exception_code(instr.op("vector"))
        vmcb12 = self.memory.get_vmcb(vcpu.nsvm.current_vmcb12_pa)
        if vmcb12 is None:
            return ExecResult.fault("L2 active without VMCB12")
        if nested.l1_wants_exit(vmcb12, int(code), instr):
            nested.nsvm_vmexit(vcpu.nsvm, vmcb12, int(code),
                               info1=instr.op("value"))
            return ExecResult.success(f"L2 #VMEXIT {int(code):#x} -> L1",
                                      exit_reason=int(code), level=1)
        return ExecResult.success(f"L2 #VMEXIT {int(code):#x} handled by Xen",
                                  level=2, exit_reason=int(code))

    @staticmethod
    def nested_modules(vendor: Vendor):
        """The modules coverage is restricted to (vvmx/nestedsvm analogues)."""
        from repro.hypervisors.xen import nested_svm, nested_vmx

        if vendor is Vendor.INTEL:
            return (nested_vmx,)
        return (nested_svm,)
