"""KVM nested SVM emulation — the analogue of ``arch/x86/kvm/svm/nested.c``.

The AMD-side coverage target. Noticeably smaller than the VMX twin (the
paper instruments 387 AMD lines against 1,681 Intel lines): AMD-V has no
vmread/vmwrite indirection, so "emulation" is mostly VMCB12 consistency
checking, VMCB02 construction, and the intercept-vector reflection
policy.

Bug #3 (Table 6) affects this side too: an invalid nested CR3 fails
``mmu_check_root()`` and pre-patch KVM synthesizes a shutdown exit to L1
although L2 never ran; the ``dummy_root`` patch fixes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.arch.registers import Cr0, Cr4, Efer
from repro.cpu.svm_cpu import SvmCpu, check_vmcb
from repro.hypervisors.base import ExecResult, GuestInstruction, SanitizerKind
from repro.hypervisors.kvm.mmu import KvmMmu
from repro.hypervisors.kvm.module import KvmModuleParams
from repro.hypervisors.memory import GuestMemory
from repro.svm import fields as SF
from repro.svm.exit_codes import SvmExitCode
from repro.svm.fields import Misc1Intercept, Misc2Intercept, VintrControl
from repro.svm.vmcb import Vmcb
from repro.validator.golden import golden_vmcb

VMCB02_HPA = 0x110000
HSAVE_HPA = 0x111000

#: SAVE-area field names, precomputed for the incremental merge.
_SAVE_NAMES: frozenset[str] = frozenset(
    spec.name for spec in SF.ALL_FIELDS if spec.area is SF.VmcbArea.SAVE)

#: VMCB12 fields the control-merge section of prepare_vmcb02 reads.
#: (DBGCTL/BR_FROM/BR_TO are SAVE-area: the save loop already refreshes
#: them with the same values the conditional LBR writes would use.)
_MERGE_CONTROL_INPUTS: frozenset[str] = frozenset({
    SF.INTERCEPT_MISC1, SF.INTERCEPT_MISC2, SF.INTERCEPT_EXCEPTIONS,
    SF.TSC_OFFSET, SF.EVENT_INJECTION, SF.VINTR_CONTROL,
    SF.AVIC_APIC_BAR, SF.AVIC_BACKING_PAGE,
    SF.PAUSE_FILTER_COUNT, SF.PAUSE_FILTER_THRESHOLD, SF.LBR_VIRT_ENABLE,
})

#: CONTROL-area fields the merge writes only conditionally; on an
#: incremental control refresh they are reset to the prototype values so
#: a branch not taken leaves exactly what a full merge would.
_CONDITIONAL_CONTROL_FIELDS: tuple[str, ...] = (
    SF.AVIC_APIC_BAR, SF.AVIC_BACKING_PAGE,
)


@dataclass
class SvmNestedState:
    """Per-vCPU nested SVM state (struct svm_nested_state analogue)."""

    svme: bool = False
    gif: bool = True
    hsave_pa: int = 0
    guest_mode: bool = False
    l2_ever_ran: bool = False
    prev_l2_long_mode: bool = False
    current_vmcb12_pa: int = 0
    vmcb02: Vmcb = field(default_factory=Vmcb)
    #: (vmcb12, generation, merged vmcb02) from the last prepare_vmcb02.
    merge_cache: tuple | None = None
    efer: int = Efer.SVME | Efer.LME | Efer.LMA


class NestedSvm:
    """The nested-virtualization half of kvm-amd, for one VM."""

    def __init__(self, hypervisor, params: KvmModuleParams,
                 memory: GuestMemory, patched: frozenset[str] = frozenset()) -> None:
        self.hv = hypervisor
        self.params = params
        self.memory = memory
        self.patched = patched
        self.phys = SvmCpu()
        self.phys.set_svme(True)
        self.phys.set_hsave(HSAVE_HPA)
        self.mmu = KvmMmu(memory)
        self._vmcb02_proto = golden_vmcb(nested_paging=params.npt)

    HANDLERS = {
        "vmrun": "handle_vmrun",
        "vmload": "handle_vmload",
        "vmsave": "handle_vmsave",
        "stgi": "handle_stgi",
        "clgi": "handle_clgi",
        "invlpga": "handle_invlpga",
        "skinit": "handle_skinit",
        "vmmcall": "handle_vmmcall",
    }

    def handle(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate one SVM instruction executed by L1."""
        if not self.params.nested:
            return ExecResult.fault("#UD: nested virtualization disabled")
        if not state.svme and instr.mnemonic != "skinit":
            return ExecResult.fault("#UD: EFER.SVME clear")
        handler_name = self.HANDLERS.get(instr.mnemonic)
        if handler_name is None:
            return ExecResult.fault(f"#UD: unknown SVM instruction {instr.mnemonic}")
        return getattr(self, handler_name)(state, instr)

    # ------------------------------------------------------------------
    # Instruction handlers
    # ------------------------------------------------------------------

    def handle_vmrun(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmrun` instruction."""
        return self.nested_svm_vmrun(state, instr.op("addr"))

    def handle_vmload(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmload` instruction."""
        vmcb = self.memory.get_vmcb(instr.op("addr"))
        if vmcb is None or instr.op("addr") & 0xFFF:
            return ExecResult.fault("#GP: bad VMCB address for vmload")
        # Loads the hidden-state MSR images from the VMCB into the vCPU.
        state.efer = vmcb.read(SF.EFER) or state.efer
        return ExecResult.success("vmload ok")

    def handle_vmsave(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmsave` instruction."""
        addr = instr.op("addr")
        if addr & 0xFFF or not self.memory.in_guest_ram(addr):
            return ExecResult.fault("#GP: bad VMCB address for vmsave")
        vmcb = self.memory.get_vmcb(addr)
        if vmcb is None:
            vmcb = Vmcb()
            self.memory.put_vmcb(addr, vmcb)
        vmcb.write(SF.EFER, state.efer)
        return ExecResult.success("vmsave ok")

    def handle_stgi(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `stgi` instruction."""
        state.gif = True
        return ExecResult.success("stgi ok")

    def handle_clgi(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `clgi` instruction."""
        state.gif = False
        return ExecResult.success("clgi ok")

    def handle_invlpga(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invlpga` instruction."""
        asid = instr.op("asid")
        if asid == 0:
            return ExecResult.success("invlpga host asid ignored")
        return ExecResult.success("invlpga ok")

    def handle_skinit(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `skinit` instruction."""
        return ExecResult.fault("#UD: SKINIT not supported by KVM")

    def handle_vmmcall(self, state: SvmNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmmcall` instruction."""
        return ExecResult.success("vmmcall ok (hypercall nop)")

    # ------------------------------------------------------------------
    # Nested vmrun (nested_svm_vmrun analogue)
    # ------------------------------------------------------------------

    def nested_svm_vmrun(self, state: SvmNestedState, vmcb12_pa: int) -> ExecResult:
        """The nested vmrun path for one VMCB12."""
        if vmcb12_pa & 0xFFF or not self.memory.in_guest_ram(vmcb12_pa):
            return ExecResult.fault("#GP: misaligned VMCB12 address")
        vmcb12 = self.memory.get_vmcb(vmcb12_pa)
        if vmcb12 is None:
            return ExecResult.fault("#GP: no VMCB at address")
        # Note: GIF does not gate vmrun — the canonical sequence is
        # clgi; vmrun; stgi, with GIF only masking interrupt delivery.
        state.current_vmcb12_pa = vmcb12_pa
        # Both checks are pure in the VMCB12 fields (module params and the
        # memory-window predicates are constant per instance), so their
        # results are memoized on the VMCB and revalidated via the journal.
        problems = perf.memoized_check(
            vmcb12, ("kvm_svm", id(self), "controls"),
            lambda: self.check_controls(vmcb12))
        if not problems:
            problems = perf.memoized_check(
                vmcb12, ("kvm_svm", id(self), "save"),
                lambda: self.check_save_area(vmcb12))
        if problems:
            return self._fail_vmrun(state, vmcb12, problems[0])

        prep = self.prepare_vmcb02(state, vmcb12)
        if prep is not None:
            return prep

        self.phys.install_vmcb(VMCB02_HPA, state.vmcb02)
        outcome = self.phys.vmrun(VMCB02_HPA)
        if not outcome.entered:
            self.hv.report_sanitizer(
                SanitizerKind.WARN, "nested_svm_vmrun",
                f"hardware rejected vmcb02: "
                f"{outcome.violations[0] if outcome.violations else 'unknown'}")
            return self._fail_vmrun(state, vmcb12, "vmcb02 rejected")

        state.guest_mode = True
        state.l2_ever_ran = True
        state.prev_l2_long_mode = vmcb12.long_mode_active or bool(
            vmcb12.read(SF.EFER) & Efer.LME and vmcb12.read(SF.CR0) & Cr0.PG)
        return ExecResult.success("nested vmrun", level=2)

    def _fail_vmrun(self, state: SvmNestedState, vmcb12: Vmcb,
                    detail: str) -> ExecResult:
        """Fail vmrun with VMEXIT_INVALID written back to VMCB12."""
        vmcb12.write(SF.EXIT_CODE, int(SvmExitCode.INVALID))
        vmcb12.write(SF.EXIT_INFO_1, 0)
        vmcb12.write(SF.EXIT_INFO_2, 0)
        return ExecResult.success(f"vmrun failed: {detail}",
                                  exit_reason=int(SvmExitCode.INVALID), level=1)

    # ------------------------------------------------------------------
    # Consistency checks
    # ------------------------------------------------------------------

    def check_controls(self, vmcb12: Vmcb) -> list[str]:
        """nested_vmcb_check_controls() analogue."""
        problems: list[str] = []
        if not vmcb12.read(SF.INTERCEPT_MISC2) & Misc2Intercept.VMRUN:
            problems.append("VMRUN intercept clear")
        if not vmcb12.read(SF.GUEST_ASID):
            problems.append("ASID zero")
        if vmcb12.nested_paging and not self.params.npt:
            problems.append("nested paging requested without npt")
        io_pa = vmcb12.read(SF.IOPM_BASE_PA)
        if io_pa and self.memory.in_l0_reserved(io_pa):
            problems.append("IOPM points into L0 memory")
        msr_pa = vmcb12.read(SF.MSRPM_BASE_PA)
        if msr_pa and self.memory.in_l0_reserved(msr_pa):
            problems.append("MSRPM points into L0 memory")
        return problems

    def check_save_area(self, vmcb12: Vmcb) -> list[str]:
        """nested_vmcb_check_save() analogue."""
        problems: list[str] = []
        efer = vmcb12.read(SF.EFER)
        cr0 = vmcb12.read(SF.CR0)
        cr4 = vmcb12.read(SF.CR4)
        if efer & Efer.RESERVED:
            problems.append("EFER reserved bits")
        if cr0 >> 32:
            problems.append("CR0 high bits")
        if not cr0 & Cr0.CD and cr0 & Cr0.NW:
            problems.append("CR0 CD/NW combination")
        if cr4 & Cr4.RESERVED:
            problems.append("CR4 reserved bits")
        if efer & Efer.LME and cr0 & Cr0.PG:
            if not cr4 & Cr4.PAE:
                problems.append("long mode without PAE")
            if not cr0 & Cr0.PE:
                problems.append("long mode without PE")
        if vmcb12.read(SF.DR6) >> 32 or vmcb12.read(SF.DR7) >> 32:
            problems.append("DR6/DR7 high bits")
        return problems

    # ------------------------------------------------------------------
    # VMCB12 -> VMCB02 merge
    # ------------------------------------------------------------------

    def prepare_vmcb02(self, state: SvmNestedState, vmcb12: Vmcb) -> ExecResult | None:
        """Build VMCB02; returns an ExecResult on the bug-#3 failure path.

        In incremental mode the master merge result is cached per vCPU
        and only dirty VMCB12 fields are re-applied (perf.merge_state
        replays the skipped sections' kcov event slices, so coverage is
        mode-independent); the installed VMCB02 is a copy of the master,
        so hardware write-backs (quirk fixups, exit codes) never
        contaminate the cache. The paging section always re-runs for its
        MMU side effects and early exits.
        """
        vmcb02 = perf.merge_state(
            state, vmcb12,
            build=lambda: self._vmcb02_base(vmcb12),
            controls=lambda merged: self._vmcb02_controls(vmcb12, merged),
            state_fields=_SAVE_NAMES,
            control_inputs=_MERGE_CONTROL_INPUTS)
        return self._finish_vmcb02(state, vmcb12, vmcb02)

    def _vmcb02_base(self, vmcb12: Vmcb) -> Vmcb:
        """Prototype copy with vmcb12's save area applied."""
        vmcb02 = self._vmcb02_proto.copy()
        for spec, value in vmcb12.fields():
            if spec.area is SF.VmcbArea.SAVE:
                vmcb02.write(spec.name, value)
        return vmcb02

    def _vmcb02_controls(self, vmcb12: Vmcb, vmcb02: Vmcb) -> None:
        """Merge the control area: L1's requests plus L0's intercepts.

        A pure function of the _MERGE_CONTROL_INPUTS fields of vmcb12
        (the save-area fields it copies under LBR gating are re-applied
        by the save loop anyway) plus constant module parameters — the
        contract that lets perf.merge_state skip it while those fields
        are clean.
        """
        # Branch-not-taken writes must land on prototype values, as
        # they would after a full merge from a fresh prototype copy.
        for name in _CONDITIONAL_CONTROL_FIELDS:
            vmcb02.write(name, self._vmcb02_proto.read(name))

        # Controls merged with L0's own intercepts.
        vmcb02.write(SF.INTERCEPT_MISC1,
                     vmcb12.read(SF.INTERCEPT_MISC1) | Misc1Intercept.INTR
                     | Misc1Intercept.NMI | Misc1Intercept.SHUTDOWN
                     | Misc1Intercept.CPUID | Misc1Intercept.MSR_PROT
                     | Misc1Intercept.IOIO_PROT)
        vmcb02.write(SF.INTERCEPT_MISC2,
                     vmcb12.read(SF.INTERCEPT_MISC2) | Misc2Intercept.VMRUN
                     | Misc2Intercept.VMLOAD | Misc2Intercept.VMSAVE
                     | Misc2Intercept.STGI | Misc2Intercept.CLGI
                     | Misc2Intercept.SKINIT)
        vmcb02.write(SF.INTERCEPT_EXCEPTIONS, vmcb12.read(SF.INTERCEPT_EXCEPTIONS))
        vmcb02.write(SF.GUEST_ASID, 2)  # L0 assigns its own ASID
        vmcb02.write(SF.TSC_OFFSET, vmcb12.read(SF.TSC_OFFSET))
        vmcb02.write(SF.EVENT_INJECTION, vmcb12.read(SF.EVENT_INJECTION))

        # vGIF: only with module support; KVM gates the bits correctly
        # (contrast with Xen bug #6).
        vintr12 = vmcb12.read(SF.VINTR_CONTROL)
        vintr02 = vintr12 & (VintrControl.V_TPR_MASK | VintrControl.V_IRQ
                             | VintrControl.V_IGN_TPR | VintrControl.V_INTR_MASKING)
        if self.params.vgif and vintr12 & VintrControl.V_GIF_ENABLE:
            vintr02 |= VintrControl.V_GIF_ENABLE | (vintr12 & VintrControl.V_GIF)
        if self.params.avic:
            vintr02 |= vintr12 & VintrControl.AVIC_ENABLE
            if vintr02 & VintrControl.AVIC_ENABLE:
                vmcb02.write(SF.AVIC_APIC_BAR, vmcb12.read(SF.AVIC_APIC_BAR))
                vmcb02.write(SF.AVIC_BACKING_PAGE,
                             vmcb12.read(SF.AVIC_BACKING_PAGE))
        vmcb02.write(SF.VINTR_CONTROL, vintr02)

        # Module-parameter-gated merges, as in nested_vmcb02_prepare_control:
        # each feature L0 was loaded without is stripped from what L2 sees.
        if self.params.pause_filter:
            vmcb02.write(SF.PAUSE_FILTER_COUNT,
                         vmcb12.read(SF.PAUSE_FILTER_COUNT))
            vmcb02.write(SF.PAUSE_FILTER_THRESHOLD,
                         vmcb12.read(SF.PAUSE_FILTER_THRESHOLD))
        else:
            vmcb02.write(SF.PAUSE_FILTER_COUNT, 0)
            vmcb02.write(SF.PAUSE_FILTER_THRESHOLD, 0)
        lbr12 = vmcb12.read(SF.LBR_VIRT_ENABLE)
        lbr02 = 0
        if self.params.lbrv and lbr12 & 1:
            lbr02 |= 1  # LBR virtualization
            vmcb02.write(SF.DBGCTL, vmcb12.read(SF.DBGCTL))
            vmcb02.write(SF.BR_FROM, vmcb12.read(SF.BR_FROM))
            vmcb02.write(SF.BR_TO, vmcb12.read(SF.BR_TO))
        if self.params.vls and lbr12 & 2:
            lbr02 |= 2  # virtual VMLOAD/VMSAVE
        vmcb02.write(SF.LBR_VIRT_ENABLE, lbr02)

    def _finish_vmcb02(self, state: SvmNestedState, vmcb12: Vmcb,
                       vmcb02: Vmcb) -> ExecResult | None:
        """Paging root + install: the always-run tail of the merge."""
        # Paging root for L2.
        if vmcb12.nested_paging and self.params.npt:
            ncr3 = vmcb12.read(SF.N_CR3)
            if not self.mmu.load_root(ncr3,
                                      dummy_root_patch="dummy_root" in self.patched):
                self.hv.bug_assert(
                    state.l2_ever_ran and False, "nested_svm_load_ncr3",
                    f"shutdown exit synthesized before L2 entered "
                    f"(invisible nCR3 {ncr3:#x})")
                vmcb12.write(SF.EXIT_CODE, int(SvmExitCode.SHUTDOWN))
                state.guest_mode = False
                return ExecResult.success("spurious shutdown (bug)",
                                          exit_reason=int(SvmExitCode.SHUTDOWN),
                                          level=1)
            assert self.mmu.root is not None
            vmcb02.write(SF.NP_CONTROL, SF.NpControl.NP_ENABLE)
            vmcb02.write(SF.N_CR3, self.mmu.root.hpa)
        else:
            vmcb02.write(SF.NP_CONTROL, SF.NpControl.NP_ENABLE)
            vmcb02.write(SF.N_CR3, 0x20000)  # L0 shadow root

        # vmrun writes back into the installed VMCB (quirk fixups, exit
        # codes), so on the incremental path publish_merged installs a
        # copy and keeps the master pristine, with the vmrun check memo
        # pre-warmed so the copy enters on a pure journal revalidation.
        state.vmcb02 = perf.publish_merged(
            vmcb02, lambda: perf.memoized_check(vmcb02, "svm_vmcb_check",
                                                lambda: check_vmcb(vmcb02)))
        return None

    # ------------------------------------------------------------------
    # Host-side ioctl surface (KVM_{GET,SET}_NESTED_STATE, module setup)
    #
    # Host-only: live migration and module lifecycle. The paper measures
    # ~9.8% of the AMD nested file as ioctl-reachable-only (§5.2); no
    # guest instruction dispatches here.
    # ------------------------------------------------------------------

    def svm_get_nested_state(self, state: SvmNestedState) -> dict:
        """KVM_GET_NESTED_STATE: snapshot nested SVM state."""
        blob: dict = {
            "format": "svm",
            "svme": state.svme,
            "gif": state.gif,
            "hsave_pa": state.hsave_pa,
            "guest_mode": state.guest_mode,
            "vmcb12_pa": state.current_vmcb12_pa,
        }
        vmcb12 = self.memory.get_vmcb(state.current_vmcb12_pa)
        if vmcb12 is not None:
            blob["vmcb12"] = vmcb12.serialize()
        return blob

    def svm_set_nested_state(self, state: SvmNestedState, blob: dict) -> int:
        """KVM_SET_NESTED_STATE: restore nested SVM state."""
        if blob.get("format") != "svm":
            return -22  # -EINVAL
        if blob.get("guest_mode") and not blob.get("svme"):
            return -22
        hsave = blob.get("hsave_pa", 0)
        if hsave & 0xFFF:
            return -22
        state.svme = bool(blob.get("svme"))
        state.gif = bool(blob.get("gif", True))
        state.hsave_pa = hsave
        vmcb12_pa = blob.get("vmcb12_pa", 0)
        if blob.get("guest_mode"):
            if vmcb12_pa & 0xFFF or not self.memory.in_guest_ram(vmcb12_pa):
                return -22
            raw = blob.get("vmcb12")
            if raw is not None:
                self.memory.put_vmcb(vmcb12_pa, Vmcb.deserialize(raw))
            vmcb12 = self.memory.get_vmcb(vmcb12_pa)
            if vmcb12 is None or self.check_controls(vmcb12):
                return -22
            state.current_vmcb12_pa = vmcb12_pa
            state.guest_mode = True
        return 0

    def svm_leave_nested(self, state: SvmNestedState) -> None:
        """Force-exit guest mode (vCPU reset / ioctl path)."""
        if state.guest_mode:
            vmcb12 = self.memory.get_vmcb(state.current_vmcb12_pa)
            if vmcb12 is not None:
                vmcb12.write(SF.EXIT_CODE, int(SvmExitCode.INVALID))
            state.guest_mode = False
        state.gif = True

    def nested_svm_hardware_setup(self) -> bool:
        """Module-load-time nested SVM feature resolution."""
        if not self.params.nested:
            return False
        if self.params.avic and not self.params.npt:
            return False  # AVIC depends on nested paging
        return True

    def nested_svm_hardware_unsetup(self) -> None:
        """Module-unload-time teardown."""
        self.memory.vmcb_pages.clear()
        self.mmu.root = None

    # ------------------------------------------------------------------
    # Nested #VMEXIT (nested_svm_vmexit analogue)
    # ------------------------------------------------------------------

    def nested_svm_vmexit(self, state: SvmNestedState, vmcb12: Vmcb,
                          code: int, *, info1: int = 0,
                          info2: int = 0) -> None:
        """Reflect a #VMEXIT to L1: sync VMCB02 save area back to VMCB12."""
        for spec, value in state.vmcb02.fields():
            if spec.area is SF.VmcbArea.SAVE:
                vmcb12.write(spec.name, value)
        vmcb12.write(SF.EXIT_CODE, int(code))
        vmcb12.write(SF.EXIT_INFO_1, info1)
        vmcb12.write(SF.EXIT_INFO_2, info2)
        vmcb12.write(SF.EXIT_INT_INFO, 0)
        state.guest_mode = False

    # ------------------------------------------------------------------
    # Exit reflection policy
    # ------------------------------------------------------------------

    def l1_wants_exit(self, vmcb12: Vmcb, code: int,
                      instr: GuestInstruction) -> bool:
        """Decide whether an L2 #VMEXIT is forwarded to L1."""
        misc1 = vmcb12.read(SF.INTERCEPT_MISC1)
        misc2 = vmcb12.read(SF.INTERCEPT_MISC2)

        if SvmExitCode.EXCP_BASE <= code < SvmExitCode.INTR:
            vector = int(code) - int(SvmExitCode.EXCP_BASE)
            return bool(vmcb12.read(SF.INTERCEPT_EXCEPTIONS) & (1 << vector))
        if code == SvmExitCode.INTR:
            return bool(misc1 & Misc1Intercept.INTR)
        if code == SvmExitCode.NMI:
            return bool(misc1 & Misc1Intercept.NMI)
        if code == SvmExitCode.SMI:
            return bool(misc1 & Misc1Intercept.SMI)
        if code == SvmExitCode.INIT:
            return bool(misc1 & Misc1Intercept.INIT)
        if code == SvmExitCode.VINTR:
            return bool(misc1 & Misc1Intercept.VINTR)
        if code == SvmExitCode.SHUTDOWN:
            return bool(misc1 & Misc1Intercept.SHUTDOWN)
        if code == SvmExitCode.CPUID:
            return bool(misc1 & Misc1Intercept.CPUID)
        if code == SvmExitCode.HLT:
            return bool(misc1 & Misc1Intercept.HLT)
        if code == SvmExitCode.INVLPG:
            return bool(misc1 & Misc1Intercept.INVLPG)
        if code == SvmExitCode.INVLPGA:
            return bool(misc1 & Misc1Intercept.INVLPGA)
        if code == SvmExitCode.IOIO:
            if misc1 & Misc1Intercept.IOIO_PROT:
                return bool(instr.op("port") & 1)  # modelled IOPM
            return False
        if code == SvmExitCode.MSR:
            if misc1 & Misc1Intercept.MSR_PROT:
                return bool(instr.op("msr") & 1)  # modelled MSRPM
            return False
        if code == SvmExitCode.RDTSC:
            return bool(misc1 & Misc1Intercept.RDTSC)
        if code == SvmExitCode.RDPMC:
            return bool(misc1 & Misc1Intercept.RDPMC)
        if code == SvmExitCode.PAUSE:
            return bool(misc1 & Misc1Intercept.PAUSE)
        if code == SvmExitCode.TASK_SWITCH:
            return bool(misc1 & Misc1Intercept.TASK_SWITCH)
        if code in (SvmExitCode.VMRUN, SvmExitCode.VMLOAD, SvmExitCode.VMSAVE,
                    SvmExitCode.STGI, SvmExitCode.CLGI, SvmExitCode.SKINIT,
                    SvmExitCode.VMMCALL):
            mapping = {
                SvmExitCode.VMRUN: Misc2Intercept.VMRUN,
                SvmExitCode.VMLOAD: Misc2Intercept.VMLOAD,
                SvmExitCode.VMSAVE: Misc2Intercept.VMSAVE,
                SvmExitCode.STGI: Misc2Intercept.STGI,
                SvmExitCode.CLGI: Misc2Intercept.CLGI,
                SvmExitCode.SKINIT: Misc2Intercept.SKINIT,
                SvmExitCode.VMMCALL: Misc2Intercept.VMMCALL,
            }
            return bool(misc2 & mapping[code])
        if code == SvmExitCode.NPF:
            return vmcb12.nested_paging
        if code in (SvmExitCode.MONITOR, SvmExitCode.MWAIT):
            return bool(misc2 & (Misc2Intercept.MONITOR | Misc2Intercept.MWAIT))
        if code == SvmExitCode.WBINVD:
            return bool(misc2 & Misc2Intercept.WBINVD)
        if code == SvmExitCode.XSETBV:
            return bool(misc2 & Misc2Intercept.XSETBV)
        if code == SvmExitCode.RDTSCP:
            return bool(misc2 & Misc2Intercept.RDTSCP)
        return True
