"""Tests for the kvm module-parameter model."""

from repro.arch.cpuid import Vendor
from repro.hypervisors.base import VcpuConfig
from repro.hypervisors.kvm.module import KvmModuleParams
from repro.vmx.controls import Secondary


class TestFromConfig:
    def test_defaults(self):
        params = KvmModuleParams.from_config(VcpuConfig.default(Vendor.INTEL))
        assert params.nested and params.ept and params.vpid

    def test_dependent_resolution_ept(self):
        """Like the real module: ept=0 forces unrestricted_guest=0 and
        pml=0 regardless of what was requested."""
        config = VcpuConfig.default(Vendor.INTEL)
        config.features["ept"] = False
        config.features["unrestricted_guest"] = True
        config.features["pml"] = True
        params = KvmModuleParams.from_config(config)
        assert not params.ept
        assert not params.unrestricted_guest
        assert not params.pml

    def test_amd_features_mapped(self):
        config = VcpuConfig.default(Vendor.AMD)
        config.features["vgif"] = False
        config.features["npt"] = False
        params = KvmModuleParams.from_config(config)
        assert not params.vgif and not params.npt


class TestCmdline:
    def test_intel_string(self):
        params = KvmModuleParams(ept=False, vpid=False)
        line = params.cmdline(Vendor.INTEL)
        assert "ept=0" in line and "vpid=0" in line and "nested=1" in line
        assert "npt" not in line  # AMD-only knob

    def test_amd_string(self):
        params = KvmModuleParams(npt=False, vgif=True)
        line = params.cmdline(Vendor.AMD)
        assert "npt=0" in line and "vgif=1" in line
        assert "ept" not in line


class TestL1Capabilities:
    def test_full_params_full_caps(self):
        caps = KvmModuleParams().l1_vmx_capabilities()
        assert caps.secondary.allowed1 & Secondary.ENABLE_EPT
        assert caps.secondary.allowed1 & Secondary.ENABLE_VPID

    def test_restricted_params_strip_caps(self):
        caps = KvmModuleParams(ept=False, vpid=False).l1_vmx_capabilities()
        assert not caps.secondary.allowed1 & Secondary.ENABLE_EPT
        assert not caps.secondary.allowed1 & Secondary.ENABLE_VPID
        assert not caps.secondary.allowed1 & Secondary.UNRESTRICTED_GUEST

    def test_feature_map_roundtrip(self):
        params = KvmModuleParams(ept=False)
        feature_map = params.as_feature_map()
        assert feature_map["ept"] is False
        assert "apicv" in feature_map  # enable_apicv renamed back
