"""Tests for the asynchronous-event extension (§6.3 future work)."""

from repro import NecoFuzz, Vendor
from repro.core.async_events import (
    AMD_ASYNC_EVENTS,
    INTEL_ASYNC_EVENTS,
    AsyncEventSchedule,
)
from repro.fuzzer.input import FuzzInput
from repro.fuzzer.rng import Rng
from repro.hypervisors.l2map import AMD_L2_EXITS, INTEL_L2_EXITS


class TestSchedule:
    def test_deterministic(self):
        fi = FuzzInput.from_rng(Rng(4))
        a = AsyncEventSchedule(Vendor.INTEL, fi)
        b = AsyncEventSchedule(Vendor.INTEL, fi)
        for i in range(32):
            assert [e.mnemonic for e in a.due(i)] == [e.mnemonic for e in b.due(i)]

    def test_events_within_horizon(self):
        fi = FuzzInput.from_rng(Rng(4))
        schedule = AsyncEventSchedule(Vendor.INTEL, fi, horizon=10)
        for i in range(10, 64):
            assert schedule.due(i) == []

    def test_event_kinds_mapped_to_exits(self):
        for kind in INTEL_ASYNC_EVENTS:
            assert kind in INTEL_L2_EXITS
        for kind in AMD_ASYNC_EVENTS:
            assert kind in AMD_L2_EXITS

    def test_varies_across_inputs(self):
        counts = {len(AsyncEventSchedule(Vendor.INTEL,
                                         FuzzInput.from_rng(Rng(seed))))
                  for seed in range(12)}
        assert len(counts) > 1

    def test_instruction_level_two(self):
        fi = FuzzInput.from_rng(Rng(1))
        schedule = AsyncEventSchedule(Vendor.AMD, fi, max_events=4)
        for i in range(32):
            for event in schedule.due(i):
                assert event.instruction().level == 2


class TestCampaignIntegration:
    def test_async_campaign_runs(self):
        result = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5,
                          async_events=True).run(60)
        assert result.coverage_fraction > 0.3

    def test_async_events_unlock_reflect_branches(self):
        """The extension's point: reasons the paper's configuration can
        never produce (external interrupt, preemption timer...) become
        reachable, lifting coverage of the reflect dispatcher."""
        base = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5).run(250)
        extended = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5,
                            async_events=True).run(250)
        gained = extended.covered_lines - base.covered_lines
        assert extended.coverage_fraction >= base.coverage_fraction
        assert gained  # at least some async-only lines were reached

    def test_default_is_off(self):
        """The paper's evaluation numbers assume no async events."""
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5)
        assert campaign.async_events is False
