#!/usr/bin/env python3
"""The validator + hardware-oracle loop, step by step (paper §3.4).

Shows the paper's core input-generation recipe on one random state:

1. raw fuzzing input interpreted as a VMCS — hopeless on hardware;
2. Bochs-derived rounding — near-valid, grouped corrections;
3. the physical-CPU oracle catching the validator's *own* modelling gaps
   and activating runtime correction rules;
4. selective boundary injection — a near-valid state that probes the
   exact checks hypervisors get wrong.

Also reruns the Figure-5 Hamming measurement at small scale.
"""

from repro.analysis.hamming import run_study
from repro.core.state_generator import VmStateGenerator
from repro.cpu.physical_cpu import VmxCpu
from repro.fuzzer.input import FuzzInput
from repro.fuzzer.rng import Rng
from repro.validator import HardwareOracle, VmStateValidator
from repro.vmx import fields as F
from repro.vmx.controls import PinBased, ProcBased, Secondary
from repro.vmx.msr_caps import default_capabilities
from repro.vmx.vmcs import Vmcs


def attempt_entry(vmcs):
    """One raw hardware trial (what the oracle does internally)."""
    cpu = VmxCpu()
    cpu.vmxon(0x1000)
    cpu.vmclear(0x2000)
    image = vmcs.copy()
    image.clear()
    cpu.install_vmcs(0x2000, image)
    cpu.vmptrld(0x2000)
    return cpu.vmlaunch()


def main() -> None:
    rng = Rng(99)

    print("=== 1. raw random state on hardware ===")
    raw = Vmcs.deserialize(rng.bytes(F.LAYOUT_BYTES))
    outcome = attempt_entry(raw)
    print(f"vm entry: entered={outcome.entered}, "
          f"{outcome.vmx_result.kind.value}"
          + (f" ({outcome.violations[0]})" if outcome.violations else ""))

    print("\n=== 2. Bochs-derived rounding ===")
    validator = VmStateValidator()
    work = raw.copy()
    report = validator.round_to_valid(work)
    print(f"corrections: {len(report.controls)} control, "
          f"{len(report.host)} host, {len(report.guest)} guest")
    for correction in report.all[:5]:
        print(f"  {correction}")
    print(f"  ... ({report.total} total), "
          f"hamming(raw, rounded) = {raw.hamming(work)} bits")

    print("\n=== 3. the hardware oracle corrects the validator ===")
    # Force the documented modelling gap: posted interrupts without the
    # ack-on-exit exit control, which the extraction does not know about.
    work.write(F.CPU_BASED_VM_EXEC_CONTROL,
               work.read(F.CPU_BASED_VM_EXEC_CONTROL)
               | ProcBased.USE_TPR_SHADOW
               | ProcBased.ACTIVATE_SECONDARY_CONTROLS)
    work.write(F.SECONDARY_VM_EXEC_CONTROL,
               work.read(F.SECONDARY_VM_EXEC_CONTROL)
               | Secondary.VIRTUAL_INTR_DELIVERY)
    work.write(F.VIRTUAL_APIC_PAGE_ADDR, 0x13000)
    work.write(F.PIN_BASED_VM_EXEC_CONTROL,
               work.read(F.PIN_BASED_VM_EXEC_CONTROL)
               | PinBased.POSTED_INTERRUPTS)
    oracle = HardwareOracle()
    result = oracle.verify(work)
    print(f"entered={result.entered} after {result.attempts} attempt(s)")
    print(f"activated correction rules: {result.activated_rules}")
    print(f"golden fallbacks: {result.golden_fallbacks}")

    print("\n=== 4. the full generator: round + oracle + injection ===")
    generator = VmStateGenerator(default_capabilities())
    vmcs, meta = generator.generate(FuzzInput.from_rng(rng))
    print(f"rounding corrections: {meta.rounding_corrections}, "
          f"oracle entered: {meta.oracle_entered}")
    print(f"boundary injection: {meta.flipped_bits} bit(s) across "
          f"{meta.mutated_fields}")

    print("\n=== 5. Figure-5 style measurement (500 repetitions) ===")
    print(run_study(repetitions=500, seed=1).render())


if __name__ == "__main__":
    main()
