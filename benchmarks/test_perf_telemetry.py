"""Telemetry overhead gate and mode-equivalence pins (DESIGN.md §11).

Telemetry must be *observationally free*: turning it on may cost a
little wall clock but must not change anything a campaign finds. Two
properties are pinned here and exported to ``BENCH_throughput.json``:

* ``--telemetry metrics`` vs ``--telemetry off`` on an identical inline
  campaign costs at most ``MAX_OVERHEAD`` relative wall clock (each
  mode measured best-of-``REPEATS`` to keep the gate off the noise
  floor);
* the campaign fingerprint is bit-for-bit identical across all three
  modes, for the VMX (Intel) and SVM (AMD) stacks both.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from common import BenchReport, PhaseDeadline, bench_budget
from repro import Vendor
from repro.parallel import ParallelCampaign
from repro.resilience import campaign_fingerprint

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
DEFAULT_BUDGET = 200
BUDGET = bench_budget(DEFAULT_BUDGET)
SEED = 7
#: Relative wall-clock overhead allowed for ``metrics`` over ``off``.
MAX_OVERHEAD = 0.05
#: Best-of-N timing per mode; a single inline campaign is short enough
#: that scheduler noise would otherwise dominate a 5% gate.
REPEATS = 3


def _update_json(section: str, payload: dict) -> None:
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _campaign(vendor: Vendor, mode: str) -> ParallelCampaign:
    return ParallelCampaign(hypervisor="kvm", vendor=vendor, seed=SEED,
                            workers=2, sync_every=50, mode="inline",
                            telemetry_mode=mode)


def _timed(mode: str, iterations: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(REPEATS):
        campaign = _campaign(Vendor.INTEL, mode)
        start = time.perf_counter()
        result = campaign.run(iterations, sample_every=100)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.benchmark(group="perf-telemetry")
def test_telemetry_overhead_gate(capsys):
    deadline = PhaseDeadline()
    off_s, _ = _timed("off", BUDGET)
    metrics_s, observed = _timed("metrics", BUDGET)
    truncated = deadline.expired()
    overhead = metrics_s / off_s - 1.0

    registry_spans = observed.telemetry["shards"] if observed.telemetry else {}
    span_totals: dict = {}
    counter_totals: dict = {}
    for shard in registry_spans.values():
        for name, hist in shard.get("histograms", {}).items():
            span_totals[name] = round(
                span_totals.get(name, 0.0) + hist["sum"], 4)
        for name, value in shard.get("counters", {}).items():
            counter_totals[name] = counter_totals.get(name, 0) + value

    _update_json("telemetry_overhead", {
        "iterations": BUDGET,
        "off_seconds": round(off_s, 3),
        "metrics_seconds": round(metrics_s, 3),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD,
        "span_total_seconds": span_totals,
        "counters": counter_totals,
        "deadline_truncated": truncated,
    })

    report = BenchReport("Telemetry overhead (inline, 2 workers)")
    report.add(f"off      {off_s:6.3f}s  (best of {REPEATS})")
    report.add(f"metrics  {metrics_s:6.3f}s  (best of {REPEATS})")
    report.add(f"overhead {100 * overhead:+6.2f}%  "
               f"(gate {100 * MAX_OVERHEAD:.0f}%)"
               + ("  [deadline truncated]" if truncated else ""))
    report.emit(capsys)

    if not truncated:
        assert overhead <= MAX_OVERHEAD, (
            f"telemetry 'metrics' mode costs {100 * overhead:.1f}% over "
            f"'off' (gate {100 * MAX_OVERHEAD:.0f}%)")


@pytest.mark.benchmark(group="perf-telemetry")
@pytest.mark.parametrize("vendor", (Vendor.INTEL, Vendor.AMD),
                         ids=("vmx", "svm"))
def test_fingerprints_identical_across_modes(vendor, capsys):
    iterations = min(BUDGET, 120)
    prints = {mode: campaign_fingerprint(
                  _campaign(vendor, mode).run(iterations, sample_every=50))
              for mode in ("off", "metrics", "full")}

    report = BenchReport(f"Telemetry fingerprint pin ({vendor.value})")
    for mode, digest in prints.items():
        report.add(f"{mode:<8} {digest[:16]}…")
    report.emit(capsys)

    assert prints["off"] == prints["metrics"] == prints["full"], (
        f"telemetry mode changed the {vendor.value} campaign fingerprint: "
        f"{prints}")
