"""Unit tests for the event/fault model."""

from repro.arch import exceptions as E


class TestInterruptionInfo:
    def test_decode_encode_roundtrip(self):
        raw = (1 << 31) | (3 << 8) | (1 << 11) | 14  # valid #PF w/ error code
        info = E.InterruptionInfo.decode(raw)
        assert info.valid
        assert info.vector == 14
        assert info.event_type == E.EventType.HARDWARE_EXCEPTION
        assert info.deliver_error_code
        assert info.encode() == raw

    def test_invalid_info_always_consistent(self):
        assert E.InterruptionInfo.decode(0).consistent()
        assert E.InterruptionInfo.decode(0x7FFF_FFFF).consistent()

    def test_reserved_type_inconsistent(self):
        raw = (1 << 31) | (1 << 8) | 3  # type 1 is reserved
        info = E.InterruptionInfo.decode(raw)
        assert not info.consistent()

    def test_nmi_must_use_vector_two(self):
        good = (1 << 31) | (2 << 8) | 2
        bad = (1 << 31) | (2 << 8) | 3
        assert E.InterruptionInfo.decode(good).consistent()
        assert not E.InterruptionInfo.decode(bad).consistent()

    def test_hw_exception_vector_range(self):
        bad = (1 << 31) | (3 << 8) | 77
        assert not E.InterruptionInfo.decode(bad).consistent()

    def test_error_code_only_for_hw_exceptions(self):
        soft = (1 << 31) | (4 << 8) | (1 << 11) | 13
        assert not E.InterruptionInfo.decode(soft).consistent()

    def test_error_code_only_for_ec_vectors(self):
        bp = (1 << 31) | (3 << 8) | (1 << 11) | 3  # #BP pushes no error code
        gp = (1 << 31) | (3 << 8) | (1 << 11) | 13
        assert not E.InterruptionInfo.decode(bp).consistent()
        assert E.InterruptionInfo.decode(gp).consistent()


class TestExceptionTypes:
    def test_guest_fault_carries_vector(self):
        fault = E.GuestFault(E.Vector.GP, error_code=0)
        assert fault.vector == E.Vector.GP
        assert fault.error_code == 0
        assert "GP" in str(fault)

    def test_host_crash_hang_flag(self):
        crash = E.HostCrash("wedged", hang=True)
        assert crash.hang
        assert not E.HostCrash("reset").hang

    def test_error_code_vector_set(self):
        assert E.Vector.PF in E.ERROR_CODE_VECTORS
        assert E.Vector.UD not in E.ERROR_CODE_VECTORS
