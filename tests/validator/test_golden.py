"""Tests for the golden (default-initialised) VM states."""

from repro.arch.registers import Cr0, Cr4, Efer, Rflags
from repro.cpu.entry_checks import check_all
from repro.cpu.svm_cpu import check_vmcb
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import EntryControls, Secondary
from repro.vmx.msr_caps import capabilities_for_features, default_capabilities
from repro.arch.cpuid import Vendor, default_feature_map


class TestGoldenVmcs:
    def test_passes_all_hardware_checks(self):
        assert check_all(golden_vmcs(), default_capabilities()) == []

    def test_is_64bit_guest(self):
        vmcs = golden_vmcs()
        assert vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.IA32E_MODE_GUEST
        assert vmcs.read(F.GUEST_IA32_EFER) & Efer.LMA
        assert vmcs.read(F.GUEST_CR0) & Cr0.PG
        assert vmcs.read(F.GUEST_CR4) & Cr4.PAE

    def test_respects_restricted_capabilities(self):
        features = default_feature_map(Vendor.INTEL)
        features["ept"] = False
        caps = capabilities_for_features(features)
        vmcs = golden_vmcs(caps)
        assert not vmcs.read(F.SECONDARY_VM_EXEC_CONTROL) & Secondary.ENABLE_EPT
        assert check_all(vmcs, caps) == []

    def test_interrupts_enabled(self):
        # IF is deliberately set so event-injection mutations stay valid.
        assert golden_vmcs().read(F.GUEST_RFLAGS) & Rflags.IF

    def test_cs_is_long_mode_code(self):
        ar = golden_vmcs().read(F.GUEST_CS_AR_BYTES)
        assert ar & (1 << 13)      # L
        assert not ar & (1 << 14)  # not D/B
        assert ar & 0x8            # code

    def test_link_pointer_all_ones(self):
        assert golden_vmcs().read(F.VMCS_LINK_POINTER) == (1 << 64) - 1


class TestGoldenVmcb:
    def test_passes_vmrun_checks(self):
        assert check_vmcb(golden_vmcb()) == []

    def test_is_64bit_guest(self):
        vmcb = golden_vmcb()
        assert vmcb.long_mode_active
        assert vmcb.paging_enabled

    def test_nested_paging_toggle(self):
        assert golden_vmcb(nested_paging=True).nested_paging
        no_np = golden_vmcb(nested_paging=False)
        assert not no_np.nested_paging
        assert check_vmcb(no_np) == []

    def test_vmrun_intercept_set(self):
        from repro.svm import fields as SF

        assert golden_vmcb().read(SF.INTERCEPT_MISC2) & SF.Misc2Intercept.VMRUN

    def test_asid_nonzero(self):
        from repro.svm import fields as SF

        assert golden_vmcb().read(SF.GUEST_ASID) == 1
