"""Unit tests for the silent-hardware-behaviour catalogue."""

from repro.arch.registers import Cr4, Efer, Rflags
from repro.cpu.quirks import UNDOCUMENTED_FIELDS, apply_entry_fixups
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F


class TestSilentFixups:
    def test_golden_state_needs_no_fixups(self):
        vmcs = golden_vmcs()
        # Golden already satisfies every silently-enforced property
        # except possibly the CS accessed bit.
        fixups = apply_entry_fixups(vmcs)
        assert all(f.field in UNDOCUMENTED_FIELDS for f in fixups)

    def test_ia32e_pae_assumed_not_written_back(self):
        """The CVE-2023-30456 quirk: hardware *assumes* CR4.PAE during
        the entry but does not rewrite the stored field — the stored
        inconsistency survives for software to stumble over."""
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_CR4, vmcs.read(F.GUEST_CR4) & ~Cr4.PAE)
        fixups = apply_entry_fixups(vmcs)
        assert not vmcs.read(F.GUEST_CR4) & Cr4.PAE
        assert not any(f.field == "guest_cr4" for f in fixups)

    def test_pae_less_ia32e_state_still_enters(self):
        """...and the hardware entry checks tolerate the combination."""
        from repro.cpu.entry_checks import check_guest_state
        from repro.vmx.msr_caps import default_capabilities

        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_CR4, vmcs.read(F.GUEST_CR4) & ~Cr4.PAE)
        flagged = {v.field for v in check_guest_state(vmcs,
                                                      default_capabilities())}
        assert "guest_cr4" not in flagged

    def test_rflags_fixed_bits_forced(self):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_RFLAGS, (1 << 3) | (1 << 15))  # reserved bits only
        apply_entry_fixups(vmcs)
        rflags = vmcs.read(F.GUEST_RFLAGS)
        assert rflags & Rflags.FIXED_1
        assert not rflags & Rflags.RESERVED

    def test_efer_lma_recomputed(self):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_IA32_EFER, Efer.LME)  # LMA wrongly clear
        apply_entry_fixups(vmcs)
        assert vmcs.read(F.GUEST_IA32_EFER) & Efer.LMA

    def test_cs_accessed_bit_set(self):
        vmcs = golden_vmcs()
        ar = vmcs.read(F.GUEST_CS_AR_BYTES) & ~1  # clear accessed
        vmcs.write(F.GUEST_CS_AR_BYTES, ar)
        fixups = apply_entry_fixups(vmcs)
        assert vmcs.read(F.GUEST_CS_AR_BYTES) & 1
        assert any(f.field == "guest_cs_ar_bytes" for f in fixups)

    def test_activity_state_truncated(self):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_ACTIVITY_STATE, 7)
        apply_entry_fixups(vmcs)
        assert vmcs.read(F.GUEST_ACTIVITY_STATE) == 3

    def test_fixups_record_before_after(self):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_ACTIVITY_STATE, 5)
        fixups = apply_entry_fixups(vmcs)
        fix = next(f for f in fixups if f.field == "guest_activity_state")
        assert fix.before == 5
        assert fix.after == 1

    def test_fixups_idempotent(self):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_ACTIVITY_STATE, 6)
        apply_entry_fixups(vmcs)
        assert apply_entry_fixups(vmcs) == []

    def test_every_quirk_field_documented(self):
        assert UNDOCUMENTED_FIELDS == {
            "guest_rflags", "guest_ia32_efer",
            "guest_cs_ar_bytes", "guest_activity_state"}
