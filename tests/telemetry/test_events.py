"""JSONL event streams: append, torn-tail tolerance, k-way merge."""

from repro.telemetry.events import (
    EventStream,
    merge_events,
    merged_events_path,
    read_events,
    worker_events_path,
)


class TestEventStream:
    def test_worker_events_land_in_the_shard_directory(self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit(3, "sync", round=1)
        stream.close()
        path = worker_events_path(tmp_path, 3)
        assert path == tmp_path / "worker-003" / "events.jsonl"
        events = read_events(path)
        assert events == [{"t": events[0]["t"], "w": 3, "ev": "sync",
                           "round": 1}]

    def test_campaign_events_use_their_own_file(self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit(None, "merge")
        stream.close()
        assert read_events(tmp_path / "events-campaign.jsonl")[0]["w"] is None

    def test_timestamps_are_monotonic_relative(self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit(0, "a")
        stream.emit(0, "b")
        stream.close()
        t = [e["t"] for e in read_events(worker_events_path(tmp_path, 0))]
        assert 0 <= t[0] <= t[1] < 60  # relative to stream open, ordered

    def test_reader_skips_a_torn_tail(self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit(0, "ok")
        stream.close()
        path = worker_events_path(tmp_path, 0)
        with open(path, "a") as handle:
            handle.write('{"t": 9.9, "w": 0, "ev": "torn')  # crash mid-append
        events = read_events(path)
        assert [e["ev"] for e in events] == ["ok"]

    def test_reader_tolerates_a_missing_file(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []


class TestMergeEvents:
    def test_merge_orders_by_time_across_workers(self, tmp_path):
        for shard, times in ((0, (0.1, 0.5)), (1, (0.2, 0.3))):
            path = worker_events_path(tmp_path, shard)
            path.parent.mkdir(parents=True)
            path.write_text("".join(
                f'{{"t": {t}, "w": {shard}, "ev": "e"}}\n' for t in times))
        out = merge_events(tmp_path)
        assert out == merged_events_path(tmp_path)
        merged = read_events(out)
        assert [(e["t"], e["w"]) for e in merged] == [
            (0.1, 0), (0.2, 1), (0.3, 1), (0.5, 0)]

    def test_merge_includes_the_campaign_stream_and_is_idempotent(
            self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit(None, "campaign-start")
        stream.emit(0, "case")
        stream.close()
        first = read_events(merge_events(tmp_path))
        second = read_events(merge_events(tmp_path))
        assert first == second
        assert {e["ev"] for e in first} == {"campaign-start", "case"}
