"""Simulated AMD-V processor: vmrun consistency checks and quirks.

AMD-V has no vmread/vmwrite indirection — ``vmrun`` takes the physical
address of a VMCB and performs the consistency checks of APM Vol. 2,
15.5.1 ("Canonicalization and Consistency Checks"). A failed check exits
immediately with ``VMEXIT_INVALID``.

The model includes the specification ambiguity behind Xen bugs #5/#6:
the APM *permits* a VMCB with ``EFER.LME=1, CR0.PG=0`` (legal during a
mode transition) without saying how vmrun should treat it; hardware
accepts it, and a nested hypervisor that "corrects" it corrupts state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.arch.bits import is_aligned
from repro.arch.registers import Cr0, Cr4, Efer
from repro.svm import fields as SF
from repro.svm.exit_codes import SvmExitCode
from repro.svm.vmcb import Vmcb

PAGE_SIZE = 4096


@dataclass(frozen=True)
class SvmViolation:
    """One failed vmrun consistency check."""

    field: str
    reason: str

    def __str__(self) -> str:
        return f"{self.field}: {self.reason}"


@dataclass
class VmrunOutcome:
    """Result of a vmrun attempt."""

    entered: bool
    exit_code: SvmExitCode | None = None
    violations: list[SvmViolation] = field(default_factory=list)
    fixups: list[str] = field(default_factory=list)

    @property
    def invalid(self) -> bool:
        """True when vmrun failed with VMEXIT_INVALID."""
        return self.exit_code is SvmExitCode.INVALID


def check_vmcb(vmcb: Vmcb) -> list[SvmViolation]:
    """APM 15.5.1 consistency checks, in hardware order."""
    v: list[SvmViolation] = []

    def bad(name: str, reason: str) -> None:
        v.append(SvmViolation(name, reason))

    efer = vmcb.read(SF.EFER)
    cr0 = vmcb.read(SF.CR0)
    cr4 = vmcb.read(SF.CR4)

    if not efer & Efer.SVME:
        bad("efer", "EFER.SVME must be set")
    if efer & Efer.RESERVED:
        bad("efer", "reserved bits set")
    if cr0 & Cr0.CD == 0 and cr0 & Cr0.NW:
        bad("cr0", "CR0.CD=0 with CR0.NW=1")
    if cr0 >> 32:
        bad("cr0", "bits 63:32 must be zero")
    if cr4 & Cr4.RESERVED:
        bad("cr4", "reserved bits set")

    # Long-mode consistency. NOTE the deliberate asymmetry that mirrors
    # the APM: LME=1 with PG=0 is *permitted* (mode-transition state),
    # but entering long mode (LME & PG) requires PAE and a sane CS.
    if efer & Efer.LME and cr0 & Cr0.PG:
        if not cr4 & Cr4.PAE:
            bad("cr4", "long mode with paging requires CR4.PAE")
        if not cr0 & Cr0.PE:
            bad("cr0", "long mode requires protected mode")
        cs_attrib = vmcb.read(SF.SPEC_BY_NAME["cs_attrib"].name)
        cs_long = bool(cs_attrib & (1 << 9))   # attrib bit 9 = L
        cs_db = bool(cs_attrib & (1 << 10))    # attrib bit 10 = D/B
        if cs_long and cs_db:
            bad("cs_attrib", "CS.L and CS.D may not both be set in long mode")

    dr7 = vmcb.read(SF.DR7)
    if dr7 >> 32:
        bad("dr7", "bits 63:32 must be zero")
    dr6 = vmcb.read(SF.DR6)
    if dr6 >> 32:
        bad("dr6", "bits 63:32 must be zero")

    if not vmcb.read(SF.INTERCEPT_MISC2) & SF.Misc2Intercept.VMRUN:
        bad("intercept_misc2", "VMRUN intercept must be set")

    asid = vmcb.read(SF.GUEST_ASID)
    if asid == 0:
        bad("guest_asid", "ASID 0 is reserved for the host")

    if vmcb.nested_paging:
        ncr3 = vmcb.read(SF.N_CR3)
        if ncr3 & 0xFFF or ncr3 >> 52:
            bad("n_cr3", f"invalid nested CR3 {ncr3:#x}")

    np = vmcb.read(SF.NP_CONTROL)
    if np & ~(SF.NpControl.NP_ENABLE | SF.NpControl.SEV_ENABLE
              | SF.NpControl.SEV_ES_ENABLE):
        bad("np_control", "reserved bits set")

    return v


def apply_vmrun_quirks(vmcb: Vmcb) -> list[str]:
    """Silent VMCB adjustments hardware applies at vmrun."""
    fixups: list[str] = []
    # EFER.LMA is computed, not stored: hardware sets it from
    # LME & PG and ignores the value software wrote.
    efer = vmcb.read(SF.EFER)
    lma = bool(efer & Efer.LME) and bool(vmcb.read(SF.CR0) & Cr0.PG)
    new_efer = efer | Efer.LMA if lma else efer & ~Efer.LMA
    if new_efer != efer:
        vmcb.write(SF.EFER, new_efer)
        fixups.append("efer.lma recomputed from LME & PG")
    # With VGIF enabled, vmrun sets the virtual GIF so the guest
    # starts with interrupts logically enabled.
    vintr = vmcb.read(SF.VINTR_CONTROL)
    if vintr & SF.VintrControl.V_GIF_ENABLE and not vintr & SF.VintrControl.V_GIF:
        vmcb.write(SF.VINTR_CONTROL, vintr | SF.VintrControl.V_GIF)
        fixups.append("v_gif set at vmrun when VGIF enabled")
    return fixups


#: Replay memo for quirk prediction (batched hot path); lazy so the
#: batch machinery is only imported when batch mode is in use.
_QUIRK_MEMO = None


def predict_vmrun_quirks(vmcb: Vmcb) -> tuple:
    """The net (field, value) writes :func:`apply_vmrun_quirks` would
    make to *vmcb*, without making them.

    Backed by a replay memo on the quirk inputs' first-read values; a
    miss runs the real quirk pass on a throwaway light image. The
    returned tuple is shared between hits — callers must not mutate it.
    """
    global _QUIRK_MEMO
    if _QUIRK_MEMO is None:
        from repro.batch import ReplayMemo

        _QUIRK_MEMO = ReplayMemo(apply_vmrun_quirks)
    _result, writes = _QUIRK_MEMO.predict(vmcb)
    return writes


class SvmCpu:
    """One logical processor with AMD-V."""

    def __init__(self) -> None:
        self.efer_svme = False
        self.hsave_pa: int | None = None
        self.gif = True
        self.memory: dict[int, Vmcb] = {}
        self.in_guest = False

    def set_svme(self, enabled: bool) -> None:
        """Model a wrmsr to EFER.SVME."""
        self.efer_svme = enabled

    def set_hsave(self, pa: int) -> None:
        """Model a wrmsr to VM_HSAVE_PA."""
        if not is_aligned(pa, PAGE_SIZE):
            raise ValueError(f"VM_HSAVE_PA {pa:#x} must be page-aligned")
        self.hsave_pa = pa

    def install_vmcb(self, addr: int, vmcb: Vmcb) -> None:
        """Place a VMCB image at a physical address."""
        self.memory[addr] = vmcb

    def stgi(self) -> None:
        """Set the global interrupt flag."""
        self.gif = True

    def clgi(self) -> None:
        """Clear the global interrupt flag."""
        self.gif = False

    def vmrun(self, vmcb_pa: int) -> VmrunOutcome:
        """Attempt to run the guest described by the VMCB at *vmcb_pa*."""
        if not self.efer_svme:
            return VmrunOutcome(False, SvmExitCode.INVALID,
                                [SvmViolation("efer", "host EFER.SVME clear")])
        if not is_aligned(vmcb_pa, PAGE_SIZE) or vmcb_pa == 0:
            return VmrunOutcome(False, SvmExitCode.INVALID,
                                [SvmViolation("vmcb_pa", "misaligned VMCB")])
        vmcb = self.memory.get(vmcb_pa)
        if vmcb is None:
            return VmrunOutcome(False, SvmExitCode.INVALID,
                                [SvmViolation("vmcb_pa", "no VMCB present")])
        # check_vmcb is a pure function of the VMCB, so its result is
        # memoized on the structure and revalidated against the dirty
        # journal (the key is global: no capability MSRs feed the check).
        violations = perf.memoized_check(
            vmcb, "svm_vmcb_check", lambda: check_vmcb(vmcb))
        if violations:
            vmcb.write(SF.EXIT_CODE, int(SvmExitCode.INVALID))
            return VmrunOutcome(False, SvmExitCode.INVALID, violations)

        fixups = self._apply_quirks(vmcb)
        self.in_guest = True
        return VmrunOutcome(True, fixups=fixups)

    def _apply_quirks(self, vmcb: Vmcb) -> list[str]:
        """Silent VMCB adjustments hardware applies at vmrun."""
        return apply_vmrun_quirks(vmcb)

    def vm_exit(self, vmcb_pa: int, code: SvmExitCode, *,
                info1: int = 0, info2: int = 0) -> None:
        """Record a #VMEXIT into the VMCB (hardware write-back)."""
        vmcb = self.memory.get(vmcb_pa)
        if vmcb is None:
            raise RuntimeError("VM exit with no VMCB")
        vmcb.write(SF.EXIT_CODE, int(code))
        vmcb.write(SF.EXIT_INFO_1, info1)
        vmcb.write(SF.EXIT_INFO_2, info2)
        self.in_guest = False
