"""Coverage-guided fuzzing main loop (the AFL++ role).

The engine owns the seed queue and the virgin map; the *executor
callback* (provided by the agent) runs one input against the target and
reports back a :class:`RunFeedback`. Setting ``coverage_guided=False``
turns the engine into the breadth-first black-box fuzzer evaluated in
Table 5: inputs are fresh mutations of the seeds and the feedback bitmap
is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.coverage.bitmap import CoverageBitmap, VirginMap
from repro.fuzzer.input import (
    CONFIG_REGION,
    HARNESS_REGION,
    INPUT_SIZE,
    MUTATION_REGION,
    VM_STATE_REGION,
    FuzzInput,
)
from repro.fuzzer.mutators import havoc, region_havoc, splice
from repro.fuzzer.queue import SeedQueue
from repro.fuzzer.rng import Rng

#: The partitions region-aware havoc keeps in motion.
_REGIONS = (VM_STATE_REGION, MUTATION_REGION, HARNESS_REGION, CONFIG_REGION)


@dataclass
class RunFeedback:
    """What one target execution reported back to the engine."""

    bitmap: CoverageBitmap
    crashed: bool = False
    anomaly: str | None = None


@dataclass
class EngineStats:
    """Campaign counters."""

    iterations: int = 0
    queue_adds: int = 0
    crashes: int = 0
    anomalies: int = 0
    last_find: int = 0
    #: Sync-partner cases executed via :meth:`FuzzEngine.import_case`
    #: (not counted in ``iterations`` — they are not mutation budget).
    imported: int = 0


ExecuteFn = Callable[[FuzzInput], RunFeedback]


@dataclass
class FuzzEngine:
    """The fuzzing loop."""

    execute: ExecuteFn
    rng: Rng
    coverage_guided: bool = True
    queue: SeedQueue = field(default_factory=SeedQueue)
    virgin: VirginMap = field(default_factory=VirginMap)
    stats: EngineStats = field(default_factory=EngineStats)
    crash_inputs: list[tuple[FuzzInput, str]] = field(default_factory=list)

    def add_seed(self, data: bytes) -> None:
        """Register one initial seed."""
        self.queue.add_seed(FuzzInput.normalize(data))

    def _next_input(self) -> FuzzInput:
        """Produce the next candidate via seed selection + mutation."""
        if not len(self.queue):
            return FuzzInput(self.rng.bytes(INPUT_SIZE))
        entry = self.queue.pick(self.rng)
        data = entry.data
        if len(self.queue) > 1 and self.rng.chance(0.1):
            partner = self.queue.pick_other(self.rng, entry)
            data = splice(data, partner.data, self.rng)
        data = havoc(data, self.rng)
        return FuzzInput(region_havoc(data, self.rng, _REGIONS))

    def step(self) -> RunFeedback:
        """One fuzzing iteration: mutate, execute, triage."""
        self.stats.iterations += 1
        candidate = self._next_input()
        feedback = self.execute(candidate)
        if feedback.crashed or feedback.anomaly:
            self.stats.crashes += feedback.crashed
            self.stats.anomalies += feedback.anomaly is not None
            self.crash_inputs.append((candidate, feedback.anomaly or "crash"))
        if self.coverage_guided:
            new_bits = self.virgin.has_new_bits(feedback.bitmap)
            if new_bits:
                self.queue.add_finding(candidate.data, self.stats.iterations,
                                       new_bits)
                self.stats.queue_adds += 1
                self.stats.last_find = self.stats.iterations
        else:
            # Black-box mode still merges the map so external observers
            # can measure coverage, but scheduling ignores it.
            self.virgin.has_new_bits(feedback.bitmap)
        return feedback

    def run(self, iterations: int) -> EngineStats:
        """Run *iterations* fuzzing steps."""
        for _ in range(iterations):
            self.step()
        return self.stats

    def import_case(self, data: bytes) -> int:
        """Execute a sync partner's queue entry and keep it if novel.

        This is AFL's ``sync_fuzzers`` behaviour: the case runs against
        the local target and joins the queue only when it lights up new
        virgin-map bits here. Imported executions do not count against
        the mutation-iteration budget; they are tracked separately in
        ``stats.imported``. Returns the tri-state new-bits value.
        """
        candidate = FuzzInput(FuzzInput.normalize(data))
        feedback = self.execute(candidate)
        self.stats.imported += 1
        if feedback.crashed or feedback.anomaly:
            self.stats.crashes += feedback.crashed
            self.stats.anomalies += feedback.anomaly is not None
            self.crash_inputs.append((candidate, feedback.anomaly or "crash"))
        new_bits = self.virgin.has_new_bits(feedback.bitmap)
        if new_bits and self.coverage_guided:
            self.queue.add_finding(candidate.data, self.stats.iterations,
                                   new_bits, imported=True)
        return new_bits

    # --- corpus persistence (AFL queue-directory style) -----------------

    def save_corpus(self, directory, *, exclude_imported: bool = False) -> int:
        """Write every queue entry to *directory* as ``id:NNNNNN`` files.

        Returns the number of entries written. The format matches AFL's
        queue directory closely enough to eyeball with the same habits.
        With ``exclude_imported=True`` only locally discovered entries
        are exported — what a sync partner wants to read, since entries
        it handed us would only ping-pong back. The queue is append-only,
        so indices are stable across repeated incremental saves.
        """
        from pathlib import Path

        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        entries = [e for e in self.queue.entries
                   if not (exclude_imported and e.imported)]
        for index, entry in enumerate(entries):
            suffix = f",found:{entry.found_at}" if entry.found_at else ",seed"
            (path / f"id:{index:06d}{suffix}").write_bytes(entry.data)
        return len(entries)

    def load_corpus(self, directory) -> int:
        """Seed the queue from a directory written by :meth:`save_corpus`.

        Returns the number of inputs loaded. Files are loaded in sorted
        order so resumed campaigns are deterministic.
        """
        from pathlib import Path

        count = 0
        for file in sorted(Path(directory).iterdir()):
            if file.is_file():
                self.add_seed(file.read_bytes())
                count += 1
        return count
