"""The agent program (paper §4.1/§4.5) — the campaign's central coordinator.

For each test case the agent: builds the vCPU configuration and the
configured L0 hypervisor (through the adapter), embeds the fuzzing input
into a fresh executor, runs the executor under the coverage tracer,
harvests kcov lines into the AFL bitmap and the cumulative line set,
scans for anomalies, and saves crash reports. Host crashes are absorbed
by the watchdog, which restarts the hypervisor and keeps fuzzing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, perf
from repro.arch.cpuid import Vendor
from repro.cpu.entry_checks import warm_batch_checks
from repro.arch.exceptions import HostCrash
from repro.core.adapters import adapter_for
from repro.core.detectors import Anomaly, AnomalyDetector, Watchdog
from repro.core.executor import ComponentToggles, ExecutorResult, UefiExecutor
from repro.core.reports import CrashReport, ReportStore
from repro.core.state_generator import state_generator_for
from repro.core.vcpu_config import VcpuConfigurator
from repro.coverage.bitmap import CoverageBitmap
from repro.coverage.kcov import KcovTracer
from repro.fuzzer.engine import RunFeedback
from repro.fuzzer.input import FuzzInput
from repro.hypervisors.base import VmCrash
from repro.vmx.msr_caps import default_capabilities
from repro.vmx.vmcs import Vmcs


@dataclass
class AgentConfig:
    """Static configuration of one fuzzing campaign."""

    hypervisor: str = "kvm"
    vendor: Vendor = Vendor.INTEL
    toggles: ComponentToggles = field(default_factory=ComponentToggles)
    patched: frozenset[str] = frozenset()
    runtime_iterations: int = 24
    #: §6.3 extension: asynchronous-event injection (off by default).
    async_events: bool = False
    reports_dir: Path | None = None
    #: Reuse the built L0 hypervisor across cases with the same vCPU
    #: configuration (reset, not rebuilt, between cases; discarded when
    #: the watchdog handles a host crash). Off by default: warm-state
    #: reuse changes per-case coverage feedback, so it trades the
    #: bit-for-bit default trajectory for throughput.
    reuse_hypervisor: bool = False


@dataclass
class CaseOutcome:
    """One test case's full outcome (RunFeedback plus agent-side data)."""

    feedback: RunFeedback
    anomalies: list[Anomaly]
    executor_result: ExecutorResult | None
    command_line: str


class Agent:
    """Coordinates fuzzer <-> fuzz-harness VM <-> L0 hypervisor."""

    def __init__(self, config: AgentConfig) -> None:
        self.config = config
        self.adapter = adapter_for(config.hypervisor, patched=config.patched)
        self.configurator = VcpuConfigurator(
            config.vendor, enabled=config.toggles.use_configurator)
        # The executor's validator reads the vCPU's own IA32_VMX_*
        # capability MSRs at runtime (§3.4), so the generator is built
        # per capability set; its oracle learning persists per set.
        self._generators: dict = {}
        self.state_generator = self._generator_for(
            VcpuConfigurator(config.vendor, enabled=False).generate(
                FuzzInput(bytes(2048))))
        hv_class = type(self.adapter.build(
            self.configurator.generate(FuzzInput(bytes(2048)))))
        self.tracer = KcovTracer(hv_class.nested_modules(config.vendor))
        self.detector = AnomalyDetector()
        self.watchdog = Watchdog()
        self.reports = ReportStore(config.reports_dir)
        self.cumulative_lines: set = set()
        self.cases_run = 0
        #: Hot-path scratch state: one bitmap reused (reset, not
        #: reallocated) across cases, plus per-configuration caches for
        #: the adapter command line and, when enabled, the built
        #: hypervisor itself.
        self._case_bitmap = CoverageBitmap()
        self._command_lines: dict = {}
        self._hv_cache: dict = {}

    #: Bound on cached per-configuration generators (LRU eviction). The
    #: configurator can produce thousands of distinct feature maps; each
    #: generator owns a validator + oracle, so the cache must be capped.
    GENERATOR_CACHE_LIMIT = 64

    @staticmethod
    def _config_key(vcpu_config) -> tuple:
        """Cache key for one vCPU configuration's feature map."""
        return tuple(sorted(vcpu_config.features.items()))

    def _generator_for(self, vcpu_config, key: tuple | None = None):
        """The state generator for one vCPU configuration (cached, LRU).

        Dicts preserve insertion order, so popping and re-inserting the
        entry keeps the least recently used configuration first.
        """
        if key is None:
            key = self._config_key(vcpu_config)
        generator = self._generators.pop(key, None)
        if generator is None:
            generator = self._build_generator(vcpu_config)
            while len(self._generators) >= self.GENERATOR_CACHE_LIMIT:
                self._generators.pop(next(iter(self._generators)))
        self._generators[key] = generator
        return generator

    def _build_generator(self, vcpu_config):
        """Construct the state generator for one vCPU configuration."""
        if self.config.vendor is Vendor.INTEL:
            if self.config.hypervisor == "kvm":
                from repro.hypervisors.kvm.module import KvmModuleParams

                caps = KvmModuleParams.from_config(vcpu_config).l1_vmx_capabilities()
            else:
                from repro.vmx.msr_caps import capabilities_for_features

                caps = capabilities_for_features(vcpu_config.features)
        else:
            caps = default_capabilities()
        return state_generator_for(
            self.config.vendor, caps,
            use_validator=self.config.toggles.use_validator)

    @property
    def coverage_fraction(self) -> float:
        """Cumulative nested-code line coverage so far."""
        return self.tracer.coverage_fraction(self.cumulative_lines)

    def covered_lines(self) -> set:
        """Snapshot of the cumulative covered-line set."""
        return set(self.cumulative_lines) & self.tracer.instrumented

    def absorb_lines(self, lines) -> None:
        """Merge line coverage recorded by a sync partner.

        Used when the protocol-v2 import filter skips executing a
        subsumed entry: the entry's shipped line set stands in for the
        lines a local execution would have produced.
        """
        self.cumulative_lines |= lines

    # ------------------------------------------------------------------

    def run_case(self, fuzz_input: FuzzInput) -> CaseOutcome:
        """Run one test case end to end.

        The returned feedback's bitmap is scratch state reused across
        cases: consume it before the next ``run_case`` call (the fuzz
        engine folds it into the virgin map immediately).
        """
        self.cases_run += 1
        faults.hook("agent.run_case")
        vcpu_config = self.configurator.generate(fuzz_input)
        key = self._config_key(vcpu_config)
        command_line = self._command_lines.get(key)
        if command_line is None:
            command_line = self.adapter.command_line(vcpu_config)
            if len(self._command_lines) >= self.GENERATOR_CACHE_LIMIT:
                self._command_lines.clear()
            self._command_lines[key] = command_line
        generator = self._generator_for(vcpu_config, key)
        vm_state = generator.generate(fuzz_input)

        executor = UefiExecutor(
            vendor=self.config.vendor,
            embedded_input=fuzz_input,
            state_generator=generator,
            toggles=self.config.toggles,
            runtime_iterations=self.config.runtime_iterations,
            async_events=self.config.async_events,
            pregenerated=vm_state)

        crash_anomalies: list[Anomaly] = []
        executor_result: ExecutorResult | None = None
        hv = None
        with self.tracer:
            try:
                if self.config.reuse_hypervisor:
                    hv = self._hv_cache.get(command_line)
                    if hv is None:
                        hv = self.adapter.build(vcpu_config)
                        if len(self._hv_cache) >= self.GENERATOR_CACHE_LIMIT:
                            self._hv_cache.clear()
                        self._hv_cache[command_line] = hv
                    else:
                        hv.reset()
                else:
                    hv = self.adapter.build(vcpu_config)
                executor_result = executor.run(hv)
            except HostCrash as crash:
                assert hv is not None
                crash_anomalies.append(
                    self.watchdog.handle_host_crash(hv, str(crash)))
                # A host crash means the machine rebooted: cached warm
                # hypervisors did not survive it.
                self._hv_cache.clear()
            except VmCrash as crash:
                assert hv is not None
                crash_anomalies.append(
                    self.watchdog.handle_vm_crash(hv, str(crash)))
        lines, edges = self.tracer.drain()
        self.cumulative_lines |= lines

        bitmap = self._case_bitmap
        bitmap.reset()
        bitmap.record_trace(edges)

        anomalies = list(crash_anomalies)
        if hv is not None:
            anomalies.extend(self.detector.scan(hv))
        for anomaly in anomalies:
            if self.detector.is_new(anomaly):
                self.reports.save(CrashReport(
                    iteration=self.cases_run,
                    anomaly=anomaly,
                    fuzz_input=fuzz_input,
                    command_line=command_line,
                    hypervisor=self.config.hypervisor))

        feedback = RunFeedback(
            bitmap=bitmap,
            crashed=bool(crash_anomalies),
            anomaly=str(anomalies[0]) if anomalies else None,
            lines=frozenset(lines))
        return CaseOutcome(feedback, anomalies, executor_result, command_line)

    def execute_for_engine(self, fuzz_input: FuzzInput) -> RunFeedback:
        """The callback handed to :class:`repro.fuzzer.FuzzEngine`."""
        return self.run_case(fuzz_input).feedback

    def warm_batch(self, inputs: list[FuzzInput]) -> None:
        """Columnar warm pass over one batch of candidates (DESIGN.md §12).

        Decodes each lane's raw VMCS image and seeds the per-checker
        signature caches columnwise before the engine executes the
        batch case by case. Only value-keyed caches are touched, so
        results cannot change; and only generators that already exist
        are peeked at — building (or even LRU-reordering) generators
        here would perturb the strictly sequential oracle learning.
        """
        if not perf.batch_enabled() or self.config.vendor is not Vendor.INTEL:
            return
        groups: dict = {}
        for fuzz_input in inputs:
            key = self._config_key(self.configurator.generate(fuzz_input))
            generator = self._generators.get(key)
            checker = getattr(getattr(generator, "oracle", None),
                              "_checker", None)
            if checker is None:
                continue
            try:
                state = Vmcs.deserialize(fuzz_input.vm_state_bytes(),
                                         generator.caps.vmcs_revision_id)
            except ValueError:
                continue
            groups.setdefault(key, (checker, []))[1].append(state)
        for checker, structs in groups.values():
            if len(structs) > 1:
                warm_batch_checks(structs, checker)
