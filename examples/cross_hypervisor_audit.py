#!/usr/bin/env python3
"""Cross-hypervisor audit: fuzz KVM, Xen, and VirtualBox back to back.

Demonstrates the paper's hypervisor-independence claim (RQ3): the same
VM generator — execution harness, state validator, vCPU configurator —
drives three different L0 hypervisors through their adapters, and the
findings per hypervisor mirror Table 6.
"""

from repro import NecoFuzz, Vendor

TARGETS = (
    ("kvm", Vendor.INTEL, 800),
    ("kvm", Vendor.AMD, 800),
    ("xen", Vendor.INTEL, 800),
    ("xen", Vendor.AMD, 1200),
    ("virtualbox", Vendor.INTEL, 1500),
)


def main() -> None:
    grand_total = 0
    for hypervisor, vendor, budget in TARGETS:
        campaign = NecoFuzz(hypervisor=hypervisor, vendor=vendor, seed=23)
        result = campaign.run(iterations=budget)
        findings = {}
        for report in result.reports:
            findings.setdefault(report.anomaly.method.value, []).append(report)
        grand_total += len(result.reports)

        print(f"\n{hypervisor}/{vendor.value}: "
              f"{result.coverage_percent:.1f}% nested-code coverage, "
              f"{budget} cases, "
              f"{result.watchdog_restarts} watchdog restart(s)")
        for method, reports in sorted(findings.items()):
            first = reports[0]
            print(f"  [{method}] x{len(reports)} — first at iteration "
                  f"{first.iteration}:")
            print(f"      {first.anomaly.message[:90]}")
        if not findings:
            print("  no findings in this budget")

    print(f"\ntotal findings across hypervisors: {grand_total}")
    print("compare with Table 6: KVM assertion (both vendors), "
          "Xen host hang + two AMD assertions, VirtualBox VM crash.")


if __name__ == "__main__":
    main()
