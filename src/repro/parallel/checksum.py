"""Shared CRC32 + length-prefix helpers for the binary protocols.

Corpus protocol v2 (:mod:`repro.parallel.wire`), the NCF1 federation
framing (:mod:`repro.parallel.transport.frames`), and the NCD1 coverage
deltas (:mod:`repro.coverage.delta`) all checksum their payloads the
same way; before this module each grew its own copy of the arithmetic.
One definition keeps the protocols bit-compatible with each other and
gives the property tests a single seam to pin.

Everything here is pure bytes-in/bytes-out: no I/O, no protocol
knowledge beyond "a CRC32 and a little-endian u32 length prefix".
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable

#: The little-endian u32 length prefix used by every chunk list on the
#: wire (fetch-reply record blobs, push bodies) and by sealed payloads.
LENGTH_PREFIX = struct.Struct("<I")

#: Trailing CRC32 of a sealed payload (same width as the prefix).
_CRC_TRAILER = struct.Struct("<I")


def checksum(payload: bytes) -> int:
    """The protocol-wide payload checksum (CRC32, zlib polynomial)."""
    return zlib.crc32(payload)


def verify(payload: bytes, crc: int) -> bool:
    """Does *payload* hash to *crc*?"""
    return zlib.crc32(payload) == crc


def seal(payload: bytes) -> bytes:
    """*payload* plus its trailing CRC32 (self-verifying blob)."""
    return payload + _CRC_TRAILER.pack(zlib.crc32(payload))


def unseal(raw: bytes) -> bytes | None:
    """Invert :func:`seal`; ``None`` for a short or corrupt blob."""
    if len(raw) < _CRC_TRAILER.size:
        return None
    payload = raw[:-_CRC_TRAILER.size]
    (crc,) = _CRC_TRAILER.unpack_from(raw, len(payload))
    if zlib.crc32(payload) != crc:
        return None
    return payload


def pack_chunks(chunks: Iterable[bytes]) -> bytes:
    """Concatenate chunks with 4-byte length prefixes."""
    pack = LENGTH_PREFIX.pack
    return b"".join(pack(len(chunk)) + chunk for chunk in chunks)


def unpack_chunks(raw: bytes) -> list[bytes]:
    """Invert :func:`pack_chunks`.

    Raises :class:`ValueError` on a torn or lying length prefix; wire
    layers re-raise it as their own corruption error.
    """
    chunks = []
    pos = 0
    size = LENGTH_PREFIX.size
    while pos < len(raw):
        if pos + size > len(raw):
            raise ValueError("torn chunk length prefix")
        (length,) = LENGTH_PREFIX.unpack_from(raw, pos)
        pos += size
        if pos + length > len(raw):
            raise ValueError("chunk length prefix exceeds the payload")
        chunks.append(raw[pos:pos + length])
        pos += length
    return chunks
