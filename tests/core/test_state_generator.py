"""Tests for raw -> rounded -> boundary-injected state generation (§4.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cpuid import Vendor
from repro.core.state_generator import (
    MAX_BITS_PER_FIELD,
    MAX_FIELDS_PER_ITERATION,
    VmcbStateGenerator,
    VmStateGenerator,
    state_generator_for,
)
from repro.fuzzer.input import INPUT_SIZE, FuzzInput
from repro.fuzzer.rng import Rng
from repro.vmx import fields as F
from repro.vmx.msr_caps import default_capabilities

raw_inputs = st.binary(min_size=INPUT_SIZE, max_size=INPUT_SIZE)


def make_input(seed=1):
    return FuzzInput.from_rng(Rng(seed))


class TestVmxGeneration:
    def test_generation_is_deterministic(self):
        gen_a = VmStateGenerator(default_capabilities())
        gen_b = VmStateGenerator(default_capabilities())
        fi = make_input()
        vmcs_a, _ = gen_a.generate(fi)
        vmcs_b, _ = gen_b.generate(fi)
        assert vmcs_a == vmcs_b

    def test_mutation_budget_respected(self):
        gen = VmStateGenerator(default_capabilities())
        for seed in range(20):
            _, meta = gen.generate(make_input(seed))
            assert 1 <= len(meta.mutated_fields) <= MAX_FIELDS_PER_ITERATION
            assert meta.flipped_bits <= (MAX_FIELDS_PER_ITERATION
                                         * MAX_BITS_PER_FIELD)

    def test_rounding_happens_before_injection(self):
        gen = VmStateGenerator(default_capabilities())
        _, meta = gen.generate(make_input())
        assert meta.rounding_corrections > 0
        assert meta.oracle_entered is not None

    def test_near_boundary_property(self):
        """Generated states differ from their fully-valid counterpart by
        at most the injection budget — the boundary-orientation claim."""
        gen = VmStateGenerator(default_capabilities())
        validator = gen.validator
        for seed in range(10):
            vmcs, meta = gen.generate(make_input(seed))
            revalidated = vmcs.copy()
            validator.round_to_valid(revalidated)
            gen.oracle.apply_learned(revalidated)
            # Distance back to the valid region is small and bounded.
            assert vmcs.hamming(revalidated) <= meta.flipped_bits + 8

    def test_without_validator_uses_golden_base(self):
        gen = VmStateGenerator(default_capabilities(), use_validator=False)
        vmcs, meta = gen.generate(make_input())
        assert meta.rounding_corrections == 0
        assert meta.oracle_entered is None
        # Golden base: the link pointer keeps its all-ones default.
        assert vmcs.read(F.VMCS_LINK_POINTER) in ((1 << 64) - 1,
                                                  vmcs.read(F.VMCS_LINK_POINTER))

    def test_priority_field_bias(self):
        import collections

        gen = VmStateGenerator(default_capabilities())
        counter = collections.Counter()
        for seed in range(150):
            _, meta = gen.generate(make_input(seed))
            counter.update(meta.mutated_fields)
        from repro.core.state_generator import _PRIORITY_FIELDS

        priority_names = {F.SPEC_BY_ENCODING[e].name for e in _PRIORITY_FIELDS}
        priority_hits = sum(c for name, c in counter.items()
                            if name in priority_names)
        assert priority_hits > sum(counter.values()) // 2

    @given(raw_inputs)
    @settings(max_examples=15, deadline=None)
    def test_any_input_produces_a_state(self, raw):
        gen = VmStateGenerator(default_capabilities())
        vmcs, meta = gen.generate(FuzzInput(raw))
        assert meta.flipped_bits >= 1
        assert vmcs.serialize()


class TestVmcbGeneration:
    def test_deterministic(self):
        fi = make_input()
        vmcb_a, _ = VmcbStateGenerator().generate(fi)
        vmcb_b, _ = VmcbStateGenerator().generate(fi)
        assert vmcb_a == vmcb_b

    def test_oracle_consulted(self):
        _, meta = VmcbStateGenerator().generate(make_input())
        assert meta.oracle_entered is not None

    def test_without_validator(self):
        vmcb, meta = VmcbStateGenerator(use_validator=False).generate(make_input())
        assert meta.rounding_corrections == 0

    @given(raw_inputs)
    @settings(max_examples=15, deadline=None)
    def test_any_input_produces_a_state(self, raw):
        vmcb, meta = VmcbStateGenerator().generate(FuzzInput(raw))
        assert meta.flipped_bits >= 1


class TestFactory:
    def test_vendor_dispatch(self):
        caps = default_capabilities()
        assert isinstance(state_generator_for(Vendor.INTEL, caps),
                          VmStateGenerator)
        assert isinstance(state_generator_for(Vendor.AMD, caps),
                          VmcbStateGenerator)
