"""Guest-physical memory model for the fuzz-harness VM.

The L1 guest owns a small physical address space in which it places its
VMXON region, VMCS12/VMCB12 images, bitmaps, and MSR-load/store areas.
L0 must be able to read those structures during emulation — and must
refuse to let VMCS12 point into L0-reserved memory (the isolation rule
from paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.msr import MsrEntry
from repro.svm.vmcb import Vmcb
from repro.vmx.vmcs import Vmcs

PAGE_SIZE = 4096

#: Guest-physical window assigned to the L1 VM.
GUEST_RAM_BASE = 0x0
GUEST_RAM_SIZE = 0x1000_0000  # 256 MiB

#: Host-physical region backing L0 itself; a VMCS12 pointer translated
#: into this window must be rejected by the nested code.
L0_RESERVED_BASE = 0xF000_0000
L0_RESERVED_SIZE = 0x1000_0000


@dataclass
class GuestMemory:
    """Sparse typed guest memory: structures live at page granularity."""

    def __init__(self) -> None:
        self.vmcs_pages: dict[int, Vmcs] = {}
        self.vmcb_pages: dict[int, Vmcb] = {}
        self.msr_areas: dict[int, list[MsrEntry]] = {}
        self.raw_pages: dict[int, bytes] = {}

    # --- address classification ----------------------------------------------

    @staticmethod
    def in_guest_ram(gpa: int) -> bool:
        """True when *gpa* falls in the guest RAM window."""
        return GUEST_RAM_BASE <= gpa < GUEST_RAM_BASE + GUEST_RAM_SIZE

    @staticmethod
    def in_l0_reserved(gpa: int) -> bool:
        """True when *gpa* falls in L0's reserved window."""
        return L0_RESERVED_BASE <= gpa < L0_RESERVED_BASE + L0_RESERVED_SIZE

    # --- typed accessors ----------------------------------------------------------

    def put_vmcs(self, gpa: int, vmcs: Vmcs) -> None:
        """Place a VMCS image at *gpa* (page-aligned)."""
        self.vmcs_pages[gpa & ~(PAGE_SIZE - 1)] = vmcs

    def get_vmcs(self, gpa: int) -> Vmcs | None:
        """The VMCS at *gpa*, or None."""
        return self.vmcs_pages.get(gpa & ~(PAGE_SIZE - 1))

    def ensure_vmcs(self, gpa: int, revision_id: int = 0x12) -> Vmcs:
        """Return the VMCS at *gpa*, materialising an empty one if needed."""
        key = gpa & ~(PAGE_SIZE - 1)
        if key not in self.vmcs_pages:
            self.vmcs_pages[key] = Vmcs(revision_id)
        return self.vmcs_pages[key]

    def put_vmcb(self, gpa: int, vmcb: Vmcb) -> None:
        """Place a VMCB image at *gpa* (page-aligned)."""
        self.vmcb_pages[gpa & ~(PAGE_SIZE - 1)] = vmcb

    def get_vmcb(self, gpa: int) -> Vmcb | None:
        """The VMCB at *gpa*, or None."""
        return self.vmcb_pages.get(gpa & ~(PAGE_SIZE - 1))

    def put_msr_area(self, gpa: int, entries: list[MsrEntry]) -> None:
        """Place a VM-entry/exit MSR area at *gpa* (16-byte aligned)."""
        self.msr_areas[gpa & ~0xF] = list(entries)

    #: Architectural bound on VM-entry/exit MSR-area length (SDM 26.4
    #: caps the recommended count at 512; we refuse to materialise more).
    MSR_AREA_MAX = 512

    def get_msr_area(self, gpa: int, count: int) -> list[MsrEntry]:
        """Read *count* MSR slots from *gpa* (missing slots read as zero).

        The count is clamped to :attr:`MSR_AREA_MAX` — a fuzzed count
        field must never translate into an unbounded allocation.
        """
        count = min(count, self.MSR_AREA_MAX)
        area = self.msr_areas.get(gpa & ~0xF, [])
        out = list(area[:count])
        while len(out) < count:
            out.append(MsrEntry(0, 0))
        return out
