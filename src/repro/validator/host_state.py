"""``VMenterLoadCheckHostState()`` analogue.

Rounds the host-state area: control registers (CR0, CR3, CR4), segment
selectors and bases, GDT/IDT bases, and the SYSENTER/EFER/PAT MSR images.

KNOWN MODELLING GAP (deliberate, paper §3.4): Bochs's host-state checks
in our extraction miss the "host TR selector must not be null" rule —
one of the subtle selector conditions the paper's authors found to be
buggy in Bochs (they fixed two segment-register check bugs upstream).
The physical CPU enforces it, giving the oracle loop a second genuine
divergence to learn.
"""

from __future__ import annotations

from repro.arch.bits import sign_extend
from repro.arch.registers import Cr4, Efer
from repro.validator.base import Correction, Rounder
from repro.vmx import fields as F
from repro.vmx.controls import ExitControls
from repro.vmx.msr_caps import VmxCapabilities
from repro.vmx.vmcs import Vmcs

_PHYS_MASK = (1 << 46) - 1

#: PAT memory-type bytes considered valid; invalid bytes round to WB (6).
_VALID_PAT_TYPES = frozenset({0, 1, 4, 5, 6, 7})


def round_pat(value: int) -> int:
    """Round each PAT byte to a valid memory type."""
    out = 0
    for i in range(8):
        byte = (value >> (8 * i)) & 0xFF
        if byte not in _VALID_PAT_TYPES:
            byte = 6
        out |= byte << (8 * i)
    return out


def canonicalize(address: int) -> int:
    """Round an address to canonical form by sign-extending bit 47."""
    return sign_extend(address, 48) & ((1 << 64) - 1)


def vmenter_load_check_host_state(vmcs: Vmcs, caps: VmxCapabilities) -> list[Correction]:
    """Round host-state fields toward validity; return the corrections."""
    r = Rounder(vmcs)

    r.force(F.HOST_CR0, (r.read(F.HOST_CR0) | caps.cr0_fixed0) & caps.cr0_fixed1,
            "host CR0 fixed bits")
    cr4 = (r.read(F.HOST_CR4) | caps.cr4_fixed0) & caps.cr4_fixed1
    cr4 |= Cr4.PAE  # 64-bit host requires PAE
    r.force(F.HOST_CR4, cr4, "host CR4 fixed bits + PAE for 64-bit host")
    r.force(F.HOST_CR3, r.read(F.HOST_CR3) & _PHYS_MASK, "host CR3 width")

    # Selectors: clear TI/RPL; give CS a usable default when null.
    for name, field in F.HOST_SELECTOR_FIELDS.items():
        r.force(field, r.read(field) & ~0x7, f"host {name} selector TI/RPL clear")
    if not r.read(F.HOST_CS_SELECTOR):
        r.force(F.HOST_CS_SELECTOR, 0x10, "host CS selector must not be null")
    # NOTE: the corresponding TR null check is the documented gap — no
    # rounding of HOST_TR_SELECTOR here.

    for field, rule in ((F.HOST_FS_BASE, "host FS base canonical"),
                        (F.HOST_GS_BASE, "host GS base canonical"),
                        (F.HOST_TR_BASE, "host TR base canonical"),
                        (F.HOST_GDTR_BASE, "host GDTR base canonical"),
                        (F.HOST_IDTR_BASE, "host IDTR base canonical"),
                        (F.HOST_IA32_SYSENTER_ESP, "host SYSENTER_ESP canonical"),
                        (F.HOST_IA32_SYSENTER_EIP, "host SYSENTER_EIP canonical"),
                        (F.HOST_RIP, "host RIP canonical")):
        r.force(field, canonicalize(r.read(field)), rule)

    exit_ = r.read(F.VM_EXIT_CONTROLS)
    if exit_ & ExitControls.LOAD_EFER:
        efer = r.read(F.HOST_IA32_EFER) & ~Efer.RESERVED
        efer |= Efer.LME | Efer.LMA  # 64-bit host
        r.force(F.HOST_IA32_EFER, efer, "host EFER LMA/LME for 64-bit host")
    else:
        r.force(F.HOST_IA32_EFER, 0, "host EFER ignored without load-EFER")
    if exit_ & ExitControls.LOAD_PAT:
        r.force(F.HOST_IA32_PAT, round_pat(r.read(F.HOST_IA32_PAT)),
                "host PAT memory types")
    else:
        r.force(F.HOST_IA32_PAT, 0, "host PAT ignored without load-PAT")
    if exit_ & ExitControls.LOAD_PERF_GLOBAL_CTRL:
        r.force(F.HOST_IA32_PERF_GLOBAL_CTRL,
                r.read(F.HOST_IA32_PERF_GLOBAL_CTRL) & 0x7_0000_0003,
                "host PERF_GLOBAL_CTRL reserved bits zero")
    else:
        r.force(F.HOST_IA32_PERF_GLOBAL_CTRL, 0,
                "host PERF_GLOBAL_CTRL ignored without its load control")
    if exit_ & ExitControls.LOAD_PKRS:
        r.force(F.HOST_IA32_PKRS, r.read(F.HOST_IA32_PKRS) & 0xFFFFFFFF,
                "host PKRS bits 63:32 zero")
    else:
        r.force(F.HOST_IA32_PKRS, 0, "host PKRS ignored without its load control")
    if exit_ & ExitControls.LOAD_CET_STATE:
        r.force(F.HOST_IA32_S_CET, canonicalize(r.read(F.HOST_IA32_S_CET) & ~0x3C),
                "host S_CET reserved bits zero")
    else:
        r.force(F.HOST_IA32_S_CET, 0, "host CET ignored without its load control")

    return r.corrections
