"""Deterministic randomness for reproducible campaigns.

Every stochastic decision in the framework flows through an :class:`Rng`
seeded from the campaign seed, so a campaign is a pure function of
``(seed, budget, configuration)``.
"""

from __future__ import annotations

import random


class Rng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def u8(self) -> int:
        """Consume one byte."""
        return self._random.randrange(256)

    def u16(self) -> int:
        """Consume two bytes, little-endian."""
        return self._random.randrange(1 << 16)

    def u32(self) -> int:
        """Consume four bytes, little-endian."""
        return self._random.randrange(1 << 32)

    def u64(self) -> int:
        """Consume eight bytes, little-endian."""
        return self._random.randrange(1 << 64)

    def below(self, bound: int) -> int:
        """Uniform integer in [0, bound). bound must be positive."""
        return self._random.randrange(bound)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def choice(self, seq):
        """Pick one element uniformly."""
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        """Shuffle *seq* in place."""
        self._random.shuffle(seq)

    def bytes(self, n: int) -> bytes:
        """n random bytes."""
        return self._random.randbytes(n)

    def beta(self, alpha: float, beta: float) -> float:
        """One Beta(alpha, beta) variate (Thompson-sampling posteriors)."""
        return self._random.betavariate(alpha, beta)

    def fork(self, salt: int) -> "Rng":
        """Derive an independent child stream (for per-run determinism)."""
        return Rng((self.seed * 1_000_003 + salt) & 0xFFFFFFFFFFFFFFFF)

    # --- checkpointing -----------------------------------------------------

    def getstate(self):
        """The full stream position (checkpoint payload)."""
        return self._random.getstate()

    def setstate(self, state) -> None:
        """Restore a :meth:`getstate` position, resuming the exact
        stream — a resumed campaign must consume the same randomness an
        uninterrupted one would."""
        self._random.setstate(state)
