"""Chaos suite, work-stealing schedule: injected deaths against the
lease board.

The accounting contract pinned here (DESIGN.md §13): no matter which
workers die, every carved lease lands in the completion ledger exactly
once, completed sizes sum to the budget, and a retired worker's lease
is re-issued — same id, same size — to a survivor. With restarts in
budget the run is additionally bit-identical to a clean one, because
the killed worker replays its lease from the pre-lease snapshot.
"""

import random

import pytest

from repro import Vendor, faults
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import (
    CampaignAborted,
    ParallelCampaign,
    campaign_fingerprint,
)

SEED = 11
BUDGET = 60
SYNC_EVERY = 20


def _campaign(**overrides):
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=3, schedule="stealing", lease_size=10,
                  sync_every=SYNC_EVERY, mode="inline")
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


def _ledger_is_sound(result, budget=BUDGET):
    assert result.engine_stats.iterations == budget
    assert sum(record.size for record in result.lease_log) == budget
    ids = [record.id for record in result.lease_log]
    assert len(ids) == len(set(ids)), "a lease completed twice"


class TestKillWithRestartBudget:
    def test_killed_worker_replays_lease_bit_for_bit(self):
        clean = _campaign().run(BUDGET)
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=7)])
        with faults.injected(plan):
            faulted = _campaign().run(BUDGET)
        assert plan.exhausted
        _ledger_is_sound(faulted)
        assert faulted.reclaims == 0
        assert campaign_fingerprint(faulted) == campaign_fingerprint(clean)

    def test_accounting_survives_randomised_kills(self):
        # Property sweep: a handful of seeded kill schedules, each
        # scattering deaths across workers and case indices. Restarts
        # stay in budget, so the ledger must balance every time.
        rng = random.Random(99)
        for _ in range(5):
            plan = FaultPlan([
                FaultSpec("kill_worker", worker=rng.randrange(3),
                          at_case=rng.randrange(1, 20))
                for _ in range(rng.randrange(1, 4))])
            with faults.injected(plan):
                result = _campaign(max_restarts=10).run(BUDGET)
            _ledger_is_sound(result)


class TestRetireAndReclaim:
    def test_reclaimed_lease_is_executed_exactly_once(self):
        # max_restarts=0: the first death retires worker 1 outright.
        # Its in-flight lease must come back with the same identity,
        # flagged as re-issued, and the survivors must drain the board.
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=7)])
        campaign = _campaign(max_restarts=0)
        with faults.injected(plan):
            result = campaign.run(BUDGET)
        assert plan.exhausted
        _ledger_is_sound(result)
        assert result.reclaims == 1
        reissued = [r for r in result.lease_log if r.reissued]
        assert len(reissued) == 1
        assert reissued[0].worker != 1
        assert any(e.action == "circuit-open" and e.worker == 1
                   for e in campaign.events)
        # The retired worker keeps its pre-lease progress; partners
        # absorb the rest of the budget.
        assert sum(r.engine_stats.iterations
                   for r in result.per_worker) == BUDGET

    def test_all_workers_retired_aborts(self):
        plan = FaultPlan([
            FaultSpec("kill_worker", worker=0, at_case=2),
            FaultSpec("kill_worker", worker=1, at_case=2),
            FaultSpec("kill_worker", worker=2, at_case=2)])
        campaign = _campaign(max_restarts=0)
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                campaign.run(BUDGET)
        circuit = [e for e in campaign.events if e.action == "circuit-open"]
        assert len(circuit) == 3


class TestProcessKillReclaim:
    def test_supervisor_reclaims_a_dead_workers_lease(self, tmp_path):
        # Forked worker 1 dies mid-lease; the supervisor must reclaim
        # its lease for the replacement (or a partner) so the board
        # still drains to exactly the budget.
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=7)])
        result = ParallelCampaign(
            hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED, workers=2,
            schedule="stealing", lease_size=25, sync_every=50,
            mode="process", sync_dir=tmp_path,
            fault_plan=plan).run(100, sample_every=25)
        _ledger_is_sound(result, budget=100)
        assert result.reclaims >= 1
