"""VMX control field bit definitions (SDM Vol. 3, Chapter 24).

Each control field has *allowed-0* and *allowed-1* settings advertised by
the IA32_VMX_* capability MSRs: bits that must be 1 (reserved-1) and bits
that may be 1. The hypervisor must consult these before writing control
fields — incorrect reserved bits are the canonical "obvious error" that
the paper's validator rounds away.
"""

from __future__ import annotations

from repro.arch.bits import bit


class PinBased:
    """Pin-based VM-execution controls."""

    EXT_INTR_EXITING = bit(0)
    NMI_EXITING = bit(3)
    VIRTUAL_NMIS = bit(5)
    PREEMPTION_TIMER = bit(6)
    POSTED_INTERRUPTS = bit(7)

    #: Default-1 class reserved bits (must be 1 without TRUE_* MSRs).
    DEFAULT1 = bit(1) | bit(2) | bit(4)
    KNOWN = (EXT_INTR_EXITING | NMI_EXITING | VIRTUAL_NMIS | PREEMPTION_TIMER
             | POSTED_INTERRUPTS | DEFAULT1)


class ProcBased:
    """Primary processor-based VM-execution controls."""

    INTR_WINDOW_EXITING = bit(2)
    USE_TSC_OFFSETTING = bit(3)
    HLT_EXITING = bit(7)
    INVLPG_EXITING = bit(9)
    MWAIT_EXITING = bit(10)
    RDPMC_EXITING = bit(11)
    RDTSC_EXITING = bit(12)
    CR3_LOAD_EXITING = bit(15)
    CR3_STORE_EXITING = bit(16)
    CR8_LOAD_EXITING = bit(19)
    CR8_STORE_EXITING = bit(20)
    USE_TPR_SHADOW = bit(21)
    NMI_WINDOW_EXITING = bit(22)
    MOV_DR_EXITING = bit(23)
    UNCOND_IO_EXITING = bit(24)
    USE_IO_BITMAPS = bit(25)
    MONITOR_TRAP_FLAG = bit(27)
    USE_MSR_BITMAPS = bit(28)
    MONITOR_EXITING = bit(29)
    PAUSE_EXITING = bit(30)
    ACTIVATE_SECONDARY_CONTROLS = bit(31)

    DEFAULT1 = bit(1) | bit(4) | bit(5) | bit(6) | bit(8) | bit(13) | bit(14) | bit(26)
    KNOWN = (INTR_WINDOW_EXITING | USE_TSC_OFFSETTING | HLT_EXITING
             | INVLPG_EXITING | MWAIT_EXITING | RDPMC_EXITING | RDTSC_EXITING
             | CR3_LOAD_EXITING | CR3_STORE_EXITING | CR8_LOAD_EXITING
             | CR8_STORE_EXITING | USE_TPR_SHADOW | NMI_WINDOW_EXITING
             | MOV_DR_EXITING | UNCOND_IO_EXITING | USE_IO_BITMAPS
             | MONITOR_TRAP_FLAG | USE_MSR_BITMAPS | MONITOR_EXITING
             | PAUSE_EXITING | ACTIVATE_SECONDARY_CONTROLS | DEFAULT1)


class Secondary:
    """Secondary processor-based VM-execution controls."""

    VIRTUALIZE_APIC_ACCESSES = bit(0)
    ENABLE_EPT = bit(1)
    DESC_TABLE_EXITING = bit(2)
    ENABLE_RDTSCP = bit(3)
    VIRTUALIZE_X2APIC = bit(4)
    ENABLE_VPID = bit(5)
    WBINVD_EXITING = bit(6)
    UNRESTRICTED_GUEST = bit(7)
    APIC_REGISTER_VIRT = bit(8)
    VIRTUAL_INTR_DELIVERY = bit(9)
    PAUSE_LOOP_EXITING = bit(10)
    RDRAND_EXITING = bit(11)
    ENABLE_INVPCID = bit(12)
    ENABLE_VMFUNC = bit(13)
    SHADOW_VMCS = bit(14)
    ENCLS_EXITING = bit(15)
    RDSEED_EXITING = bit(16)
    ENABLE_PML = bit(17)
    EPT_VIOLATION_VE = bit(18)
    CONCEAL_VMX_FROM_PT = bit(19)
    ENABLE_XSAVES = bit(20)
    MODE_BASED_EPT_EXEC = bit(22)
    SUB_PAGE_PERMISSIONS = bit(23)
    PT_USE_GPA = bit(24)
    USE_TSC_SCALING = bit(25)
    ENABLE_USER_WAIT_PAUSE = bit(26)
    ENABLE_ENCLV_EXITING = bit(28)

    DEFAULT1 = 0
    KNOWN = (VIRTUALIZE_APIC_ACCESSES | ENABLE_EPT | DESC_TABLE_EXITING
             | ENABLE_RDTSCP | VIRTUALIZE_X2APIC | ENABLE_VPID
             | WBINVD_EXITING | UNRESTRICTED_GUEST | APIC_REGISTER_VIRT
             | VIRTUAL_INTR_DELIVERY | PAUSE_LOOP_EXITING | RDRAND_EXITING
             | ENABLE_INVPCID | ENABLE_VMFUNC | SHADOW_VMCS | ENCLS_EXITING
             | RDSEED_EXITING | ENABLE_PML | EPT_VIOLATION_VE
             | CONCEAL_VMX_FROM_PT | ENABLE_XSAVES | MODE_BASED_EPT_EXEC
             | SUB_PAGE_PERMISSIONS | PT_USE_GPA | USE_TSC_SCALING
             | ENABLE_USER_WAIT_PAUSE | ENABLE_ENCLV_EXITING)


class EntryControls:
    """VM-entry controls."""

    LOAD_DEBUG_CONTROLS = bit(2)
    IA32E_MODE_GUEST = bit(9)
    ENTRY_TO_SMM = bit(10)
    DEACTIVATE_DUAL_MONITOR = bit(11)
    LOAD_PERF_GLOBAL_CTRL = bit(13)
    LOAD_PAT = bit(14)
    LOAD_EFER = bit(15)
    LOAD_BNDCFGS = bit(16)
    CONCEAL_VMX_FROM_PT = bit(17)
    LOAD_RTIT_CTL = bit(18)
    LOAD_CET_STATE = bit(20)
    LOAD_PKRS = bit(22)

    DEFAULT1 = bit(0) | bit(1) | bit(3) | bit(4) | bit(5) | bit(6) | bit(7) | bit(8)
    KNOWN = (LOAD_DEBUG_CONTROLS | IA32E_MODE_GUEST | ENTRY_TO_SMM
             | DEACTIVATE_DUAL_MONITOR | LOAD_PERF_GLOBAL_CTRL | LOAD_PAT
             | LOAD_EFER | LOAD_BNDCFGS | CONCEAL_VMX_FROM_PT | LOAD_RTIT_CTL
             | LOAD_CET_STATE | LOAD_PKRS | DEFAULT1)


class ExitControls:
    """VM-exit controls."""

    SAVE_DEBUG_CONTROLS = bit(2)
    HOST_ADDR_SPACE_SIZE = bit(9)  # 64-bit host
    LOAD_PERF_GLOBAL_CTRL = bit(12)
    ACK_INTR_ON_EXIT = bit(15)
    SAVE_PAT = bit(18)
    LOAD_PAT = bit(19)
    SAVE_EFER = bit(20)
    LOAD_EFER = bit(21)
    SAVE_PREEMPTION_TIMER = bit(22)
    CLEAR_BNDCFGS = bit(23)
    CONCEAL_VMX_FROM_PT = bit(24)
    CLEAR_RTIT_CTL = bit(25)
    LOAD_CET_STATE = bit(28)
    LOAD_PKRS = bit(29)

    DEFAULT1 = (bit(0) | bit(1) | bit(3) | bit(4) | bit(5) | bit(6) | bit(7)
                | bit(8) | bit(10) | bit(11) | bit(13) | bit(14) | bit(16) | bit(17))
    KNOWN = (SAVE_DEBUG_CONTROLS | HOST_ADDR_SPACE_SIZE | LOAD_PERF_GLOBAL_CTRL
             | ACK_INTR_ON_EXIT | SAVE_PAT | LOAD_PAT | SAVE_EFER | LOAD_EFER
             | SAVE_PREEMPTION_TIMER | CLEAR_BNDCFGS | CONCEAL_VMX_FROM_PT
             | CLEAR_RTIT_CTL | LOAD_CET_STATE | LOAD_PKRS | DEFAULT1)


class ActivityState:
    """Guest activity-state values (SDM 24.4.2).

    SHUTDOWN and WAIT_FOR_SIPI are the auxiliary-processor states whose
    blind propagation into VMCS02 is Xen bug #4 in the paper.
    """

    ACTIVE = 0
    HLT = 1
    SHUTDOWN = 2
    WAIT_FOR_SIPI = 3

    ALL = (ACTIVE, HLT, SHUTDOWN, WAIT_FOR_SIPI)


class Interruptibility:
    """Guest interruptibility-state bits (SDM 24.4.2)."""

    STI_BLOCKING = bit(0)
    MOV_SS_BLOCKING = bit(1)
    SMI_BLOCKING = bit(2)
    NMI_BLOCKING = bit(3)
    ENCLAVE_INTERRUPTION = bit(4)

    RESERVED = ~(STI_BLOCKING | MOV_SS_BLOCKING | SMI_BLOCKING | NMI_BLOCKING
                 | ENCLAVE_INTERRUPTION) & ((1 << 32) - 1)


class VmFunc:
    """VM-function controls."""

    EPTP_SWITCHING = bit(0)
    KNOWN = EPTP_SWITCHING
