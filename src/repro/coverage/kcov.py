"""Line-coverage collection for the simulated hypervisors (kcov analogue).

The paper measures coverage with KCOV on KVM and gcov on Xen, restricted
to the nested-virtualization source files (``nested.c`` etc.). We do the
same thing for the simulated hypervisors: a ``sys.settrace``-based tracer
restricted to the nested-virtualization *Python modules*, counting
executable source lines exactly as gcov counts instrumented lines.

Only code objects defined inside functions/classes count as instrumented
(module top level runs at import, before any fuzzing, and would dilute
the denominator the way unreachable boilerplate would in C).
"""

from __future__ import annotations

import sys
from types import CodeType, FrameType, ModuleType
from typing import Iterable

Line = tuple[str, int]


#: Code objects with CO_OPTIMIZED are real function bodies; module and
#: class bodies (which run at import time, before fuzzing) lack it.
_CO_OPTIMIZED = 0x0001


def executable_lines(module: ModuleType) -> set[Line]:
    """All instrumentable (file, line) pairs of *module*'s function bodies.

    Only function code objects count: module/class bodies execute at
    import time, so counting them would dilute the denominator with
    lines no fuzzer could ever (re)cover — the way gcov counts basic
    blocks, not struct definitions.
    """
    filename = module.__file__
    if filename is None:
        raise ValueError(f"module {module.__name__} has no source file")
    with open(filename, encoding="utf-8") as f:
        source = f.read()
    top = compile(source, filename, "exec")
    lines: set[Line] = set()

    def walk(code: CodeType) -> None:
        if code.co_flags & _CO_OPTIMIZED:
            lines.add((filename, code.co_firstlineno))
            for _, _, lineno in code.co_lines():
                if lineno is not None:
                    lines.add((filename, lineno))
        for const in code.co_consts:
            if isinstance(const, CodeType):
                walk(const)

    walk(top)
    return lines


class KcovTracer:
    """Trace executed lines in a fixed set of target modules.

    ``run_lines``/``run_edges`` accumulate for the current test case and
    are harvested by :meth:`drain`; the caller (the agent) merges them
    into campaign-cumulative sets. Edges are (prev_line, cur_line) pairs
    within target code, the raw material for the AFL bitmap.
    """

    def __init__(self, modules: Iterable[ModuleType]) -> None:
        self.modules = tuple(modules)
        self.instrumented: set[Line] = set()
        self._files: set[str] = set()
        for module in self.modules:
            self.instrumented |= executable_lines(module)
            if module.__file__:
                self._files.add(module.__file__)
        self.run_lines: set[Line] = set()
        self.run_edges: set[tuple[Line, Line]] = set()
        self._prev: Line | None = None
        self._active = False

    # --- trace plumbing ---------------------------------------------------

    def _local_trace(self, frame: FrameType, event: str, arg):
        if event == "line":
            cur = (frame.f_code.co_filename, frame.f_lineno)
            self.run_lines.add(cur)
            if self._prev is not None:
                self.run_edges.add((self._prev, cur))
            self._prev = cur
        return self._local_trace

    def _global_trace(self, frame: FrameType, event: str, arg):
        if event == "call" and frame.f_code.co_filename in self._files:
            cur = (frame.f_code.co_filename, frame.f_code.co_firstlineno)
            self.run_lines.add(cur)
            if self._prev is not None:
                self.run_edges.add((self._prev, cur))
            self._prev = cur
            return self._local_trace
        return None

    def start(self) -> None:
        """Begin tracing (nestable calls are not supported)."""
        if self._active:
            raise RuntimeError("tracer already active")
        self._active = True
        self._prev = None
        sys.settrace(self._global_trace)

    def stop(self) -> None:
        """Stop tracing."""
        sys.settrace(None)
        self._active = False

    def __enter__(self) -> "KcovTracer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def drain(self) -> tuple[set[Line], set[tuple[Line, Line]]]:
        """Harvest and reset the current run's lines and edges."""
        lines, edges = self.run_lines, self.run_edges
        self.run_lines, self.run_edges = set(), set()
        self._prev = None
        return lines, edges

    # --- reporting helpers ---------------------------------------------------

    def coverage_fraction(self, covered: set[Line]) -> float:
        """Covered fraction of the instrumented lines."""
        if not self.instrumented:
            return 0.0
        return len(covered & self.instrumented) / len(self.instrumented)
