"""Module-level API: modes, spans, shard scoping, lifecycle."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def scoped_telemetry(tmp_path):
    """Every test runs in its own campaign scope (no cross-test leaks)."""
    with telemetry.campaign_scope("metrics", tmp_path) as registry:
        yield registry


class TestModes:
    def test_default_scope_mode_is_metrics(self):
        assert telemetry.mode() == "metrics"

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError):
            telemetry.set_mode("loud")

    def test_off_mode_records_nothing(self, scoped_telemetry):
        telemetry.set_mode("off")
        telemetry.counter("c")
        telemetry.gauge("g", 1)
        telemetry.observe("s", 0.1)
        with telemetry.span("sp"):
            pass
        assert scoped_telemetry.shards == {}

    def test_campaign_scope_restores_previous_state(self, tmp_path):
        outer_registry = telemetry.registry()
        outer_mode = telemetry.mode()
        with telemetry.campaign_scope("off", tmp_path / "inner"):
            assert telemetry.mode() == "off"
            assert telemetry.registry() is not outer_registry
        assert telemetry.mode() == outer_mode
        assert telemetry.registry() is outer_registry


class TestSpans:
    def test_span_records_a_duration(self, scoped_telemetry):
        with telemetry.span("phase") as span:
            pass
        assert span.elapsed >= 0
        hist = scoped_telemetry.merged_histogram("phase")
        assert hist.count == 1
        assert hist.sum == span.elapsed

    def test_span_survives_an_exception(self, scoped_telemetry):
        # The regression the hand-rolled `stats += perf_counter() - t`
        # timers had: a raise between start and accumulate lost the time.
        with pytest.raises(RuntimeError):
            with telemetry.span("doomed"):
                raise RuntimeError("boom")
        assert scoped_telemetry.merged_histogram("doomed").count == 1

    def test_off_mode_span_is_the_noop_singleton(self):
        telemetry.set_mode("off")
        assert telemetry.span("a") is telemetry.span("b")


class TestShardScope:
    def test_metrics_attribute_to_the_current_shard(self, scoped_telemetry):
        telemetry.counter("cases")
        with telemetry.shard_scope(2):
            telemetry.counter("cases")
        assert scoped_telemetry.shards[None].counters["cases"] == 1
        assert scoped_telemetry.shards[2].counters["cases"] == 1

    def test_shard_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.shard_scope(5):
                raise RuntimeError
        assert telemetry.current_shard() is None


class TestWorkerLifecycle:
    def test_init_worker_installs_a_fresh_registry(self, tmp_path):
        telemetry.counter("parent")  # pre-fork metric
        telemetry.init_worker("metrics", tmp_path, shard=1)
        assert telemetry.registry().counter_total("parent") == 0
        telemetry.counter("child")
        # Labelled with the worker's shard without any scope plumbing.
        assert telemetry.registry().shards[1].counters["child"] == 1

    def test_full_mode_opens_the_worker_event_stream(self, tmp_path):
        telemetry.init_worker("full", tmp_path, shard=0)
        telemetry.event("hello", n=1)
        telemetry.flush()
        from repro.telemetry.events import read_events, worker_events_path

        events = read_events(worker_events_path(tmp_path, 0))
        assert [e["ev"] for e in events] == ["hello"]

    def test_metrics_mode_emits_no_events(self, tmp_path):
        telemetry.init_worker("metrics", tmp_path, shard=0)
        telemetry.event("hello")
        from repro.telemetry.events import worker_events_path

        assert not worker_events_path(tmp_path, 0).exists()

    def test_save_and_load_metrics_round_trip(self, tmp_path,
                                              scoped_telemetry):
        telemetry.counter("cases", 3)
        telemetry.observe("exec", 0.125)
        path = tmp_path / "metrics.json"
        telemetry.save_metrics(path)
        loaded = telemetry.load_metrics(path)
        assert loaded.snapshot() == scoped_telemetry.snapshot()

    def test_load_metrics_tolerates_garbage(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("{ not json")
        assert telemetry.load_metrics(path) is None
        assert telemetry.load_metrics(tmp_path / "absent.json") is None
