"""Asynchronous-event injection — the §6.3 future-work extension.

The paper's NecoFuzz "focuses on VM exits explicitly triggered by guest
instructions" and leaves interrupts, NMIs, and timer-based exits to
future work, because on real hardware they "require precise event
injection and temporal control, which complicate repeatability and
determinism". In a simulated substrate both objections disappear: the
schedule below is a pure function of the fuzzing input, so injected
events are exactly as repeatable as everything else.

The extension is **off by default** — the paper's evaluation numbers
assume it is absent (the corresponding reflect branches are part of the
documented uncovered residue). `benchmarks/test_ext_async_events.py`
measures what turning it on buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cpuid import Vendor
from repro.fuzzer.input import FuzzInput, InputCursor, RESERVED_REGION
from repro.hypervisors.base import GuestInstruction

#: Intel-side asynchronous event kinds (see repro.hypervisors.l2map).
INTEL_ASYNC_EVENTS = (
    "async_extint", "async_intr_window", "async_nmi_window",
    "async_preempt_timer", "async_mtf", "async_apic_access",
    "async_apic_write", "async_eoi", "async_tpr", "async_pml_full",
)

#: AMD-side asynchronous event kinds.
AMD_ASYNC_EVENTS = (
    "async_extint", "async_nmi", "async_vintr", "async_smi", "async_init",
)


@dataclass(frozen=True)
class ScheduledEvent:
    """One pending asynchronous event."""

    at_iteration: int
    mnemonic: str
    vector: int

    def instruction(self) -> GuestInstruction:
        """The synthetic L2 exit this event manifests as."""
        return GuestInstruction(self.mnemonic,
                                {"vector": self.vector, "value": self.vector},
                                level=2)


class AsyncEventSchedule:
    """A deterministic event schedule derived from the fuzzing input.

    Events are pinned to runtime-loop iteration indices, giving the
    "precise temporal control" the extension needs: replaying the same
    input reproduces the same interleaving.
    """

    def __init__(self, vendor: Vendor, fuzz_input: FuzzInput,
                 *, horizon: int = 32, max_events: int = 4) -> None:
        kinds = (INTEL_ASYNC_EVENTS if vendor is Vendor.INTEL
                 else AMD_ASYNC_EVENTS)
        cursor = InputCursor(fuzz_input.region(RESERVED_REGION), spread=True)
        count = cursor.below(max_events + 1)
        events = []
        for _ in range(count):
            events.append(ScheduledEvent(
                at_iteration=cursor.below(horizon),
                mnemonic=kinds[cursor.below(len(kinds))],
                vector=cursor.below(256)))
        self._by_iteration: dict[int, list[ScheduledEvent]] = {}
        for event in sorted(events, key=lambda e: e.at_iteration):
            self._by_iteration.setdefault(event.at_iteration, []).append(event)

    def due(self, iteration: int) -> list[ScheduledEvent]:
        """Events that fire before the given runtime-loop iteration."""
        return self._by_iteration.get(iteration, [])

    def __len__(self) -> int:
        return sum(len(events) for events in self._by_iteration.values())
