"""Tests for the AFL edge bitmap and virgin map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bitmap import (
    _CLASS_TABLE,
    _DENSE_TOUCHED,
    MAP_SIZE,
    CoverageBitmap,
    VirginMap,
    classify_count,
    edge_index,
    stable_line_id,
)


class TestClassification:
    def test_zero(self):
        assert classify_count(0) == 0

    def test_afl_buckets(self):
        assert classify_count(1) == 1
        assert classify_count(2) == 2
        assert classify_count(3) == 4
        assert classify_count(4) == 8
        assert classify_count(7) == 16
        assert classify_count(200) == 128

    @given(st.integers(min_value=1, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_set(self, count):
        cls = classify_count(count)
        assert cls and cls & (cls - 1) == 0  # power of two

    @given(st.integers(min_value=1, max_value=254))
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, count):
        assert classify_count(count + 1) >= classify_count(count)


class TestEdgeHash:
    def test_within_map(self):
        assert 0 <= edge_index(0xFFFF, 0xFFFF) < MAP_SIZE

    def test_direction_sensitive(self):
        assert edge_index(10, 20) != edge_index(20, 10)

    def test_stable_line_id_deterministic(self):
        assert stable_line_id("a.py", 5) == stable_line_id("a.py", 5)
        assert stable_line_id("a.py", 5) != stable_line_id("a.py", 6)


class TestBitmap:
    def test_record_and_count(self):
        bitmap = CoverageBitmap()
        bitmap.record_edge(1, 2)
        bitmap.record_edge(1, 2)
        assert bitmap.count_nonzero() == 1
        assert bitmap.counts[edge_index(1, 2)] == 2

    def test_saturates_at_255(self):
        bitmap = CoverageBitmap()
        for _ in range(300):
            bitmap.record_edge(1, 2)
        assert bitmap.counts[edge_index(1, 2)] == 255

    def test_record_trace(self):
        bitmap = CoverageBitmap()
        bitmap.record_trace([((("a.py"), 1), (("a.py"), 2))])
        assert bitmap.count_nonzero() == 1

    def test_reset(self):
        bitmap = CoverageBitmap()
        bitmap.record_edge(1, 2)
        bitmap.reset()
        assert bitmap.count_nonzero() == 0
        assert not bitmap.touched


class TestVirginMap:
    def test_new_edge_returns_two(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        assert virgin.has_new_bits(run) == 2

    def test_same_edge_same_count_returns_zero(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        virgin.has_new_bits(run)
        rerun = CoverageBitmap()
        rerun.record_edge(1, 2)
        assert virgin.has_new_bits(rerun) == 0

    def test_new_count_bucket_returns_one(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        virgin.has_new_bits(run)
        hotter = CoverageBitmap()
        for _ in range(10):
            hotter.record_edge(1, 2)
        assert virgin.has_new_bits(hotter) == 1

    def test_density_grows(self):
        virgin = VirginMap()
        assert virgin.density() == 0.0
        run = CoverageBitmap()
        for i in range(50):
            run.record_edge(i, i + 1)
        virgin.has_new_bits(run)
        assert virgin.density() > 0


class TestVectorizedPaths:
    """The C-level fast paths must agree with the scalar definitions."""

    @given(st.lists(st.tuples(st.integers(0, MAP_SIZE - 1),
                              st.integers(1, 255)),
                    min_size=0, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_classified_matches_per_byte_classify(self, cells):
        bitmap = CoverageBitmap()
        for idx, count in cells:
            bitmap.counts[idx] = count
            bitmap.touched.add(idx)
        classified = bitmap.classified()
        assert classified == bytes(classify_count(c) for c in bitmap.counts)
        assert _CLASS_TABLE == bytes(classify_count(c) for c in range(256))

    def test_sparse_classified_is_sorted_and_classified(self):
        bitmap = CoverageBitmap()
        bitmap.record_edge(900, 901)
        for _ in range(3):
            bitmap.record_edge(1, 2)
        sparse = bitmap.sparse_classified()
        assert sparse == tuple(sorted(sparse))
        assert dict(sparse)[edge_index(1, 2)] == classify_count(3)
        assert dict(sparse)[edge_index(900, 901)] == classify_count(1)

    def test_count_nonzero_matches_touched_cells(self):
        bitmap = CoverageBitmap()
        for i in range(200):
            bitmap.record_edge(i * 3, i * 3 + 1)
        manual = sum(1 for c in bitmap.counts if c)
        assert bitmap.count_nonzero() == manual

    def test_dense_fast_path_agrees_with_loop(self):
        # Wide enough to take the big-int pre-check on every call.
        run = CoverageBitmap()
        for i in range(_DENSE_TOUCHED + 50):
            run.record_edge(i * 7, i * 7 + 1)
        assert len(run.touched) >= _DENSE_TOUCHED
        virgin = VirginMap()
        assert virgin.has_new_bits(run) == 2
        assert bytes(virgin.bits) == run.classified()
        # Identical rerun: the pre-check alone proves "nothing new".
        assert virgin.has_new_bits(run) == 0
        # One extra cell must defeat the early exit, not be swallowed.
        run.record_edge(0xBEEF, 0xBEEF)
        assert virgin.has_new_bits(run) in (1, 2)
        assert virgin.has_new_bits(run) == 0


class TestSubsumption:
    def test_known_coverage_is_subsumed(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        virgin.has_new_bits(run)
        assert virgin.subsumes(run.sparse_classified())

    def test_new_cell_is_not_subsumed(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        assert not virgin.subsumes(run.sparse_classified())

    def test_new_bucket_on_known_cell_is_not_subsumed(self):
        virgin = VirginMap()
        once = CoverageBitmap()
        once.record_edge(1, 2)
        virgin.has_new_bits(once)
        hotter = CoverageBitmap()
        for _ in range(10):
            hotter.record_edge(1, 2)
        assert not virgin.subsumes(hotter.sparse_classified())

    def test_empty_coverage_is_subsumed(self):
        assert VirginMap().subsumes(())


class TestVirginMerge:
    def _populated(self, *edges):
        virgin = VirginMap()
        run = CoverageBitmap()
        for prev, cur in edges:
            run.record_edge(prev, cur)
        virgin.has_new_bits(run)
        return virgin

    def test_merge_from_brings_bits_over(self):
        a = self._populated((1, 2))
        b = self._populated((3, 4))
        assert a.merge_from(b)
        assert a.subsumes(((edge_index(3, 4), 1),))

    def test_merge_from_skips_empty_other(self):
        a = self._populated((1, 2))
        generation = a.generation
        assert not a.merge_from(VirginMap())
        assert a.generation == generation

    def test_merge_from_reports_no_change_for_subset(self):
        a = self._populated((1, 2), (3, 4))
        subset = self._populated((1, 2))
        assert not a.merge_from(subset)

    def test_merge_bits_rejects_wrong_size(self):
        import pytest

        with pytest.raises(ValueError):
            VirginMap().merge_bits(b"\x00" * 10)

    def test_generation_tracks_every_mutation(self):
        virgin = VirginMap()
        assert virgin.generation == 0
        run = CoverageBitmap()
        run.record_edge(1, 2)
        virgin.has_new_bits(run)
        after_new = virgin.generation
        assert after_new > 0
        rerun = CoverageBitmap()
        rerun.record_edge(1, 2)
        virgin.has_new_bits(rerun)  # nothing new: generation untouched
        assert virgin.generation == after_new
        virgin.merge_from(self._populated((5, 6)))
        assert virgin.generation > after_new
        virgin.restore(virgin.snapshot())
        assert virgin.generation > after_new + 1
