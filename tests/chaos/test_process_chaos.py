"""Chaos suite, process mode: the supervisor against real worker
processes.

``kill_worker`` makes the forked worker ``os._exit`` with the reserved
chaos exit code mid-share; ``delay_case`` freezes it past the per-case
deadline so the heartbeat goes stale. Both must end the same way: the
supervisor restarts the shard from its last checkpoint (at most
``max_restarts`` times), the campaign completes its full budget, and no
shard's corpus is lost.
"""

import pytest

from repro import Vendor
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import FailureKind, ParallelCampaign

SEED = 11
BUDGET = 40
SYNC_EVERY = 10


def _campaign(sync_dir, **overrides):
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=2, sync_every=SYNC_EVERY, mode="process",
                  sync_dir=sync_dir)
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


class TestProcessKillRestart:
    def test_killed_worker_restarts_from_checkpoint(self, tmp_path):
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=15)])
        campaign = _campaign(tmp_path, fault_plan=plan)
        result = campaign.run(BUDGET)

        crashes = [e for e in result.events
                   if e.kind is FailureKind.WORKER_CRASH]
        assert len(crashes) == 1
        assert crashes[0].worker == 1
        assert crashes[0].action == "restart"
        # The replacement resumed from the round-boundary checkpoint
        # and finished the whole share: nothing lost, nothing redone.
        assert result.engine_stats.iterations == BUDGET
        assert len(result.corpus_digests) == result.workers
        assert all(result.corpus_digests)
        assert all(len(r.covered_lines) > 0 for r in result.per_worker)

    def test_restarts_stay_within_max_restarts(self, tmp_path):
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=5),
                          FaultSpec("kill_worker", worker=0, at_case=15)])
        campaign = _campaign(tmp_path, fault_plan=plan, max_restarts=3)
        result = campaign.run(BUDGET)
        restarts = [e for e in result.events if e.action == "restart"]
        assert 1 <= len(restarts) <= 3
        assert result.engine_stats.iterations == BUDGET


class TestProcessHang:
    @pytest.mark.slow
    def test_stale_heartbeat_gets_worker_killed_and_restarted(self, tmp_path):
        # The injected delay (far past the deadline) parks the worker
        # inside one case; the supervisor must notice the stale
        # heartbeat, kill the process, and restart the shard.
        plan = FaultPlan([FaultSpec("delay_case", worker=1, at_case=15,
                                    seconds=60.0)])
        campaign = _campaign(tmp_path, fault_plan=plan, case_timeout=1.5)
        result = campaign.run(BUDGET)

        hangs = [e for e in result.events if e.kind is FailureKind.HANG]
        assert len(hangs) == 1
        assert hangs[0].worker == 1
        assert hangs[0].action == "restart"
        assert result.engine_stats.iterations == BUDGET
