"""Unit and property tests for the work-stealing scheduler layer.

The accounting contract (DESIGN.md §13) pinned here, independent of any
campaign: every carved lease completes exactly once, completed sizes
always sum to the requested budget, reclaimed leases keep their
identity, and the adaptive-sync controller moves monotonically between
its base and its cap.
"""

import pickle
import random

import pytest

from repro.parallel.scheduler import (
    LEASE_MAX,
    LEASE_MIN,
    AdaptiveSync,
    FileLeaseBoard,
    LeaseBoard,
    LeaseRecord,
    PoolMismatch,
    WorkerPool,
)


class TestLeaseBoard:
    def test_fixed_lease_size_is_honoured_exactly(self):
        board = LeaseBoard(total=60, workers=3, lease_size=10)
        lease = board.claim(0)
        assert lease.size == 10

    def test_remainder_lease_is_short(self):
        board = LeaseBoard(total=25, workers=1, lease_size=10)
        sizes = []
        while (lease := board.claim(0)) is not None:
            sizes.append(lease.size)
            board.complete(lease.id, 0)
        assert sizes == [10, 10, 5]
        assert board.drained()

    def test_adaptive_size_clamped_to_bounds(self):
        board = LeaseBoard(total=100_000, workers=2)
        slow = board.claim(0, rate=1.0)        # ~0.5 cases/target
        fast = board.claim(1, rate=1_000_000)  # ~500k cases/target
        assert slow.size == LEASE_MIN
        assert fast.size == LEASE_MAX

    def test_adaptive_size_tracks_rate(self):
        board = LeaseBoard(total=100_000, workers=1)
        lease = board.claim(0, rate=300.0)  # 150 cases per 0.5 s target
        assert LEASE_MIN <= lease.size <= LEASE_MAX
        assert lease.size == 150

    def test_reclaimed_lease_keeps_identity_and_is_reissued_first(self):
        board = LeaseBoard(total=300, workers=2, lease_size=100)
        lease = board.claim(0)
        board.reclaim_lease(lease.id)
        reissued = board.claim(1)
        assert (reissued.id, reissued.size) == (lease.id, lease.size)
        assert board.reclaims == 1
        board.complete(reissued.id, 1)
        record = board.log[-1]
        assert record.reissued and record.steal
        assert record.worker == 1

    def test_claim_beyond_fair_share_counts_as_steal(self):
        board = LeaseBoard(total=200, workers=2, lease_size=50)
        for _ in range(2):  # worker 0 claims its full 100-case share
            lease = board.claim(0)
            board.complete(lease.id, 0)
        assert board.steals == 0
        lease = board.claim(0)  # third claim crosses ceil(200/2)
        board.complete(lease.id, 0)
        assert board.steals == 1
        assert board.log[-1].steal

    def test_double_complete_asserts(self):
        board = LeaseBoard(total=10, workers=1, lease_size=10)
        lease = board.claim(0)
        board.complete(lease.id, 0)
        with pytest.raises(KeyError):
            board.complete(lease.id, 0)

    def test_accounting_invariant_under_random_churn(self):
        rng = random.Random(1234)
        for trial in range(25):
            total = rng.randrange(1, 2000)
            workers = rng.randrange(1, 6)
            board = LeaseBoard(total=total, workers=workers,
                               lease_size=rng.choice([0, 7, 64]))
            while not board.drained():
                worker = rng.randrange(workers)
                lease = board.claim(worker, rate=rng.uniform(0, 5000))
                if lease is None:
                    # Budget carved out; only reclaims can unblock.
                    assert board.issued
                    victim = rng.choice(list(board.issued))
                    board.reclaim_lease(victim)
                    continue
                if rng.random() < 0.2:
                    board.reclaim_lease(lease.id)
                else:
                    board.complete(lease.id, worker)
            assert board.completed_total() == total
            ids = [record.id for record in board.log]
            assert len(ids) == len(set(ids)), "a lease completed twice"

    def test_board_pickles_for_checkpoints(self):
        board = LeaseBoard(total=50, workers=2, lease_size=10)
        lease = board.claim(0)
        board.complete(lease.id, 0)
        clone = pickle.loads(pickle.dumps(board))
        assert clone.completed_total() == 10
        assert clone.log[0].id == lease.id

    def test_replay_overrunning_budget_rejected(self):
        board = LeaseBoard(total=10, workers=1, lease_size=10)
        with pytest.raises(ValueError):
            board.claim_replay(LeaseRecord(id=0, worker=0, size=11), 0)


class TestFileLeaseBoard:
    def test_claim_complete_roundtrip(self, tmp_path):
        board = FileLeaseBoard.create(tmp_path, total=30, workers=2,
                                      lease_size=10)
        sizes = []
        while (lease := board.claim(0)) is not None:
            sizes.append(lease.size)
            board.complete(lease.id, 0)
        assert sizes == [10, 10, 10]
        assert board.finished()
        summary = board.summary()
        assert summary["completed"] == 30
        assert [record.id for record in summary["log"]] == [0, 1, 2]

    def test_reclaim_requeues_a_dead_workers_claims(self, tmp_path):
        board = FileLeaseBoard.create(tmp_path, total=40, workers=2,
                                      lease_size=10)
        dead = board.claim(0)
        board.claim(1)
        assert board.reclaim(0) == 1
        assert not board.finished()
        reissued = board.claim(1)
        assert (reissued.id, reissued.size) == (dead.id, dead.size)
        summary = board.summary()
        assert summary["reclaims"] == 1

    def test_complete_after_reclaim_is_a_noop(self, tmp_path):
        # A worker presumed dead that races its own completion against
        # the supervisor's reclaim must not double-count the lease.
        board = FileLeaseBoard.create(tmp_path, total=20, workers=2,
                                      lease_size=10)
        lease = board.claim(0)
        board.reclaim(0)
        board.complete(lease.id, 0)  # late completion: ignored
        assert board.summary()["completed"] == 0
        reissued = board.claim(1)
        board.complete(reissued.id, 1)
        assert board.summary()["completed"] == 10

    def test_fresh_create_clobbers_previous_campaign(self, tmp_path):
        board = FileLeaseBoard.create(tmp_path, total=10, workers=1,
                                      lease_size=10)
        lease = board.claim(0)
        board.complete(lease.id, 0)
        board = FileLeaseBoard.create(tmp_path, total=20, workers=1,
                                      lease_size=10)
        assert not board.finished()
        assert board.summary()["completed"] == 0


class TestAdaptiveSync:
    def test_interval_growth_is_monotone_and_capped(self):
        sync = AdaptiveSync(base=100)
        seen = [sync.interval]
        for _ in range(10):
            seen.append(sync.record_round(executed=0, subsumed=10,
                                          new_bits=False))
        assert seen == sorted(seen), "back-off must be monotone"
        assert seen[0] == 100
        assert seen[-1] == sync.cap == 800

    def test_empty_rounds_also_back_off(self):
        sync = AdaptiveSync(base=50)
        assert sync.record_round(executed=0, subsumed=0,
                                 new_bits=False) == 100

    def test_new_bits_snap_back_to_base(self):
        sync = AdaptiveSync(base=100)
        for _ in range(5):
            sync.record_round(executed=0, subsumed=10, new_bits=False)
        assert sync.interval > 100
        assert sync.record_round(executed=3, subsumed=0,
                                 new_bits=True) == 100

    def test_sub_threshold_absorption_counts_as_productive(self):
        sync = AdaptiveSync(base=100)
        sync.record_round(executed=0, subsumed=10, new_bits=False)
        # 5 of 10 absorbed is well below the 90% threshold: partners
        # are shipping things we do not have, so sync eagerly again.
        assert sync.record_round(executed=5, subsumed=5,
                                 new_bits=False) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSync(base=0)
        with pytest.raises(ValueError):
            AdaptiveSync(base=10, growth=1)


class TestWorkerPool:
    class _Worker:
        def __init__(self, index):
            from repro.parallel.worker import WorkerSpec

            self.spec = WorkerSpec(index=index, seed=index, iterations=0)

    def test_cold_pool_returns_none_then_reuses(self):
        pool = WorkerPool()
        key = ("kvm", "intel", 1, 2)
        assert pool.acquire(key, 0) is None
        workers = [self._Worker(0), self._Worker(1)]
        pool.park(key, workers)
        assert pool.acquire(key, 0) is workers[0]
        assert pool.acquire(key, 1) is workers[1]
        assert pool.reused == 2
        assert pool.runs == 1

    def test_mismatched_shape_raises(self):
        pool = WorkerPool()
        pool.park(("kvm", "intel", 1, 2), [self._Worker(0)])
        with pytest.raises(PoolMismatch):
            pool.acquire(("xen", "amd", 9, 4), 0)
