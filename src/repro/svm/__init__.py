"""AMD-V data model: VMCB layout, intercept bits, exit codes."""

from repro.svm.exit_codes import SvmExitCode
from repro.svm.vmcb import Vmcb

__all__ = ["Vmcb", "SvmExitCode"]
