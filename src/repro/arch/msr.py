"""Model-specific register (MSR) indices and canonical-address rules.

The VM-entry/exit MSR-load/store mechanism moves (index, value) pairs
between memory areas and MSRs. CVE-2024-21106 (paper §5.5.3) is exactly a
missing canonicality check on a value loaded into ``IA32_KERNEL_GS_BASE``
during nested VM entry — the helpers here are what a correct hypervisor
must call.
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Architectural MSR indices (SDM Vol. 4) -------------------------------
IA32_TSC = 0x10
IA32_APIC_BASE = 0x1B
IA32_FEATURE_CONTROL = 0x3A
IA32_SPEC_CTRL = 0x48
IA32_PAT = 0x277
IA32_MTRR_DEF_TYPE = 0x2FF
IA32_SYSENTER_CS = 0x174
IA32_SYSENTER_ESP = 0x175
IA32_SYSENTER_EIP = 0x176
IA32_DEBUGCTL = 0x1D9
IA32_PERF_GLOBAL_CTRL = 0x38F
IA32_EFER = 0xC0000080
IA32_STAR = 0xC0000081
IA32_LSTAR = 0xC0000082
IA32_CSTAR = 0xC0000083
IA32_FMASK = 0xC0000084
IA32_FS_BASE = 0xC0000100
IA32_GS_BASE = 0xC0000101
IA32_KERNEL_GS_BASE = 0xC0000102
IA32_TSC_AUX = 0xC0000103

# VMX capability MSRs (detailed layouts live in repro.vmx.msr_caps).
IA32_VMX_BASIC = 0x480
IA32_VMX_PINBASED_CTLS = 0x481
IA32_VMX_PROCBASED_CTLS = 0x482
IA32_VMX_EXIT_CTLS = 0x483
IA32_VMX_ENTRY_CTLS = 0x484
IA32_VMX_MISC = 0x485
IA32_VMX_CR0_FIXED0 = 0x486
IA32_VMX_CR0_FIXED1 = 0x487
IA32_VMX_CR4_FIXED0 = 0x488
IA32_VMX_CR4_FIXED1 = 0x489
IA32_VMX_PROCBASED_CTLS2 = 0x48B
IA32_VMX_EPT_VPID_CAP = 0x48C
IA32_VMX_TRUE_PINBASED_CTLS = 0x48D
IA32_VMX_TRUE_PROCBASED_CTLS = 0x48E
IA32_VMX_TRUE_EXIT_CTLS = 0x48F
IA32_VMX_TRUE_ENTRY_CTLS = 0x490
IA32_VMX_VMFUNC = 0x491

# AMD
VM_CR = 0xC0010114
VM_HSAVE_PA = 0xC0010117

#: MSRs whose loaded values must be canonical addresses (SDM 26.4).
CANONICAL_MSRS = frozenset({
    IA32_SYSENTER_ESP,
    IA32_SYSENTER_EIP,
    IA32_FS_BASE,
    IA32_GS_BASE,
    IA32_KERNEL_GS_BASE,
    IA32_LSTAR,
    IA32_CSTAR,
})

#: MSRs that may never appear in a VM-entry MSR-load area (SDM 26.4).
MSR_LOAD_FORBIDDEN = frozenset({
    IA32_FS_BASE,  # loaded from VMCS guest state instead
    IA32_GS_BASE,
})


def is_canonical(address: int, *, virtual_address_width: int = 48) -> bool:
    """Return True when *address* is canonical for the given VA width.

    A canonical address has bits [63 : width-1] all equal. The classic
    non-canonical probe value from the paper is ``0x8000000000000000``.
    """
    address &= (1 << 64) - 1
    top = address >> (virtual_address_width - 1)
    all_ones = (1 << (64 - virtual_address_width + 1)) - 1
    return top == 0 or top == all_ones


@dataclass(frozen=True)
class MsrEntry:
    """One slot of a VM-entry/exit MSR-load/store area (16 bytes each)."""

    index: int
    value: int
    reserved: int = 0

    def to_bytes(self) -> bytes:
        """Serialise to the architectural 16-byte slot layout."""
        return (
            self.index.to_bytes(4, "little")
            + self.reserved.to_bytes(4, "little")
            + (self.value & ((1 << 64) - 1)).to_bytes(8, "little")
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MsrEntry":
        """Parse one 16-byte MSR area slot."""
        if len(raw) != 16:
            raise ValueError(f"MSR entry must be 16 bytes, got {len(raw)}")
        return cls(
            index=int.from_bytes(raw[0:4], "little"),
            reserved=int.from_bytes(raw[4:8], "little"),
            value=int.from_bytes(raw[8:16], "little"),
        )


def msr_load_entry_valid(entry: MsrEntry) -> bool:
    """Architectural validity of a VM-entry MSR-load slot (SDM 26.4).

    The reserved dword must be zero, the MSR must not be in the forbidden
    list, and values destined for canonical-address MSRs must be canonical.
    This is the check VirtualBox omitted (CVE-2024-21106).
    """
    if entry.reserved:
        return False
    if entry.index in MSR_LOAD_FORBIDDEN:
        return False
    if entry.index in CANONICAL_MSRS and not is_canonical(entry.value):
        return False
    return True


class MsrFile:
    """A sparse MSR register file with default values.

    Used by the simulated physical CPU and by the L0 hypervisors to model
    per-vCPU MSR state. Reading an undefined MSR returns zero rather than
    faulting, matching the relaxed behaviour of our harness environment.
    """

    def __init__(self, initial: dict[int, int] | None = None) -> None:
        self._values: dict[int, int] = dict(initial or {})

    def read(self, index: int) -> int:
        """Read an MSR (0 when never written)."""
        return self._values.get(index, 0)

    def write(self, index: int, value: int) -> None:
        """Write an MSR, truncating to 64 bits."""
        self._values[index] = value & ((1 << 64) - 1)

    def snapshot(self) -> dict[int, int]:
        """A copy of all explicitly-written MSRs."""
        return dict(self._values)

    def __contains__(self, index: int) -> bool:
        return index in self._values
