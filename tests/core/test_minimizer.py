"""Tests for crash-input minimization."""

from repro import NecoFuzz, Vendor
from repro.core.agent import AgentConfig
from repro.core.minimizer import CrashMinimizer


def find_a_crash():
    campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=3)
    campaign.run(500)
    reports = campaign.agent.reports.reports
    assert reports, "campaign found nothing to minimize"
    return reports[0]


class TestMinimizer:
    def test_minimization_preserves_signature(self):
        report = find_a_crash()
        minimizer = CrashMinimizer(AgentConfig(), max_replays=150)
        result = minimizer.minimize(report)
        # The minimized input must still reproduce on a fresh agent.
        from repro.core.agent import Agent

        outcome = Agent(AgentConfig()).run_case(result.minimized)
        assert any(a.signature() == result.signature
                   for a in outcome.anomalies)

    def test_minimization_reduces_entropy(self):
        report = find_a_crash()
        minimizer = CrashMinimizer(AgentConfig(), max_replays=150)
        result = minimizer.minimize(report)
        original_nonzero = sum(1 for b in report.fuzz_input.data if b)
        assert result.nonzero_bytes <= original_nonzero
        # Block zeroing should strip a lot of the 2 KiB.
        assert result.zero_bytes > 1024

    def test_replay_budget_respected(self):
        report = find_a_crash()
        minimizer = CrashMinimizer(AgentConfig(), max_replays=20)
        result = minimizer.minimize(report)
        assert result.replays <= 20

    def test_summary(self):
        report = find_a_crash()
        minimizer = CrashMinimizer(AgentConfig(), max_replays=30)
        result = minimizer.minimize(report)
        assert "non-zero bytes" in result.summary()


class TestNestFuzzBaseline:
    def test_low_coverage_without_structure(self):
        """§7's point: random VMX instructions without state validity or
        init sequencing go nowhere near NecoFuzz."""
        from repro.baselines import NestFuzzCampaign

        nest = NestFuzzCampaign(vendor=Vendor.INTEL, seed=2).run(60)
        neco = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=2).run(60)
        assert nest.coverage_fraction < neco.coverage_fraction
        assert nest.coverage_percent < 45

    def test_amd_also_low(self):
        from repro.baselines import NestFuzzCampaign

        nest = NestFuzzCampaign(vendor=Vendor.AMD, seed=2).run(60)
        assert nest.coverage_percent < 45
