"""Unit tests for the incremental (dirty-tracking) hot path."""
