"""Additional property tests for the Hamming study machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hamming import Distribution, run_study
from repro.arch.cpuid import Vendor, default_feature_map
from repro.vmx.msr_caps import capabilities_for_features


class TestDistribution:
    def test_stats(self):
        dist = Distribution("d", (1, 2, 3, 4, 5))
        assert dist.mean == 3
        assert dist.minimum == 1 and dist.maximum == 5
        assert dist.stdev > 0

    def test_single_sample_stdev_zero(self):
        assert Distribution("d", (7,)).stdev == 0.0

    def test_render(self):
        text = Distribution("random vs validated", (10, 20)).render()
        assert "mean" in text and "random vs validated" in text

    @given(st.lists(st.integers(min_value=0, max_value=8000),
                    min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_mean_within_range(self, samples):
        dist = Distribution("d", tuple(samples))
        assert dist.minimum <= dist.mean <= dist.maximum


class TestStudyUnderRestrictedCaps:
    def test_study_with_feature_restricted_vcpu(self):
        """The study holds for restricted capability sets too — the
        validator simply pins more feature bits."""
        features = default_feature_map(Vendor.INTEL)
        features["ept"] = False
        features["apicv"] = False
        caps = capabilities_for_features(features)
        study = run_study(repetitions=60, seed=2, caps=caps)
        assert (study.random_vs_validated.mean
                > study.default_vs_validated.mean * 0.8)
        assert study.pairwise_validated.mean > 100

    def test_distances_bounded_by_layout(self):
        from repro.vmx.fields import LAYOUT_BITS

        study = run_study(repetitions=40, seed=5)
        for dist in (study.random_vs_validated, study.default_vs_validated,
                     study.pairwise_validated):
            assert dist.maximum <= LAYOUT_BITS
