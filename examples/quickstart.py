#!/usr/bin/env python3
"""Quickstart: fuzz the simulated KVM's nested VMX for a few hundred cases.

Runs a small NecoFuzz campaign against the Intel KVM model, prints the
coverage trajectory, and dumps any findings — the 60-second version of
the paper's 48-hour experiment.

    $ python examples/quickstart.py [iterations]
"""

import sys

from repro import NecoFuzz, Vendor


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    print(f"NecoFuzz quickstart: {iterations} fuzz-harness VMs vs KVM/Intel\n")
    campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=7)
    result = campaign.run(iterations=iterations, sample_every=max(iterations // 12, 1))

    print("coverage trajectory (nested VMX emulation, nested.c analogue):")
    for point in result.timeline.points:
        bar = "#" * int(point.coverage * 50)
        print(f"  {point.iteration:>5} cases |{bar:<50}| "
              f"{100 * point.coverage:.1f}%")

    print(f"\n{result.summary()}")

    if result.reports:
        print("\nfindings:")
        for report in result.reports:
            print(f"  [{report.anomaly.method.value}] iteration "
                  f"{report.iteration}: {report.anomaly.message}")
            print(f"    reproduce with: {report.command_line}")
    else:
        print("\nno anomalies in this budget — try more iterations "
              "(the spurious-triple-fault bug usually appears within ~500).")

    print("\nfuzzer internals:")
    stats = result.engine_stats
    print(f"  corpus grew by {stats.queue_adds} inputs; "
          f"last new coverage at iteration {stats.last_find}")
    entries = sum(g.oracle.entries for g in campaign.agent._generators.values())
    rejections = sum(g.oracle.rejections
                     for g in campaign.agent._generators.values())
    print(f"  hardware-oracle entries/rejections across configs: "
          f"{entries}/{rejections}")


if __name__ == "__main__":
    main()
