"""Sanity tests for SVM exit codes and the Table-1 instruction map."""

from repro.hypervisors.l2map import AMD_L2_EXITS, svm_exception_code
from repro.svm.exit_codes import SVM_INSTRUCTION_EXITS, SvmExitCode


class TestExitCodes:
    def test_architectural_values(self):
        assert SvmExitCode.CPUID == 0x72
        assert SvmExitCode.VMRUN == 0x80
        assert SvmExitCode.NPF == 0x400
        assert SvmExitCode.AVIC_NOACCEL == 0x402
        assert SvmExitCode.INVALID == 0xFFFF_FFFF_FFFF_FFFF

    def test_exception_codes(self):
        assert svm_exception_code(0) == int(SvmExitCode.EXCP_BASE)
        assert svm_exception_code(14) == 0x4E
        assert svm_exception_code(33) == svm_exception_code(1)  # wraps at 32

    def test_exception_range_below_intr(self):
        for vector in range(32):
            assert (int(SvmExitCode.EXCP_BASE) <= svm_exception_code(vector)
                    < int(SvmExitCode.INTR))

    def test_instruction_exit_set(self):
        assert SvmExitCode.VMRUN in SVM_INSTRUCTION_EXITS
        assert SvmExitCode.STGI in SVM_INSTRUCTION_EXITS
        assert SvmExitCode.CPUID not in SVM_INSTRUCTION_EXITS

    def test_l2_map_targets_real_codes(self):
        for mnemonic, code in AMD_L2_EXITS.items():
            if mnemonic == "exception":
                continue
            assert isinstance(int(code), int)
