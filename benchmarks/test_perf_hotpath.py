"""Hot-path benchmark: incremental validation + merge vs. full recompute.

Drives the mutate -> correct -> verify -> merge -> execute loop the
fuzzer runs per case, on a persistent tracked VMCS (corpus style: a
mutation whose nested entry fails is reverted, like a non-entering
input being discarded), and measures both modes of this PR's
dirty-field tracking:

* full recompute — every rounding pass, consistency check, and the
  whole VMCS02 merge re-run from scratch each iteration;
* incremental — passes/checks are memoized against the change journal
  and validated by read *values*, and the merge re-copies only dirty
  fields (``repro.perf``).

Per-stage timings and the cases/sec speedup go to ``BENCH_hotpath.json``
at the repo root. The two modes are asserted behaviourally identical
(same correction counts, same hardware entries) here, and pinned
field-for-field equivalent by tests/unit/test_incremental_equivalence.py.

``NECOFUZZ_BENCH_BUDGET`` shrinks the iteration budget for CI smoke
runs; the speedup floor is only asserted at the full default budget,
since sub-100-iteration timings are warmup-dominated noise.

The second benchmark drives the *batched oracle hot path* (DESIGN.md
§12) the way the engine does per tick: N candidate byte images are
mutated from the current corpus parent, deserialised (byte-diffed
against frozen reference masters when batching is on), columnar-warmed,
and verified by the hardware oracle. Full recompute, incremental, and
batched modes replay the identical mutation schedule and must agree on
every behavioural counter *and* on the final parent bytes — corpus
evolution is pinned bit-identical before speed may differ.
"""

from __future__ import annotations

import gc
import json
import random
import time
from pathlib import Path

import pytest

from common import BenchReport, PhaseDeadline, bench_budget
from repro import Vendor, perf
from repro.core.vcpu_config import VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor
from repro.hypervisors.kvm.nested_vmx import VMCS02_HPA, VmxNestedState
from repro.validator.golden import golden_vmcs
from repro.validator.oracle import HardwareOracle
from repro.validator.rounding import VmStateValidator
from repro.vmx import fields as F
from repro.vmx.vmcs import Vmcs

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
DEFAULT_BUDGET = 400
BUDGET = bench_budget(DEFAULT_BUDGET)
SEED = 7
#: Acceptance floor from the issue; measured ~2.2x on the dev container.
MIN_SPEEDUP = 2.0
#: Batched-oracle acceptance gate (issue): either an absolute
#: throughput floor or a speedup floor over full recompute.
BATCH_CASES_FLOOR = 10_000
MIN_BATCH_SPEEDUP = 3.5
#: Engine tick size for the batched stage (matches --batch-size 16).
BATCH_TICK = 16
#: The oracle workload is ~3x faster per case than the validator-heavy
#: one, so it gets a larger default budget — long enough to amortize
#: first-tick warmup and ride out scheduler jitter near the floor.
DEFAULT_ORACLE_BUDGET = 1600
ORACLE_BUDGET = bench_budget(DEFAULT_ORACLE_BUDGET)

STAGES = ("correct", "validate", "merge", "execute")
ORACLE_STAGES = ("mutate", "deserialize", "warm", "verify")
_MUTABLE = [s for s in F.ALL_FIELDS if s.group is not F.FieldGroup.READ_ONLY]


def _mutable_byte_offsets() -> list[int]:
    """Byte offsets (canonical serialized layout) of mutable fields."""
    out = []
    offset = 0
    for spec in F.ALL_FIELDS:
        nbytes = (spec.bits + 7) // 8
        if spec.group is not F.FieldGroup.READ_ONLY:
            out.extend(range(offset, offset + nbytes))
        offset += nbytes
    return out


_MUTABLE_BYTES = _mutable_byte_offsets()


def _update_json(section: str, payload: dict) -> None:
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    data["config"] = {"hypervisor": "kvm", "vendor": "intel",
                      "seed": SEED, "iterations": BUDGET}
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _run_workload(incremental: bool, budget: int = BUDGET) -> dict:
    """One validator-heavy pass over the hot path; returns its numbers.

    The loop checks the phase deadline every iteration, so a CI budget
    is a hard wall-clock stop, not advisory; the caller compares modes
    over the iterations that actually ran.
    """
    deadline = PhaseDeadline()
    with perf.incremental_mode(incremental):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        nested = hv.nested_vmx
        validator = VmStateValidator(nested.caps)
        oracle = HardwareOracle(nested.caps)
        state = VmxNestedState()
        vmcs = golden_vmcs(nested.caps)
        rng = random.Random(SEED)
        stages = dict.fromkeys(STAGES, 0.0)
        corrections = entries = reverted = 0

        ran = 0
        start = time.perf_counter()
        for _ in range(budget):
            if deadline.expired():
                break
            ran += 1
            spec = rng.choice(_MUTABLE)
            bit = rng.randrange(spec.bits)
            old = vmcs.read(spec.encoding)
            vmcs.write(spec.encoding, old ^ (1 << bit))

            t = time.perf_counter()
            corrections += validator.round_to_valid(vmcs).total
            stages["correct"] += time.perf_counter() - t

            t = time.perf_counter()
            report = oracle.verify(vmcs)
            stages["validate"] += time.perf_counter() - t
            entries += bool(report.entered)

            t = time.perf_counter()
            prep = nested.prepare_vmcs02(state, vmcs)
            stages["merge"] += time.perf_counter() - t
            if prep is not None:
                # Non-entering mutation: discard it, keep the corpus state.
                vmcs.write(spec.encoding, old)
                reverted += 1
                continue

            t = time.perf_counter()
            nested.phys.vmclear(VMCS02_HPA)
            image = state.vmcs02.copy()
            image.clear()
            nested.phys.install_vmcs(VMCS02_HPA, image)
            nested.phys.vmptrld(VMCS02_HPA)
            outcome = nested.phys.vmlaunch()
            stages["execute"] += time.perf_counter() - t
            entries += bool(outcome.entered)
        elapsed = time.perf_counter() - start

    return {
        "cases_per_sec": ran / elapsed if ran else 0.0,
        "seconds": elapsed,
        "iterations": ran,
        "truncated": deadline.hit,
        "stages": stages,
        "corrections": corrections,
        "entries": entries,
        "reverted": reverted,
    }


@pytest.mark.benchmark(group="perf-hotpath")
def test_incremental_hotpath_speedup(capsys):
    full = _run_workload(incremental=False)
    # The second phase replays exactly the iterations the first one
    # completed (its own deadline still applies), keeping the two
    # workloads comparable even when a CI deadline truncated phase one.
    inc = _run_workload(incremental=True, budget=full["iterations"])
    truncated = full["truncated"] or inc["truncated"]
    if not inc["cases_per_sec"]:
        pytest.skip("phase deadline left no iterations to compare")
    speedup = inc["cases_per_sec"] / full["cases_per_sec"]

    # The two modes must do identical work before their speed may differ.
    if full["iterations"] == inc["iterations"]:
        for key in ("corrections", "entries", "reverted"):
            assert full[key] == inc[key], key

    _update_json("hotpath", {
        "full_cases_per_sec": round(full["cases_per_sec"], 1),
        "incremental_cases_per_sec": round(inc["cases_per_sec"], 1),
        "speedup": round(speedup, 2),
        "iterations_run": full["iterations"],
        "deadline_truncated": truncated,
        "corrections": full["corrections"],
        "entries": full["entries"],
        "stage_seconds_full": {k: round(v, 4)
                               for k, v in full["stages"].items()},
        "stage_seconds_incremental": {k: round(v, 4)
                                      for k, v in inc["stages"].items()},
    })

    report = BenchReport("Hot path: incremental validation + merge")
    for label, r in (("full", full), ("incremental", inc)):
        per_stage = "  ".join(f"{k}={r['stages'][k] * 1000:.0f}ms"
                              for k in STAGES)
        report.add(f"{label:12s}{r['cases_per_sec']:7.1f} cases/s   "
                   f"{per_stage}")
    report.add(f"speedup     {speedup:7.2f}x  (floor {MIN_SPEEDUP}x)"
               + ("  [deadline truncated]" if truncated else ""))
    report.emit(capsys)

    if BUDGET >= DEFAULT_BUDGET and not truncated:
        assert speedup >= MIN_SPEEDUP


def _run_oracle_workload(mode: str, budget: int = ORACLE_BUDGET) -> dict:
    """The engine-shaped oracle hot path: mutate -> deserialize -> verify.

    Per tick, ``BATCH_TICK`` candidate byte images are derived from the
    current parent by random bit flips in mutable fields, deserialised,
    and verified in order; the first entering candidate's serialized
    state becomes the next parent (corpus adoption). The mutation
    schedule depends only on the RNG and the parent bytes, and all
    three modes produce identical corrections — so corpus evolution is
    mode-independent and asserted bit-identical by the caller.

    *mode* is ``"full"`` (no memoization), ``"incremental"`` (journal
    memos, classic deserialize), or ``"batch"`` (anchored byte-diff
    deserialize + columnar warm pass + signature caches).
    """
    from repro.cpu.entry_checks import warm_batch_checks

    gc.collect()  # don't charge one mode for another's garbage
    deadline = PhaseDeadline()
    batched = mode == "batch"
    with perf.incremental_mode(mode != "full"), \
            perf.batch_mode(BATCH_TICK if batched else 0):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        caps = hv.nested_vmx.caps
        revision = caps.vmcs_revision_id
        oracle = HardwareOracle(caps)
        parent = golden_vmcs(caps).serialize()
        rng = random.Random(SEED)
        stages = dict.fromkeys(ORACLE_STAGES, 0.0)
        entries = attempts = rules = goldens = 0

        ran = 0
        start = time.perf_counter()
        while ran < budget:
            if deadline.expired():
                break
            tick = min(BATCH_TICK, budget - ran)

            t = time.perf_counter()
            images = []
            for _ in range(tick):
                img = bytearray(parent)
                for _ in range(rng.randrange(1, 3)):
                    img[rng.choice(_MUTABLE_BYTES)] ^= 1 << rng.randrange(8)
                images.append(bytes(img))
            stages["mutate"] += time.perf_counter() - t

            t = time.perf_counter()
            candidates = [Vmcs.deserialize(img, revision) for img in images]
            stages["deserialize"] += time.perf_counter() - t

            if batched:
                t = time.perf_counter()
                warm_batch_checks(candidates, oracle._checker)
                stages["warm"] += time.perf_counter() - t

            t = time.perf_counter()
            adopted = None
            for cand in candidates:
                report = oracle.verify(cand)
                attempts += report.attempts
                rules += len(report.activated_rules)
                goldens += len(report.golden_fallbacks)
                if report.entered:
                    entries += 1
                    if adopted is None:
                        adopted = cand
            stages["verify"] += time.perf_counter() - t
            if adopted is not None:
                parent = adopted.serialize()
            ran += tick
        elapsed = time.perf_counter() - start

    return {
        "cases_per_sec": ran / elapsed if ran else 0.0,
        "seconds": elapsed,
        "iterations": ran,
        "truncated": deadline.hit,
        "stages": stages,
        "entries": entries,
        "attempts": attempts,
        "rules": rules,
        "goldens": goldens,
        "parent": parent,
    }


@pytest.mark.benchmark(group="perf-hotpath")
def test_batched_oracle_speedup(capsys):
    full = _run_oracle_workload("full")
    inc = _run_oracle_workload("incremental", budget=full["iterations"])
    bat = _run_oracle_workload("batch", budget=full["iterations"])
    truncated = full["truncated"] or inc["truncated"] or bat["truncated"]
    if not bat["cases_per_sec"] or not inc["cases_per_sec"]:
        pytest.skip("phase deadline left no iterations to compare")
    speedup_batch = bat["cases_per_sec"] / full["cases_per_sec"]
    speedup_inc = inc["cases_per_sec"] / full["cases_per_sec"]

    # All three modes must do identical work — down to the final corpus
    # parent bytes — before their speed may differ.
    if full["iterations"] == inc["iterations"] == bat["iterations"]:
        for key in ("entries", "attempts", "rules", "goldens", "parent"):
            assert full[key] == inc[key] == bat[key], key

    _update_json("oracle_batch", {
        "full_cases_per_sec": round(full["cases_per_sec"], 1),
        "incremental_cases_per_sec": round(inc["cases_per_sec"], 1),
        "batch_cases_per_sec": round(bat["cases_per_sec"], 1),
        "speedup_batch": round(speedup_batch, 2),
        "speedup_incremental": round(speedup_inc, 2),
        "batch_tick": BATCH_TICK,
        "iterations_run": full["iterations"],
        "deadline_truncated": truncated,
        "entries": full["entries"],
        "attempts": full["attempts"],
        "stage_seconds_full": {k: round(v, 4)
                               for k, v in full["stages"].items()},
        "stage_seconds_batch": {k: round(v, 4)
                                for k, v in bat["stages"].items()},
    })

    report = BenchReport("Oracle hot path: batched vs incremental vs full")
    for label, r in (("full", full), ("incremental", inc), ("batch", bat)):
        per_stage = "  ".join(f"{k}={r['stages'][k] * 1000:.0f}ms"
                              for k in ORACLE_STAGES)
        report.add(f"{label:12s}{r['cases_per_sec']:8.1f} cases/s   "
                   f"{per_stage}")
    report.add(f"speedup     {speedup_batch:8.2f}x over full  "
               f"(gate: >= {MIN_BATCH_SPEEDUP}x or "
               f">= {BATCH_CASES_FLOOR} cases/s)"
               + ("  [deadline truncated]" if truncated else ""))
    report.emit(capsys)

    if ORACLE_BUDGET >= DEFAULT_ORACLE_BUDGET and not truncated:
        assert (bat["cases_per_sec"] >= BATCH_CASES_FLOOR
                or speedup_batch >= MIN_BATCH_SPEEDUP)
