"""IA32_VMX_* capability MSR modelling.

Control-field capability MSRs encode *allowed-0* settings in the low 32
bits (bits that must be 1 in the control) and *allowed-1* settings in the
high 32 bits (bits that may be 1). A control value ``x`` is permitted iff
``(x | allowed0) == x`` and ``(x & ~allowed1) == 0``.

The vCPU configurator indirectly shapes these MSRs: disabling a feature
clears the corresponding allowed-1 bit, so the L1 hypervisor cannot turn
it on — and the L0 hypervisor must reject a VMCS12 that tries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vmx.controls import (
    EntryControls,
    ExitControls,
    PinBased,
    ProcBased,
    Secondary,
)


@dataclass(frozen=True)
class ControlCaps:
    """Allowed-0 / allowed-1 settings for one control field."""

    allowed0: int  # bits that must be 1
    allowed1: int  # bits that may be 1

    def permits(self, value: int) -> bool:
        """True when *value* satisfies both allowed-settings masks."""
        if (value & self.allowed0) != self.allowed0:
            return False
        if value & ~self.allowed1 & 0xFFFFFFFF:
            return False
        return True

    def round(self, value: int) -> int:
        """Round *value* to the nearest permitted setting (fix reserved bits)."""
        return (value | self.allowed0) & self.allowed1

    @property
    def msr_value(self) -> int:
        """The raw 64-bit capability MSR image."""
        return self.allowed0 | (self.allowed1 << 32)


@dataclass(frozen=True)
class VmxCapabilities:
    """The full VMX capability surface exposed to a (v)CPU.

    Built by :func:`capabilities_for_features` from a vCPU feature map, so
    the configurator's choices propagate into every validity check.
    """

    pin_based: ControlCaps
    proc_based: ControlCaps
    secondary: ControlCaps
    entry: ControlCaps
    exit: ControlCaps
    cr0_fixed0: int
    cr0_fixed1: int
    cr4_fixed0: int
    cr4_fixed1: int
    ept_5level: bool = False
    vmcs_revision_id: int = 0x12

    def cr0_valid_for_vmx(self, cr0: int, *, unrestricted_guest: bool = False) -> bool:
        """Check CR0 against the FIXED0/FIXED1 MSR pair.

        With unrestricted guest, PE (bit 0) and PG (bit 31) are exempt
        from the fixed-1 requirement (SDM 26.3.1.1).
        """
        fixed0 = self.cr0_fixed0
        if unrestricted_guest:
            fixed0 &= ~0x80000001
        if (cr0 & fixed0) != fixed0:
            return False
        if cr0 & ~self.cr0_fixed1:
            return False
        return True

    def cr4_valid_for_vmx(self, cr4: int) -> bool:
        """Check CR4 against the FIXED0/FIXED1 MSR pair."""
        if (cr4 & self.cr4_fixed0) != self.cr4_fixed0:
            return False
        if cr4 & ~self.cr4_fixed1:
            return False
        return True


#: Architectural CR0/CR4 fixed values on VMX-capable parts.
CR0_FIXED0 = 0x80000021  # PG | NE | PE
CR0_FIXED1 = 0xFFFFFFFF
CR4_FIXED0 = 0x2000      # VMXE
CR4_FIXED1 = 0x177FFFB


def capabilities_for_features(features: dict[str, bool]) -> VmxCapabilities:
    """Derive the VMX capability MSRs from a vCPU feature map.

    Mirrors what KVM's ``nested_vmx_setup_ctls_msrs()`` does: start from
    the host capability superset, then strip allowed-1 bits for disabled
    features.
    """
    secondary_allowed1 = Secondary.KNOWN
    if not features.get("ept", True):
        secondary_allowed1 &= ~(Secondary.ENABLE_EPT | Secondary.UNRESTRICTED_GUEST
                                | Secondary.ENABLE_PML | Secondary.EPT_VIOLATION_VE
                                | Secondary.MODE_BASED_EPT_EXEC)
    if not features.get("unrestricted_guest", True):
        secondary_allowed1 &= ~Secondary.UNRESTRICTED_GUEST
    if not features.get("vpid", True):
        secondary_allowed1 &= ~Secondary.ENABLE_VPID
    if not features.get("flexpriority", True):
        secondary_allowed1 &= ~(Secondary.VIRTUALIZE_APIC_ACCESSES
                                | Secondary.VIRTUALIZE_X2APIC)
    if not features.get("enable_shadow_vmcs", True):
        secondary_allowed1 &= ~Secondary.SHADOW_VMCS
    if not features.get("pml", True):
        secondary_allowed1 &= ~Secondary.ENABLE_PML
    if not features.get("apicv", True):
        secondary_allowed1 &= ~(Secondary.APIC_REGISTER_VIRT
                                | Secondary.VIRTUAL_INTR_DELIVERY)
    if not features.get("vmfunc", False):
        secondary_allowed1 &= ~Secondary.ENABLE_VMFUNC
    if not features.get("ple", True):
        secondary_allowed1 &= ~Secondary.PAUSE_LOOP_EXITING
    if not features.get("sgx", False):
        secondary_allowed1 &= ~(Secondary.ENCLS_EXITING | Secondary.ENABLE_ENCLV_EXITING)
    if not features.get("pt", False):
        secondary_allowed1 &= ~(Secondary.CONCEAL_VMX_FROM_PT | Secondary.PT_USE_GPA)

    pin_allowed1 = PinBased.KNOWN
    if not features.get("apicv", True):
        pin_allowed1 &= ~PinBased.POSTED_INTERRUPTS
    if not features.get("preemption_timer", True):
        pin_allowed1 &= ~PinBased.PREEMPTION_TIMER

    proc_allowed1 = ProcBased.KNOWN
    if not features.get("flexpriority", True):
        proc_allowed1 &= ~ProcBased.USE_TPR_SHADOW

    entry_allowed1 = EntryControls.KNOWN
    exit_allowed1 = ExitControls.KNOWN
    if not features.get("pt", False):
        entry_allowed1 &= ~(EntryControls.CONCEAL_VMX_FROM_PT | EntryControls.LOAD_RTIT_CTL)
        exit_allowed1 &= ~(ExitControls.CONCEAL_VMX_FROM_PT | ExitControls.CLEAR_RTIT_CTL)

    return VmxCapabilities(
        pin_based=ControlCaps(PinBased.DEFAULT1, pin_allowed1),
        proc_based=ControlCaps(ProcBased.DEFAULT1, proc_allowed1),
        secondary=ControlCaps(0, secondary_allowed1),
        entry=ControlCaps(EntryControls.DEFAULT1, entry_allowed1),
        exit=ControlCaps(ExitControls.DEFAULT1, exit_allowed1),
        cr0_fixed0=CR0_FIXED0,
        cr0_fixed1=CR0_FIXED1,
        cr4_fixed0=CR4_FIXED0,
        cr4_fixed1=CR4_FIXED1,
    )


def default_capabilities() -> VmxCapabilities:
    """Capabilities of a stock vCPU with all default features."""
    from repro.arch.cpuid import Vendor, default_feature_map

    return capabilities_for_features(default_feature_map(Vendor.INTEL))
