"""CPUID feature flags relevant to vCPU configuration.

The vCPU configurator (paper §3.5/§4.4) mutates which hardware-assisted
virtualization features a guest sees. We model the feature universe as
named flags grouped by vendor; the configurator core turns a fuzz-input
bit array into an enable/disable map over these names, and the adapters
translate the map into hypervisor-specific knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Vendor(Enum):
    """CPU vendor — selects VT-x vs. AMD-V code paths everywhere."""

    INTEL = "intel"
    AMD = "amd"


@dataclass(frozen=True)
class CpuFeature:
    """One configurable CPU feature.

    ``default`` is the state a stock cloud vCPU would expose;
    ``kvm_param``/``qemu_flag`` name the knob each adapter uses.
    """

    name: str
    vendor: Vendor | None  # None = vendor-independent
    default: bool
    kvm_param: str | None = None
    qemu_flag: str | None = None
    description: str = ""


#: The configurable feature universe, mirroring the paper's examples:
#: EPT, unrestricted guest, VPID, shadow VMCS, APICv, PML, etc.
FEATURES: tuple[CpuFeature, ...] = (
    CpuFeature("ept", Vendor.INTEL, True, kvm_param="ept",
               description="Extended page tables (nested paging)"),
    CpuFeature("unrestricted_guest", Vendor.INTEL, True,
               kvm_param="unrestricted_guest",
               description="Real-mode guest execution without paging"),
    CpuFeature("vpid", Vendor.INTEL, True, kvm_param="vpid",
               description="Virtual processor identifiers"),
    CpuFeature("flexpriority", Vendor.INTEL, True, kvm_param="flexpriority",
               description="TPR shadow / virtual APIC accesses"),
    CpuFeature("enable_shadow_vmcs", Vendor.INTEL, True,
               kvm_param="enable_shadow_vmcs",
               description="VMCS shadowing for nested vmread/vmwrite"),
    CpuFeature("pml", Vendor.INTEL, True, kvm_param="pml",
               description="Page-modification logging"),
    CpuFeature("apicv", Vendor.INTEL, True, kvm_param="enable_apicv",
               description="APIC virtualization / posted interrupts"),
    CpuFeature("preemption_timer", Vendor.INTEL, True,
               kvm_param="preemption_timer",
               description="VMX preemption timer"),
    CpuFeature("vmfunc", Vendor.INTEL, False, qemu_flag="vmx-vmfunc",
               description="VM functions (EPTP switching)"),
    CpuFeature("ple", Vendor.INTEL, True, kvm_param="ple_gap",
               description="Pause-loop exiting"),
    CpuFeature("npt", Vendor.AMD, True, kvm_param="npt",
               description="Nested page tables"),
    CpuFeature("avic", Vendor.AMD, False, kvm_param="avic",
               description="Advanced virtual interrupt controller"),
    CpuFeature("vgif", Vendor.AMD, True, kvm_param="vgif",
               description="Virtual global interrupt flag"),
    CpuFeature("vls", Vendor.AMD, True, kvm_param="vls",
               description="Virtual VMLOAD/VMSAVE"),
    CpuFeature("sev", Vendor.AMD, False, kvm_param="sev",
               description="Secure encrypted virtualization"),
    CpuFeature("lbrv", Vendor.AMD, True, kvm_param="lbrv",
               description="LBR virtualization"),
    CpuFeature("pause_filter", Vendor.AMD, True, kvm_param="pause_filter_count",
               description="PAUSE intercept filtering"),
    CpuFeature("nested", None, True, kvm_param="nested",
               description="Nested virtualization master switch"),
    CpuFeature("x2apic", None, True, qemu_flag="x2apic",
               description="x2APIC mode"),
    CpuFeature("hv_passthrough", None, False, qemu_flag="hv-passthrough",
               description="Hyper-V enlightenment passthrough"),
    CpuFeature("pt", Vendor.INTEL, False, qemu_flag="intel-pt",
               description="Intel Processor Trace"),
    CpuFeature("sgx", Vendor.INTEL, False, qemu_flag="sgx",
               description="Intel SGX enclaves"),
)

FEATURES_BY_NAME: dict[str, CpuFeature] = {f.name: f for f in FEATURES}


def features_for(vendor: Vendor) -> tuple[CpuFeature, ...]:
    """The features applicable to *vendor* (vendor-neutral ones included)."""
    return tuple(f for f in FEATURES if f.vendor is None or f.vendor is vendor)


def default_feature_map(vendor: Vendor) -> dict[str, bool]:
    """The stock enable/disable map for a default cloud vCPU."""
    return {f.name: f.default for f in features_for(vendor)}
