"""Process-safe campaign metrics: counters, gauges, histograms.

"Process-safe" here means *merge-safe*, not shared-memory: every
process (and, in inline mode, every campaign) owns a private registry
and the orchestrator folds snapshots together after the fact. That
keeps the hot-path cost of a metric to a dict operation — no locks, no
IPC — and makes the merge deterministic by construction:

* counters add;
* histograms share one fixed bucket-bound table (:data:`BUCKETS`), so
  merging is element-wise addition of counts — two registries can never
  disagree about bucket layout;
* gauges (last-observed values) merge per shard, so two shards never
  fight over one cell; merging the *same* shard twice keeps the
  maximum, the only order-independent choice.

Metrics are recorded under the current **shard** label (the worker
index, or ``None`` for orchestrator-level metrics), which is what lets
``repro telemetry-report`` show per-shard skew without any extra
plumbing at the call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fixed histogram bucket upper bounds, in seconds. The last implicit
#: bucket is +inf. Fixed — never derived from observed data — so any
#: two snapshots merge bucket-by-bucket.
BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0)


@dataclass
class Histogram:
    """Fixed-bound duration histogram (seconds)."""

    counts: list = field(default_factory=lambda: [0] * (len(BUCKETS) + 1))
    sum: float = 0.0
    count: int = 0
    min: float = float("inf")
    max: float = 0.0

    def observe(self, seconds: float) -> None:
        for i, bound in enumerate(BUCKETS):
            if seconds <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += seconds
        self.count += 1
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        return {"counts": list(self.counts), "sum": self.sum,
                "count": self.count,
                "min": self.min if self.count else None,
                "max": self.max}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(counts=list(data["counts"]), sum=data["sum"],
                   count=data["count"], max=data.get("max", 0.0))
        raw_min = data.get("min")
        hist.min = float("inf") if raw_min is None else raw_min
        return hist


@dataclass
class ShardMetrics:
    """One shard's slice of the registry."""

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def merge(self, other: "ShardMetrics") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            mine = self.gauges.get(name)
            self.gauges[name] = value if mine is None else max(mine, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(hist.to_dict())
            else:
                mine.merge(hist)


def _shard_key(shard) -> str:
    return "campaign" if shard is None else str(shard)


def _parse_shard_key(key: str):
    return None if key == "campaign" else int(key)


class MetricsRegistry:
    """All metrics of one process (or one campaign scope)."""

    def __init__(self) -> None:
        self.shards: dict = {}

    def _shard(self, shard) -> ShardMetrics:
        metrics = self.shards.get(shard)
        if metrics is None:
            metrics = self.shards[shard] = ShardMetrics()
        return metrics

    def counter(self, name: str, n: int = 1, *, shard=None) -> None:
        counters = self._shard(shard).counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float, *, shard=None) -> None:
        self._shard(shard).gauges[name] = value

    def observe(self, name: str, seconds: float, *, shard=None) -> None:
        histograms = self._shard(shard).histograms
        hist = histograms.get(name)
        if hist is None:
            hist = histograms[name] = Histogram()
        hist.observe(seconds)

    # --- aggregation ----------------------------------------------------

    def counter_total(self, name: str) -> int:
        return sum(m.counters.get(name, 0) for m in self.shards.values())

    def span_total(self, name: str) -> float:
        return sum(m.histograms[name].sum for m in self.shards.values()
                   if name in m.histograms)

    def span_names(self) -> list:
        names: set = set()
        for metrics in self.shards.values():
            names.update(metrics.histograms)
        return sorted(names)

    def counter_names(self) -> list:
        names: set = set()
        for metrics in self.shards.values():
            names.update(metrics.counters)
        return sorted(names)

    def gauge_names(self) -> list:
        names: set = set()
        for metrics in self.shards.values():
            names.update(metrics.gauges)
        return sorted(names)

    def gauge_max(self, name: str) -> float | None:
        """The largest per-shard value of a gauge (the merge rule)."""
        values = [m.gauges[name] for m in self.shards.values()
                  if name in m.gauges]
        return max(values) if values else None

    def merged_histogram(self, name: str) -> Histogram:
        merged = Histogram()
        for metrics in self.shards.values():
            hist = metrics.histograms.get(name)
            if hist is not None:
                merged.merge(hist)
        return merged

    # --- snapshots ------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready copy; merging snapshots is deterministic."""
        return {
            "buckets": list(BUCKETS),
            "shards": {
                _shard_key(shard): {
                    "counters": dict(metrics.counters),
                    "gauges": dict(metrics.gauges),
                    "histograms": {name: hist.to_dict()
                                   for name, hist in
                                   metrics.histograms.items()},
                }
                for shard, metrics in sorted(
                    self.shards.items(),
                    key=lambda kv: (kv[0] is None, kv[0]))
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` payload into this registry."""
        for key, raw in snapshot.get("shards", {}).items():
            other = ShardMetrics(
                counters=dict(raw.get("counters", {})),
                gauges=dict(raw.get("gauges", {})),
                histograms={name: Histogram.from_dict(data)
                            for name, data in
                            raw.get("histograms", {}).items()})
            self._shard(_parse_shard_key(key)).merge(other)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry
