"""Fast-path vs. legacy tracer equivalence.

The compiled fast path (marker instrumentation) and the legacy settrace
tracer must agree on the covered *line* universe: for any fixed set of
inputs, the cumulative covered lines — intersected with the instrumented
universe, which is how every coverage number in the suite is computed —
are identical in both modes. Edge sets are mode-specific by design (see
the repro.coverage.kcov module docstring), so campaign trajectories are
only compared within one mode.
"""

import pytest

from repro import NecoFuzz, Vendor
from repro.coverage.kcov import KcovTracer
from repro.fuzzer.input import FuzzInput, INPUT_SIZE
from repro.fuzzer.rng import Rng
from repro.hypervisors import HYPERVISORS

CONFIGS = [
    ("kvm", Vendor.INTEL),
    ("kvm", Vendor.AMD),
    ("xen", Vendor.INTEL),
]


def _covered(hypervisor, vendor, fast_path, n_cases=60):
    """Cumulative covered-lines of a fixed input set under one mode."""
    campaign = NecoFuzz(hypervisor=hypervisor, vendor=vendor, seed=5)
    agent = campaign.agent
    agent.tracer = KcovTracer(
        HYPERVISORS[hypervisor].nested_modules(vendor), fast_path=fast_path)
    rng = Rng(0xC0FFEE)
    for _ in range(n_cases):
        agent.run_case(FuzzInput(rng.bytes(INPUT_SIZE)))
    return agent.covered_lines(), set(agent.tracer.instrumented)


class TestTracerEquivalence:
    @pytest.mark.parametrize("hypervisor,vendor", CONFIGS,
                             ids=[f"{h}-{v.value}" for h, v in CONFIGS])
    def test_same_covered_lines_both_modes(self, hypervisor, vendor):
        fast_cov, fast_inst = _covered(hypervisor, vendor, fast_path=True)
        legacy_cov, legacy_inst = _covered(hypervisor, vendor, fast_path=False)
        assert fast_inst == legacy_inst
        assert fast_cov == legacy_cov
        assert fast_cov  # the fixed inputs exercise real code

    def test_all_target_functions_instrumented(self):
        for hypervisor, vendor in CONFIGS:
            tracer = KcovTracer(
                HYPERVISORS[hypervisor].nested_modules(vendor), fast_path=True)
            assert tracer.unswapped == ()

    def test_fast_mode_records_nothing_while_inactive(self):
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5)
        tracer = campaign.agent.tracer
        assert tracer.fast_path
        # Target code executed outside start()/stop() must not leak
        # events into the next drain.
        campaign.agent.run_case(FuzzInput(Rng(1).bytes(INPUT_SIZE)))
        campaign.agent.run_case(FuzzInput(Rng(2).bytes(INPUT_SIZE)))
        with tracer:
            pass
        lines, edges = tracer.drain()
        assert lines == set()
        assert edges == set()
