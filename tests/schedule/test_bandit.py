"""Operator-bandit invariants: determinism, posteriors, telemetry."""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.fuzzer.mutators import HAVOC_OPS
from repro.fuzzer.rng import Rng
from repro.schedule import BANDIT_ARMS, OperatorBandit
from repro.schedule.bandit import STAGE_ARMS


def _drive(bandit, steps, hits):
    """Run a fixed decision/settle trace; returns the decision log."""
    log = []
    for step in range(steps):
        bandit.begin_case()
        log.append(bandit.gate("splice"))
        for _ in range(3):
            log.append(bandit.choose_havoc())
        log.append(bandit.gate("region_havoc"))
        bandit.settle(bandit.take_ticket(), hit=hits[step % len(hits)])
    return log


class TestArms:
    def test_arms_cover_havoc_table_plus_stages(self):
        names = tuple(name for name, _ in HAVOC_OPS)
        assert BANDIT_ARMS == names + STAGE_ARMS
        assert "splice" in BANDIT_ARMS and "region_havoc" in BANDIT_ARMS

    def test_uniform_prior(self):
        bandit = OperatorBandit(Rng(1))
        assert all(bandit.alpha[a] == 1.0 and bandit.beta[a] == 1.0
                   for a in BANDIT_ARMS)


class TestDeterminism:
    @given(st.integers(0, 2**32 - 1),
           st.lists(st.booleans(), min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_equal_seeds_replay_identically(self, seed, hits):
        b1 = OperatorBandit.fork_from(Rng(seed))
        b2 = OperatorBandit.fork_from(Rng(seed))
        assert _drive(b1, 30, hits) == _drive(b2, 30, hits)
        assert b1.alpha == b2.alpha and b1.beta == b2.beta
        assert b1.uses == b2.uses and b1.hits == b2.hits

    def test_pickle_resumes_stream_exactly(self):
        reference = OperatorBandit.fork_from(Rng(9))
        tail_ref = _drive(reference, 40, [True, False, False])

        resumed = OperatorBandit.fork_from(Rng(9))
        _drive(resumed, 20, [True, False, False])
        resumed = pickle.loads(pickle.dumps(resumed))
        tail = _drive(resumed, 20, [False, True, False])
        # hits pattern offset: steps 20..39 of the reference trace use
        # hits[step % 3], which the resumed run must reproduce — feed it
        # the rotated pattern ([20 % 3] == 2 -> rotate by 2).
        assert tail == tail_ref[len(tail_ref) // 2:]

    def test_fork_is_off_main_stream(self):
        rng = Rng(123)
        before = rng.getstate()
        OperatorBandit.fork_from(rng)
        assert rng.getstate() == before


class TestLearning:
    def test_settle_updates_posteriors(self):
        bandit = OperatorBandit(Rng(2))
        bandit.settle(("bitflip1", "splice"), hit=True)
        bandit.settle(("bitflip1",), hit=False)
        assert bandit.alpha["bitflip1"] == 2.0
        assert bandit.beta["bitflip1"] == 2.0
        assert bandit.alpha["splice"] == 2.0
        assert bandit.uses["bitflip1"] == 2 and bandit.hits["bitflip1"] == 1
        assert bandit.hit_rates()["bitflip1"] == 0.5

    def test_rewarded_arm_gets_chosen_more(self):
        bandit = OperatorBandit(Rng(3))
        for _ in range(200):
            bandit.settle(("bitflip1",), hit=True)
            bandit.settle(("block_copy",), hit=False)
        chosen = [bandit.choose_havoc() for _ in range(50)]
        by_name = dict(HAVOC_OPS)
        assert chosen.count(by_name["bitflip1"]) > chosen.count(
            by_name["block_copy"])

    def test_ticket_deduplicates_preserving_order(self):
        bandit = OperatorBandit(Rng(4))
        bandit.begin_case()
        bandit._ticket = ["arith1", "splice", "arith1", "bitflip2"]
        assert bandit.take_ticket() == ("arith1", "splice", "bitflip2")
        assert bandit.take_ticket() == ()

    def test_settle_feeds_telemetry_counters(self):
        registry = telemetry.registry()
        before_uses = registry.counter_total("sched.op_uses.random_byte")
        before_hits = registry.counter_total("sched.op_hits.random_byte")
        bandit = OperatorBandit(Rng(5))
        bandit.settle(("random_byte",), hit=True)
        bandit.settle(("random_byte",), hit=False)
        assert registry.counter_total(
            "sched.op_uses.random_byte") == before_uses + 2
        assert registry.counter_total(
            "sched.op_hits.random_byte") == before_hits + 1
