"""Cross-module integration tests of the whole NecoFuzz pipeline."""

from repro import ComponentToggles, NecoFuzz, Vendor
from repro.baselines import SyzkallerCampaign
from repro.coverage.report import CoverageTable


class TestPipelineCoherence:
    def test_same_instrumented_universe_as_baselines(self):
        """NecoFuzz and the baselines must measure against identical
        instrumented-line sets or the Table-2 algebra is meaningless."""
        neco = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=2).run(20)
        syz = SyzkallerCampaign(vendor=Vendor.INTEL, seed=2).run(20)
        assert neco.instrumented_lines == syz.instrumented_lines

    def test_set_algebra_end_to_end(self):
        neco = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=2).run(60)
        syz = SyzkallerCampaign(vendor=Vendor.INTEL, seed=2).run(60)
        table = CoverageTable("t", neco.instrumented_lines)
        table.add("NecoFuzz", neco.covered_lines)
        table.add("Syzkaller", syz.covered_lines)
        table.add_algebra("NecoFuzz", "Syzkaller")
        both = table.reports["NecoFuzz∩Syzkaller"].covered_lines
        only_neco = table.reports["NecoFuzz-Syzkaller"].covered_lines
        only_syz = table.reports["Syzkaller-NecoFuzz"].covered_lines
        assert both + only_neco == table.reports["NecoFuzz"].covered_lines
        assert both + only_syz == table.reports["Syzkaller"].covered_lines

    def test_component_ablation_ordering(self):
        """The §5.3 shape at small scale: full > w/o ALL."""
        budget = 120
        full = NecoFuzz(hypervisor="kvm", vendor=Vendor.AMD, seed=8).run(budget)
        bare = NecoFuzz(hypervisor="kvm", vendor=Vendor.AMD, seed=8,
                        toggles=ComponentToggles.none()).run(budget)
        assert full.coverage_fraction > bare.coverage_fraction

    def test_validator_component_matters(self):
        budget = 120
        full = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=8).run(budget)
        no_validator = NecoFuzz(
            hypervisor="kvm", vendor=Vendor.INTEL, seed=8,
            toggles=ComponentToggles(use_validator=False)).run(budget)
        assert full.coverage_fraction >= no_validator.coverage_fraction

    def test_oracle_learns_during_campaign(self):
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=2)
        campaign.run(80)
        generators = list(campaign.agent._generators.values())
        total_entries = sum(g.oracle.entries for g in generators)
        assert total_entries > 20
        # At least one generator activated the documented validator gap.
        activated = {rule.name for g in generators
                     for rule in getattr(g.oracle, "active_rules", [])}
        # Activation depends on posted-interrupt states appearing; the
        # efer rule activates far more often. Either counts as learning.
        assert activated or total_entries > 0

    def test_crash_inputs_replayable(self):
        """A saved crash input replays to the same anomaly signature."""
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=3)
        campaign.run(400)
        if not campaign.agent.reports.reports:
            return  # nothing found in this budget: nothing to replay
        report = campaign.agent.reports.reports[0]
        from repro.core.agent import Agent, AgentConfig

        replay_agent = Agent(AgentConfig())
        outcome = replay_agent.run_case(report.fuzz_input)
        assert any(a.signature() == report.anomaly.signature()
                   for a in outcome.anomalies)


class TestWatchdogIntegration:
    def test_campaign_survives_xen_host_hangs(self):
        campaign = NecoFuzz(hypervisor="xen", vendor=Vendor.INTEL, seed=3)
        result = campaign.run(400)
        assert result.engine_stats.iterations == 400
        if result.watchdog_restarts:
            # Coverage kept accumulating after the restart(s).
            assert result.coverage_fraction > 0.3
