"""ParallelCampaign acceptance tests.

The two contract anchors from the issue:

* ``workers=1`` reproduces the serial ``NecoFuzz.run`` result exactly
  (coverage fraction, queue adds, report count, timeline) for a fixed
  seed;
* ``workers=4`` with the same budget yields a merged covered-line set
  at least as large as the serial run on the KVM/Intel quickstart.
"""

import pytest

from repro.arch.cpuid import Vendor
from repro.core.necofuzz import NecoFuzz
from repro.parallel import ParallelCampaign

SEED = 11
BUDGET = 80


@pytest.fixture(scope="module")
def serial_result():
    return NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED).run(BUDGET)


class TestSingleWorkerEqualsSerial:
    @pytest.fixture(scope="class")
    def one_worker(self):
        return ParallelCampaign(hypervisor="kvm", vendor=Vendor.INTEL,
                                seed=SEED, workers=1).run(BUDGET)

    def test_covered_lines_identical(self, serial_result, one_worker):
        assert one_worker.covered_lines == serial_result.covered_lines
        assert one_worker.instrumented_lines == serial_result.instrumented_lines

    def test_coverage_fraction_identical(self, serial_result, one_worker):
        assert one_worker.coverage_fraction == serial_result.coverage_fraction

    def test_engine_stats_identical(self, serial_result, one_worker):
        assert one_worker.engine_stats == serial_result.engine_stats

    def test_reports_identical(self, serial_result, one_worker):
        assert len(one_worker.reports) == len(serial_result.reports)
        assert ([r.iteration for r in one_worker.reports]
                == [r.iteration for r in serial_result.reports])

    def test_timeline_identical(self, serial_result, one_worker):
        assert one_worker.timeline.series() == serial_result.timeline.series()
        assert one_worker.timeline.label == serial_result.timeline.label

    def test_no_sync_traffic(self, one_worker):
        assert one_worker.engine_stats.imported == 0


class TestShardedCampaign:
    @pytest.fixture(scope="class")
    def four_workers(self):
        return ParallelCampaign(hypervisor="kvm", vendor=Vendor.INTEL,
                                seed=SEED, workers=4, sync_every=20).run(BUDGET)

    def test_merged_coverage_superset_of_serial(self, serial_result,
                                                four_workers):
        assert len(four_workers.covered_lines) >= len(serial_result.covered_lines)
        assert four_workers.instrumented_lines == serial_result.instrumented_lines

    def test_budget_conserved(self, four_workers):
        assert four_workers.engine_stats.iterations == BUDGET
        assert sum(r.engine_stats.iterations
                   for r in four_workers.per_worker) == BUDGET

    def test_sync_actually_happened(self, four_workers):
        assert four_workers.engine_stats.imported > 0

    def test_merged_covered_is_union_of_workers(self, four_workers):
        union = set()
        for result in four_workers.per_worker:
            union |= result.covered_lines
        assert four_workers.covered_lines == union

    def test_merged_virgin_map_populated(self, four_workers):
        # The OR-merged map must be at least as dense as any re-derivable
        # single-worker map would be; a zero-density map means the merge
        # dropped everything.
        assert four_workers.virgin.density() > 0

    def test_timeline_monotone_in_iterations(self, four_workers):
        iters = [p.iteration for p in four_workers.timeline.points]
        assert iters == sorted(iters)
        assert iters[-1] == BUDGET
        fractions = [p.coverage for p in four_workers.timeline.points]
        assert fractions == sorted(fractions)  # union only grows

    def test_deterministic_inline_mode(self):
        def run():
            return ParallelCampaign(
                hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                workers=3, sync_every=25).run(60)
        a, b = run(), run()
        assert a.covered_lines == b.covered_lines
        assert a.engine_stats == b.engine_stats
        assert a.timeline.series() == b.timeline.series()

    def test_uneven_budget_split(self):
        result = ParallelCampaign(hypervisor="kvm", vendor=Vendor.INTEL,
                                  seed=3, workers=3, sync_every=10).run(50)
        shares = [r.engine_stats.iterations for r in result.per_worker]
        assert shares == [17, 17, 16]
        assert result.engine_stats.iterations == 50


class TestProcessMode:
    def test_forked_workers_produce_merged_result(self, tmp_path):
        result = ParallelCampaign(
            hypervisor="kvm", vendor=Vendor.INTEL, seed=3, workers=2,
            sync_every=15, mode="process", sync_dir=tmp_path).run(30)
        assert result.engine_stats.iterations == 30
        assert len(result.per_worker) == 2
        assert result.coverage_fraction > 0.3
        # The sync directory holds both workers' queues and reports.
        assert (tmp_path / "worker-000" / "queue").is_dir()
        assert (tmp_path / "worker-001" / "queue").is_dir()


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelCampaign(workers=0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ParallelCampaign(mode="threads")

    def test_bad_sync_interval_rejected(self):
        with pytest.raises(ValueError):
            ParallelCampaign(sync_every=0)
