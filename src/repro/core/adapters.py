"""Per-hypervisor vCPU-configuration adapters (paper §3.5/§4.4).

Each adapter is "a small adapter connecting to each L0 hypervisor": it
renders a :class:`VcpuConfig` into the hypervisor's native knobs (module
parameters, command lines) and instantiates the configured hypervisor.
The rendered command line is what the real NecoFuzz's shell-script
adapter would execute; we keep it for crash reports and reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cpuid import Vendor, features_for
from repro.hypervisors.base import L0Hypervisor, VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor
from repro.hypervisors.kvm.module import KvmModuleParams
from repro.hypervisors.vbox import VboxHypervisor
from repro.hypervisors.xen import XenHypervisor


@dataclass
class HypervisorAdapter:
    """Base adapter: build + describe a configured hypervisor."""

    patched: frozenset[str] = frozenset()

    def build(self, config: VcpuConfig) -> L0Hypervisor:
        """Instantiate the configured hypervisor."""
        raise NotImplementedError

    def command_line(self, config: VcpuConfig) -> str:
        """Render the configuration as the adapter's shell command."""
        raise NotImplementedError


@dataclass
class KvmAdapter(HypervisorAdapter):
    """KVM: module reload + QEMU command line (§4.4)."""

    def build(self, config: VcpuConfig) -> KvmHypervisor:
        """Instantiate the configured hypervisor."""
        return KvmHypervisor(config, patched=self.patched)

    def command_line(self, config: VcpuConfig) -> str:
        """Render the configuration as the adapter's shell command."""
        params = KvmModuleParams.from_config(config)
        module = "kvm-intel" if config.vendor is Vendor.INTEL else "kvm-amd"
        modprobe = f"modprobe {module} {params.cmdline(config.vendor)}"
        cpu_flags = ",".join(
            f"{'+' if config.enabled(f.name) else '-'}{f.qemu_flag}"
            for f in features_for(config.vendor) if f.qemu_flag)
        qemu = (f"qemu-kvm -machine q35,accel=kvm -cpu host,{cpu_flags} "
                f"-m 512 -smp 1 -bios executor.fd")
        return f"{modprobe} && {qemu}"


@dataclass
class XenAdapter(HypervisorAdapter):
    """Xen: xl domain configuration with nestedhvm."""

    def build(self, config: VcpuConfig) -> XenHypervisor:
        """Instantiate the configured hypervisor."""
        return XenHypervisor(config, patched=self.patched)

    def command_line(self, config: VcpuConfig) -> str:
        """Render the configuration as the adapter's shell command."""
        opts = ["type='hvm'", "nestedhvm=1", "vcpus=1", "memory=512"]
        if config.vendor is Vendor.AMD and config.enabled("vgif"):
            opts.append("svm_vgif=1")
        if config.vendor is Vendor.INTEL and not config.enabled("ept"):
            opts.append("hap=0")
        return f"xl create executor.cfg  # {' '.join(opts)}"


@dataclass
class VboxAdapter(HypervisorAdapter):
    """VirtualBox: VBoxManage modifyvm switches."""

    def build(self, config: VcpuConfig) -> VboxHypervisor:
        """Instantiate the configured hypervisor."""
        return VboxHypervisor(config, patched=self.patched)

    def command_line(self, config: VcpuConfig) -> str:
        """Render the configuration as the adapter's shell command."""
        return ("VBoxManage modifyvm executor --nested-hw-virt on "
                f"--hwvirtex on --vtxvpid {'on' if config.enabled('vpid') else 'off'} "
                f"--large-pages {'on' if config.enabled('ept') else 'off'} "
                "&& VBoxHeadless --startvm executor")


#: Adapter registry keyed by hypervisor name.
ADAPTERS: dict[str, type[HypervisorAdapter]] = {
    "kvm": KvmAdapter,
    "xen": XenAdapter,
    "virtualbox": VboxAdapter,
}


def adapter_for(hypervisor: str,
                patched: frozenset[str] = frozenset()) -> HypervisorAdapter:
    """Build the adapter for a hypervisor by name."""
    try:
        return ADAPTERS[hypervisor](patched=patched)
    except KeyError:
        raise ValueError(f"unknown hypervisor {hypervisor!r}; "
                         f"known: {sorted(ADAPTERS)}") from None
