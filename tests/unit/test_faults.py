"""The deterministic fault-injection plan (repro.faults)."""

import pickle

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec, InjectedFault, WorkerKilled


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("set_on_fire")

    def test_raise_in_hook_requires_hook_name(self):
        with pytest.raises(ValueError):
            FaultSpec("raise_in_hook")

    def test_rejects_unknown_corruption_mode(self):
        with pytest.raises(ValueError):
            FaultSpec("corrupt_sync", corrupt="scramble")


class TestFaultPlan:
    def test_case_fault_matches_worker_and_case(self):
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=5)])
        assert plan.take_case_fault(0, 5) is None
        assert plan.take_case_fault(1, 4) is None
        spec = plan.take_case_fault(1, 5)
        assert spec is not None and spec.kind == "kill_worker"

    def test_specs_fire_exactly_once(self):
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=5)])
        assert plan.take_case_fault(1, 5) is not None
        assert plan.take_case_fault(1, 5) is None
        assert plan.exhausted

    def test_wildcard_worker_matches_any(self):
        plan = FaultPlan([FaultSpec("delay_case", at_case=2, seconds=0.0)])
        assert plan.take_case_fault(3, 2) is not None

    def test_sync_fault_matches_export_round(self):
        plan = FaultPlan([FaultSpec("corrupt_sync", worker=0, at_export=2)])
        assert plan.take_sync_fault(0, 1) is None
        assert plan.take_sync_fault(0, 2) is not None

    def test_hook_fault_matches_name(self):
        plan = FaultPlan([FaultSpec("raise_in_hook", hook="kvm.run")])
        assert plan.take_hook_fault("xen.run", None) is None
        assert plan.take_hook_fault("kvm.run", None) is not None

    def test_disarm_consumes_matching_spec(self):
        plan = FaultPlan([FaultSpec("kill_worker", worker=2, at_case=9)])
        assert plan.disarm(2, ("kill_worker",))
        assert plan.take_case_fault(2, 9) is None
        assert not plan.disarm(2, ("kill_worker",))  # nothing left

    def test_plan_round_trips_through_pickle(self):
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=5),
                          FaultSpec("corrupt_sync", corrupt="garbage")])
        plan.take_case_fault(1, 5)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.consumed == plan.consumed
        assert clone.take_case_fault(1, 5) is None
        assert clone.take_sync_fault(1, 1) is not None


class TestGlobalInstallation:
    def test_injected_scopes_installation(self):
        plan = FaultPlan()
        assert faults.active() is None
        with faults.injected(plan):
            assert faults.active() is plan
        assert faults.active() is None

    def test_hook_is_inert_without_a_plan(self):
        faults.hook("kvm.run")  # must not raise

    def test_hook_raises_injected_fault(self):
        plan = FaultPlan([FaultSpec("raise_in_hook", hook="oracle.verify")])
        with faults.injected(plan):
            with pytest.raises(InjectedFault) as excinfo:
                faults.hook("oracle.verify")
        assert excinfo.value.hook == "oracle.verify"
        assert plan.fired == [("raise_in_hook", None, "oracle.verify")]

    def test_hook_respects_current_worker(self):
        plan = FaultPlan([FaultSpec("raise_in_hook", hook="kvm.run",
                                    worker=1)])
        with faults.injected(plan):
            faults.set_current_worker(0)
            try:
                faults.hook("kvm.run")  # wrong worker: no fire
                faults.set_current_worker(1)
                with pytest.raises(InjectedFault):
                    faults.hook("kvm.run")
            finally:
                faults.set_current_worker(None)

    def test_worker_killed_is_not_an_exception(self):
        # The engine's case isolation catches Exception; a simulated
        # worker death must not be absorbable there.
        assert not issubclass(WorkerKilled, Exception)
