"""IRIS baseline (Cesarano et al., DSN'23) — record and replay.

IRIS collects hardware-assisted-virtualization traces from *well-behaved*
guest OS executions and replays them as fuzzing seeds, mutating VMCS
data within the hypervisor. Two properties matter for the paper's
comparison (§5.1/§5.2):

* seeds come from well-behaved OSes, so "VM state diversity is limited"
  — coverage of valid paths saturates almost immediately;
* it does not support nested virtualization and "was unstable in the
  nested environment and crashed after a few minutes" — the campaign
  terminates early and the paper reports coverage at termination.

It is Intel-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeline import CoverageTimeline
from repro.arch.cpuid import Vendor
from repro.baselines.common import BaselineHarness
from repro.core.necofuzz import CampaignResult
from repro.core.templates import VMCS12_GPA, VMXON_GPA
from repro.fuzzer.rng import Rng
from repro.hypervisors.base import GuestInstruction, VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F

#: Exit-triggering instructions observed in a recorded boot trace of a
#: well-behaved guest (the replay corpus).
_RECORDED_TRACE = (
    ("cpuid", {}), ("wrmsr", {"msr": 0xC0000080, "value": 0xD01}),
    ("mov_cr", {"cr": 0, "write": 1, "value": 0x80000033}),
    ("mov_cr", {"cr": 4, "write": 1, "value": 0x2020}),
    ("in", {"port": 0x64}), ("out", {"port": 0x70, "value": 0x8F}),
    ("rdmsr", {"msr": 0x1B}), ("rdtsc", {}), ("hlt", {}),
    ("cpuid", {}), ("pause", {}),
)

#: IRIS crashes a few virtual minutes into a nested run.
CRASH_AFTER_ITERATIONS = 40


@dataclass
class IrisCampaign:
    """A record-and-replay run that terminates early under nesting."""

    vendor: Vendor = Vendor.INTEL
    seed: int = 1
    iterations_per_hour: float = 10.0

    def __post_init__(self) -> None:
        if self.vendor is not Vendor.INTEL:
            raise ValueError("IRIS is limited to Intel processors (§5.1)")
        self.rng = Rng(self.seed)
        self.harness = BaselineHarness("IRIS", self.vendor, KvmHypervisor)
        self.config = VcpuConfig.default(self.vendor)
        self.timeline = CoverageTimeline("IRIS", self.iterations_per_hour)
        self.crashed = False

    def run(self, iterations: int, *, sample_every: int = 5) -> CampaignResult:
        """Replay mutated traces until the instability kicks in."""
        budget = min(iterations, CRASH_AFTER_ITERATIONS)
        for i in range(1, budget + 1):
            hv = KvmHypervisor(self.config)
            self.harness.run_case(hv, self._replay_program())
            if i % sample_every == 0 or i == budget:
                self.timeline.record(i, self.harness.coverage_fraction)
        if iterations > CRASH_AFTER_ITERATIONS:
            self.crashed = True  # the tool is gone; coverage freezes
        return self.harness.result(self.timeline)

    def _replay_program(self):
        """One replayed trace with IRIS's light VMCS mutation."""
        rng = self.rng.fork(self.rng.u32())
        vmcs12 = golden_vmcs()
        # IRIS mutates VMCS data recorded from valid runs: small
        # perturbations of a few fields, biased to stay plausible.
        writable = F.WRITABLE_FIELDS
        for _ in range(rng.below(3)):
            spec = writable[rng.below(len(writable))]
            value = vmcs12.read(spec.encoding)
            vmcs12.write(spec.encoding, value ^ (1 << rng.below(min(spec.bits, 16))))

        def program(hv: KvmHypervisor) -> None:
            vcpu = hv.create_vcpu()

            def run(mnemonic: str, level: int = 1, **operands: int):
                return hv.execute(vcpu, GuestInstruction(
                    mnemonic, operands, level=level))

            run("vmxon", addr=VMXON_GPA)
            run("vmclear", addr=VMCS12_GPA)
            run("vmptrld", addr=VMCS12_GPA)
            for spec, value in vmcs12.fields():
                if spec.group is not F.FieldGroup.READ_ONLY:
                    run("vmwrite", field=spec.encoding, value=value)
            result = run("vmlaunch")
            if result.level == 2:
                for mnemonic, operands in _RECORDED_TRACE:
                    out = run(mnemonic, level=2, **operands)
                    if out.level == 1:
                        run("vmresume")

        return program
