"""The simulated Oracle VirtualBox host hypervisor (7.0.12 analogue).

Intel-only: the paper's VirtualBox finding (CVE-2024-21106) is on VT-x.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpuid import Vendor
from repro.arch.msr import MsrFile
from repro.hypervisors.base import (
    ExecResult,
    GuestInstruction,
    L0Hypervisor,
    VcpuConfig,
)
from repro.hypervisors.l2map import INTEL_L2_EXITS
from repro.hypervisors.memory import GuestMemory
from repro.hypervisors.vbox.nested_vmx import VboxNestedState, VboxNestedVmx

VMX_MNEMONICS = frozenset(VboxNestedVmx.HANDLERS)


@dataclass
class VboxVcpu:
    """One vCPU of the L1 guest."""

    memory: GuestMemory
    nested: VboxNestedState = field(default_factory=VboxNestedState)
    msrs: MsrFile = field(default_factory=MsrFile)

    @property
    def level(self) -> int:
        """Guest level currently executing (1 or 2)."""
        return 2 if self.nested.guest_mode else 1


class VboxHypervisor(L0Hypervisor):
    """L0 VirtualBox with nested VT-x enabled."""

    name = "virtualbox"

    def __init__(self, config: VcpuConfig,
                 patched: frozenset[str] = frozenset()) -> None:
        if config.vendor is not Vendor.INTEL:
            raise ValueError("the VirtualBox model supports Intel VT-x only")
        super().__init__(config)
        self.memory = GuestMemory()
        self.patched = patched
        from repro.vmx.msr_caps import capabilities_for_features

        self.nested_vmx = VboxNestedVmx(
            self, self.memory,
            caps=capabilities_for_features(config.features),
            patched=patched)

    def create_vcpu(self) -> VboxVcpu:
        """Create the (single) vCPU of the fuzz-harness VM."""
        return VboxVcpu(self.memory)

    def execute(self, vcpu: VboxVcpu, instr: GuestInstruction) -> ExecResult:
        """Execute one guest instruction at its requested level."""
        if self.crashed:
            return ExecResult.fault("host is down")
        if instr.level == 2 and vcpu.level == 2:
            return self._execute_l2(vcpu, instr)
        if instr.mnemonic in VMX_MNEMONICS:
            return self.nested_vmx.handle(vcpu.nested, instr)
        if instr.mnemonic == "rdmsr":
            return ExecResult.success("rdmsr", value=vcpu.msrs.read(instr.op("msr")))
        if instr.mnemonic == "wrmsr":
            vcpu.msrs.write(instr.op("msr"), instr.op("value"))
            return ExecResult.success("wrmsr")
        if instr.mnemonic == "mov_cr" and instr.op("cr") == 4:
            vcpu.nested.cr4 = instr.op("value")
            return ExecResult.success("mov cr4")
        return ExecResult.success(f"{instr.mnemonic} emulated", value=0)

    def _execute_l2(self, vcpu: VboxVcpu, instr: GuestInstruction) -> ExecResult:
        reason = INTEL_L2_EXITS.get(instr.mnemonic)
        if reason is None:
            return ExecResult.success("no exit", level=2)
        vmcs12 = self.nested_vmx.get_vmcs12(vcpu.nested)
        if vmcs12 is None:
            return ExecResult.fault("L2 active without VMCS12")
        if self.nested_vmx.l1_wants_exit(vmcs12, reason, instr):
            self.nested_vmx.vmexit_to_l1(vcpu.nested, vmcs12, int(reason),
                                         qualification=instr.op("value"))
            return ExecResult.success(f"L2 exit {reason.name} -> L1",
                                      exit_reason=int(reason), level=1)
        return ExecResult.success(f"L2 exit {reason.name} handled by VBox",
                                  level=2, exit_reason=int(reason))

    @staticmethod
    def nested_modules(vendor: Vendor):
        """The module coverage is restricted to."""
        from repro.hypervisors.vbox import nested_vmx

        return (nested_vmx,)
