"""Coverage-guided fuzzing main loop (the AFL++ role).

The engine owns the seed queue and the virgin map; the *executor
callback* (provided by the agent) runs one input against the target and
reports back a :class:`RunFeedback`. Setting ``coverage_guided=False``
turns the engine into the breadth-first black-box fuzzer evaluated in
Table 5: inputs are fresh mutations of the seeds and the feedback bitmap
is ignored.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro import telemetry
from repro.coverage.bitmap import CoverageBitmap, VirginMap
from repro.faults import InjectedFault
from repro.fuzzer.crashes import CrashStore, atomic_write_bytes
from repro.fuzzer.input import (
    CONFIG_REGION,
    HARNESS_REGION,
    INPUT_SIZE,
    MUTATION_REGION,
    VM_STATE_REGION,
    FuzzInput,
)
from repro.fuzzer.mutators import mutate_candidate
from repro.fuzzer.queue import SeedQueue
from repro.fuzzer.rng import Rng
from repro.schedule.bandit import OperatorBandit
from repro.schedule.power import FlatSchedule, PowerSchedule

#: The partitions region-aware havoc keeps in motion.
_REGIONS = (VM_STATE_REGION, MUTATION_REGION, HARNESS_REGION, CONFIG_REGION)


@dataclass
class RunFeedback:
    """What one target execution reported back to the engine."""

    bitmap: CoverageBitmap
    crashed: bool = False
    anomaly: str | None = None
    #: Source lines this case covered (fast-path tracer). Stored with
    #: queue entries so protocol-v2 sync partners that skip a subsumed
    #: import can still absorb its line coverage. None when the
    #: executor does not track lines.
    lines: frozenset | None = None


@dataclass
class EngineStats:
    """Campaign counters."""

    iterations: int = 0
    queue_adds: int = 0
    crashes: int = 0
    anomalies: int = 0
    last_find: int = 0
    #: Sync-partner cases executed via :meth:`FuzzEngine.import_case`
    #: (not counted in ``iterations`` — they are not mutation budget).
    imported: int = 0
    #: Exceptions that escaped the target/oracle and were isolated at
    #: the case boundary instead of killing the campaign.
    case_exceptions: int = 0
    #: Corrupt corpus entries (truncated / invalid JSON) skipped by
    #: :meth:`FuzzEngine.import_case` instead of raising.
    import_skipped: int = 0
    #: Protocol-v2 imports consumed *without* execution because their
    #: recorded coverage was already subsumed by the local virgin map.
    #: Counted inside ``imported`` as well; kept out of the campaign
    #: fingerprint so v1 and v2 runs stay comparable.
    imports_skipped_subsumed: int = 0


ExecuteFn = Callable[[FuzzInput], RunFeedback]


@dataclass
class FuzzEngine:
    """The fuzzing loop."""

    execute: ExecuteFn
    rng: Rng
    coverage_guided: bool = True
    queue: SeedQueue = field(default_factory=SeedQueue)
    virgin: VirginMap = field(default_factory=VirginMap)
    stats: EngineStats = field(default_factory=EngineStats)
    crash_inputs: list[tuple[FuzzInput, str]] = field(default_factory=list)
    #: Case-boundary crash isolation: an exception escaping ``execute``
    #: is triaged here instead of killing the campaign. ``None`` still
    #: isolates (counted in ``stats.case_exceptions``) but keeps no
    #: deduplicated records and persists no reproducers.
    crashes: CrashStore | None = None
    #: Optional batched warm hook (the agent's columnar pre-pass): called
    #: with the whole tick's candidates before any of them executes. A
    #: warm pass may only seed value-keyed caches — it must not change
    #: results — so failures are contained here rather than charged to
    #: any case.
    warm_batch: Callable[[list[FuzzInput]], None] | None = None
    #: Seed-selection strategy (DESIGN.md §16). The default flat
    #: schedule delegates to ``queue.pick`` verbatim, pinning campaign
    #: fingerprints to the pre-schedule behaviour; the fast schedule
    #: weights entries by energy and distills the corpus periodically.
    schedule: PowerSchedule = field(default_factory=FlatSchedule)
    #: Operator bandit (fast schedule only). When set, havoc operators
    #: come from Thompson sampling on the bandit's private RNG stream
    #: and every folded case's feedback updates the posteriors. None
    #: (flat mode) keeps the uniform draw and its fingerprints.
    bandit: OperatorBandit | None = None

    def __post_init__(self) -> None:
        # Scratch feedback for isolated cases: an escaped exception left
        # no usable bitmap, so the engine reports an empty one.
        self._fault_bitmap = CoverageBitmap()
        # FIFO of bandit tickets: step_batch hoists candidate creation,
        # so per-case op lists queue here until the case's feedback
        # folds. Plain list of tuples — pickles with the engine.
        self._tickets: list[tuple[str, ...]] = []

    def add_seed(self, data: bytes) -> None:
        """Register one initial seed."""
        self.queue.add_seed(FuzzInput.normalize(data))

    def _next_input(self) -> FuzzInput:
        """Produce the next candidate via seed selection + mutation.

        With a bandit, the ops applied to this candidate are collected
        on a ticket and queued; :meth:`_fold` settles tickets in the
        same order, so credit assignment survives batch hoisting.
        """
        if self.bandit is not None:
            self.bandit.begin_case()
        if not len(self.queue):
            candidate = FuzzInput(self.rng.bytes(INPUT_SIZE))
        else:
            entry = self.schedule.pick(self.queue, self.rng)
            partner = None
            if len(self.queue) > 1:
                # Flat mode: the historical 10% coin from the main
                # stream. Fast mode: the bandit's learned splice gate,
                # drawn from its private stream.
                splice_now = (self.rng.chance(0.1) if self.bandit is None
                              else self.bandit.gate("splice"))
                if splice_now:
                    partner = self.queue.pick_other(self.rng, entry).data
            candidate = FuzzInput(mutate_candidate(
                entry.data, self.rng, _REGIONS, partner, bandit=self.bandit))
        if self.bandit is not None:
            self._tickets.append(self.bandit.take_ticket())
        return candidate

    def _execute_isolated(self, candidate: FuzzInput) -> RunFeedback:
        """Run one case with crash isolation at the case boundary.

        An exception escaping the hypervisor model or the oracle is
        triaged (signature-deduplicated, persisted as a reproducer when
        a crash directory is configured) and converted into a crashed
        :class:`RunFeedback`, so the campaign keeps running. Simulated
        worker deaths (:class:`repro.faults.WorkerKilled`) derive from
        ``BaseException`` and pass straight through.
        """
        try:
            with telemetry.span("case.execute"):
                return self.execute(candidate)
        except Exception as exc:
            self.stats.case_exceptions += 1
            telemetry.counter("engine.case_exceptions")
            with telemetry.span("case.triage"):
                anomaly = f"case-exception: {type(exc).__name__}: {exc}"
                if self.crashes is not None:
                    # Injected faults are input-independent one-shots:
                    # re-executing for minimization would consume *other*
                    # pending specs and prove nothing about the input.
                    reexecute = None if isinstance(exc, InjectedFault) else (
                        lambda raw: self.execute(
                            FuzzInput(FuzzInput.normalize(raw))))
                    record, _ = self.crashes.record(
                        exc, candidate.data, self.stats.iterations,
                        reexecute=reexecute)
                    anomaly = f"case-exception: {record.signature}"
            self._fault_bitmap.reset()
            return RunFeedback(bitmap=self._fault_bitmap, crashed=True,
                               anomaly=anomaly)

    def step(self) -> RunFeedback:
        """One fuzzing iteration: mutate, execute, triage."""
        self.stats.iterations += 1
        candidate = self._next_input()
        feedback = self._execute_isolated(candidate)
        return self._fold(candidate, feedback)

    def step_batch(self, count: int) -> list[RunFeedback]:
        """Execute *count* mutated cases as one batch (DESIGN.md §12).

        Candidate generation is hoisted to the start of the tick, then
        the warm hook sees the whole batch columnwise before any case
        executes; execution and feedback folding stay strictly in case
        order. At ``count == 1`` this is bit-identical to :meth:`step`;
        at larger sizes the trajectory is still deterministic, but a
        mid-tick finding joins the queue one tick later than
        incremental scheduling would place it.

        Exception accounting is per case, not per batch: a poisoned
        case is isolated by ``_execute_isolated`` exactly like in
        :meth:`step`, and the remaining lanes run normally.
        """
        candidates = []
        for _ in range(count):
            self.stats.iterations += 1
            candidates.append(self._next_input())
        telemetry.observe("batch.size", float(len(candidates)))
        if self.warm_batch is not None and len(candidates) > 1:
            try:
                self.warm_batch(candidates)
            except Exception:
                # The warm pass only seeds caches; a failure there must
                # neither kill the batch nor count against any case.
                telemetry.counter("batch.warm_errors")
        feedbacks = []
        with telemetry.span("case.execute_batch"):
            for candidate in candidates:
                feedback = self._execute_isolated(candidate)
                feedbacks.append(self._fold(candidate, feedback))
        return feedbacks

    def _fold(self, candidate: FuzzInput, feedback: RunFeedback) -> RunFeedback:
        """Fold one case's feedback into queue/virgin/stats state."""
        telemetry.counter("engine.cases")
        if feedback.crashed or feedback.anomaly:
            self.stats.crashes += feedback.crashed
            self.stats.anomalies += feedback.anomaly is not None
            self.crash_inputs.append((candidate, feedback.anomaly or "crash"))
            telemetry.counter("engine.crashes", int(feedback.crashed))
            telemetry.counter("engine.anomalies",
                              int(feedback.anomaly is not None))
        new_bits = self.virgin.has_new_bits(feedback.bitmap)
        if self.coverage_guided:
            if new_bits:
                self.queue.add_finding(
                    candidate.data, self.stats.iterations, new_bits,
                    coverage=feedback.bitmap.sparse_classified(),
                    lines=feedback.lines, crashed=feedback.crashed,
                    anomaly=feedback.anomaly is not None)
                self.stats.queue_adds += 1
                self.stats.last_find = self.stats.iterations
                telemetry.counter("engine.queue_adds")
        # else: black-box mode still merges the map (above) so external
        # observers can measure coverage, but scheduling ignores it.
        if self.bandit is not None and self._tickets:
            # "Hit" means coverage novelty: the ops on this case's
            # ticket steered the target somewhere the virgin map had
            # not seen. Crashes without new bits are already dedupable
            # by signature and do not reward the operators.
            self.bandit.settle(self._tickets.pop(0), hit=new_bits > 0)
        telemetry.gauge("engine.queue_depth", len(self.queue))
        telemetry.gauge("engine.corpus_bytes", len(self.queue) * INPUT_SIZE)
        return feedback

    def run(self, iterations: int) -> EngineStats:
        """Run *iterations* fuzzing steps."""
        for _ in range(iterations):
            self.step()
        return self.stats

    def _decode_entry(self, payload: bytes) -> bytes | None:
        """Decode one on-disk corpus entry; ``None`` when corrupt.

        Two shapes are accepted: a raw queue entry (exactly
        ``INPUT_SIZE`` bytes, what :meth:`save_corpus` writes) and a
        JSON crash reproducer (``repro.fuzzer.crashes`` schema). A
        truncated raw entry, malformed JSON, or a reproducer missing or
        mis-encoding its input field all decode to ``None`` — the
        artifacts a partner crashing mid-write can leave behind.
        """
        if payload.lstrip()[:1] == b"{":
            try:
                meta = json.loads(payload)
                data = bytes.fromhex(meta["input"])
            except (ValueError, KeyError, TypeError):
                return None
            return data if data else None
        if len(payload) != INPUT_SIZE:
            return None
        return payload

    def import_case(self, data: bytes) -> int | None:
        """Execute a sync partner's queue entry and keep it if novel.

        This is AFL's ``sync_fuzzers`` behaviour: the case runs against
        the local target and joins the queue only when it lights up new
        virgin-map bits here. Imported executions do not count against
        the mutation-iteration budget; they are tracked separately in
        ``stats.imported``. Returns the tri-state new-bits value, or
        ``None`` for a corrupt entry, which is skipped and counted in
        ``stats.import_skipped`` rather than raised on — a partner
        crashing mid-write must not take this worker down with it.
        """
        decoded = self._decode_entry(data)
        if decoded is None:
            self.stats.import_skipped += 1
            return None
        return self._run_import(decoded)

    def _run_import(self, data: bytes) -> int:
        """Execute one decoded partner input; queue it when novel here."""
        candidate = FuzzInput(FuzzInput.normalize(data))
        feedback = self._execute_isolated(candidate)
        self.stats.imported += 1
        telemetry.counter("engine.imports")
        if feedback.crashed or feedback.anomaly:
            self.stats.crashes += feedback.crashed
            self.stats.anomalies += feedback.anomaly is not None
            self.crash_inputs.append((candidate, feedback.anomaly or "crash"))
        new_bits = self.virgin.has_new_bits(feedback.bitmap)
        if new_bits and self.coverage_guided:
            self.queue.add_finding(candidate.data, self.stats.iterations,
                                   new_bits, imported=True,
                                   coverage=feedback.bitmap.sparse_classified(),
                                   lines=feedback.lines,
                                   crashed=feedback.crashed,
                                   anomaly=feedback.anomaly is not None)
        return new_bits

    def import_batch(self, payloads: list[bytes]) -> list[int | None]:
        """:meth:`import_case` over a batch, warming columnwise first.

        Corrupt entries are skipped and counted per entry exactly as in
        the single-case path; the decodable remainder is handed to the
        warm hook as one batch, then executed in order.
        """
        decoded = [self._decode_entry(payload) for payload in payloads]
        runnable = [FuzzInput(FuzzInput.normalize(data))
                    for data in decoded if data is not None]
        if self.warm_batch is not None and len(runnable) > 1:
            try:
                self.warm_batch(runnable)
            except Exception:
                telemetry.counter("batch.warm_errors")
        results: list[int | None] = []
        for data in decoded:
            if data is None:
                self.stats.import_skipped += 1
                results.append(None)
            else:
                results.append(self._run_import(data))
        return results

    def import_packed(self, record) -> int:
        """Execute one already-decoded protocol-v2 partner record."""
        return self._run_import(record.data)

    def import_subsumed(self, record, absorb_lines=None) -> None:
        """Consume a protocol-v2 record without executing it.

        The sync layer calls this when *record*'s shipped coverage is
        fully subsumed by the local virgin map: executing it could not
        light up new bits, so only the bookkeeping — and, through
        *absorb_lines*, the shipped line coverage — is applied.
        """
        self.stats.imported += 1
        self.stats.imports_skipped_subsumed += 1
        telemetry.counter("engine.imports")
        telemetry.counter("engine.imports_subsumed")
        if absorb_lines is not None and record.lines:
            absorb_lines(record.lines)

    def import_subsumed_batch(self, count: int) -> None:
        """Bookkeeping for *count* partner records elided by the
        coverage plane (DESIGN.md §15) without ever crossing the wire
        or the disk.

        Count-for-count identical to calling :meth:`import_subsumed`
        once per record — the relay proved subsumption from the
        receiver's own pushed virgin map, so the per-record decision is
        reproduced exactly. Line coverage travels separately (one
        unioned payload) and is absorbed by the caller.
        """
        if count <= 0:
            return
        self.stats.imported += count
        self.stats.imports_skipped_subsumed += count
        telemetry.counter("engine.imports", count)
        telemetry.counter("engine.imports_subsumed", count)

    # --- corpus persistence (AFL queue-directory style) -----------------

    def save_corpus(self, directory, *, exclude_imported: bool = False) -> int:
        """Write every queue entry to *directory* as ``id:NNNNNN`` files.

        Returns the number of entries written. The format matches AFL's
        queue directory closely enough to eyeball with the same habits.
        With ``exclude_imported=True`` only locally discovered entries
        are exported — what a sync partner wants to read, since entries
        it handed us would only ping-pong back. The queue is append-only,
        so indices are stable across repeated incremental saves.

        Every entry is written atomically (``*.tmp`` + ``os.replace``):
        a worker dying mid-export leaves at worst a ``*.tmp`` orphan,
        never a truncated entry a partner could half-import.
        """
        from pathlib import Path

        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        entries = [e for e in self.queue.entries
                   if not (exclude_imported and e.imported)]
        for index, entry in enumerate(entries):
            suffix = f",found:{entry.found_at}" if entry.found_at else ",seed"
            atomic_write_bytes(path / f"id:{index:06d}{suffix}", entry.data)
        return len(entries)

    def load_corpus(self, directory) -> int:
        """Seed the queue from a directory written by :meth:`save_corpus`.

        Returns the number of inputs loaded. Files are loaded in sorted
        order so resumed campaigns are deterministic.
        """
        from pathlib import Path

        count = 0
        for file in sorted(Path(directory).iterdir()):
            if file.is_file() and not file.name.endswith(".tmp"):
                self.add_seed(file.read_bytes())
                count += 1
        return count
