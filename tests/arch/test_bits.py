"""Unit tests for the bit-manipulation helpers."""

import pytest

from repro.arch import bits


class TestBitBasics:
    def test_bit_positions(self):
        assert bits.bit(0) == 1
        assert bits.bit(7) == 0x80
        assert bits.bit(63) == 1 << 63

    def test_bit_negative_rejected(self):
        with pytest.raises(ValueError):
            bits.bit(-1)

    def test_mask(self):
        assert bits.mask(0) == 0
        assert bits.mask(3) == 0b111
        assert bits.mask(64) == (1 << 64) - 1

    def test_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            bits.mask(-2)

    def test_field_mask(self):
        assert bits.field_mask(4, 7) == 0xF0
        assert bits.field_mask(0, 0) == 1

    def test_field_mask_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            bits.field_mask(5, 3)


class TestExtractDeposit:
    def test_extract(self):
        assert bits.extract(0xABCD, 4, 7) == 0xC
        assert bits.extract(0xFF00, 8, 15) == 0xFF
        assert bits.extract(0, 0, 63) == 0

    def test_deposit(self):
        assert bits.deposit(0, 4, 7, 0xC) == 0xC0
        assert bits.deposit(0xFFFF, 0, 3, 0) == 0xFFF0

    def test_deposit_truncates_wide_field(self):
        # A value wider than the destination is silently truncated,
        # matching hardware register-write semantics.
        assert bits.deposit(0, 0, 3, 0x1F) == 0xF

    def test_roundtrip(self):
        value = bits.deposit(0x1234, 8, 11, 0x9)
        assert bits.extract(value, 8, 11) == 0x9


class TestSingleBitOps:
    def test_test_bit(self):
        assert bits.test_bit(0b100, 2)
        assert not bits.test_bit(0b100, 1)

    def test_set_clear_flip(self):
        assert bits.set_bit(0, 5) == 32
        assert bits.clear_bit(32, 5) == 0
        assert bits.flip_bit(0, 5) == 32
        assert bits.flip_bit(32, 5) == 0

    def test_assign_bit(self):
        assert bits.assign_bit(0, 3, True) == 8
        assert bits.assign_bit(8, 3, False) == 0


class TestArithmetic:
    def test_truncate(self):
        assert bits.truncate(0x1FF, 8) == 0xFF
        assert bits.truncate(0x1FF, 16) == 0x1FF

    def test_popcount(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0xFF) == 8
        assert bits.popcount(0b1010101) == 4

    def test_hamming(self):
        assert bits.hamming(0, 0) == 0
        assert bits.hamming(0b1111, 0) == 4
        assert bits.hamming(0xFF, 0x0F, width=4) == 0  # truncated equal

    def test_bytes_hamming(self):
        assert bits.bytes_hamming(b"\x00\x00", b"\xff\x00") == 8
        assert bits.bytes_hamming(b"", b"") == 0

    def test_bytes_hamming_length_mismatch(self):
        with pytest.raises(ValueError):
            bits.bytes_hamming(b"\x00", b"\x00\x00")

    def test_sign_extend(self):
        assert bits.sign_extend(0x80, 8) == -128
        assert bits.sign_extend(0x7F, 8) == 127
        assert bits.sign_extend(0xFFFF, 16) == -1

    def test_sign_extend_canonical_address(self):
        # Bit 47 set -> upper bits become ones (canonical high half).
        extended = bits.sign_extend(0x8000_0000_0000, 48) & ((1 << 64) - 1)
        assert extended == 0xFFFF_8000_0000_0000


class TestAlignment:
    def test_is_aligned(self):
        assert bits.is_aligned(0x1000, 4096)
        assert not bits.is_aligned(0x1001, 4096)
        assert bits.is_aligned(0, 16)

    def test_is_aligned_bad_alignment(self):
        with pytest.raises(ValueError):
            bits.is_aligned(4, 3)

    def test_align_down(self):
        assert bits.align_down(0x1FFF, 4096) == 0x1000
        assert bits.align_down(0x1000, 4096) == 0x1000

    def test_align_down_bad_alignment(self):
        with pytest.raises(ValueError):
            bits.align_down(7, 0)
