"""x86 fault/event model.

VM entries can inject events; VM exits report them; nested hypervisors
must translate both across VMCS levels. We model the architectural event
vectors and the interruption-information field format shared by the
VM-entry interruption info and the VM-exit/IDT-vectoring info fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.arch.bits import bit, extract


class Vector(IntEnum):
    """Architectural exception vectors (SDM Vol. 3, 6.15)."""

    DE = 0    # divide error
    DB = 1    # debug
    NMI = 2
    BP = 3    # breakpoint
    OF = 4    # overflow
    BR = 5    # bound range
    UD = 6    # invalid opcode
    NM = 7    # device not available
    DF = 8    # double fault
    TS = 10   # invalid TSS
    NP = 11   # segment not present
    SS = 12   # stack fault
    GP = 13   # general protection
    PF = 14   # page fault
    MF = 16   # x87 FP
    AC = 17   # alignment check
    MC = 18   # machine check
    XM = 19   # SIMD FP
    VE = 20   # virtualization exception


class EventType(IntEnum):
    """Interruption-info "type" field values (SDM 24.8.3)."""

    EXTERNAL_INTERRUPT = 0
    NMI = 2
    HARDWARE_EXCEPTION = 3
    SOFTWARE_INTERRUPT = 4
    PRIVILEGED_SOFTWARE_EXCEPTION = 5
    SOFTWARE_EXCEPTION = 6
    OTHER_EVENT = 7


#: Vectors that push an error code when delivered as hardware exceptions.
ERROR_CODE_VECTORS = frozenset({
    Vector.DF, Vector.TS, Vector.NP, Vector.SS, Vector.GP, Vector.PF, Vector.AC,
})


@dataclass(frozen=True)
class InterruptionInfo:
    """Decoded VM-entry/exit interruption-information field."""

    vector: int
    event_type: "EventType | int"
    deliver_error_code: bool
    valid: bool

    VALID_BIT = bit(31)
    ERROR_CODE_BIT = bit(11)

    @classmethod
    def decode(cls, raw: int) -> "InterruptionInfo":
        """Decode the 32-bit interruption-information format.

        The reserved type encoding (1) is preserved as a plain int so
        that consistency checking can reject it.
        """
        raw_type = extract(raw, 8, 10)
        try:
            event_type: EventType | int = EventType(raw_type)
        except ValueError:
            event_type = raw_type
        return cls(
            vector=extract(raw, 0, 7),
            event_type=event_type,
            deliver_error_code=bool(raw & cls.ERROR_CODE_BIT),
            valid=bool(raw & cls.VALID_BIT),
        )

    def encode(self) -> int:
        """Encode back to the architectural 32-bit format."""
        raw = self.vector | (int(self.event_type) << 8)
        if self.deliver_error_code:
            raw |= self.ERROR_CODE_BIT
        if self.valid:
            raw |= self.VALID_BIT
        return raw

    def consistent(self) -> bool:
        """SDM 26.2.1.3 VM-entry event-injection consistency rules."""
        if not self.valid:
            return True
        if not isinstance(self.event_type, EventType):
            return False  # reserved type encoding
        if self.event_type == EventType.NMI and self.vector != Vector.NMI:
            return False
        if (
            self.event_type == EventType.HARDWARE_EXCEPTION
            and self.vector > 31
        ):
            return False
        if self.deliver_error_code:
            if self.event_type != EventType.HARDWARE_EXCEPTION:
                return False
            if self.vector not in ERROR_CODE_VECTORS:
                return False
        return True


class GuestFault(Exception):
    """An exception raised *inside* a simulated guest context.

    Carries the architectural vector so L0/L1 emulation can decide
    whether to reflect, inject, or escalate it.
    """

    def __init__(self, vector: Vector, error_code: int | None = None,
                 message: str = "") -> None:
        self.vector = vector
        self.error_code = error_code
        super().__init__(message or f"guest fault #{vector.name}")


class TripleFault(Exception):
    """Unrecoverable fault cascade — shuts down the faulting VM level."""


class HostCrash(Exception):
    """The simulated L0 hypervisor (or whole host) crashed or hung.

    Raised by seeded vulnerabilities whose real-world effect is a host
    panic or hang (paper Table 6, "Host Crash"); caught by the agent's
    watchdog, which restarts the hypervisor (paper §3.2).
    """

    def __init__(self, message: str, *, hang: bool = False) -> None:
        self.hang = hang
        super().__init__(message)
