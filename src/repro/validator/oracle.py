"""Physical-CPU-as-oracle verification of the validator (paper §3.4).

"The validator sets the generated VMCS on the actual CPU, attempts a VM
entry, and compares the resulting VMCS state with the expected one. By
using the physical CPU as an oracle, this approach not only checks the
correctness of the VMCS but also validates the implementation of the VM
state validator itself."

Two learning channels are modelled:

* **Rejection signatures.** When hardware rejects a validator-approved
  state, the oracle matches the violation against a library of candidate
  correction rules (the things a developer would patch into the
  validator); a matching rule is *activated* and applied to every future
  state. Unmatched rejections fall back to copying the offending field —
  then its whole group — from the golden template, which converges
  because the full golden state always enters.

* **Silent roundings.** When hardware *accepts* a state but rewrites
  fields during entry (see :mod:`repro.cpu.quirks`), the oracle records
  per-field set/clear masks so it can predict post-entry state, closing
  the "internal emulation state must remain consistent with the actual
  hardware VMCS state" gap of §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import faults, perf, telemetry
from repro.cpu.entry_checks import CheckStage, IncrementalChecker, Violation
from repro.cpu.physical_cpu import VmxCpu
from repro.cpu.quirks import SilentFixup, predict_entry_fixups
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import ExitControls, PinBased
from repro.vmx.msr_caps import VmxCapabilities, default_capabilities
from repro.vmx.vmcs import Vmcs

VMXON_PA = 0x1000
VMCS_PA = 0x2000

#: Canonical field order, for replaying ``Vmcs.diff`` iteration order on
#: predicted fixups (the batched fast path learns in the same sequence
#: the diff-based slow path does).
_FIELD_ORDER: dict[str, int] = {
    spec.name: i for i, spec in enumerate(F.ALL_FIELDS)}


@dataclass(frozen=True)
class CorrectionRule:
    """A candidate validator patch, activated by a hardware rejection."""

    name: str
    matches: Callable[[Violation], bool]
    apply: Callable[[Vmcs, VmxCapabilities], None]

    def __reduce__(self):
        # The matcher/applier are closures, which pickle refuses; every
        # rule lives in the fixed CANDIDATE_RULES library, so a rule
        # pickles as its name and unpickles by lookup (worker
        # checkpoints carry oracles with activated rules).
        return (_rule_by_name, (self.name,))


def _rule_by_name(name: str) -> CorrectionRule:
    for rule in CANDIDATE_RULES:
        if rule.name == name:
            return rule
    raise LookupError(f"unknown correction rule {name!r}")


def _ack_on_exit_rule() -> CorrectionRule:
    """Posted interrupts require the ack-interrupt-on-exit VM-exit control.

    This is the deliberate modelling gap in
    :mod:`repro.validator.vm_controls`; hardware flags it against the
    exit-controls field with an "acknowledge" reason.
    """

    def matches(v: Violation) -> bool:
        return "acknowledge" in v.reason

    def apply(vmcs: Vmcs, caps: VmxCapabilities) -> None:
        if vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL) & PinBased.POSTED_INTERRUPTS:
            vmcs.write(F.VM_EXIT_CONTROLS,
                       vmcs.read(F.VM_EXIT_CONTROLS) | ExitControls.ACK_INTR_ON_EXIT)

    return CorrectionRule("posted-interrupts-require-ack-on-exit", matches, apply)


def _host_tr_rule() -> CorrectionRule:
    """The host TR selector must not be null (missed by the extraction)."""

    def matches(v: Violation) -> bool:
        return v.field == "host_tr_selector"

    def apply(vmcs: Vmcs, caps: VmxCapabilities) -> None:
        if not vmcs.read(F.HOST_TR_SELECTOR):
            vmcs.write(F.HOST_TR_SELECTOR, 0x40)

    return CorrectionRule("host-tr-selector-not-null", matches, apply)


def _efer_lma_rule() -> CorrectionRule:
    """Guest EFER.LMA/LME must track the IA-32e-mode-guest entry control.

    The rounding pass handles this for in-place states, but a golden
    guest-field fallback can reintroduce the mismatch when the fuzzed
    entry controls disagree with the golden (64-bit) guest image.
    """

    def matches(v: Violation) -> bool:
        return v.field == "guest_ia32_efer" and "LMA" in v.reason

    def apply(vmcs: Vmcs, caps: VmxCapabilities) -> None:
        from repro.arch.registers import Efer
        from repro.vmx.controls import EntryControls

        efer = vmcs.read(F.GUEST_IA32_EFER)
        if vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.IA32E_MODE_GUEST:
            efer |= Efer.LMA | Efer.LME
        else:
            efer &= ~(Efer.LMA | Efer.LME)
        vmcs.write(F.GUEST_IA32_EFER, efer)

    return CorrectionRule("guest-efer-lma-tracks-ia32e-control", matches, apply)


#: The library of candidate corrections the oracle can activate.
CANDIDATE_RULES: tuple[CorrectionRule, ...] = (
    _ack_on_exit_rule(),
    _host_tr_rule(),
    _efer_lma_rule(),
)


@dataclass
class OracleReport:
    """Result of one oracle verification."""

    entered: bool
    attempts: int
    activated_rules: list[str] = field(default_factory=list)
    golden_fallbacks: list[str] = field(default_factory=list)
    silent_fixup_fields: list[str] = field(default_factory=list)
    final_violations: list[Violation] = field(default_factory=list)


class HardwareOracle:
    """Runs validated states on the simulated physical CPU and learns."""

    def __init__(self, caps: VmxCapabilities | None = None,
                 max_attempts: int = 8) -> None:
        self.caps = caps or default_capabilities()
        self.max_attempts = max_attempts
        self.active_rules: list[CorrectionRule] = []
        #: field name -> (set_mask, clear_mask) learned from silent fixups.
        self.fixup_masks: dict[str, tuple[int, int]] = {}
        self.rejections = 0
        self.entries = 0
        self._golden = golden_vmcs(self.caps)
        # One incremental checker for every hardware trial: per-unit
        # check results are memoized on the VMCS objects themselves, so
        # the per-attempt image copies inherit a warm cache and only the
        # units reading corrected fields re-run between attempts.
        self._checker = IncrementalChecker(self.caps)

    # --- learning application ------------------------------------------------

    def apply_learned(self, vmcs: Vmcs) -> list[str]:
        """Apply every activated correction rule to *vmcs*."""
        applied = []
        for rule in self.active_rules:
            rule.apply(vmcs, self.caps)
            applied.append(rule.name)
        return applied

    def predict_post_entry(self, vmcs: Vmcs) -> Vmcs:
        """Predict the post-entry state using learned silent-fixup masks."""
        predicted = vmcs.copy()
        for name, (set_mask, clear_mask) in self.fixup_masks.items():
            encoding = F.SPEC_BY_NAME[name].encoding
            predicted.write(encoding, (predicted.read(encoding) | set_mask)
                            & ~clear_mask)
        return predicted

    # --- verification loop ----------------------------------------------------

    def _attempt_entry(self, state: Vmcs):
        """One hardware trial: fresh CPU, standard launch sequence."""
        cpu = VmxCpu(self.caps, checker=self._checker)
        cpu.vmxon(VMXON_PA)
        cpu.vmclear(VMCS_PA)
        if perf.incremental_enabled():
            # Pre-warm the persistent state so the image copy below
            # carries a fully validated memo into vmlaunch.
            self._checker.check_all(state)
        image = state.copy()
        image.clear()
        cpu.install_vmcs(VMCS_PA, image)
        cpu.vmptrld(VMCS_PA)
        outcome = cpu.vmlaunch()
        return outcome, image

    def _probe_entry(self, state: Vmcs):
        """Batched fast path for one hardware trial.

        Returns ``(entered, violations, fixups)`` without building a CPU
        or copying the state. Equivalence with :meth:`_attempt_entry`:
        the image there is a field-identical copy, the entry checks are
        pure functions of field values, entry mutations land only on the
        throwaway image, and the fixups hardware would apply are
        predicted by replay memo (which falls back to really running the
        quirk pass on a throwaway light image).
        """
        if state.revision_id != self.caps.vmcs_revision_id:
            # vmptrld rejects the image before any check runs; the slow
            # path surfaces this as a violation-free VMfail.
            return False, [], None
        violations = self._checker.check_all(state)
        if violations:
            return False, violations, None
        return True, [], predict_entry_fixups(state)

    def verify(self, vmcs: Vmcs) -> OracleReport:
        """Verify *vmcs* against hardware, learning from the outcome.

        Mutates *vmcs* with any corrections needed to make it enter, so
        the caller ends up holding a hardware-approved state.
        """
        faults.hook("oracle.verify")
        with telemetry.span("oracle.verify"):
            report = self._verify(vmcs)
        telemetry.counter("oracle.attempts", report.attempts)
        if report.entered:
            telemetry.counter("oracle.entries")
        else:
            telemetry.counter("oracle.failures")
        if report.activated_rules:
            telemetry.counter("oracle.rule_activations",
                              len(report.activated_rules))
        if report.golden_fallbacks:
            telemetry.counter("oracle.golden_fallbacks",
                              len(report.golden_fallbacks))
        return report

    def _verify(self, vmcs: Vmcs) -> OracleReport:
        """The correction loop proper (§3.4), telemetry-free."""
        report = OracleReport(entered=False, attempts=0)
        self.apply_learned(vmcs)
        seen: set[tuple[str, str]] = set()
        batched = perf.batch_enabled()

        while report.attempts < self.max_attempts:
            report.attempts += 1
            if batched:
                entered, violations, fixups = self._probe_entry(vmcs)
            else:
                outcome, image = self._attempt_entry(vmcs)
                entered, violations = outcome.entered, outcome.violations
            if entered:
                self.entries += 1
                if batched:
                    self._learn_predicted(fixups, report)
                else:
                    self._learn_fixups(vmcs, image, report)
                report.entered = True
                return report

            self.rejections += 1
            violation = violations[0] if violations else None
            if violation is None:
                report.final_violations = violations
                return report
            report.final_violations = violations

            rule = self._match_candidate(violation)
            if rule is not None:
                report.activated_rules.append(rule.name)
                rule.apply(vmcs, self.caps)
                continue

            key = (violation.field, violation.stage.value)
            if key not in seen:
                seen.add(key)
                self._copy_golden_field(vmcs, violation.field)
                report.golden_fallbacks.append(violation.field)
            else:
                # Same field failed twice: fall back to the whole group.
                self._copy_golden_group(vmcs, violation.stage)
                report.golden_fallbacks.append(f"group:{violation.stage.value}")
        return report

    # --- internals -------------------------------------------------------------

    def _match_candidate(self, violation: Violation) -> CorrectionRule | None:
        active_names = {r.name for r in self.active_rules}
        for rule in CANDIDATE_RULES:
            if rule.matches(violation):
                if rule.name not in active_names:
                    self.active_rules.append(rule)
                return rule
        return None

    def _copy_golden_field(self, vmcs: Vmcs, field_name: str) -> None:
        spec = F.SPEC_BY_NAME.get(field_name)
        if spec is None:  # e.g. msr_load[3] — nothing to copy
            return
        vmcs.write(spec.encoding, self._golden.read(spec.encoding))

    def _copy_golden_group(self, vmcs: Vmcs, stage: CheckStage) -> None:
        group = {
            CheckStage.CONTROLS: F.FieldGroup.CONTROL,
            CheckStage.HOST_STATE: F.FieldGroup.HOST,
            CheckStage.GUEST_STATE: F.FieldGroup.GUEST,
            CheckStage.MSR_LOAD: F.FieldGroup.CONTROL,
        }[stage]
        for spec in F.ALL_FIELDS:
            if spec.group is group:
                vmcs.write(spec.encoding, self._golden.read(spec.encoding))

    def _learn_fixups(self, original: Vmcs, post_entry: Vmcs,
                      report: OracleReport) -> None:
        """Record which bits hardware silently set/cleared during entry."""
        for spec, before, after in original.diff(post_entry):
            if spec.name == "vm_exit_reason":
                continue
            set_mask, clear_mask = self.fixup_masks.get(spec.name, (0, 0))
            set_mask |= after & ~before
            clear_mask |= before & ~after
            self.fixup_masks[spec.name] = (set_mask, clear_mask)
            report.silent_fixup_fields.append(spec.name)

    def _learn_predicted(self, fixups: list[SilentFixup],
                         report: OracleReport) -> None:
        """:meth:`_learn_fixups` from predicted fixups (batched path).

        Sorted into canonical field order so the learned-fixup record
        matches the diff-based slow path bit for bit (``diff`` iterates
        ALL_FIELDS, not quirk application order).
        """
        if not fixups:
            return
        if len(fixups) > 1:
            fixups = sorted(fixups, key=lambda fx: _FIELD_ORDER[fx.field])
        for fx in fixups:
            if fx.field == "vm_exit_reason":
                continue
            set_mask, clear_mask = self.fixup_masks.get(fx.field, (0, 0))
            set_mask |= fx.after & ~fx.before
            clear_mask |= fx.before & ~fx.after
            self.fixup_masks[fx.field] = (set_mask, clear_mask)
            report.silent_fixup_fields.append(fx.field)

    # --- batched entry point ----------------------------------------------------

    def verify_batch(self, states: list[Vmcs]) -> list[OracleReport]:
        """Verify a batch of states: columnar warm pass, then each state
        in order.

        Only pure signature caches are warmed out of band — rule
        activation and fixup-mask learning stay strictly sequential, so
        batch results are identical to N sequential :meth:`verify`
        calls.
        """
        from repro.cpu.entry_checks import warm_batch_checks

        warm_batch_checks(states, self._checker)
        return [self.verify(state) for state in states]
