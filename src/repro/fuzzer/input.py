"""Fuzzing-input representation and partitioning.

AFL++ hands the agent "2 KiB of binary data" (paper §4.1), which the VM
generator partitions and dispatches: one region becomes the raw VMCS
content, one drives the post-rounding mutation, one drives the execution
harness's template choices, and one the vCPU configurator. The
:class:`FuzzInput` layout below is that contract.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Total fuzzing-input size, as in the paper.
INPUT_SIZE = 2048

#: Region boundaries (byte offsets) within the 2 KiB input.
VM_STATE_REGION = (0, 1000)        # raw VMCS/VMCB content (~8,000 bits)
MUTATION_REGION = (1000, 1200)     # post-rounding bit-flip directives
HARNESS_REGION = (1200, 1960)      # init-sequence + runtime template choices
CONFIG_REGION = (1960, 2016)       # vCPU configuration bits
RESERVED_REGION = (2016, 2048)


class InputCursor:
    """Sequential little-endian consumer over one input region.

    Reads wrap around within the region, so any region length supports
    any consumption pattern — short inputs simply repeat, which keeps
    mutation effects local and deterministic.
    """

    def __init__(self, data: bytes, *, spread: bool = False) -> None:
        if not data:
            raise ValueError("cursor needs at least one byte")
        self.data = data
        # With *spread*, the start offset is a digest of the region, so
        # a single-byte mutation anywhere reshuffles every subsequent
        # directive instead of only the bytes it landed on. This keeps
        # directive-driven components (field selection, template
        # choices) ergodic under byte-local mutation operators.
        self.offset = sum(data) % len(data) if spread else 0

    def _take(self, n: int) -> bytes:
        out = bytearray()
        for _ in range(n):
            out.append(self.data[self.offset % len(self.data)])
            self.offset += 1
        return bytes(out)

    def u8(self) -> int:
        """Consume one byte."""
        return self._take(1)[0]

    def u16(self) -> int:
        """Consume two bytes, little-endian."""
        return int.from_bytes(self._take(2), "little")

    def u32(self) -> int:
        """Consume four bytes, little-endian."""
        return int.from_bytes(self._take(4), "little")

    def u64(self) -> int:
        """Consume eight bytes, little-endian."""
        return int.from_bytes(self._take(8), "little")

    def below(self, bound: int) -> int:
        """Map input bytes to [0, bound)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        if bound <= 256:
            return self.u8() % bound
        if bound <= 1 << 16:
            return self.u16() % bound
        return self.u32() % bound

    def chance(self, numerator: int, denominator: int) -> bool:
        """True for roughly numerator/denominator of input bytes."""
        return self.u8() * denominator < numerator * 256

    def choose(self, seq):
        """Pick one element of *seq* based on input bytes."""
        return seq[self.below(len(seq))]

    def take_bytes(self, n: int) -> bytes:
        """Consume *n* raw bytes."""
        return self._take(n)


@dataclass(frozen=True)
class FuzzInput:
    """One 2 KiB fuzzing input with its region views."""

    data: bytes

    def __post_init__(self) -> None:
        if len(self.data) != INPUT_SIZE:
            object.__setattr__(self, "data", self.normalize(self.data))

    @staticmethod
    def normalize(raw: bytes) -> bytes:
        """Pad or truncate arbitrary bytes to the canonical input size."""
        if len(raw) >= INPUT_SIZE:
            return raw[:INPUT_SIZE]
        return raw + bytes(INPUT_SIZE - len(raw))

    def region(self, bounds: tuple[int, int]) -> bytes:
        """The raw bytes of one input partition."""
        start, end = bounds
        return self.data[start:end]

    def vm_state_bytes(self) -> bytes:
        """Raw VM-state region (interpreted as a serialised VMCS/VMCB)."""
        return self.region(VM_STATE_REGION)

    def mutation_cursor(self) -> InputCursor:
        """Cursor over the boundary-injection directives.

        Positional (non-spread) decoding: each injection directive lives
        at a fixed offset, so a queued near-boundary input can evolve
        its directives *locally* across generations — a bit flip in the
        region moves one directive a little instead of reshuffling all
        of them.
        """
        return InputCursor(self.region(MUTATION_REGION))

    def harness_cursor(self) -> InputCursor:
        """Cursor over the execution-harness directives."""
        return InputCursor(self.region(HARNESS_REGION), spread=True)

    def config_cursor(self) -> InputCursor:
        """Cursor over the vCPU-configuration bits."""
        return InputCursor(self.region(CONFIG_REGION), spread=True)

    @classmethod
    def from_rng(cls, rng) -> "FuzzInput":
        """A fresh random input (campaign seeding)."""
        return cls(rng.bytes(INPUT_SIZE))
