"""`repro telemetry-report` on real campaign roots.

The acceptance pin: a 2-shard process-mode run's merged per-phase sync
span totals must agree with the ``SyncStats`` the workers reported,
to within rounding — both sinks are fed the same elapsed value by
``SyncDirectory._timed``, so disagreement means a dropped or
double-counted span.
"""

import pytest

from repro import Vendor
from repro.__main__ import main
from repro.parallel import ParallelCampaign
from repro.telemetry.report import (
    campaign_summary,
    load_campaign_metrics,
    render_report,
)

SEED = 11
BUDGET = 40
SYNC_EVERY = 10


def _run(tmp_path, mode, telemetry_mode="full", **overrides):
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=2, sync_every=SYNC_EVERY, mode=mode,
                  sync_dir=tmp_path, telemetry_mode=telemetry_mode)
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs).run(BUDGET, sample_every=20)


def _assert_sync_totals_match(summary, sync_stats):
    pairs = (("sync.export", sync_stats.export_seconds),
             ("sync.scan", sync_stats.scan_seconds),
             ("sync.filter", sync_stats.filter_seconds),
             ("sync.execute", sync_stats.execute_seconds))
    for span, stat_total in pairs:
        span_total = summary["spans"].get(span, {}).get("total_seconds", 0.0)
        assert span_total == pytest.approx(stat_total, rel=1e-6, abs=1e-9), (
            f"{span}: telemetry says {span_total}, SyncStats says "
            f"{stat_total}")


class TestProcessModeReport:
    def test_two_shard_process_run_sync_totals_match_syncstats(
            self, tmp_path):
        result = _run(tmp_path, "process")
        summary = campaign_summary(tmp_path)

        # Per-phase spans are present and merged across both shards.
        assert summary["spans"]["sync.export"]["count"] > 0
        per_shard = summary["shards"]["per_shard"]
        assert set(per_shard) == {"0", "1"}
        _assert_sync_totals_match(summary, result.sync_overhead)

        # The result object carries the same merged snapshot that was
        # persisted to <root>/metrics.json.
        assert result.telemetry == load_campaign_metrics(tmp_path).snapshot()

    def test_render_report_shows_phases_and_shards(self, tmp_path):
        _run(tmp_path, "process")
        text = render_report(tmp_path)
        assert "sync.export" in text
        assert "case.execute" in text
        assert "shard 0:" in text and "shard 1:" in text
        assert "event(s) in events.jsonl" in text

    def test_report_falls_back_to_worker_snapshots(self, tmp_path):
        # A killed orchestrator leaves no merged metrics.json; the
        # report must still merge whatever shard snapshots survived.
        _run(tmp_path, "process")
        (tmp_path / "metrics.json").unlink()
        summary = campaign_summary(tmp_path)
        assert summary["spans"]["case.execute"]["count"] > 0


class TestInlineModeReport:
    def test_inline_sync_totals_match_syncstats(self, tmp_path):
        result = _run(tmp_path, "inline")
        summary = campaign_summary(tmp_path)
        _assert_sync_totals_match(summary, result.sync_overhead)

    def test_off_mode_leaves_no_snapshots(self, tmp_path):
        result = _run(tmp_path, "inline", telemetry_mode="off")
        assert result.telemetry is None
        assert not (tmp_path / "metrics.json").exists()
        with pytest.raises(FileNotFoundError):
            campaign_summary(tmp_path)


class TestCli:
    def test_telemetry_report_subcommand(self, tmp_path, capsys):
        _run(tmp_path, "inline")
        assert main(["telemetry-report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "sync.export" in out

    def test_telemetry_report_on_an_empty_root(self, tmp_path, capsys):
        assert main(["telemetry-report", str(tmp_path)]) == 2
        assert "no telemetry snapshots" in capsys.readouterr().err

    def test_fuzz_cli_accepts_the_telemetry_flag(self, tmp_path, capsys):
        code = main(["--iterations", "20", "--seed", "3", "--workers", "2",
                     "--sync-every", "10", "--parallel-mode", "inline",
                     "--sync-dir", str(tmp_path), "--telemetry", "full"])
        assert code == 0
        assert "telemetry-report" in capsys.readouterr().out
        assert (tmp_path / "metrics.json").exists()
        assert (tmp_path / "events.jsonl").exists()
