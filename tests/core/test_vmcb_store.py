"""Tests for the L1 VMCB-store runtime template (bug #5's enabler)."""

from repro.arch.cpuid import Vendor
from repro.arch.registers import Cr0
from repro.core.harness import VmExecutionHarness, HarnessStats
from repro.core.templates import VMCB12_GPA, VMCB_STORE_TARGETS
from repro.hypervisors import GuestInstruction, KvmHypervisor, VcpuConfig
from repro.svm import fields as SF
from repro.validator.golden import golden_vmcb


class TestVmcbStore:
    def _hv(self):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD))
        hv.memory.put_vmcb(VMCB12_GPA, golden_vmcb())
        return hv

    def test_store_writes_targeted_field(self):
        hv = self._hv()
        harness = VmExecutionHarness(Vendor.AMD)
        stats = HarnessStats()
        cr0_index = next(i for i, (name, _) in enumerate(VMCB_STORE_TARGETS)
                         if name == "cr0")
        instr = GuestInstruction("vmcb_store",
                                 {"target": cr0_index, "value": 0x11})
        result = harness._exec(hv, hv.create_vcpu(), instr, stats)
        assert result.ok
        assert hv.memory.get_vmcb(VMCB12_GPA).read(SF.CR0) == 0x11

    def test_store_without_vmcb_is_noop(self):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD))
        harness = VmExecutionHarness(Vendor.AMD)
        result = harness._exec(hv, hv.create_vcpu(),
                               GuestInstruction("vmcb_store",
                                                {"target": 0, "value": 1}),
                               HarnessStats())
        assert result.ok and "no VMCB" in result.detail

    def test_target_index_wraps(self):
        hv = self._hv()
        harness = VmExecutionHarness(Vendor.AMD)
        instr = GuestInstruction("vmcb_store",
                                 {"target": len(VMCB_STORE_TARGETS), "value": 5})
        assert harness._exec(hv, hv.create_vcpu(), instr, HarnessStats()).ok

    def test_store_targets_include_mode_fields(self):
        names = {name for name, _ in VMCB_STORE_TARGETS}
        assert {"cr0", "cr4", "efer"} <= names
        # The bug-#5 trigger value (CR0 without PG) is in the pool.
        cr0_values = dict(VMCB_STORE_TARGETS)["cr0"]
        assert any(not v & Cr0.PG for v in cr0_values)
