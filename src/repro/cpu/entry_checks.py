"""Hardware VM-entry consistency checks (Intel SDM 26.2 / 26.3).

This is the ground-truth model the paper uses the physical CPU for: given
a VMCS and the CPU's capability MSRs, decide whether VM entry succeeds,
and if not, which category of failure it is. The checks are grouped the
way hardware performs them:

* checks on VMX controls and host state happen *before* the entry and
  produce VMfailValid (VM-instruction errors 7 / 8);
* checks on guest state happen *during* the entry and produce a failed
  VM entry (exit reason 33 "invalid guest state" / 34 "MSR load fail").

The implementation intentionally includes behaviours that are silent or
undocumented (see :mod:`repro.cpu.quirks`) so the Bochs-derived validator
has real gaps for the hardware-oracle loop to correct.

Structurally, each SDM paragraph is one :class:`CheckUnit` — a pure
function of the VMCS plus a *declared* read set of field encodings. The
units run in architectural order; the public ``check_vm_controls`` /
``check_host_state`` / ``check_guest_state`` entry points simply run
their stage's units, so violation order is identical to the historical
monolithic bodies. The declared read sets feed ``FIELD_TO_CHECKS``, the
field->check dependency index that :class:`IncrementalChecker` uses to
re-run only the units whose inputs changed since the last check of the
same structure (per-object dirty journal, see repro.vmx.vmcs). The
declared sets are pinned as supersets of the dynamically observed reads
by tests/unit/test_incremental_equivalence.py.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro import perf
from repro.arch import msr as MSR
from repro.arch.bits import test_bit
from repro.arch.exceptions import InterruptionInfo
from repro.arch.msr import MsrEntry, is_canonical
from repro.arch.paging import MAX_PHYSADDR_WIDTH, EptPointer
from repro.arch.registers import Cr0, Cr4, Dr7, Efer, Rflags
from repro.arch.segments import AccessRights, Segment, granularity_consistent
from repro.vmx import fields as F
from repro.vmx.controls import (
    ActivityState,
    EntryControls,
    ExitControls,
    Interruptibility,
    PinBased,
    ProcBased,
    Secondary,
)
from repro.vmx.msr_caps import VmxCapabilities
from repro.vmx.vmcs import Vmcs

PAGE_MASK = 0xFFF
ADDR_LIMIT = 1 << MAX_PHYSADDR_WIDTH


class CheckStage(Enum):
    """Which architectural check group flagged the violation."""

    CONTROLS = "controls"      # -> VMfailValid(7)
    HOST_STATE = "host_state"  # -> VMfailValid(8)
    GUEST_STATE = "guest_state"  # -> VM-entry failure, reason 33
    MSR_LOAD = "msr_load"        # -> VM-entry failure, reason 34


@dataclass(frozen=True)
class Violation:
    """One failed consistency check."""

    stage: CheckStage
    field: str
    reason: str

    def __str__(self) -> str:
        return f"[{self.stage.value}] {self.field}: {self.reason}"


def _physaddr_ok(addr: int) -> bool:
    """Address fits in the supported physical-address width."""
    return addr < ADDR_LIMIT


def read_segment(vmcs: Vmcs, name: str) -> Segment:
    """Materialise a guest segment register image from VMCS fields."""
    return Segment(
        selector=vmcs.read(F.SEGMENT_SELECTOR_FIELDS[name]),
        base=vmcs.read(F.SEGMENT_BASE_FIELDS[name]),
        limit=vmcs.read(F.SEGMENT_LIMIT_FIELDS[name]),
        access_rights=vmcs.read(F.SEGMENT_AR_FIELDS[name]),
    )


def _pat_valid(pat: int) -> bool:
    """Each PAT byte must encode a valid memory type (0,1,4,5,6,7)."""
    valid_types = {0, 1, 4, 5, 6, 7}
    return all((pat >> (8 * i)) & 0xFF in valid_types for i in range(8))


def _effective_proc2(vmcs: Vmcs) -> int:
    """Secondary controls, or 0 when the activation bit is clear."""
    if vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) & ProcBased.ACTIVATE_SECONDARY_CONTROLS:
        return vmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
    return 0


# --------------------------------------------------------------------------
# Check units. Each unit is one SDM paragraph: a pure function
# (vmcs, caps, bad) plus the declared set of encodings it may read.
# Units run in architectural order inside their stage.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckUnit:
    """One indexed consistency check with a declared field read set."""

    name: str
    stage: CheckStage
    reads: frozenset[int]
    fn: Callable[[Vmcs, VmxCapabilities, Callable[[str, str], None]], None]


# --- SDM 26.2.1 — checks on VMX controls ----------------------------------

def _u_ctl_allowed(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    pin = vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL)
    proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
    proc2 = vmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
    entry = vmcs.read(F.VM_ENTRY_CONTROLS)
    exit_ = vmcs.read(F.VM_EXIT_CONTROLS)
    if not caps.pin_based.permits(pin):
        bad("pin_based_vm_exec_control", "reserved bits violate allowed settings")
    if not caps.proc_based.permits(proc):
        bad("cpu_based_vm_exec_control", "reserved bits violate allowed settings")
    if proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS and not caps.secondary.permits(proc2):
        bad("secondary_vm_exec_control", "reserved bits violate allowed settings")
    if not caps.entry.permits(entry):
        bad("vm_entry_controls", "reserved bits violate allowed settings")
    if not caps.exit.permits(exit_):
        bad("vm_exit_controls", "reserved bits violate allowed settings")


def _u_ctl_cr3_count(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    cr3_count = vmcs.read(F.CR3_TARGET_COUNT)
    if cr3_count > 4:
        bad("cr3_target_count", f"count {cr3_count} exceeds 4")


def _u_ctl_io_bitmaps(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) & ProcBased.USE_IO_BITMAPS:
        for field, name in ((F.IO_BITMAP_A, "io_bitmap_a"), (F.IO_BITMAP_B, "io_bitmap_b")):
            addr = vmcs.read(field)
            if addr & PAGE_MASK or not _physaddr_ok(addr):
                bad(name, f"address {addr:#x} not 4K-aligned in physical range")


def _u_ctl_msr_bitmap(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) & ProcBased.USE_MSR_BITMAPS:
        addr = vmcs.read(F.MSR_BITMAP)
        if addr & PAGE_MASK or not _physaddr_ok(addr):
            bad("msr_bitmap", f"address {addr:#x} not 4K-aligned in physical range")


def _u_ctl_tpr_shadow(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    effective_proc2 = _effective_proc2(vmcs)
    if vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) & ProcBased.USE_TPR_SHADOW:
        addr = vmcs.read(F.VIRTUAL_APIC_PAGE_ADDR)
        if addr & PAGE_MASK or not _physaddr_ok(addr):
            bad("virtual_apic_page_addr", f"bad address {addr:#x}")
        tpr = vmcs.read(F.TPR_THRESHOLD)
        if tpr & ~0xF and not effective_proc2 & Secondary.VIRTUAL_INTR_DELIVERY:
            bad("tpr_threshold", "bits 31:4 must be zero")
    else:
        if effective_proc2 & (Secondary.VIRTUALIZE_X2APIC
                              | Secondary.APIC_REGISTER_VIRT
                              | Secondary.VIRTUAL_INTR_DELIVERY):
            bad("secondary_vm_exec_control",
                "APIC virtualization requires use-TPR-shadow")


def _u_ctl_nmi(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    pin = vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL)
    proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
    if not pin & PinBased.NMI_EXITING and pin & PinBased.VIRTUAL_NMIS:
        bad("pin_based_vm_exec_control", "virtual NMIs require NMI exiting")
    if not pin & PinBased.VIRTUAL_NMIS and proc & ProcBased.NMI_WINDOW_EXITING:
        bad("cpu_based_vm_exec_control", "NMI-window exiting requires virtual NMIs")


def _u_ctl_apic_access(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    effective_proc2 = _effective_proc2(vmcs)
    if effective_proc2 & Secondary.VIRTUALIZE_APIC_ACCESSES:
        addr = vmcs.read(F.APIC_ACCESS_ADDR)
        if addr & PAGE_MASK or not _physaddr_ok(addr):
            bad("apic_access_addr", f"bad address {addr:#x}")
        if effective_proc2 & Secondary.VIRTUALIZE_X2APIC:
            bad("secondary_vm_exec_control",
                "x2APIC mode conflicts with APIC-access virtualization")


def _u_ctl_posted_intr(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL) & PinBased.POSTED_INTERRUPTS:
        if not _effective_proc2(vmcs) & Secondary.VIRTUAL_INTR_DELIVERY:
            bad("posted_intr_notification_vector",
                "posted interrupts require virtual-interrupt delivery")
        if not vmcs.read(F.VM_EXIT_CONTROLS) & ExitControls.ACK_INTR_ON_EXIT:
            bad("vm_exit_controls",
                "posted interrupts require acknowledge-interrupt-on-exit")
        nv = vmcs.read(F.POSTED_INTR_NV)
        if nv & ~0xFF:
            bad("posted_intr_notification_vector", "vector must be 8 bits")
        desc = vmcs.read(F.POSTED_INTR_DESC_ADDR)
        if desc & 0x3F or not _physaddr_ok(desc):
            bad("posted_intr_desc_addr", "descriptor must be 64-byte aligned")


def _u_ctl_vpid(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if _effective_proc2(vmcs) & Secondary.ENABLE_VPID and not vmcs.read(F.VIRTUAL_PROCESSOR_ID):
        bad("virtual_processor_id", "VPID must be nonzero when enable-VPID set")


def _u_ctl_ept(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if _effective_proc2(vmcs) & Secondary.ENABLE_EPT:
        eptp = EptPointer(vmcs.read(F.EPT_POINTER))
        if not eptp.valid(ept_5level=caps.ept_5level):
            bad("ept_pointer", f"invalid EPTP {eptp.raw:#x}")


def _u_ctl_unrestricted(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    effective_proc2 = _effective_proc2(vmcs)
    if effective_proc2 & Secondary.UNRESTRICTED_GUEST and not effective_proc2 & Secondary.ENABLE_EPT:
        bad("secondary_vm_exec_control", "unrestricted guest requires EPT")


def _u_ctl_pml(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    effective_proc2 = _effective_proc2(vmcs)
    if effective_proc2 & Secondary.ENABLE_PML:
        if not effective_proc2 & Secondary.ENABLE_EPT:
            bad("secondary_vm_exec_control", "PML requires EPT")
        addr = vmcs.read(F.PML_ADDRESS)
        if addr & PAGE_MASK or not _physaddr_ok(addr):
            bad("pml_address", f"bad address {addr:#x}")


def _u_ctl_ve(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if _effective_proc2(vmcs) & Secondary.EPT_VIOLATION_VE:
        addr = vmcs.read(F.VE_INFORMATION_ADDRESS)
        if addr & PAGE_MASK or not _physaddr_ok(addr):
            bad("virtualization_exception_info_addr", f"bad address {addr:#x}")


def _u_ctl_vmfunc(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    effective_proc2 = _effective_proc2(vmcs)
    if effective_proc2 & Secondary.ENABLE_VMFUNC:
        func = vmcs.read(F.VM_FUNCTION_CONTROL)
        if func & ~1:
            bad("vm_function_control", "unsupported VM functions enabled")
        if func & 1:
            if not effective_proc2 & Secondary.ENABLE_EPT:
                bad("vm_function_control", "EPTP switching requires EPT")
            lst = vmcs.read(F.EPTP_LIST_ADDRESS)
            if lst & PAGE_MASK or not _physaddr_ok(lst):
                bad("eptp_list_address", f"bad address {lst:#x}")


def _u_ctl_shadow_vmcs(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if _effective_proc2(vmcs) & Secondary.SHADOW_VMCS:
        for field, name in ((F.VMREAD_BITMAP, "vmread_bitmap"),
                            (F.VMWRITE_BITMAP, "vmwrite_bitmap")):
            addr = vmcs.read(field)
            if addr & PAGE_MASK or not _physaddr_ok(addr):
                bad(name, f"bad address {addr:#x}")


def _u_ctl_preemption(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    # VM-exit control cross-checks.
    if (not vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL) & PinBased.PREEMPTION_TIMER
            and vmcs.read(F.VM_EXIT_CONTROLS) & ExitControls.SAVE_PREEMPTION_TIMER):
        bad("vm_exit_controls",
            "save-preemption-timer requires activate-preemption-timer")


def _u_ctl_msr_areas(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    for count_field, addr_field, cname, aname in (
        (F.VM_EXIT_MSR_STORE_COUNT, F.VM_EXIT_MSR_STORE_ADDR,
         "vm_exit_msr_store_count", "vm_exit_msr_store_addr"),
        (F.VM_EXIT_MSR_LOAD_COUNT, F.VM_EXIT_MSR_LOAD_ADDR,
         "vm_exit_msr_load_count", "vm_exit_msr_load_addr"),
        (F.VM_ENTRY_MSR_LOAD_COUNT, F.VM_ENTRY_MSR_LOAD_ADDR,
         "vm_entry_msr_load_count", "vm_entry_msr_load_addr"),
    ):
        count = vmcs.read(count_field)
        if count:
            if count > 512:
                bad(cname, f"MSR count {count} exceeds the architectural limit")
            addr = vmcs.read(addr_field)
            if addr & 0xF or not _physaddr_ok(addr):
                bad(aname, f"MSR area {addr:#x} must be 16-byte aligned")
            last = addr + count * 16 - 1
            if not _physaddr_ok(last):
                bad(cname, "MSR area extends past physical address width")


def _u_ctl_event_injection(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    # VM-entry interruption information (SDM 26.2.1.3).
    intr_info = InterruptionInfo.decode(vmcs.read(F.VM_ENTRY_INTR_INFO_FIELD))
    if not intr_info.consistent():
        bad("vm_entry_intr_info", "inconsistent event injection")
    if intr_info.valid and intr_info.deliver_error_code:
        err = vmcs.read(F.VM_ENTRY_EXCEPTION_ERROR_CODE)
        if err & ~0x7FFF:
            bad("vm_entry_exception_error_code", "bits 31:15 must be zero")


def _u_ctl_smm(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    entry = vmcs.read(F.VM_ENTRY_CONTROLS)
    if entry & EntryControls.ENTRY_TO_SMM or entry & EntryControls.DEACTIVATE_DUAL_MONITOR:
        bad("vm_entry_controls", "SMM entry controls invalid outside SMM")


# --- SDM 26.2.2 / 26.2.3 — checks on host state ---------------------------

def _u_host_cr(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    cr0 = vmcs.read(F.HOST_CR0)
    cr4 = vmcs.read(F.HOST_CR4)
    cr3 = vmcs.read(F.HOST_CR3)
    if not caps.cr0_valid_for_vmx(cr0):
        bad("host_cr0", f"{cr0:#x} violates CR0 fixed bits")
    if not caps.cr4_valid_for_vmx(cr4):
        bad("host_cr4", f"{cr4:#x} violates CR4 fixed bits")
    if cr3 >> MAX_PHYSADDR_WIDTH:
        bad("host_cr3", f"{cr3:#x} exceeds physical address width")


def _u_host_addr_space(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    host64 = bool(vmcs.read(F.VM_EXIT_CONTROLS) & ExitControls.HOST_ADDR_SPACE_SIZE)
    # Our model is a 64-bit host: "host address-space size" must be 1, and
    # the IA-32e guest control requires it (SDM 26.2.2).
    if not host64:
        bad("vm_exit_controls", "64-bit CPU requires host address-space size")
    if host64:
        if not vmcs.read(F.HOST_CR4) & Cr4.PAE:
            bad("host_cr4", "64-bit host requires CR4.PAE")
    if vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.IA32E_MODE_GUEST and not host64:
        bad("vm_entry_controls", "IA-32e guest requires 64-bit host")


def _u_host_selectors(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    for name, field in F.HOST_SELECTOR_FIELDS.items():
        sel = vmcs.read(field)
        if sel & 0x7:
            bad(f"host_{name}_selector", "TI/RPL bits must be zero")
    if not vmcs.read(F.HOST_CS_SELECTOR):
        bad("host_cs_selector", "must not be null")
    if not vmcs.read(F.HOST_TR_SELECTOR):
        bad("host_tr_selector", "must not be null")


def _u_host_canonical(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    for field, name in ((F.HOST_FS_BASE, "host_fs_base"),
                        (F.HOST_GS_BASE, "host_gs_base"),
                        (F.HOST_TR_BASE, "host_tr_base"),
                        (F.HOST_GDTR_BASE, "host_gdtr_base"),
                        (F.HOST_IDTR_BASE, "host_idtr_base"),
                        (F.HOST_IA32_SYSENTER_ESP, "host_ia32_sysenter_esp"),
                        (F.HOST_IA32_SYSENTER_EIP, "host_ia32_sysenter_eip"),
                        (F.HOST_RIP, "host_rip")):
        addr = vmcs.read(field)
        if not is_canonical(addr):
            bad(name, f"{addr:#x} not canonical")


def _u_host_efer(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    exit_ = vmcs.read(F.VM_EXIT_CONTROLS)
    if exit_ & ExitControls.LOAD_EFER:
        efer = vmcs.read(F.HOST_IA32_EFER)
        if efer & Efer.RESERVED:
            bad("host_ia32_efer", "reserved bits set")
        host64 = bool(exit_ & ExitControls.HOST_ADDR_SPACE_SIZE)
        lma = bool(efer & Efer.LMA)
        lme = bool(efer & Efer.LME)
        if lma != host64 or lme != host64:
            bad("host_ia32_efer", "LMA/LME must match host address-space size")


def _u_host_pat(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if vmcs.read(F.VM_EXIT_CONTROLS) & ExitControls.LOAD_PAT:
        pat = vmcs.read(F.HOST_IA32_PAT)
        if not _pat_valid(pat):
            bad("host_ia32_pat", "invalid PAT memory type")


# --- SDM 26.3.1 — checks on guest state (performed during entry) ----------

def _u_guest_cr(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    entry = vmcs.read(F.VM_ENTRY_CONTROLS)
    unrestricted = bool(_effective_proc2(vmcs) & Secondary.UNRESTRICTED_GUEST)
    ia32e_guest = bool(entry & EntryControls.IA32E_MODE_GUEST)
    cr0 = vmcs.read(F.GUEST_CR0)
    cr4 = vmcs.read(F.GUEST_CR4)
    cr3 = vmcs.read(F.GUEST_CR3)

    if not caps.cr0_valid_for_vmx(cr0, unrestricted_guest=unrestricted):
        bad("guest_cr0", f"{cr0:#x} violates CR0 fixed bits")
    if test_bit(cr0, 31) and not test_bit(cr0, 0):
        bad("guest_cr0", "PG=1 requires PE=1")
    if not caps.cr4_valid_for_vmx(cr4):
        bad("guest_cr4", f"{cr4:#x} violates CR4 fixed bits")

    if ia32e_guest:
        if not cr0 & Cr0.PG:
            bad("guest_cr0", "IA-32e mode guest requires CR0.PG")
        # HARDWARE QUIRK (CVE-2023-30456): the SDM says CR4.PAE must be 1
        # here, but the CPU silently assumes it and does not fail the
        # entry. We therefore do NOT flag guest_cr4.PAE==0.
    else:
        if cr4 & Cr4.PCIDE:
            bad("guest_cr4", "PCIDE requires IA-32e mode")

    if cr3 >> MAX_PHYSADDR_WIDTH:
        bad("guest_cr3", f"{cr3:#x} exceeds physical address width")


def _u_guest_debug(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.LOAD_DEBUG_CONTROLS:
        if vmcs.read(F.GUEST_DR7) & Dr7.HIGH_RESERVED:
            bad("guest_dr7", "bits 63:32 must be zero")
        if vmcs.read(F.GUEST_IA32_DEBUGCTL) & ~0x1DDF:
            bad("guest_ia32_debugctl", "reserved bits set")


def _u_guest_perf(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.LOAD_PERF_GLOBAL_CTRL:
        if vmcs.read(F.GUEST_IA32_PERF_GLOBAL_CTRL) & ~0x7_0000_0003:
            bad("guest_ia32_perf_global_ctrl", "reserved bits set")


def _u_guest_bndcfgs(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.LOAD_BNDCFGS:
        bndcfgs = vmcs.read(F.GUEST_IA32_BNDCFGS)
        if bndcfgs & 0xFFC:
            bad("guest_ia32_bndcfgs", "reserved bits set")
        if not is_canonical(bndcfgs & ~0xFFF):
            bad("guest_ia32_bndcfgs", "base not canonical")


def _u_guest_efer(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    entry = vmcs.read(F.VM_ENTRY_CONTROLS)
    if entry & EntryControls.LOAD_EFER:
        ia32e_guest = bool(entry & EntryControls.IA32E_MODE_GUEST)
        efer = vmcs.read(F.GUEST_IA32_EFER)
        if efer & Efer.RESERVED:
            bad("guest_ia32_efer", "reserved bits set")
        if bool(efer & Efer.LMA) != ia32e_guest:
            bad("guest_ia32_efer", "LMA must equal IA-32e-mode-guest control")
        if (vmcs.read(F.GUEST_CR0) & Cr0.PG
                and bool(efer & Efer.LMA) != bool(efer & Efer.LME)):
            bad("guest_ia32_efer", "LMA must equal LME when paging enabled")


def _u_guest_pat(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    if (vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.LOAD_PAT
            and not _pat_valid(vmcs.read(F.GUEST_IA32_PAT))):
        bad("guest_ia32_pat", "invalid PAT memory type")


def _u_guest_segments(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    entry = vmcs.read(F.VM_ENTRY_CONTROLS)
    _check_guest_segments(
        vmcs, bad,
        ia32e_guest=bool(entry & EntryControls.IA32E_MODE_GUEST),
        unrestricted=bool(_effective_proc2(vmcs) & Secondary.UNRESTRICTED_GUEST),
        virtual_8086=bool(vmcs.read(F.GUEST_RFLAGS) & Rflags.VM))


def _u_guest_dtables(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    for field, name in ((F.GUEST_GDTR_BASE, "guest_gdtr_base"),
                        (F.GUEST_IDTR_BASE, "guest_idtr_base")):
        if not is_canonical(vmcs.read(field)):
            bad(name, "base not canonical")
    for field, name in ((F.GUEST_GDTR_LIMIT, "guest_gdtr_limit"),
                        (F.GUEST_IDTR_LIMIT, "guest_idtr_limit")):
        if vmcs.read(field) & ~0xFFFF:
            bad(name, "bits 31:16 must be zero")


def _u_guest_rip(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    ia32e_guest = bool(vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.IA32E_MODE_GUEST)
    rip = vmcs.read(F.GUEST_RIP)
    cs_ar = vmcs.read(F.GUEST_CS_AR_BYTES)
    cs_long = bool(cs_ar & AccessRights.L)
    if not ia32e_guest or not cs_long:
        if rip & ~0xFFFFFFFF:
            bad("guest_rip", "bits 63:32 must be zero outside 64-bit code")
    elif not is_canonical(rip):
        bad("guest_rip", "not canonical")


def _u_guest_rflags(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    ia32e_guest = bool(vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.IA32E_MODE_GUEST)
    rflags = vmcs.read(F.GUEST_RFLAGS)
    if rflags & Rflags.RESERVED or not rflags & Rflags.FIXED_1:
        bad("guest_rflags", "fixed/reserved bit violation")
    if rflags & Rflags.VM and (ia32e_guest or not vmcs.read(F.GUEST_CR0) & Cr0.PE):
        bad("guest_rflags", "VM flag invalid in IA-32e mode or without PE")
    intr_info = InterruptionInfo.decode(vmcs.read(F.VM_ENTRY_INTR_INFO_FIELD))
    if intr_info.valid and intr_info.event_type == 0 and not rflags & Rflags.IF:
        bad("guest_rflags", "IF must be set to inject external interrupt")


def _u_guest_non_register(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    rflags = vmcs.read(F.GUEST_RFLAGS)
    intr_info = InterruptionInfo.decode(vmcs.read(F.VM_ENTRY_INTR_INFO_FIELD))
    activity = vmcs.read(F.GUEST_ACTIVITY_STATE)
    if activity not in ActivityState.ALL:
        bad("guest_activity_state", f"unsupported value {activity}")
    interruptibility = vmcs.read(F.GUEST_INTERRUPTIBILITY_INFO)
    if interruptibility & Interruptibility.RESERVED:
        bad("guest_interruptibility_info", "reserved bits set")
    sti = bool(interruptibility & Interruptibility.STI_BLOCKING)
    movss = bool(interruptibility & Interruptibility.MOV_SS_BLOCKING)
    if sti and movss:
        bad("guest_interruptibility_info", "STI and MOV-SS blocking both set")
    if activity == ActivityState.HLT and (sti or movss):
        bad("guest_activity_state", "HLT state with blocking-by-STI/MOV-SS")
    if activity in (ActivityState.SHUTDOWN, ActivityState.WAIT_FOR_SIPI):
        if intr_info.valid:
            bad("guest_activity_state",
                "event injection invalid in shutdown/wait-for-SIPI")
    if not rflags & Rflags.IF and sti:
        bad("guest_interruptibility_info", "STI blocking requires RFLAGS.IF")


def _u_guest_pending_dbg(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    pending_dbg = vmcs.read(F.GUEST_PENDING_DBG_EXCEPTIONS)
    if pending_dbg & ~0x1600F:
        bad("guest_pending_dbg_exceptions", "reserved bits set")


def _u_guest_link_ptr(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    link = vmcs.read(F.VMCS_LINK_POINTER)
    if link != (1 << 64) - 1:
        if link & PAGE_MASK or not _physaddr_ok(link):
            bad("vmcs_link_pointer", f"bad shadow-VMCS pointer {link:#x}")


def _u_guest_pdptes(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    ia32e_guest = bool(vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.IA32E_MODE_GUEST)
    if (not ia32e_guest and vmcs.read(F.GUEST_CR0) & Cr0.PG
            and vmcs.read(F.GUEST_CR4) & Cr4.PAE):
        for field, name in ((F.GUEST_PDPTE0, "guest_pdpte0"),
                            (F.GUEST_PDPTE1, "guest_pdpte1"),
                            (F.GUEST_PDPTE2, "guest_pdpte2"),
                            (F.GUEST_PDPTE3, "guest_pdpte3")):
            pdpte = vmcs.read(field)
            if pdpte & 1 and pdpte & 0x1E6:  # reserved bits in present PDPTE
                bad(name, "reserved bits set in present PDPTE")


def _u_guest_sysenter(vmcs: Vmcs, caps: VmxCapabilities, bad) -> None:
    for field, name in ((F.GUEST_SYSENTER_ESP, "guest_sysenter_esp"),
                        (F.GUEST_SYSENTER_EIP, "guest_sysenter_eip")):
        if not is_canonical(vmcs.read(field)):
            bad(name, "not canonical")


def _check_guest_segments(vmcs: Vmcs, bad, *, ia32e_guest: bool,
                          unrestricted: bool, virtual_8086: bool) -> None:
    """Guest segment-register checks (SDM 26.3.1.2)."""
    segments = {name: read_segment(vmcs, name) for name in F.SEGMENT_AR_FIELDS}
    cs, ss, tr, ldtr = segments["cs"], segments["ss"], segments["tr"], segments["ldtr"]

    if virtual_8086:
        # In v8086 mode every segment must look like base = selector<<4,
        # limit 0xFFFF, AR 0xF3.
        for name, seg in segments.items():
            if name in ("ldtr", "tr"):
                continue
            if seg.base != (seg.selector << 4) & 0xFFFF0:
                bad(f"guest_{name}_base", "v8086 base must equal selector<<4")
            if seg.limit != 0xFFFF:
                bad(f"guest_{name}_limit", "v8086 limit must be 0xFFFF")
            if seg.access_rights != 0xF3:
                bad(f"guest_{name}_ar_bytes", "v8086 AR must be 0xF3")
        return

    if tr.unusable:
        bad("guest_tr_ar_bytes", "TR must be usable")
    else:
        if ia32e_guest and tr.seg_type != 0xB:
            bad("guest_tr_ar_bytes", "TR type must be 64-bit busy TSS")
        if not ia32e_guest and tr.seg_type not in (0x3, 0xB):
            bad("guest_tr_ar_bytes", "TR type must be busy TSS")
        if tr.s:
            bad("guest_tr_ar_bytes", "TR must be a system descriptor")
        if not tr.present:
            bad("guest_tr_ar_bytes", "TR must be present")
        if not granularity_consistent(tr.limit, tr.access_rights):
            bad("guest_tr_limit", "limit/granularity inconsistent")
    if tr.selector & 0x4:
        bad("guest_tr_selector", "TI bit must be zero")

    if not ldtr.unusable:
        if ldtr.seg_type != 0x2:
            bad("guest_ldtr_ar_bytes", "LDTR type must be LDT")
        if ldtr.s:
            bad("guest_ldtr_ar_bytes", "LDTR must be a system descriptor")
        if not ldtr.present:
            bad("guest_ldtr_ar_bytes", "LDTR must be present")
        if ldtr.selector & 0x4:
            bad("guest_ldtr_selector", "TI bit must be zero")
        if not granularity_consistent(ldtr.limit, ldtr.access_rights):
            bad("guest_ldtr_limit", "limit/granularity inconsistent")

    if cs.unusable:
        bad("guest_cs_ar_bytes", "CS must be usable")
        return

    if not cs.is_code():
        if not (unrestricted and cs.seg_type == 0x3):
            bad("guest_cs_ar_bytes", "CS must be a code segment")
    if not cs.s:
        bad("guest_cs_ar_bytes", "CS must be a code/data descriptor")
    if not cs.present:
        bad("guest_cs_ar_bytes", "CS must be present")
    if cs.long_mode and cs.db:
        bad("guest_cs_ar_bytes", "CS.L and CS.D/B may not both be set")
    if ia32e_guest and not cs.long_mode and not unrestricted:
        # Compatibility-mode code is fine; nothing to flag. (Intentional
        # no-op branch kept for symmetry with the SDM's case analysis.)
        pass
    if not granularity_consistent(cs.limit, cs.access_rights):
        bad("guest_cs_limit", "limit/granularity inconsistent")

    # CS/SS privilege interaction.
    if cs.seg_type in (0x9, 0xB):  # non-conforming
        if not ss.unusable and cs.dpl != ss.dpl:
            bad("guest_cs_ar_bytes", "non-conforming CS.DPL must equal SS.DPL")
    elif cs.seg_type in (0xD, 0xF):  # conforming
        if not ss.unusable and cs.dpl > ss.dpl:
            bad("guest_cs_ar_bytes", "conforming CS.DPL must be <= SS.DPL")
    elif cs.seg_type == 0x3 and cs.dpl != 0:
        bad("guest_cs_ar_bytes", "type-3 CS requires DPL 0")

    if not ss.unusable:
        if ss.seg_type not in (0x3, 0x7):
            bad("guest_ss_ar_bytes", "SS must be writable data")
        if not ss.present:
            bad("guest_ss_ar_bytes", "SS must be present")
        if not granularity_consistent(ss.limit, ss.access_rights):
            bad("guest_ss_limit", "limit/granularity inconsistent")
        if not unrestricted and ss.rpl != cs.rpl:
            bad("guest_ss_selector", "SS.RPL must equal CS.RPL")
        if ss.dpl != ss.rpl and not unrestricted and cs.seg_type != 0x3:
            bad("guest_ss_ar_bytes", "SS.DPL must equal SS.RPL")

    for name in ("ds", "es", "fs", "gs"):
        seg = segments[name]
        if seg.unusable:
            continue
        if not seg.s:
            bad(f"guest_{name}_ar_bytes", "must be a code/data descriptor")
        if not seg.seg_type & 1:
            bad(f"guest_{name}_ar_bytes", "must be accessed")
        if seg.is_code() and not seg.seg_type & 2:
            bad(f"guest_{name}_ar_bytes", "code segment must be readable")
        if not seg.present:
            bad(f"guest_{name}_ar_bytes", "must be present")
        if not granularity_consistent(seg.limit, seg.access_rights):
            bad(f"guest_{name}_limit", "limit/granularity inconsistent")
        if seg.access_rights & AccessRights.RESERVED:
            bad(f"guest_{name}_ar_bytes", "reserved AR bits set")

    for name in ("cs", "ss", "tr", "ldtr"):
        seg = segments[name]
        if not seg.unusable and seg.access_rights & AccessRights.RESERVED:
            bad(f"guest_{name}_ar_bytes", "reserved AR bits set")

    # Base canonicality in 64-bit contexts.
    for name in ("tr", "fs", "gs"):
        if not is_canonical(segments[name].base):
            bad(f"guest_{name}_base", "base not canonical")
    if not segments["ldtr"].unusable and not is_canonical(ldtr.base):
        bad("guest_ldtr_base", "base not canonical")
    if cs.base & ~0xFFFFFFFF:
        bad("guest_cs_base", "bits 63:32 must be zero")
    for name in ("ss", "ds", "es"):
        seg = segments[name]
        if not seg.unusable and seg.base & ~0xFFFFFFFF:
            bad(f"guest_{name}_base", "bits 63:32 must be zero")


# --------------------------------------------------------------------------
# Unit registry and the field->check dependency index
# --------------------------------------------------------------------------

_CONTROL_ENCODINGS = frozenset({
    F.PIN_BASED_VM_EXEC_CONTROL, F.CPU_BASED_VM_EXEC_CONTROL,
    F.SECONDARY_VM_EXEC_CONTROL, F.VM_ENTRY_CONTROLS, F.VM_EXIT_CONTROLS,
})

_PROC_PAIR = frozenset({F.CPU_BASED_VM_EXEC_CONTROL, F.SECONDARY_VM_EXEC_CONTROL})

_SEGMENT_ENCODINGS = frozenset(
    set(F.SEGMENT_SELECTOR_FIELDS.values())
    | set(F.SEGMENT_BASE_FIELDS.values())
    | set(F.SEGMENT_LIMIT_FIELDS.values())
    | set(F.SEGMENT_AR_FIELDS.values()))


def _unit(name: str, stage: CheckStage, reads, fn) -> CheckUnit:
    return CheckUnit(name, stage, frozenset(reads), fn)


UNITS: tuple[CheckUnit, ...] = (
    # SDM 26.2.1, in architectural order.
    _unit("ctl_allowed", CheckStage.CONTROLS, _CONTROL_ENCODINGS, _u_ctl_allowed),
    _unit("ctl_cr3_count", CheckStage.CONTROLS,
          {F.CR3_TARGET_COUNT}, _u_ctl_cr3_count),
    _unit("ctl_io_bitmaps", CheckStage.CONTROLS,
          {F.CPU_BASED_VM_EXEC_CONTROL, F.IO_BITMAP_A, F.IO_BITMAP_B},
          _u_ctl_io_bitmaps),
    _unit("ctl_msr_bitmap", CheckStage.CONTROLS,
          {F.CPU_BASED_VM_EXEC_CONTROL, F.MSR_BITMAP}, _u_ctl_msr_bitmap),
    _unit("ctl_tpr_shadow", CheckStage.CONTROLS,
          _PROC_PAIR | {F.VIRTUAL_APIC_PAGE_ADDR, F.TPR_THRESHOLD},
          _u_ctl_tpr_shadow),
    _unit("ctl_nmi", CheckStage.CONTROLS,
          {F.PIN_BASED_VM_EXEC_CONTROL, F.CPU_BASED_VM_EXEC_CONTROL}, _u_ctl_nmi),
    _unit("ctl_apic_access", CheckStage.CONTROLS,
          _PROC_PAIR | {F.APIC_ACCESS_ADDR}, _u_ctl_apic_access),
    _unit("ctl_posted_intr", CheckStage.CONTROLS,
          _PROC_PAIR | {F.PIN_BASED_VM_EXEC_CONTROL, F.VM_EXIT_CONTROLS,
                        F.POSTED_INTR_NV, F.POSTED_INTR_DESC_ADDR},
          _u_ctl_posted_intr),
    _unit("ctl_vpid", CheckStage.CONTROLS,
          _PROC_PAIR | {F.VIRTUAL_PROCESSOR_ID}, _u_ctl_vpid),
    _unit("ctl_ept", CheckStage.CONTROLS,
          _PROC_PAIR | {F.EPT_POINTER}, _u_ctl_ept),
    _unit("ctl_unrestricted", CheckStage.CONTROLS, _PROC_PAIR, _u_ctl_unrestricted),
    _unit("ctl_pml", CheckStage.CONTROLS,
          _PROC_PAIR | {F.PML_ADDRESS}, _u_ctl_pml),
    _unit("ctl_ve", CheckStage.CONTROLS,
          _PROC_PAIR | {F.VE_INFORMATION_ADDRESS}, _u_ctl_ve),
    _unit("ctl_vmfunc", CheckStage.CONTROLS,
          _PROC_PAIR | {F.VM_FUNCTION_CONTROL, F.EPTP_LIST_ADDRESS},
          _u_ctl_vmfunc),
    _unit("ctl_shadow_vmcs", CheckStage.CONTROLS,
          _PROC_PAIR | {F.VMREAD_BITMAP, F.VMWRITE_BITMAP}, _u_ctl_shadow_vmcs),
    _unit("ctl_preemption", CheckStage.CONTROLS,
          {F.PIN_BASED_VM_EXEC_CONTROL, F.VM_EXIT_CONTROLS}, _u_ctl_preemption),
    _unit("ctl_msr_areas", CheckStage.CONTROLS,
          {F.VM_EXIT_MSR_STORE_COUNT, F.VM_EXIT_MSR_STORE_ADDR,
           F.VM_EXIT_MSR_LOAD_COUNT, F.VM_EXIT_MSR_LOAD_ADDR,
           F.VM_ENTRY_MSR_LOAD_COUNT, F.VM_ENTRY_MSR_LOAD_ADDR},
          _u_ctl_msr_areas),
    _unit("ctl_event_injection", CheckStage.CONTROLS,
          {F.VM_ENTRY_INTR_INFO_FIELD, F.VM_ENTRY_EXCEPTION_ERROR_CODE},
          _u_ctl_event_injection),
    _unit("ctl_smm", CheckStage.CONTROLS, {F.VM_ENTRY_CONTROLS}, _u_ctl_smm),
    # SDM 26.2.2 / 26.2.3.
    _unit("host_cr", CheckStage.HOST_STATE,
          {F.HOST_CR0, F.HOST_CR4, F.HOST_CR3}, _u_host_cr),
    _unit("host_addr_space", CheckStage.HOST_STATE,
          {F.VM_EXIT_CONTROLS, F.VM_ENTRY_CONTROLS, F.HOST_CR4},
          _u_host_addr_space),
    _unit("host_selectors", CheckStage.HOST_STATE,
          set(F.HOST_SELECTOR_FIELDS.values())
          | {F.HOST_CS_SELECTOR, F.HOST_TR_SELECTOR}, _u_host_selectors),
    _unit("host_canonical", CheckStage.HOST_STATE,
          {F.HOST_FS_BASE, F.HOST_GS_BASE, F.HOST_TR_BASE, F.HOST_GDTR_BASE,
           F.HOST_IDTR_BASE, F.HOST_IA32_SYSENTER_ESP,
           F.HOST_IA32_SYSENTER_EIP, F.HOST_RIP}, _u_host_canonical),
    _unit("host_efer", CheckStage.HOST_STATE,
          {F.VM_EXIT_CONTROLS, F.HOST_IA32_EFER}, _u_host_efer),
    _unit("host_pat", CheckStage.HOST_STATE,
          {F.VM_EXIT_CONTROLS, F.HOST_IA32_PAT}, _u_host_pat),
    # SDM 26.3.1.
    _unit("guest_cr", CheckStage.GUEST_STATE,
          _PROC_PAIR | {F.VM_ENTRY_CONTROLS, F.GUEST_CR0, F.GUEST_CR4,
                        F.GUEST_CR3}, _u_guest_cr),
    _unit("guest_debug", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_DR7, F.GUEST_IA32_DEBUGCTL},
          _u_guest_debug),
    _unit("guest_perf", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_IA32_PERF_GLOBAL_CTRL}, _u_guest_perf),
    _unit("guest_bndcfgs", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_IA32_BNDCFGS}, _u_guest_bndcfgs),
    _unit("guest_efer", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_IA32_EFER, F.GUEST_CR0}, _u_guest_efer),
    _unit("guest_pat", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_IA32_PAT}, _u_guest_pat),
    _unit("guest_segments", CheckStage.GUEST_STATE,
          _PROC_PAIR | _SEGMENT_ENCODINGS
          | {F.VM_ENTRY_CONTROLS, F.GUEST_RFLAGS}, _u_guest_segments),
    _unit("guest_dtables", CheckStage.GUEST_STATE,
          {F.GUEST_GDTR_BASE, F.GUEST_IDTR_BASE, F.GUEST_GDTR_LIMIT,
           F.GUEST_IDTR_LIMIT}, _u_guest_dtables),
    _unit("guest_rip", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_RIP, F.GUEST_CS_AR_BYTES}, _u_guest_rip),
    _unit("guest_rflags", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_RFLAGS, F.GUEST_CR0,
           F.VM_ENTRY_INTR_INFO_FIELD}, _u_guest_rflags),
    _unit("guest_non_register", CheckStage.GUEST_STATE,
          {F.GUEST_RFLAGS, F.VM_ENTRY_INTR_INFO_FIELD, F.GUEST_ACTIVITY_STATE,
           F.GUEST_INTERRUPTIBILITY_INFO}, _u_guest_non_register),
    _unit("guest_pending_dbg", CheckStage.GUEST_STATE,
          {F.GUEST_PENDING_DBG_EXCEPTIONS}, _u_guest_pending_dbg),
    _unit("guest_link_ptr", CheckStage.GUEST_STATE,
          {F.VMCS_LINK_POINTER}, _u_guest_link_ptr),
    _unit("guest_pdptes", CheckStage.GUEST_STATE,
          {F.VM_ENTRY_CONTROLS, F.GUEST_CR0, F.GUEST_CR4, F.GUEST_PDPTE0,
           F.GUEST_PDPTE1, F.GUEST_PDPTE2, F.GUEST_PDPTE3}, _u_guest_pdptes),
    _unit("guest_sysenter", CheckStage.GUEST_STATE,
          {F.GUEST_SYSENTER_ESP, F.GUEST_SYSENTER_EIP}, _u_guest_sysenter),
)

#: Unit indices per stage, preserving architectural order.
_STAGE_UNITS: dict[CheckStage, tuple[int, ...]] = {
    stage: tuple(i for i, u in enumerate(UNITS) if u.stage is stage)
    for stage in CheckStage
}

#: The dependency index: field encoding -> indices of units reading it.
FIELD_TO_CHECKS: dict[int, tuple[int, ...]] = {}
for _i, _u in enumerate(UNITS):
    for _enc in _u.reads:
        FIELD_TO_CHECKS.setdefault(_enc, ())
        FIELD_TO_CHECKS[_enc] += (_i,)
del _i, _u, _enc

#: Per-unit declared reads as sorted tuples — the column-signature key
#: order for the batched hot path (DESIGN.md §12). Sorting makes the
#: signature canonical: any two structures agreeing on these values get
#: the same key regardless of read order inside the unit body.
_UNIT_READS: tuple[tuple[int, ...], ...] = tuple(
    tuple(sorted(u.reads)) for u in UNITS)

#: C-speed signature builders: ``itemgetter(*reads)`` pulls a whole
#: signature tuple out of the values dict in one call (single-read
#: units get a wrapping lambda since itemgetter returns a scalar then).
_UNIT_SIG: tuple = tuple(
    (operator.itemgetter(*reads) if len(reads) > 1
     else (lambda values, _k=reads[0]: (values[_k],)))
    for reads in _UNIT_READS)

_UNIT_INDEX: dict[str, int] = {u.name: i for i, u in enumerate(UNITS)}


def _vec_form(name: str, encoding: int, mask: int,
              violation: Violation) -> tuple:
    spec = F.SPEC_BY_ENCODING[encoding]
    return (_UNIT_INDEX[name], encoding, mask & ((1 << spec.bits) - 1),
            spec.bits, (violation,))


#: Vectorized predicate forms: units whose entire body is "violation iff
#: field & mask" with a constant violation. A whole batch column is
#: packed into one big int and tested against the replicated mask — one
#: AND plus a zero test answers every lane (the PR-4 bitmap idiom).
#: Only units that are provably of this shape are listed; everything
#: else goes through signature-deduplicated scalar evaluation.
VEC_FORMS: tuple[tuple[int, int, int, int, tuple[Violation, ...]], ...] = (
    _vec_form("ctl_smm", F.VM_ENTRY_CONTROLS,
              int(EntryControls.ENTRY_TO_SMM
                  | EntryControls.DEACTIVATE_DUAL_MONITOR),
              Violation(CheckStage.CONTROLS, "vm_entry_controls",
                        "SMM entry controls invalid outside SMM")),
    _vec_form("guest_pending_dbg", F.GUEST_PENDING_DBG_EXCEPTIONS,
              ~0x1600F,
              Violation(CheckStage.GUEST_STATE,
                        "guest_pending_dbg_exceptions", "reserved bits set")),
)

_VEC_UNIT_INDICES = frozenset(form[0] for form in VEC_FORMS)


def _run_unit(unit: CheckUnit, vmcs: Vmcs,
              caps: VmxCapabilities) -> tuple[Violation, ...]:
    out: list[Violation] = []
    stage = unit.stage

    def bad(field: str, reason: str) -> None:
        out.append(Violation(stage, field, reason))

    unit.fn(vmcs, caps, bad)
    return tuple(out)


def _run_stage(stage: CheckStage, vmcs: Vmcs,
               caps: VmxCapabilities) -> list[Violation]:
    v: list[Violation] = []
    for i in _STAGE_UNITS[stage]:
        v.extend(_run_unit(UNITS[i], vmcs, caps))
    return v


# --------------------------------------------------------------------------
# Public full-recompute entry points (historical signatures)
# --------------------------------------------------------------------------


def check_vm_controls(vmcs: Vmcs, caps: VmxCapabilities) -> list[Violation]:
    """Checks on VM-execution, VM-exit, and VM-entry control fields."""
    return _run_stage(CheckStage.CONTROLS, vmcs, caps)


def check_host_state(vmcs: Vmcs, caps: VmxCapabilities) -> list[Violation]:
    """Checks on the host-state area (VMfailValid error 8 when violated)."""
    return _run_stage(CheckStage.HOST_STATE, vmcs, caps)


def check_guest_state(vmcs: Vmcs, caps: VmxCapabilities) -> list[Violation]:
    """Checks on the guest-state area (failed entry, reason 33).

    Includes the hardware quirk central to CVE-2023-30456: when the
    "IA-32e mode guest" entry control is 1, hardware *assumes* CR4.PAE
    rather than checking it, so that combination passes here.
    """
    return _run_stage(CheckStage.GUEST_STATE, vmcs, caps)


# --------------------------------------------------------------------------
# SDM 26.4 — MSR-load area checks (performed after guest-state load)
# --------------------------------------------------------------------------

def check_msr_load_area(entries: list[MsrEntry]) -> list[Violation]:
    """Validate a VM-entry MSR-load area; failures yield exit reason 34."""
    v: list[Violation] = []
    for slot, entry in enumerate(entries):
        if entry.reserved:
            v.append(Violation(CheckStage.MSR_LOAD, f"msr_load[{slot}]",
                               "reserved dword must be zero"))
        if entry.index in MSR.MSR_LOAD_FORBIDDEN:
            v.append(Violation(CheckStage.MSR_LOAD, f"msr_load[{slot}]",
                               f"MSR {entry.index:#x} may not be loaded here"))
        if entry.index in MSR.CANONICAL_MSRS and not is_canonical(entry.value):
            v.append(Violation(CheckStage.MSR_LOAD, f"msr_load[{slot}]",
                               f"non-canonical value {entry.value:#x} "
                               f"for MSR {entry.index:#x}"))
    return v


def check_all(vmcs: Vmcs, caps: VmxCapabilities,
              msr_entries: list[MsrEntry] | None = None) -> list[Violation]:
    """Run every entry-check group in architectural order.

    Hardware stops at the first failing *group*; we mirror that: control
    violations suppress host checks, and so on, matching what an L1
    hypervisor can observe.
    """
    violations = check_vm_controls(vmcs, caps)
    if violations:
        return violations
    violations = check_host_state(vmcs, caps)
    if violations:
        return violations
    violations = check_guest_state(vmcs, caps)
    if violations:
        return violations
    if msr_entries:
        violations = check_msr_load_area(msr_entries)
    return violations


# --------------------------------------------------------------------------
# Incremental checking over the dependency index
# --------------------------------------------------------------------------

#: Memo key under which per-unit results live on the Vmcs.
_MEMO_KEY = "entry_checks"

_STAGE_ORDER = (CheckStage.CONTROLS, CheckStage.HOST_STATE,
                CheckStage.GUEST_STATE)


class IncrementalChecker:
    """Entry checks that re-run only units whose input fields changed.

    Per-unit results are memoized on the :class:`Vmcs` itself (so they
    travel with ``copy()`` snapshots — the oracle pre-warms the
    persistent state and every per-attempt copy starts with a warm
    cache), validated against the structure's change journal, and
    re-run per ``FIELD_TO_CHECKS`` when a read field changed. Equivalent
    to :func:`check_all` by construction — units are pure and ordered —
    and pinned by tests/unit/test_incremental_equivalence.py.

    Memo entries embed the capability object they were computed under,
    so a structure checked under different capability sets never reuses
    a stale result.
    """

    def __init__(self, caps: VmxCapabilities) -> None:
        self.caps = caps
        #: One-slot cache keyed by per-unit results identity: the
        #: assembled first-failing-stage list is a pure function of the
        #: results tuple, which is reused by identity across clean
        #: revalidations (and across ``copy()`` snapshots sharing the
        #: memo entry), so repeated ``check_all`` of unchanged
        #: structures skips the assembly loop too.
        self._last: tuple | None = None
        #: Column-signature cache for the batched hot path (lazy —
        #: allocated on first use so non-batch campaigns pay nothing).
        #: Keyed (unit index, declared-read values); sound because units
        #: are pure functions of their declared reads (pinned supersets
        #: of the dynamic reads) and the caps are fixed per checker.
        self._sig = None

    def _signature_cache(self):
        if self._sig is None:
            from repro.batch import SignatureCache

            self._sig = SignatureCache()
        return self._sig

    def _unit_results(self, index: int, vmcs: Vmcs) -> tuple[Violation, ...]:
        """One unit's violations through the column-signature cache.

        On a hit the unit's declared reads are fed into any active read
        trace (the unit body never runs, so its ``vmcs.read`` calls
        never happen) — a superset of the dynamic reads, which keeps
        outer memo invalidation conservative.
        """
        cache = self._signature_cache()
        sig = _UNIT_SIG[index](vmcs._values)
        hit = cache.lookup(index, sig)
        if hit is not cache.MISS:
            trace = vmcs._read_trace
            if trace is not None:
                trace.update(_UNIT_READS[index])
            return hit
        out = _run_unit(UNITS[index], vmcs, self.caps)
        cache.store(index, sig, out)
        return out

    def results(self, vmcs: Vmcs) -> tuple[tuple[Violation, ...], ...]:
        """Per-unit violation tuples, reusing unaffected cached units."""
        caps = self.caps
        gen = vmcs.generation
        batched = perf.batch_enabled()
        entry = vmcs.memo_get(_MEMO_KEY)
        if entry is None and batched:
            # Anchored candidate (batched deserialize): seed the frozen
            # master's per-unit results once — pure reads, computed
            # through the signature cache — then revalidate this
            # candidate against them via its journal, which is rooted
            # at the master's generation. Per-case work becomes
            # O(changed fields) instead of a full unit sweep.
            master = vmcs._anchor
            if master is not None:
                entry = master.memo_get(_MEMO_KEY)
                if entry is None or not (entry[2] is caps
                                         or entry[2] == caps):
                    entry = (master.generation,
                             tuple(self._unit_results(i, master)
                                   for i in range(len(UNITS))), caps)
                    master.memo_put(_MEMO_KEY, entry)
        if entry is not None and (entry[2] is caps or entry[2] == caps):
            changed = vmcs.changes_since(entry[0])
            if changed is not None:
                results = entry[1]
                if changed:
                    dirty: set[int] = set()
                    for enc in changed:
                        dirty.update(FIELD_TO_CHECKS.get(enc, ()))
                    if dirty:
                        fresh = list(results)
                        for i in dirty:
                            fresh[i] = (self._unit_results(i, vmcs) if batched
                                        else _run_unit(UNITS[i], vmcs, caps))
                        results = tuple(fresh)
                if entry[0] != gen or results is not entry[1]:
                    vmcs.memo_put(_MEMO_KEY, (gen, results, caps))
                return results
        if batched:
            results = tuple(self._unit_results(i, vmcs)
                            for i in range(len(UNITS)))
        else:
            results = tuple(_run_unit(u, vmcs, caps) for u in UNITS)
        vmcs.memo_put(_MEMO_KEY, (gen, results, caps))
        return results

    def check_all(self, vmcs: Vmcs,
                  msr_entries: list[MsrEntry] | None = None) -> list[Violation]:
        """Drop-in incremental equivalent of module-level ``check_all``.

        The returned list may be shared between calls; callers must not
        mutate it.
        """
        results = self.results(vmcs)
        cached = self._last
        if cached is not None and cached[0] is results and not msr_entries:
            return cached[1]
        out: list[Violation] = []
        for stage in _STAGE_ORDER:
            v: list[Violation] = []
            for i in _STAGE_UNITS[stage]:
                v.extend(results[i])
            if v:
                out = v
                break
        if not out and msr_entries:
            return check_msr_load_area(msr_entries)
        if not msr_entries:
            self._last = (results, out)
        return out


# --------------------------------------------------------------------------
# Batched struct-of-arrays warm pass (DESIGN.md §12)
# --------------------------------------------------------------------------


def warm_batch_checks(structs, checker: IncrementalChecker,
                      base: Vmcs | None = None) -> None:
    """Columnar pre-pass over a batch of VMCS images.

    The batch is mirrored into struct-of-arrays field columns (shared
    broadcast columns when *base* journals prove fields unchanged) and
    the checker's signature cache is seeded from them:

    * vector-form units (``VEC_FORMS``) pack their column into one big
      int and answer every lane with a single replicated-mask AND;
    * every other unit is deduplicated by column signature — a
      signature repeating across lanes is evaluated once, on its first
      lane, and shared.

    Results land in the same cache the per-case path probes, so this
    changes *where* a unit is evaluated, never what it returns; no
    structure or learning state is mutated.
    """
    if not structs or not perf.batch_enabled():
        return
    from repro.batch import StructBatch, masked_lanes

    cache = checker._signature_cache()
    caps = checker.caps
    # Seed each distinct anchor master first: one full unit sweep per
    # *master* (not per lane) makes every anchored lane gateable below.
    # Without this, a freshly adopted corpus parent would force the
    # whole batch through the ungated sweep every tick.
    seeded: set[int] = set()
    for struct in structs:
        master = struct._anchor
        if master is not None and id(master) not in seeded:
            seeded.add(id(master))
            entry = master.memo_get(_MEMO_KEY)
            if entry is None or not (entry[2] is caps or entry[2] == caps):
                checker.results(master)
    # Journal-gate each lane exactly like the per-case path does: a
    # lane whose (own or anchored) memo entry still validates only
    # needs its dirty units warmed — everything else is served by that
    # entry without ever touching the signature cache.
    unit_lanes: dict[int, list] = {}
    for lane, struct in enumerate(structs):
        entry = struct.memo_get(_MEMO_KEY)
        if entry is None and struct._anchor is not None:
            entry = struct._anchor.memo_get(_MEMO_KEY)
        dirty = None
        if entry is not None and (entry[2] is caps or entry[2] == caps):
            changed = struct.changes_since(entry[0])
            if changed is not None:
                dirty = set()
                for enc in changed:
                    dirty.update(FIELD_TO_CHECKS.get(enc, ()))
        for index in (range(len(UNITS)) if dirty is None else dirty):
            unit_lanes.setdefault(index, []).append(lane)
    if not unit_lanes:
        return
    if base is None:
        # A batch of candidates diffed from one frozen master can use
        # it as the broadcast base: lane journals are rooted at its
        # generation, so columns outside the union of journals are one
        # shared read of the master.
        anchor = structs[0]._anchor
        if anchor is not None and all(s._anchor is anchor for s in structs):
            base = anchor
    batch = StructBatch(structs, base=base)
    for index, enc, mask, bits, bad_result in VEC_FORMS:
        if index not in unit_lanes:
            continue
        column = batch.column(enc)
        dirty_lanes = set(masked_lanes(column, mask, bits))
        for lane in unit_lanes[index]:
            sig = (column[lane],)
            if cache.peek(index, sig) is cache.MISS:
                cache.store(index, sig,
                            bad_result if lane in dirty_lanes else ())
    for index, lanes in sorted(unit_lanes.items()):
        if index in _VEC_UNIT_INDICES:
            continue
        if len(lanes) * 4 >= len(structs):
            # Dense unit: the columnar zip amortizes across the batch.
            sigs = batch.signatures(_UNIT_READS[index])
            lane_sigs = [(lane, sigs[lane]) for lane in lanes]
        else:
            # Sparse unit: a couple of dirty lanes don't pay for full
            # columns — read their signatures directly.
            sig_fn = _UNIT_SIG[index]
            lane_sigs = [(lane, sig_fn(structs[lane]._values))
                         for lane in lanes]
        repeats: dict = {}
        for _, sig in lane_sigs:
            repeats[sig] = repeats.get(sig, 0) + 1
        for lane, sig in lane_sigs:
            if repeats[sig] < 2 or cache.peek(index, sig) is not cache.MISS:
                continue
            cache.store(index, sig, _run_unit(UNITS[index], structs[lane],
                                              caps))
