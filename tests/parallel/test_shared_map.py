"""Shared-memory virgin-map tests: segment lifecycle and worker fallback."""

import multiprocessing

import pytest

from repro.coverage.bitmap import MAP_SIZE
from repro.parallel.shared_map import SharedVirginMap, attach, publisher
from repro.parallel.worker import CampaignWorker, WorkerSpec


@pytest.fixture
def shared():
    ctx = multiprocessing.get_context()
    segment = SharedVirginMap.create(ctx)
    if segment is None:
        pytest.skip("shared memory unavailable in this environment")
    yield segment
    segment.destroy()


class TestSegmentLifecycle:
    def test_created_zeroed_and_sized(self, shared):
        snapshot = shared.snapshot()
        assert len(snapshot) == MAP_SIZE
        assert snapshot == bytes(MAP_SIZE)

    def test_publish_ors_bits_in(self, shared):
        first = bytes([0x0F]) + bytes(MAP_SIZE - 1)
        second = bytes([0xF0, 0x01]) + bytes(MAP_SIZE - 2)
        shared.publish(first)
        shared.publish(second)
        merged = shared.snapshot()
        assert merged[0] == 0xFF
        assert merged[1] == 0x01
        assert merged[2:] == bytes(MAP_SIZE - 2)

    def test_destroy_is_idempotent(self, shared):
        shared.destroy()
        shared.destroy()  # second call must not raise

    def test_attach_sees_published_bits(self, shared):
        shared.publish(bytes([0xAA]) + bytes(MAP_SIZE - 1))
        handle = attach(shared.name)
        try:
            assert handle.buf[0] == 0xAA
        finally:
            handle.close()


class TestPublisherClosure:
    def test_publish_through_closure(self, shared):
        publish = publisher(shared.name, shared.lock)
        publish(bytes([0x01]) + bytes(MAP_SIZE - 1))
        publish(bytes([0x02]) + bytes(MAP_SIZE - 1))
        assert shared.snapshot()[0] == 0x03

    def test_unknown_segment_raises(self):
        ctx = multiprocessing.get_context()
        publish = publisher("psm_repro_does_not_exist", ctx.Lock())
        with pytest.raises(Exception):
            publish(bytes(MAP_SIZE))


def make_worker(**kwargs):
    spec = WorkerSpec(index=0, seed=7, iterations=4)
    from repro import Vendor

    return CampaignWorker(spec, dict(hypervisor="kvm", vendor=Vendor.INTEL),
                          **kwargs)


class TestWorkerPublishing:
    def test_publish_skipped_when_generation_unchanged(self):
        calls = []
        worker = make_worker()
        worker.virgin_publisher = calls.append
        worker.run_chunk(4)
        worker.publish_virgin()
        assert len(calls) == 1
        worker.publish_virgin()  # no engine progress since: no-op
        assert len(calls) == 1

    def test_failing_publisher_falls_back_to_snapshots(self):
        def explode(bits):
            raise OSError("segment vanished")

        worker = make_worker()
        worker.virgin_publisher = explode
        worker.run_chunk(4)
        report = worker.report()
        assert worker.virgin_publisher is None
        # The report carries the full snapshot again: no bits lost.
        assert report.virgin_bits == bytes(worker.campaign.engine.virgin.bits)

    def test_live_publisher_empties_report_snapshot(self, shared):
        worker = make_worker()
        worker.virgin_publisher = shared.publish
        worker.run_chunk(4)
        report = worker.report()
        assert report.virgin_bits == b""
        assert shared.snapshot() == bytes(worker.campaign.engine.virgin.bits)

    def test_checkpoint_drops_publisher_state(self):
        import pickle

        worker = make_worker()
        worker.virgin_publisher = lambda bits: None
        worker.run_chunk(4)
        worker.publish_virgin()
        assert worker._published_generation > 0
        restored = pickle.loads(pickle.dumps(worker))
        assert restored.virgin_publisher is None
        assert restored._published_generation == 0
