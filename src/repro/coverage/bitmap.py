"""AFL-style edge-coverage bitmap.

The agent maps hypervisor traces onto "a shared memory bitmap monitored
by AFL++ to guide mutation" (paper §4.1). We reproduce the classic AFL
scheme: 64 KiB of per-edge hit counters, bucketed into power-of-two
classes, with a persistent *virgin map* deciding whether a run found new
behaviour.
"""

from __future__ import annotations

from functools import lru_cache

MAP_SIZE = 1 << 16

#: AFL's count-class buckets: a hit count maps to one bit of the byte.
_BUCKETS = ((1, 1), (2, 2), (3, 4), (4, 8), (8, 16), (16, 32), (32, 64),
            (128, 128))


def classify_count(count: int) -> int:
    """Map a raw hit count to its AFL count-class bit."""
    if count == 0:
        return 0
    for threshold, bucket in _BUCKETS:
        if count <= threshold:
            return bucket
    return 128


def edge_index(prev_id: int, cur_id: int) -> int:
    """AFL edge hash: ``(prev >> 1) ^ cur`` folded into the map."""
    return ((prev_id >> 1) ^ cur_id) & (MAP_SIZE - 1)


@lru_cache(maxsize=65536)
def stable_line_id(filename: str, lineno: int) -> int:
    """Deterministic 16-bit id for a source location.

    ``hash()`` is randomized per interpreter run; campaigns must be
    reproducible, so we use a small FNV-1a over the location string.
    """
    h = 0x811C9DC5
    for byte in f"{filename}:{lineno}".encode():
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h & (MAP_SIZE - 1)


#: Trace edges map to bitmap cells through two line-id hashes plus the
#: edge fold. The set of distinct source-line edges is small (bounded by
#: the instrumented target code), so one flat dict lookup per edge beats
#: re-deriving the hash chain every case.
_EDGE_INDEX_CACHE: dict[tuple, int] = {}


class CoverageBitmap:
    """One run's edge-hit bitmap."""

    def __init__(self) -> None:
        self.counts = bytearray(MAP_SIZE)
        self.touched: set[int] = set()

    def record_edge(self, prev_id: int, cur_id: int) -> None:
        """Count one traversal of the (prev, cur) edge."""
        idx = edge_index(prev_id, cur_id)
        if self.counts[idx] < 255:
            self.counts[idx] += 1
        self.touched.add(idx)

    def record_trace(self, edges) -> None:
        """Record a set of ((file, line), (file, line)) trace edges."""
        cache = _EDGE_INDEX_CACHE
        counts = self.counts
        touched = self.touched
        for edge in edges:
            idx = cache.get(edge)
            if idx is None:
                (pf, pl), (cf, cl) = edge
                idx = edge_index(stable_line_id(pf, pl),
                                 stable_line_id(cf, cl))
                cache[edge] = idx
            if counts[idx] < 255:
                counts[idx] += 1
            touched.add(idx)

    def classified(self) -> bytes:
        """The bucketed bitmap, as AFL would compare it."""
        return bytes(classify_count(c) for c in self.counts)

    def reset(self) -> None:
        """Clear recorded state (touched cells only — O(edges), not O(map))."""
        counts = self.counts
        for idx in self.touched:
            counts[idx] = 0
        self.touched.clear()

    def count_nonzero(self) -> int:
        """Number of map cells with at least one hit."""
        return sum(1 for c in self.counts if c)


class VirginMap:
    """Cumulative map of behaviour already seen (AFL's virgin_bits)."""

    def __init__(self) -> None:
        self.bits = bytearray(MAP_SIZE)  # accumulated classified bits

    def has_new_bits(self, run: CoverageBitmap) -> int:
        """Merge *run* into the map.

        Returns 2 for brand-new edges, 1 for new count buckets on known
        edges, 0 for nothing new — the same tri-state AFL uses to decide
        whether an input is interesting.
        """
        ret = 0
        counts = run.counts
        bits = self.bits
        for idx in run.touched:
            count = counts[idx]
            if not count:
                continue
            cls = classify_count(count)
            old = bits[idx]
            if cls & ~old:
                ret = 2 if old == 0 else max(ret, 1)
                bits[idx] = old | cls
        return ret

    def snapshot(self) -> bytes:
        """Immutable copy of the accumulated bits (checkpoint payload)."""
        return bytes(self.bits)

    def restore(self, bits: bytes) -> None:
        """Overwrite the map from a :meth:`snapshot` payload."""
        if len(bits) != MAP_SIZE:
            raise ValueError(
                f"virgin-map snapshot is {len(bits)} bytes, "
                f"expected {MAP_SIZE}")
        self.bits = bytearray(bits)

    def merge_from(self, other: "VirginMap") -> None:
        """OR another virgin map into this one (parallel-campaign merge)."""
        merged = (int.from_bytes(self.bits, "little")
                  | int.from_bytes(other.bits, "little"))
        self.bits = bytearray(merged.to_bytes(MAP_SIZE, "little"))

    def density(self) -> float:
        """Fraction of map bytes touched (AFL's map density)."""
        return sum(1 for b in self.bits if b) / MAP_SIZE
