"""Instruction-level tests for VirtualBox's IEM-style VMX handlers."""

import pytest

from repro.arch.cpuid import Vendor
from repro.hypervisors import GuestInstruction, VboxHypervisor, VcpuConfig
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.exit_reasons import VmInstructionError

VMXON, VMCS12 = 0x1000, 0x3000


def run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


@pytest.fixture
def vbox():
    hv = VboxHypervisor(VcpuConfig.default(Vendor.INTEL))
    return hv, hv.create_vcpu()


def boot(hv, vcpu, vmcs=None):
    run(hv, vcpu, "vmxon", addr=VMXON)
    run(hv, vcpu, "vmclear", addr=VMCS12)
    run(hv, vcpu, "vmptrld", addr=VMCS12)
    for spec, value in (vmcs or golden_vmcs(hv.nested_vmx.caps)).fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)
    return run(hv, vcpu, "vmlaunch")


class TestIemHandlers:
    def test_vmxon_requires_cr4_vmxe(self, vbox):
        hv, vcpu = vbox
        run(hv, vcpu, "mov_cr", cr=4, write=1, value=0)
        assert not run(hv, vcpu, "vmxon", addr=VMXON).ok

    def test_double_vmxon(self, vbox):
        hv, vcpu = vbox
        run(hv, vcpu, "vmxon", addr=VMXON)
        result = run(hv, vcpu, "vmxon", addr=VMXON)
        assert result.value == int(VmInstructionError.VMXON_IN_VMX_ROOT)

    def test_vmclear_of_vmxon_region(self, vbox):
        hv, vcpu = vbox
        run(hv, vcpu, "vmxon", addr=VMXON)
        result = run(hv, vcpu, "vmclear", addr=VMXON)
        assert result.value == int(VmInstructionError.VMCLEAR_VMXON_POINTER)

    def test_vmwrite_read_only(self, vbox):
        hv, vcpu = vbox
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        result = run(hv, vcpu, "vmwrite",
                     field=int(F.VM_EXIT_REASON), value=1)
        assert result.value == int(
            VmInstructionError.VMWRITE_READ_ONLY_COMPONENT)

    def test_vmread_roundtrip(self, vbox):
        hv, vcpu = vbox
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        run(hv, vcpu, "vmwrite", field=int(F.GUEST_RIP), value=0x777)
        assert run(hv, vcpu, "vmread", field=int(F.GUEST_RIP)).value == 0x777

    def test_vmlaunch_twice(self, vbox):
        hv, vcpu = vbox
        assert boot(hv, vcpu).level == 2
        run(hv, vcpu, "hlt", level=2)  # exit to L1
        result = run(hv, vcpu, "vmlaunch")
        assert result.value == int(VmInstructionError.VMLAUNCH_NONCLEAR_VMCS)

    def test_vmresume_after_exit(self, vbox):
        hv, vcpu = vbox
        boot(hv, vcpu)
        run(hv, vcpu, "cpuid", level=2)
        assert run(hv, vcpu, "vmresume").level == 2

    def test_invept_invvpid_accepted(self, vbox):
        hv, vcpu = vbox
        run(hv, vcpu, "vmxon", addr=VMXON)
        assert run(hv, vcpu, "invept", type=2).ok
        assert run(hv, vcpu, "invvpid", type=1, vpid=1).ok

    def test_check_order_controls_before_host(self, vbox):
        hv, vcpu = vbox
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL, 0)   # control violation
        vmcs.write(F.HOST_CS_SELECTOR, 0)            # host violation
        result = boot(hv, vcpu, vmcs)
        assert result.value == int(
            VmInstructionError.ENTRY_INVALID_CONTROL_FIELDS)

    def test_activity_state_sanitized(self, vbox):
        """VirtualBox, like KVM, does not let auxiliary activity states
        through to hardware (only Xen does — bug #4)."""
        hv, vcpu = vbox
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, 3)
        result = boot(hv, vcpu, vmcs)
        # Either rejected by checks or sanitized during the merge; the
        # host must survive in both cases.
        assert not hv.crashed
