"""Tests for the deterministic RNG wrapper."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer.rng import Rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = Rng(5), Rng(5)
        assert [a.u64() for _ in range(8)] == [b.u64() for _ in range(8)]

    def test_different_seed_different_stream(self):
        assert [Rng(1).u64() for _ in range(4)] != [Rng(2).u64() for _ in range(4)]

    def test_fork_independent_of_parent_consumption(self):
        parent_a, parent_b = Rng(5), Rng(5)
        parent_b.u64()  # consume from one parent only
        assert parent_a.fork(3).u64() == parent_b.fork(3).u64()

    def test_fork_salt_matters(self):
        parent = Rng(5)
        assert parent.fork(1).u64() != parent.fork(2).u64()


class TestRanges:
    @given(st.integers(min_value=0, max_value=1 << 32))
    @settings(max_examples=40, deadline=None)
    def test_widths(self, seed):
        rng = Rng(seed)
        assert 0 <= rng.u8() < 1 << 8
        assert 0 <= rng.u16() < 1 << 16
        assert 0 <= rng.u32() < 1 << 32
        assert 0 <= rng.u64() < 1 << 64

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_below(self, seed, bound):
        assert 0 <= Rng(seed).below(bound) < bound

    def test_bytes_length(self):
        assert len(Rng(1).bytes(77)) == 77

    def test_chance_extremes(self):
        rng = Rng(1)
        assert all(rng.chance(1.0) for _ in range(16))
        assert not any(rng.chance(0.0) for _ in range(16))

    def test_choice_and_shuffle(self):
        rng = Rng(3)
        items = list(range(10))
        assert rng.choice(items) in items
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
