"""Coverage-vs-time recording for Figures 3 and 4.

Campaigns are iteration-budgeted; wall-clock hours are a linear mapping
(``iterations_per_hour``), which preserves the coverage-transition
*shape* the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of a coverage trajectory."""

    iteration: int
    coverage: float  # fraction in [0, 1]

    def hours(self, iterations_per_hour: float) -> float:
        """This point's position on the virtual wall-clock axis."""
        return self.iteration / iterations_per_hour


@dataclass
class CoverageTimeline:
    """A sampled coverage trajectory for one campaign run."""

    label: str
    iterations_per_hour: float = 10.0
    points: list[TimelinePoint] = field(default_factory=list)

    def record(self, iteration: int, coverage: float) -> None:
        """Append one (iteration, coverage) sample."""
        self.points.append(TimelinePoint(iteration, coverage))

    @property
    def final_coverage(self) -> float:
        """Coverage at the last recorded point (0.0 when empty)."""
        return self.points[-1].coverage if self.points else 0.0

    def at_hour(self, hour: float) -> float:
        """Coverage at (or before) a given virtual hour."""
        target = hour * self.iterations_per_hour
        best = 0.0
        for point in self.points:
            if point.iteration <= target:
                best = point.coverage
            else:
                break
        return best

    def series(self) -> list[tuple[float, float]]:
        """(hours, coverage%) pairs for plotting/printing."""
        return [(p.hours(self.iterations_per_hour), 100.0 * p.coverage)
                for p in self.points]

    def render(self, *, width: int = 60) -> str:
        """An ASCII sparkline of the trajectory (for bench output)."""
        if not self.points:
            return f"{self.label}: (no data)"
        cells = []
        marks = " .:-=+*#%@"
        for i in range(width):
            idx = min(int(i * len(self.points) / width), len(self.points) - 1)
            level = self.points[idx].coverage
            cells.append(marks[min(int(level * (len(marks) - 1)), len(marks) - 1)])
        return (f"{self.label:<28} |{''.join(cells)}| "
                f"{100 * self.final_coverage:5.1f}%")


def median_timeline(timelines: list[CoverageTimeline],
                    label: str) -> CoverageTimeline:
    """Pointwise median across same-length runs (Klees-style reporting)."""
    if not timelines:
        return CoverageTimeline(label)
    length = min(len(t.points) for t in timelines)
    merged = CoverageTimeline(label, timelines[0].iterations_per_hour)
    for i in range(length):
        values = sorted(t.points[i].coverage for t in timelines)
        mid = len(values) // 2
        median = (values[mid] if len(values) % 2
                  else (values[mid - 1] + values[mid]) / 2)
        merged.record(timelines[0].points[i].iteration, median)
    return merged
