"""Simulated physical CPU — the hardware oracle for VM-state validity."""

from repro.cpu.entry_checks import CheckStage, Violation, check_all
from repro.cpu.physical_cpu import EntryOutcome, VmxCpu, VmxResult, VmxResultKind
from repro.cpu.svm_cpu import SvmCpu, VmrunOutcome, check_vmcb

__all__ = [
    "VmxCpu",
    "SvmCpu",
    "VmxResult",
    "VmxResultKind",
    "EntryOutcome",
    "VmrunOutcome",
    "CheckStage",
    "Violation",
    "check_all",
    "check_vmcb",
]
