"""Tests for fuzzing-input partitioning and cursors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer.input import (
    CONFIG_REGION,
    HARNESS_REGION,
    INPUT_SIZE,
    MUTATION_REGION,
    VM_STATE_REGION,
    FuzzInput,
    InputCursor,
)
from repro.vmx import fields as F


class TestRegions:
    def test_regions_tile_the_input(self):
        regions = sorted([VM_STATE_REGION, MUTATION_REGION, HARNESS_REGION,
                          CONFIG_REGION])
        for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
            assert e1 == s2  # contiguous, no overlap

    def test_vm_state_region_fits_vmcs(self):
        start, end = VM_STATE_REGION
        assert end - start >= F.LAYOUT_BYTES

    def test_input_is_2kib(self):
        assert INPUT_SIZE == 2048


class TestFuzzInput:
    def test_normalize_pads(self):
        assert len(FuzzInput.normalize(b"ab")) == INPUT_SIZE

    def test_normalize_truncates(self):
        assert len(FuzzInput.normalize(b"x" * 5000)) == INPUT_SIZE

    def test_short_input_auto_normalized(self):
        fi = FuzzInput(b"abc")
        assert len(fi.data) == INPUT_SIZE

    def test_vm_state_bytes(self):
        fi = FuzzInput(bytes(range(256)) * 8)
        start, end = VM_STATE_REGION
        assert fi.vm_state_bytes() == fi.data[start:end]

    def test_from_rng_deterministic(self):
        from repro.fuzzer.rng import Rng

        assert FuzzInput.from_rng(Rng(5)).data == FuzzInput.from_rng(Rng(5)).data


class TestInputCursor:
    def test_sequential_reads(self):
        cursor = InputCursor(bytes([1, 2, 3, 4]))
        assert cursor.u8() == 1
        assert cursor.u8() == 2
        assert cursor.u16() == 3 | (4 << 8)

    def test_wraps_around(self):
        cursor = InputCursor(bytes([7]))
        assert cursor.u32() == 0x07070707

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            InputCursor(b"")

    def test_below_bounds(self):
        cursor = InputCursor(bytes(range(64)))
        for bound in (1, 7, 255, 1000, 100000):
            assert 0 <= cursor.below(bound) < bound

    def test_below_zero_rejected(self):
        with pytest.raises(ValueError):
            InputCursor(b"\x01").below(0)

    def test_choose(self):
        cursor = InputCursor(bytes([2]))
        assert cursor.choose(["a", "b", "c"]) == "c"

    def test_chance_extremes(self):
        assert InputCursor(b"\x00").chance(1, 2)       # 0 < 128
        assert not InputCursor(b"\xff").chance(1, 2)   # 255 >= 128

    def test_spread_offset_derived_from_content(self):
        a = InputCursor(b"\x01" + bytes(9), spread=True)
        b = InputCursor(b"\x02" + bytes(9), spread=True)
        assert a.offset != b.offset

    def test_spread_changes_directive_stream(self):
        # A single-byte change anywhere reshuffles subsequent reads.
        base = bytes(range(100))
        changed = bytes([99]) + base[1:]
        a = InputCursor(base, spread=True)
        b = InputCursor(changed, spread=True)
        assert [a.u8() for _ in range(8)] != [b.u8() for _ in range(8)]

    @given(st.binary(min_size=1, max_size=64),
           st.integers(min_value=1, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_below_always_in_range(self, data, bound):
        cursor = InputCursor(data)
        for _ in range(4):
            assert 0 <= cursor.below(bound) < bound
