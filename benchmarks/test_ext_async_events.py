"""Extension benchmark: asynchronous-event injection (§6.3 future work).

The paper does not model interrupts, NMIs, or timer exits — their
reflect-policy branches are part of NecoFuzz's documented uncovered
residue. In a simulated substrate injection is deterministic, so this
benchmark measures what implementing the future-work item buys.
"""

import pytest

from common import BenchReport, coverage_percents, necofuzz_runs
from repro import NecoFuzz, Vendor
from repro.analysis.stats import median_of

BUDGET = 450


@pytest.mark.benchmark(group="ext-async")
@pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                         ids=["intel", "amd"])
def test_async_event_extension(benchmark, capsys, vendor):
    box = {}

    def experiment():
        base = necofuzz_runs(vendor, budget=BUDGET, runs=2)
        extended = []
        for seed in (11, 23):
            campaign = NecoFuzz(hypervisor="kvm", vendor=vendor, seed=seed,
                                async_events=True,
                                iterations_per_hour=BUDGET / 48.0)
            extended.append(campaign.run(BUDGET))
        box["base"], box["extended"] = base, extended
        return box

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    base_med = median_of(coverage_percents(box["base"]))
    ext_med = median_of(coverage_percents(box["extended"]))

    base_union = set()
    for r in box["base"]:
        base_union |= r.covered_lines
    ext_union = set()
    for r in box["extended"]:
        ext_union |= r.covered_lines
    gained = ext_union - base_union

    report = BenchReport(f"Extension: async events ({vendor.value})")
    report.add(f"{'paper configuration (no async)':<34} {base_med:5.1f}%")
    report.add(f"{'with async-event injection':<34} {ext_med:5.1f}%")
    report.add(f"{'async-only lines unlocked':<34} {len(gained):5d}")
    report.emit(capsys)

    # The extension must never lose coverage, and on Intel (whose
    # reflect dispatcher has many async-only branches) it must gain.
    assert ext_med >= base_med - 1.0
    if vendor is Vendor.INTEL:
        assert gained
