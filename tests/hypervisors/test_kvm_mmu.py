"""Tests for the KVM MMU model (roots, dummy-root patch, PDPTE loads)."""

from repro.hypervisors.kvm.mmu import KvmMmu, MmuRoot
from repro.hypervisors.memory import GuestMemory


def make_mmu():
    return KvmMmu(GuestMemory())


class TestRootValidation:
    def test_visible_root_accepted(self):
        mmu = make_mmu()
        assert mmu.mmu_check_root(0x20000)
        assert mmu.load_root(0x20000, dummy_root_patch=False)
        assert mmu.root == MmuRoot(0x20000)

    def test_invisible_root_rejected_prepatch(self):
        mmu = make_mmu()
        assert not mmu.mmu_check_root(0xF0000000)
        assert not mmu.load_root(0xF0000000, dummy_root_patch=False)
        assert mmu.root is None

    def test_dummy_root_patch(self):
        """The fix [10]: an invisible root loads the zero page instead."""
        mmu = make_mmu()
        assert mmu.load_root(0xF0000000, dummy_root_patch=True)
        assert mmu.root.dummy
        assert mmu.root.hpa == KvmMmu.ZERO_PAGE_HPA

    def test_root_page_aligned(self):
        mmu = make_mmu()
        mmu.load_root(0x20123, dummy_root_patch=False)
        assert mmu.root.hpa == 0x20000


class TestPdpteLoads:
    def test_legacy_pae_walk_clean(self):
        mmu = make_mmu()
        oob = mmu.load_pdptrs(0x30000, believed_long_mode=False,
                              pae_enabled=True,
                              walk_address=0xFFFF_FFFF)
        assert oob is None
        assert mmu.pdptrs.oob_write is None

    def test_confused_walk_overflows(self):
        """The CVE-2023-30456 condition: long-mode index bits against
        the 4-entry legacy cache."""
        mmu = make_mmu()
        oob = mmu.load_pdptrs(0x30000, believed_long_mode=True,
                              pae_enabled=False,
                              walk_address=0x7FFF_FFFF_F000)
        assert oob is not None and oob > 3
        assert mmu.pdptrs.oob_write is not None

    def test_confused_walk_small_address_in_bounds(self):
        mmu = make_mmu()
        oob = mmu.load_pdptrs(0x30000, believed_long_mode=True,
                              pae_enabled=False, walk_address=0x4000_0000)
        assert oob is None

    def test_consistent_long_mode_uses_legacy_index(self):
        # believed_long_mode with PAE set: no confusion, legacy index.
        mmu = make_mmu()
        oob = mmu.load_pdptrs(0x30000, believed_long_mode=True,
                              pae_enabled=True,
                              walk_address=0x7FFF_FFFF_F000)
        assert oob is None
