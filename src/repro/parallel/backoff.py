"""Capped exponential backoff with optional jitter — one formula, shared.

The supervisor's restart delays and the federation transport's reconnect
loop both want the same curve: ``base * 2**(attempt-1)`` capped at
``cap``, optionally spread by a symmetric jitter fraction so a herd of
nodes reconnecting after a coordinator restart does not thundering-herd
the listener. Keeping the formula here (instead of two slightly
different inline copies) is what lets the backoff unit tests pin both
call sites at once.
"""

from __future__ import annotations

import random


def expo_backoff(base: float, cap: float, attempt: int, *,
                 jitter: float = 0.0,
                 rng: random.Random | None = None) -> float:
    """Delay before retry number *attempt* (1-based).

    The deterministic core is ``min(cap, base * 2**(attempt-1))``.
    With ``jitter`` (a fraction in [0, 1]) the delay is scaled by a
    uniform factor in ``[1-jitter, 1+jitter]`` drawn from *rng* — pass a
    seeded :class:`random.Random` for reproducible schedules (the chaos
    tests do); the module-global RNG is used only when none is given.
    The jittered value is clamped back under ``cap`` so the cap stays a
    hard ceiling, and never goes negative.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based; got "f"{attempt}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1]; got {jitter}")
    if base < 0 or cap < 0:
        raise ValueError("base and cap must be >= 0")
    # 2**(attempt-1) overflows float for silly attempts; cap first.
    exponent = min(attempt - 1, 64)
    delay = min(cap, base * (2 ** exponent))
    if jitter:
        draw = rng.random() if rng is not None else random.random()
        delay *= 1.0 + jitter * (2.0 * draw - 1.0)
        delay = min(cap, max(0.0, delay))
    return delay
