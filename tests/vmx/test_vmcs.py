"""Unit and property tests for the Vmcs object."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vmx import fields as F
from repro.vmx.vmcs import Vmcs, VmcsState


class TestFieldAccess:
    def test_default_zero(self):
        assert Vmcs().read(F.GUEST_RIP) == 0

    def test_link_pointer_defaults_all_ones(self):
        assert Vmcs().read(F.VMCS_LINK_POINTER) == (1 << 64) - 1

    def test_write_read(self):
        vmcs = Vmcs()
        vmcs.write(F.GUEST_RIP, 0x1234)
        assert vmcs.read(F.GUEST_RIP) == 0x1234

    def test_write_truncates_to_width(self):
        vmcs = Vmcs()
        vmcs.write(F.GUEST_ES_SELECTOR, 0x12345)  # 16-bit field
        assert vmcs.read(F.GUEST_ES_SELECTOR) == 0x2345

    def test_unknown_encoding_rejected(self):
        with pytest.raises(KeyError):
            Vmcs().read(0xDEAD)
        with pytest.raises(KeyError):
            Vmcs().write(0xDEAD, 1)

    def test_item_syntax(self):
        vmcs = Vmcs()
        vmcs[F.GUEST_RSP] = 7
        assert vmcs[F.GUEST_RSP] == 7

    def test_by_name(self):
        vmcs = Vmcs()
        vmcs.set_by_name("guest_cr0", 0x31)
        assert vmcs.by_name("guest_cr0") == 0x31
        assert vmcs.read(F.GUEST_CR0) == 0x31


class TestLaunchState:
    def test_starts_clear(self):
        assert Vmcs().launch_state == VmcsState.CLEAR

    def test_launch_and_clear(self):
        vmcs = Vmcs()
        vmcs.mark_launched()
        assert vmcs.launched
        vmcs.clear()
        assert not vmcs.launched

    def test_copy_preserves_state(self):
        vmcs = Vmcs()
        vmcs.mark_launched()
        assert vmcs.copy().launched


class TestWholeStructure:
    def test_copy_is_independent(self):
        a = Vmcs()
        b = a.copy()
        b.write(F.GUEST_RIP, 5)
        assert a.read(F.GUEST_RIP) == 0

    def test_diff(self):
        a, b = Vmcs(), Vmcs()
        b.write(F.GUEST_RIP, 5)
        b.write(F.GUEST_CR0, 1)
        diff = a.diff(b)
        assert {spec.name for spec, _, _ in diff} == {"guest_rip", "guest_cr0"}

    def test_equality(self):
        assert Vmcs() == Vmcs()
        other = Vmcs()
        other.write(F.GUEST_RIP, 1)
        assert Vmcs() != other

    def test_serialize_length(self):
        assert len(Vmcs().serialize()) == F.LAYOUT_BYTES

    def test_deserialize_short_input_rejected(self):
        with pytest.raises(ValueError):
            Vmcs.deserialize(b"\x00" * 10)

    def test_hamming_zero_to_self(self):
        vmcs = Vmcs()
        assert vmcs.hamming(vmcs.copy()) == 0

    def test_hamming_counts_bits(self):
        a, b = Vmcs(), Vmcs()
        b.write(F.GUEST_RIP, 0b111)
        assert a.hamming(b) == 3

    def test_load_dict(self):
        vmcs = Vmcs()
        vmcs.load_dict({F.GUEST_RIP: 1, F.GUEST_RSP: 2})
        assert vmcs.read(F.GUEST_RIP) == 1
        assert vmcs.read(F.GUEST_RSP) == 2

    def test_repr_mentions_state(self):
        assert "clear" in repr(Vmcs())


class TestSerializationProperties:
    @given(st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES))
    @settings(max_examples=50, deadline=None)
    def test_deserialize_serialize_roundtrip(self, raw):
        assert Vmcs.deserialize(raw).serialize() == raw

    @given(st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES),
           st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES))
    @settings(max_examples=25, deadline=None)
    def test_hamming_symmetric(self, raw_a, raw_b):
        a, b = Vmcs.deserialize(raw_a), Vmcs.deserialize(raw_b)
        assert a.hamming(b) == b.hamming(a)

    @given(st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES))
    @settings(max_examples=25, deadline=None)
    def test_fields_iteration_covers_layout(self, raw):
        vmcs = Vmcs.deserialize(raw)
        total_bits = sum(spec.bits for spec, _ in vmcs.fields())
        assert total_bits == F.LAYOUT_BITS
