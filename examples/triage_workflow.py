#!/usr/bin/env python3
"""A finding-to-triage workflow: fuzz, persist, minimize, replay.

Shows the agent-side infrastructure around the fuzzing loop (§4.5):
crash reports saved to disk with reproduction metadata, corpus
persistence for campaign resumption, and signature-preserving input
minimization for manual analysis.
"""

import tempfile
from pathlib import Path

from repro import NecoFuzz, Vendor
from repro.core.agent import Agent, AgentConfig
from repro.core.minimizer import CrashMinimizer


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="necofuzz-"))
    print(f"working directory: {workdir}\n")

    # 1. Fuzz until something falls out.
    campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=3,
                        reports_dir=workdir / "reports")
    budget = 0
    while not campaign.agent.reports.reports and budget < 2000:
        campaign.run(iterations=200)
        budget += 200
        print(f"  {budget} cases, "
              f"{100 * campaign.agent.coverage_fraction:.1f}% coverage, "
              f"{len(campaign.agent.reports.reports)} finding(s)")
    if not campaign.agent.reports.reports:
        print("no findings in budget; try another seed")
        return

    report = campaign.agent.reports.reports[0]
    print(f"\nfinding: [{report.anomaly.method.value}] {report.anomaly.message}")
    print(f"saved as: {(workdir / 'reports' / report.file_name())}.json/.bin")

    # 2. Persist the corpus so the campaign can resume later.
    written = campaign.engine.save_corpus(workdir / "queue")
    print(f"\ncorpus: {written} inputs saved to {workdir / 'queue'}")

    # 3. Minimize the crash input for manual analysis.
    minimizer = CrashMinimizer(AgentConfig(), max_replays=200)
    result = minimizer.minimize(report)
    print(f"\nminimization: {result.summary()}")
    nonzero_offsets = [i for i, b in enumerate(result.minimized.data) if b]
    print(f"  non-zero byte offsets: {nonzero_offsets[:16]}"
          f"{' ...' if len(nonzero_offsets) > 16 else ''}")

    # 4. Replay the minimized input on a fresh agent — same signature.
    outcome = Agent(AgentConfig()).run_case(result.minimized)
    replayed = [a.signature() for a in outcome.anomalies]
    print(f"\nreplay of minimized input reproduces: {replayed}")
    assert report.anomaly.signature() in replayed

    # 5. Resume a fresh campaign from the saved corpus.
    resumed = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=99)
    loaded = resumed.engine.load_corpus(workdir / "queue")
    resumed.run(100)
    print(f"\nresumed campaign from {loaded} corpus inputs: "
          f"{100 * resumed.agent.coverage_fraction:.1f}% coverage "
          f"after 100 more cases")


if __name__ == "__main__":
    main()
