"""Shared-memory virgin map for process-mode campaigns.

Before this existed, every process worker shipped its complete 64 KiB
virgin map back through a pickled report and the orchestrator OR-merged
N snapshots at the end. Now the supervisor creates one
``multiprocessing.shared_memory`` segment sized like the map; each
worker ORs its local virgin bits into it at sync rounds (under a lock,
and only when its map actually changed since the last publish — the
``VirginMap.generation`` counter makes that check free). Reports then
carry an empty ``virgin_bits`` payload and the merged map is read
straight out of the segment.

Everything degrades gracefully: if the segment cannot be created (no
``/dev/shm``, permissions) the supervisor runs without it and reports
carry full snapshots exactly as before; if a worker loses the segment
mid-run it falls back the same way. Inline mode never uses this module
— workers there share the orchestrator's address space already.

Lifecycle: the supervisor owns the segment (creates, snapshots at the
end, closes + unlinks in a ``finally``). Workers only ever attach, and
attaching must not register the segment with their own
``resource_tracker`` — on Python < 3.13 that registration is
unconditional and would have each exiting worker's tracker whine about
(or even unlink) a segment it does not own, so :func:`attach` undoes it.
"""

from __future__ import annotations

import logging

from repro import telemetry
from repro.coverage.bitmap import MAP_SIZE

log = logging.getLogger("repro.parallel")


def attach(name: str):
    """Attach to an existing segment without claiming ownership.

    On Python >= 3.13 ``track=False`` keeps the attachment out of the
    resource tracker entirely. Older interpreters register
    unconditionally — harmless here, because fork/spawn children share
    the parent's tracker process and its cache is a set: the duplicate
    registration collapses and the supervisor's ``unlink`` removes the
    single entry. (Explicitly unregistering from the child would be
    *wrong* with a shared tracker: it would strip the parent's own
    registration and make the final unlink whine.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _or_into(buf, bits: bytes) -> None:
    """OR *bits* into the segment buffer as one big-int operation."""
    merged = (int.from_bytes(bytes(buf[:MAP_SIZE]), "little")
              | int.from_bytes(bits, "little"))
    buf[:MAP_SIZE] = merged.to_bytes(MAP_SIZE, "little")


class SharedVirginMap:
    """The supervisor-owned segment plus its inter-process lock."""

    def __init__(self, shm, lock) -> None:
        self.shm = shm
        self.lock = lock

    @classmethod
    def create(cls, ctx) -> "SharedVirginMap | None":
        """A fresh zeroed segment, or ``None`` when unavailable."""
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=MAP_SIZE)
        except Exception as exc:
            log.warning("shared virgin map unavailable (%s); workers will "
                        "ship full snapshots in their reports", exc)
            return None
        return cls(shm, ctx.Lock())

    @property
    def name(self) -> str:
        return self.shm.name

    def publish(self, bits: bytes) -> None:
        with self.lock:
            _or_into(self.shm.buf, bits)
        telemetry.counter("shared_map.publishes")

    def snapshot(self) -> bytes:
        with self.lock:
            return bytes(self.shm.buf[:MAP_SIZE])

    def delta_since(self, baseline: bytes, base_generation: int,
                    generation: int):
        """The coverage delta from *baseline* to the segment's current
        merged bits (one locked snapshot + one vectorized diff)."""
        from repro.coverage import delta

        return delta.delta_between(baseline, self.snapshot(),
                                   base_generation, generation)

    def destroy(self) -> None:
        """Close and unlink; safe to call exactly once.

        Only the *expected* endgame errors are swallowed — the segment
        already gone (:class:`FileNotFoundError`) or a still-exported
        buffer view (:class:`BufferError`). Anything else (a permission
        flip, a bad handle) propagates: a bare ``pass`` here once hid a
        real leak for an entire chaos run. ``unlink`` is attempted even
        when ``close`` refuses, so the name never outlives the run.
        """
        try:
            self.shm.close()
        except (FileNotFoundError, BufferError):
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


class Publisher:
    """A worker-side publish callable bound to one segment name.

    Attachment is lazy (first publish) so building the object in the
    parent before fork costs nothing, and the attached handle is cached
    for the worker's lifetime. :meth:`close` drops the mapping; the
    worker entry point calls it in a ``finally`` so a mid-sync fault
    cannot leak the segment mapping out of a dying worker.
    """

    def __init__(self, name: str, lock) -> None:
        self.name = name
        self.lock = lock
        self._shm = None

    def __call__(self, bits: bytes) -> None:
        if self._shm is None:
            self._shm = attach(self.name)
        with self.lock:
            _or_into(self._shm.buf, bits)
        telemetry.counter("shared_map.publishes")

    def close(self) -> None:
        """Drop the attached mapping (never the segment itself)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except (FileNotFoundError, BufferError):
                pass


def publisher(name: str, lock) -> Publisher:
    """A worker-side publish callable bound to segment *name*."""
    return Publisher(name, lock)
