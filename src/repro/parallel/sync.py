"""Corpus sync between campaign workers (AFL's ``sync_fuzzers`` shape).

Each worker owns ``<root>/worker-NNN/queue/``. Two wire formats share
this module:

* ``sync_format="v2"`` (default) — the binary protocol from
  :mod:`repro.parallel.wire`: exports *append* only newly found entries
  to ``queue.bin`` + ``queue.idx``, importers seek straight to the
  first unconsumed manifest record, and each record ships its sparse
  classified coverage so the **subsumption filter** can consume entries
  that cannot light up new local virgin bits without executing them
  (their shipped line coverage is absorbed instead). Crashing or
  anomalous entries are always executed, keeping crash accounting
  identical to v1.
* ``sync_format="v1"`` — the legacy per-entry-file layout written by
  :meth:`FuzzEngine.save_corpus`; kept for old sync roots and because
  crash reproducers share its JSON decoder.

Robustness contract (both formats): the import side tolerates whatever
a partner crashing mid-write can leave behind. V1 heals because the
owner rewrites every entry file each round; v2 heals because the owner
checks its append tail (size + tail CRC, O(1)) on every export and
rewrites both files from the live queue when the tail is broken. A
corrupt record is skipped and counted (``stats.import_skipped``) once,
kept on a retry list, and imported after it heals.
"""

from __future__ import annotations

import bisect
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, telemetry
from repro.coverage import delta
from repro.fuzzer.crashes import atomic_write_bytes
from repro.fuzzer.engine import FuzzEngine
from repro.parallel import checksum, wire

SYNC_FORMATS = ("v1", "v2")

#: Per-queue-dir coverage sidecar (DESIGN.md §15): the exporter's full
#: virgin map as one NCD1 payload, plus the metadata an importer needs
#: to reject the whole fresh batch without opening ``queue.bin``.
COVERAGE_SIDECAR = "coverage.bin"


def record_subsumed(engine: FuzzEngine, record: wire.WireRecord, *,
                    enabled: bool = True) -> bool:
    """The subsumption-filter contract, in one place.

    Skip execution only when it provably changes nothing: the record
    must ship both coverage and absorbable lines, must not have crashed
    or anomaled when found (those always re-execute so crash accounting
    matches v1), and every shipped ``(cell, class-bit)`` pair must
    already be present in the local virgin map.
    """
    if not enabled:
        return False
    if record.coverage is None or record.lines is None:
        return False
    if record.crashed or record.anomaly:
        return False
    return engine.virgin.subsumes(record.coverage)


def consume_record(engine: FuzzEngine, record: wire.WireRecord, *,
                   absorb_lines=None, subsumption_filter: bool = True
                   ) -> bool:
    """Apply one partner record to *engine*; True when it was absorbed
    without execution.

    This is the exactly-once apply step both transports share: the
    filesystem sync directory (:meth:`SyncDirectory._import_v2`) and
    the federation node (:mod:`repro.parallel.transport`) — however a
    record travelled, applying it goes through the same filter and the
    same engine entry points, so the two data planes are
    fingerprint-equivalent by construction.
    """
    if record_subsumed(engine, record, enabled=subsumption_filter):
        engine.import_subsumed(record, absorb_lines)
        telemetry.counter("sync.filter_subsumed")
        return True
    engine.import_packed(record)
    telemetry.counter("sync.filter_executed")
    return False


def worker_queue_dir(root: Path, index: int) -> Path:
    """The queue directory one worker exports to."""
    return Path(root) / f"worker-{index:03d}" / "queue"


def _corrupt(queue_dir: Path, spec) -> None:
    """Apply one injected sync-corruption shape (chaos testing).

    Writes bypass the atomic path on purpose: the fault simulates the
    partial state a crash mid-write would leave *without* atomicity.
    Shapes adapt to whichever format's artifacts are present.
    """
    bin_path = queue_dir / wire.QUEUE_BIN
    if bin_path.exists():  # protocol v2
        if spec.corrupt == "truncate":
            raw = bin_path.read_bytes()
            bin_path.write_bytes(raw[:-17] if len(raw) > 17 else b"")
        elif spec.corrupt == "garbage":
            manifest = wire.read_manifest(queue_dir)
            if manifest:
                offset, length, _ = manifest[-1]
                raw = bytearray(bin_path.read_bytes())
                raw[offset:offset + length] = b"\xa5" * length
                bin_path.write_bytes(bytes(raw))
        elif spec.corrupt == "tmp_orphan":
            (queue_dir / (wire.QUEUE_BIN + ".tmp")).write_bytes(b"partial")
        return
    entries = sorted(p for p in queue_dir.iterdir()
                     if p.is_file() and p.name.startswith("id:"))
    if spec.corrupt == "truncate" and entries:
        victim = entries[-1]
        victim.write_bytes(victim.read_bytes()[:17])
    elif spec.corrupt == "garbage" and entries:
        entries[-1].write_bytes(b'{"input": not-json')
    elif spec.corrupt == "tmp_orphan":
        (queue_dir / "id:999999,found:0.tmp").write_bytes(b"partial")


@dataclass
class SyncStats:
    """Where sync wall-clock goes, per phase (merged into bench output)."""

    export_seconds: float = 0.0   # packing + appending own entries
    scan_seconds: float = 0.0     # reading partner manifests
    filter_seconds: float = 0.0   # subsumption checks against VirginMap
    execute_seconds: float = 0.0  # running entries that passed the filter
    entries_exported: int = 0
    entries_scanned: int = 0
    #: Import rounds that actually scanned partners.
    import_rounds: int = 0
    #: Import rounds the adaptive-sync controller elided (the scan cost
    #: the geometric back-off saved; see DESIGN.md §13).
    rounds_skipped_adaptive: int = 0
    #: Whole partner batches rejected from one coverage sidecar delta
    #: without scanning the queue file (DESIGN.md §15).
    batches_delta_rejected: int = 0

    def merged_with(self, other: "SyncStats") -> "SyncStats":
        return SyncStats(
            export_seconds=self.export_seconds + other.export_seconds,
            scan_seconds=self.scan_seconds + other.scan_seconds,
            filter_seconds=self.filter_seconds + other.filter_seconds,
            execute_seconds=self.execute_seconds + other.execute_seconds,
            entries_exported=self.entries_exported + other.entries_exported,
            entries_scanned=self.entries_scanned + other.entries_scanned,
            import_rounds=self.import_rounds + other.import_rounds,
            rounds_skipped_adaptive=(self.rounds_skipped_adaptive
                                     + other.rounds_skipped_adaptive),
            batches_delta_rejected=(self.batches_delta_rejected
                                    + other.batches_delta_rejected))


@dataclass
class SyncDirectory:
    """One worker's view of the shared sync directory."""

    root: Path
    worker: int
    total_workers: int
    sync_format: str = "v2"
    #: Skip executing imports whose shipped coverage is already subsumed
    #: by the local virgin map (v2 only). The off switch exists for
    #: format-equivalence pins and debugging.
    subsumption_filter: bool = True
    #: Publish a coverage sidecar next to the queue files and use
    #: partners' sidecars to reject whole fresh batches from one delta
    #: comparison before scanning ``queue.bin`` (DESIGN.md §15). Purely
    #: an I/O optimization: every decision the batch path takes is one
    #: the per-record filter would have taken, so fingerprints are
    #: identical with the switch on or off.
    delta_plane: bool = True
    #: v1: per-partner filenames already imported (valid entries only,
    #: so a corrupt entry is retried once its owner rewrites it).
    seen: dict[int, set[str]] = field(default_factory=dict)
    #: v2: per-partner count of manifest records consumed (imported,
    #: filtered, or parked on the retry list below).
    consumed: dict[int, int] = field(default_factory=dict)
    #: v2: per-partner manifest indices that failed to read/parse and
    #: are retried each round until the owner's tail check heals them.
    retry: dict[int, set[int]] = field(default_factory=dict)
    #: v2: records/bytes this worker has appended to its own queue.bin,
    #: for the O(1) tail-intact check on the next export.
    exported_records: int = 0
    exported_bytes: int = 0
    #: Export rounds completed (drives ``corrupt_sync`` fault timing).
    exports: int = 0
    stats: SyncStats = field(default_factory=SyncStats)
    #: Sidecar accumulators (queue files are append-only, so both grow
    #: incrementally; a tail rewrite rebuilds them from scratch):
    #: manifest indices an importer may never batch-skip, and one
    #: packed line-index payload per *skippable* record, in manifest
    #: order — so an importer can absorb exactly the lines of the
    #: records it batch-skips, no more.
    _sidecar_flagged: list[int] = field(default_factory=list)
    _sidecar_lines: list[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.sync_format not in SYNC_FORMATS:
            raise ValueError(f"unknown sync_format {self.sync_format!r}")

    @contextmanager
    def _timed(self, span_name: str, attr: str):
        """Accumulate one phase's wall clock into ``stats.<attr>`` and
        the telemetry histogram *span_name*.

        The accounting lives in a ``finally`` so a guarded call that
        raises — a corrupt-entry retry, an injected sync fault — still
        charges its elapsed time. (The old ``stats.x += perf_counter()
        - started`` shape silently dropped those paths from
        ``sync_overhead``.) Both sinks see the *same* elapsed value, so
        ``SyncStats`` and the telemetry report agree to the float.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            setattr(self.stats, attr, getattr(self.stats, attr) + elapsed)
            telemetry.observe(span_name, elapsed)

    # --- export ---------------------------------------------------------

    def export(self, engine: FuzzEngine, *,
               codec: wire.LineCodec | None = None) -> int:
        """Publish the worker's locally found queue entries.

        Returns the total number of entries now published (v1 rewrites
        them all; v2 appends only the ones found since the last round).
        """
        queue_dir = worker_queue_dir(self.root, self.worker)
        with self._timed("sync.export", "export_seconds"):
            if self.sync_format == "v1":
                written = engine.save_corpus(queue_dir, exclude_imported=True)
            else:
                written = self._export_v2(engine, queue_dir, codec)
        self.exports += 1
        telemetry.event("sync.export", round=self.exports, written=written)
        plan = faults.active()
        if plan is not None:
            spec = plan.take_sync_fault(self.worker, self.exports)
            if spec is not None:
                plan.record("corrupt_sync", self.worker, spec.corrupt)
                _corrupt(queue_dir, spec)
        return written

    def _export_v2(self, engine: FuzzEngine, queue_dir: Path,
                   codec: wire.LineCodec | None) -> int:
        queue_dir.mkdir(parents=True, exist_ok=True)
        entries = [e for e in engine.queue.entries if not e.imported]
        if not wire.tail_intact(queue_dir, self.exported_records,
                                self.exported_bytes):
            # A crash mid-append (or injected corruption) broke the
            # tail: rebuild both files from the live queue, atomically.
            blobs = [wire.pack_record(i, entry, codec)
                     for i, entry in enumerate(entries)]
            self.exported_bytes = wire.rewrite_records(queue_dir, blobs)
            self.exported_records = len(blobs)
            self.stats.entries_exported += len(blobs)
            self._sidecar_flagged.clear()
            self._sidecar_lines.clear()
            self._accumulate_sidecar(blobs, 0)
            self._write_sidecar(engine, queue_dir, codec)
            return len(entries)
        fresh = entries[self.exported_records:]
        if fresh:
            base = self.exported_records
            blobs = [wire.pack_record(base + k, entry, codec)
                     for k, entry in enumerate(fresh)]
            self.exported_bytes += wire.append_records(queue_dir, blobs)
            self.exported_records += len(blobs)
            self.stats.entries_exported += len(blobs)
            self._accumulate_sidecar(blobs, base)
            self._write_sidecar(engine, queue_dir, codec)
        return len(entries)

    def _accumulate_sidecar(self, blobs: list[bytes], base: int) -> None:
        """Fold freshly exported records into the sidecar accumulators.

        Records are summarized from their packed form — the exact bytes
        an importer will see — so the flagged list reproduces the
        structural gates of :func:`record_subsumed` without a second
        encoding path that could drift.
        """
        if not self.delta_plane:
            return
        for k, blob in enumerate(blobs):
            summary = wire.summarize_record(blob)
            if summary is None or not summary.skippable:
                self._sidecar_flagged.append(base + k)
                continue
            self._sidecar_lines.append(
                wire.pack_line_indices(summary.line_indices))

    def _write_sidecar(self, engine: FuzzEngine, queue_dir: Path,
                       codec: wire.LineCodec | None) -> None:
        """Atomically publish the coverage sidecar for the queue dir.

        The NCD1 payload is a *full* snapshot of the exporter's virgin
        map, covering every record exported so far (each record's
        coverage was merged into the map at discovery), so any reader
        whose map subsumes it subsumes every skippable record — the
        whole-batch rejection the import side runs before touching
        ``queue.bin``.
        """
        if not self.delta_plane or codec is None:
            return
        meta = {"records": self.exported_records,
                "universe": len(codec.universe),
                "flagged": self._sidecar_flagged,
                "generation": engine.virgin.generation}
        chunks = [json.dumps(meta, sort_keys=True).encode(),
                  delta.encode(delta.full_delta(bytes(engine.virgin.bits),
                                                engine.virgin.generation))]
        chunks.extend(self._sidecar_lines)
        payload = checksum.seal(checksum.pack_chunks(chunks))
        atomic_write_bytes(queue_dir / COVERAGE_SIDECAR, payload)

    # --- import ---------------------------------------------------------

    def import_new(self, engine: FuzzEngine, *,
                   codec: wire.LineCodec | None = None,
                   absorb_lines=None) -> int:
        """Consume every not-yet-seen partner entry through *engine*.

        Returns the number of entries consumed — executed, or (v2)
        absorbed through the subsumption filter without execution;
        either way they count in ``stats.imported``. Entries that fail
        to decode are skipped (counted once in ``stats.import_skipped``)
        and retried on later rounds, after the owner heals them.
        """
        imported = 0
        self.stats.import_rounds += 1
        for partner in range(self.total_workers):
            if partner == self.worker:
                continue
            queue_dir = worker_queue_dir(self.root, partner)
            if not queue_dir.is_dir():
                continue
            if self.sync_format == "v1":
                imported += self._import_v1(engine, partner, queue_dir)
            else:
                imported += self._import_v2(engine, partner, queue_dir,
                                            codec, absorb_lines)
        return imported

    def _import_v1(self, engine: FuzzEngine, partner: int,
                   queue_dir: Path) -> int:
        imported = 0
        seen = self.seen.setdefault(partner, set())
        files = sorted(p for p in queue_dir.iterdir()
                       if p.is_file() and p.name.startswith("id:")
                       and not p.name.endswith(".tmp"))
        for path in files:
            if path.name in seen:
                continue
            try:
                payload = path.read_bytes()
            except OSError:
                engine.stats.import_skipped += 1
                telemetry.counter("sync.imports_skipped")
                continue
            with self._timed("sync.execute", "execute_seconds"):
                new_bits = engine.import_case(payload)
            if new_bits is None:
                telemetry.counter("sync.imports_skipped")
                continue  # corrupt entry: counted, retried later
            seen.add(path.name)
            imported += 1
        return imported

    def _import_v2(self, engine: FuzzEngine, partner: int, queue_dir: Path,
                   codec: wire.LineCodec | None, absorb_lines) -> int:
        with self._timed("sync.scan", "scan_seconds"):
            manifest = wire.read_manifest(queue_dir)
        consumed = self.consumed.get(partner, 0)
        retry = self.retry.setdefault(partner, set())
        todo = sorted(index for index in retry if index < len(manifest))
        todo += range(consumed, len(manifest))
        if not todo:
            return 0
        rejected = 0
        if (self.delta_plane and self.subsumption_filter and not retry
                and codec is not None and consumed < len(manifest)):
            rejected = self._delta_reject(engine, partner, queue_dir,
                                          manifest, consumed, codec,
                                          absorb_lines)
            if rejected:
                consumed += rejected
                todo = list(range(consumed, len(manifest)))
                if not todo:
                    return rejected
        imported = rejected
        try:
            handle = open(queue_dir / wire.QUEUE_BIN, "rb")
        except OSError:
            # Manifest without a readable data file: leave the cursor
            # where it is and try again next round.
            return 0
        with handle:
            for index in todo:
                offset, length, crc = manifest[index]
                blob = wire.read_record_blob(handle, offset, length, crc)
                record = wire.parse_record(blob, codec) if blob else None
                self.stats.entries_scanned += 1
                if record is None:
                    if index not in retry:
                        # Counted once; the retry set keeps the cursor
                        # moving while this record waits for its heal.
                        engine.stats.import_skipped += 1
                        telemetry.counter("sync.imports_skipped")
                        retry.add(index)
                    continue
                retry.discard(index)
                if self._filtered(engine, record):
                    engine.import_subsumed(record, absorb_lines)
                    telemetry.counter("sync.filter_subsumed")
                else:
                    with self._timed("sync.execute", "execute_seconds"):
                        engine.import_packed(record)
                    telemetry.counter("sync.filter_executed")
                imported += 1
        self.consumed[partner] = len(manifest)
        return imported

    def _delta_reject(self, engine: FuzzEngine, partner: int,
                      queue_dir: Path, manifest: list, consumed: int,
                      codec: wire.LineCodec, absorb_lines) -> int:
        """Absorb the fresh batch's clean prefix from the sidecar alone.

        Returns how many records were absorbed without opening the data
        file — the run from *consumed* up to the first *flagged* record
        (crashed, anomalous, or shipped without coverage/lines; those
        must execute, and the caller's per-record path picks up exactly
        there). 0 means no precondition held and the per-record path
        runs unchanged. Every decision here is one that path would have
        made:

        * the sidecar is intact and describes this manifest length and
          this line universe;
        * the local virgin map subsumes the partner's *entire* map —
          and therefore every record's coverage individually (each
          record's coverage was merged into the partner's map when the
          entry was found);
        * when the prefix reaches the manifest tail, the last record's
          CRC verifies — a partner crash (or an injected
          ``corrupt_sync`` fault) only ever damages the append tail,
          and the per-record path would park a damaged record on the
          retry list rather than absorb it. Interior records of an
          append-only file cannot be torn, so prefixes that stop short
          of the tail need no read at all.

        The line payloads absorbed are exactly the prefix records' own
        shipped line sets (the sidecar carries one packed payload per
        skippable record) — bit-for-bit what :meth:`import_subsumed`
        would have absorbed record by record.
        """
        try:
            raw = (queue_dir / COVERAGE_SIDECAR).read_bytes()
        except OSError:
            return 0
        body = checksum.unseal(raw)
        if body is None:
            return 0
        try:
            chunks = checksum.unpack_chunks(body)
            meta = json.loads(chunks[0])
            side = delta.decode(chunks[1])
        except (IndexError, ValueError, delta.DeltaError):
            return 0
        flagged = sorted(meta.get("flagged", ()))
        if (meta.get("records") != len(manifest)
                or meta.get("universe") != len(codec.universe)
                or len(chunks) != 2 + len(manifest) - len(flagged)):
            return 0
        limit = len(manifest)
        for index in flagged:
            if consumed <= index < limit:
                limit = index
                break  # flagged is sorted: the first hit is the min
        count = limit - consumed
        if count <= 0:
            return 0
        with self._timed("sync.filter", "filter_seconds"):
            subsumed = delta.runs_subsumed(engine.virgin.bits, side.runs)
        if not subsumed:
            return 0
        if limit == len(manifest):
            # The prefix reaches the append tail — the only place a
            # partner crash or injected corruption can damage. One O(1)
            # CRC read keeps batch and per-record paths agreeing on it.
            offset, length, crc = manifest[-1]
            try:
                with open(queue_dir / wire.QUEUE_BIN, "rb") as handle:
                    if wire.read_record_blob(handle, offset, length,
                                             crc) is None:
                        return 0
            except OSError:
                return 0
        # Record *index* maps to line chunk 2 + index - |flagged below|.
        pos = 2 + consumed - bisect.bisect_left(flagged, consumed)
        union: set = set()
        for payload in chunks[pos:pos + count]:
            lines = codec.decode(payload)
            if lines is None:
                return 0  # produced against a different universe
            union |= lines
        engine.import_subsumed_batch(count)
        if absorb_lines is not None and union:
            absorb_lines(union)
        self.consumed[partner] = limit
        self.stats.entries_scanned += count
        self.stats.batches_delta_rejected += 1
        telemetry.counter("sync.filter_subsumed", count)
        telemetry.counter("sync.delta_rejects")
        return count

    def _filtered(self, engine: FuzzEngine, record: wire.WireRecord) -> bool:
        """:func:`record_subsumed`, with the check's wall clock charged
        to ``stats.filter_seconds``."""
        with self._timed("sync.filter", "filter_seconds"):
            return record_subsumed(engine, record,
                                   enabled=self.subsumption_filter)
