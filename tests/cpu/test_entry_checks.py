"""Unit tests for the hardware VM-entry consistency checks."""

import pytest

from repro.arch.msr import IA32_KERNEL_GS_BASE, IA32_LSTAR, IA32_TSC, MsrEntry
from repro.arch.registers import Cr0, Cr4, Efer
from repro.cpu.entry_checks import (
    CheckStage,
    check_all,
    check_guest_state,
    check_host_state,
    check_msr_load_area,
    check_vm_controls,
)
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import (
    ActivityState,
    EntryControls,
    ExitControls,
    PinBased,
    ProcBased,
    Secondary,
)
from repro.vmx.msr_caps import default_capabilities


@pytest.fixture
def caps():
    return default_capabilities()


@pytest.fixture
def vmcs(caps):
    return golden_vmcs(caps)


def fields_flagged(violations):
    return {v.field for v in violations}


class TestControlChecks:
    def test_golden_passes(self, vmcs, caps):
        assert check_vm_controls(vmcs, caps) == []

    def test_reserved_pin_bits(self, vmcs, caps):
        vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL, 0)
        assert "pin_based_vm_exec_control" in fields_flagged(
            check_vm_controls(vmcs, caps))

    def test_cr3_target_count(self, vmcs, caps):
        vmcs.write(F.CR3_TARGET_COUNT, 7)
        assert "cr3_target_count" in fields_flagged(check_vm_controls(vmcs, caps))

    def test_io_bitmap_alignment(self, vmcs, caps):
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) | ProcBased.USE_IO_BITMAPS)
        vmcs.write(F.IO_BITMAP_A, 0x123)
        assert "io_bitmap_a" in fields_flagged(check_vm_controls(vmcs, caps))

    def test_virtual_nmis_require_nmi_exiting(self, vmcs, caps):
        pin = vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL) | PinBased.VIRTUAL_NMIS
        vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL, pin & ~PinBased.NMI_EXITING)
        assert "pin_based_vm_exec_control" in fields_flagged(
            check_vm_controls(vmcs, caps))

    def test_posted_interrupts_need_ack_on_exit(self, vmcs, caps):
        proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   proc | ProcBased.USE_TPR_SHADOW
                   | ProcBased.ACTIVATE_SECONDARY_CONTROLS)
        vmcs.write(F.SECONDARY_VM_EXEC_CONTROL,
                   vmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
                   | Secondary.VIRTUAL_INTR_DELIVERY)
        vmcs.write(F.VIRTUAL_APIC_PAGE_ADDR, 0x13000)
        vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL,
                   vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL)
                   | PinBased.POSTED_INTERRUPTS)
        violations = check_vm_controls(vmcs, caps)
        assert any("acknowledge" in v.reason for v in violations)

    def test_unrestricted_guest_requires_ept(self, vmcs, caps):
        proc2 = vmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
        vmcs.write(F.SECONDARY_VM_EXEC_CONTROL,
                   (proc2 | Secondary.UNRESTRICTED_GUEST) & ~Secondary.ENABLE_EPT)
        violations = check_vm_controls(vmcs, caps)
        assert any("unrestricted" in v.reason for v in violations)

    def test_invalid_eptp(self, vmcs, caps):
        vmcs.write(F.EPT_POINTER, 0x20000 | 3)  # bad memory type
        assert "ept_pointer" in fields_flagged(check_vm_controls(vmcs, caps))

    def test_vpid_zero(self, vmcs, caps):
        if not vmcs.read(F.SECONDARY_VM_EXEC_CONTROL) & Secondary.ENABLE_VPID:
            pytest.skip("VPID not enabled in golden state")
        vmcs.write(F.VIRTUAL_PROCESSOR_ID, 0)
        assert "virtual_processor_id" in fields_flagged(
            check_vm_controls(vmcs, caps))

    def test_msr_area_alignment(self, vmcs, caps):
        vmcs.write(F.VM_ENTRY_MSR_LOAD_COUNT, 1)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_ADDR, 0x15008 | 1)
        assert "vm_entry_msr_load_addr" in fields_flagged(
            check_vm_controls(vmcs, caps))

    def test_smm_controls_rejected(self, vmcs, caps):
        vmcs.write(F.VM_ENTRY_CONTROLS,
                   vmcs.read(F.VM_ENTRY_CONTROLS) | EntryControls.ENTRY_TO_SMM)
        assert "vm_entry_controls" in fields_flagged(check_vm_controls(vmcs, caps))

    def test_inconsistent_injection(self, vmcs, caps):
        vmcs.write(F.VM_ENTRY_INTR_INFO_FIELD, (1 << 31) | (2 << 8) | 9)
        assert "vm_entry_intr_info" in fields_flagged(check_vm_controls(vmcs, caps))


class TestHostChecks:
    def test_golden_passes(self, vmcs, caps):
        assert check_host_state(vmcs, caps) == []

    def test_host_cr0_fixed(self, vmcs, caps):
        vmcs.write(F.HOST_CR0, 0)
        assert "host_cr0" in fields_flagged(check_host_state(vmcs, caps))

    def test_host_cr4_needs_pae(self, vmcs, caps):
        vmcs.write(F.HOST_CR4, Cr4.VMXE)
        assert "host_cr4" in fields_flagged(check_host_state(vmcs, caps))

    def test_host_selector_rpl(self, vmcs, caps):
        vmcs.write(F.HOST_DS_SELECTOR, 0x1B)
        assert "host_ds_selector" in fields_flagged(check_host_state(vmcs, caps))

    def test_host_cs_null(self, vmcs, caps):
        vmcs.write(F.HOST_CS_SELECTOR, 0)
        assert "host_cs_selector" in fields_flagged(check_host_state(vmcs, caps))

    def test_host_tr_null(self, vmcs, caps):
        vmcs.write(F.HOST_TR_SELECTOR, 0)
        assert "host_tr_selector" in fields_flagged(check_host_state(vmcs, caps))

    def test_host_rip_canonical(self, vmcs, caps):
        vmcs.write(F.HOST_RIP, 0x8000_0000_0000_0000)
        assert "host_rip" in fields_flagged(check_host_state(vmcs, caps))

    def test_host_efer_lma(self, vmcs, caps):
        vmcs.write(F.HOST_IA32_EFER, Efer.NXE)  # LMA/LME clear on 64-bit host
        assert "host_ia32_efer" in fields_flagged(check_host_state(vmcs, caps))

    def test_host_pat(self, vmcs, caps):
        vmcs.write(F.VM_EXIT_CONTROLS,
                   vmcs.read(F.VM_EXIT_CONTROLS) | ExitControls.LOAD_PAT)
        vmcs.write(F.HOST_IA32_PAT, 0x02)  # type 2 is reserved
        assert "host_ia32_pat" in fields_flagged(check_host_state(vmcs, caps))


class TestGuestChecks:
    def test_golden_passes(self, vmcs, caps):
        assert check_guest_state(vmcs, caps) == []

    def test_pg_without_pe(self, vmcs, caps):
        vmcs.write(F.GUEST_CR0, (Cr0.PG | Cr0.NE | Cr0.ET) & ~Cr0.PE)
        flagged = fields_flagged(check_guest_state(vmcs, caps))
        assert "guest_cr0" in flagged

    def test_ia32e_requires_paging(self, vmcs, caps):
        vmcs.write(F.GUEST_CR0, Cr0.PE | Cr0.NE | Cr0.ET)
        assert "guest_cr0" in fields_flagged(check_guest_state(vmcs, caps))

    def test_cve_2023_30456_quirk_no_pae_check(self, vmcs, caps):
        """The CPU silently tolerates IA-32e with CR4.PAE=0 (§5.5.1)."""
        vmcs.write(F.GUEST_CR4, vmcs.read(F.GUEST_CR4) & ~Cr4.PAE)
        flagged = fields_flagged(check_guest_state(vmcs, caps))
        assert "guest_cr4" not in flagged

    def test_efer_lma_must_match_ia32e(self, vmcs, caps):
        vmcs.write(F.GUEST_IA32_EFER, Efer.NXE)  # LMA clear, IA-32e set
        assert "guest_ia32_efer" in fields_flagged(check_guest_state(vmcs, caps))

    def test_rflags_fixed_bit(self, vmcs, caps):
        vmcs.write(F.GUEST_RFLAGS, 0)
        assert "guest_rflags" in fields_flagged(check_guest_state(vmcs, caps))

    def test_activity_state_range(self, vmcs, caps):
        vmcs.write(F.GUEST_ACTIVITY_STATE, 9)
        assert "guest_activity_state" in fields_flagged(
            check_guest_state(vmcs, caps))

    def test_wait_for_sipi_is_architecturally_legal(self, vmcs, caps):
        """Hardware accepts WAIT_FOR_SIPI — the danger exploited by Xen
        bug #4 is precisely that the state is enterable."""
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.WAIT_FOR_SIPI)
        assert "guest_activity_state" not in fields_flagged(
            check_guest_state(vmcs, caps))

    def test_sti_and_movss_blocking(self, vmcs, caps):
        vmcs.write(F.GUEST_RFLAGS, vmcs.read(F.GUEST_RFLAGS) | 0x200)
        vmcs.write(F.GUEST_INTERRUPTIBILITY_INFO, 3)
        assert "guest_interruptibility_info" in fields_flagged(
            check_guest_state(vmcs, caps))

    def test_tr_must_be_usable(self, vmcs, caps):
        vmcs.write(F.GUEST_TR_AR_BYTES, 1 << 16)
        assert "guest_tr_ar_bytes" in fields_flagged(check_guest_state(vmcs, caps))

    def test_cs_l_and_db_conflict(self, vmcs, caps):
        ar = vmcs.read(F.GUEST_CS_AR_BYTES) | (1 << 13) | (1 << 14)
        vmcs.write(F.GUEST_CS_AR_BYTES, ar)
        assert "guest_cs_ar_bytes" in fields_flagged(check_guest_state(vmcs, caps))

    def test_link_pointer(self, vmcs, caps):
        vmcs.write(F.VMCS_LINK_POINTER, 0x123)
        assert "vmcs_link_pointer" in fields_flagged(check_guest_state(vmcs, caps))

    def test_debugctl_reserved(self, vmcs, caps):
        vmcs.write(F.VM_ENTRY_CONTROLS,
                   vmcs.read(F.VM_ENTRY_CONTROLS)
                   | EntryControls.LOAD_DEBUG_CONTROLS)
        vmcs.write(F.GUEST_IA32_DEBUGCTL, 1 << 20)
        assert "guest_ia32_debugctl" in fields_flagged(
            check_guest_state(vmcs, caps))


class TestMsrLoadChecks:
    def test_clean_area(self):
        assert check_msr_load_area([MsrEntry(IA32_TSC, 5)]) == []

    def test_non_canonical_kernel_gs_base(self):
        violations = check_msr_load_area(
            [MsrEntry(IA32_KERNEL_GS_BASE, 0x8000_0000_0000_0000)])
        assert violations and violations[0].stage is CheckStage.MSR_LOAD

    def test_non_canonical_lstar(self):
        assert check_msr_load_area([MsrEntry(IA32_LSTAR, 1 << 62)])

    def test_slot_index_in_message(self):
        violations = check_msr_load_area(
            [MsrEntry(IA32_TSC, 0), MsrEntry(IA32_TSC, 0, reserved=3)])
        assert "msr_load[1]" in violations[0].field


class TestCheckAll:
    def test_stops_at_first_failing_group(self, vmcs, caps):
        vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL, 0)   # controls violation
        vmcs.write(F.HOST_CS_SELECTOR, 0)            # host violation
        violations = check_all(vmcs, caps)
        assert all(v.stage is CheckStage.CONTROLS for v in violations)

    def test_golden_passes_everything(self, vmcs, caps):
        assert check_all(vmcs, caps, [MsrEntry(IA32_TSC, 1)]) == []
