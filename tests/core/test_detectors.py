"""Tests for anomaly detection, log monitoring, and the watchdog."""

from repro.arch.cpuid import Vendor
from repro.core.detectors import (
    Anomaly,
    AnomalyDetector,
    DetectionMethod,
    Watchdog,
)
from repro.hypervisors import KvmHypervisor, VcpuConfig
from repro.hypervisors.base import SanitizerKind


def make_hv():
    return KvmHypervisor(VcpuConfig.default(Vendor.INTEL))


class TestAnomalyDetector:
    def test_clean_hypervisor_no_anomalies(self):
        assert AnomalyDetector().scan(make_hv()) == []

    def test_sanitizer_events_surface(self):
        hv = make_hv()
        hv.report_sanitizer(SanitizerKind.UBSAN, "load_pdptrs", "oob index 511")
        anomalies = AnomalyDetector().scan(hv)
        assert len(anomalies) == 1
        assert anomalies[0].method is DetectionMethod.UBSAN

    def test_sanitizer_log_mirror_not_double_counted(self):
        hv = make_hv()
        hv.report_sanitizer(SanitizerKind.ASSERTION, "somewhere", "bad")
        anomalies = AnomalyDetector().scan(hv)
        assert len(anomalies) == 1

    def test_benign_warns_filtered(self):
        hv = make_hv()
        hv.report_sanitizer(SanitizerKind.WARN, "nested_vmx_run",
                            "hardware rejected vmcs02")
        assert AnomalyDetector().scan(hv) == []

    def test_log_pattern_detection(self):
        hv = make_hv()
        hv.log.write("general protection fault, probably for non-canonical "
                     "address 0x8000000000000000")
        anomalies = AnomalyDetector().scan(hv)
        assert len(anomalies) == 1
        assert anomalies[0].method is DetectionMethod.LOG_PATTERN

    def test_is_new_deduplicates_by_signature(self):
        detector = AnomalyDetector()
        a = Anomaly(DetectionMethod.UBSAN, "load_pdptrs", "first")
        b = Anomaly(DetectionMethod.UBSAN, "load_pdptrs", "second message")
        c = Anomaly(DetectionMethod.ASSERTION, "load_pdptrs", "third")
        assert detector.is_new(a)
        assert not detector.is_new(b)   # same method+location
        assert detector.is_new(c)       # different method

    def test_signature_format(self):
        anomaly = Anomaly(DetectionMethod.HOST_CRASH, "xen", "hang")
        assert anomaly.signature() == "Host Crash@xen"


class TestWatchdog:
    def test_host_crash_restarts(self):
        watchdog = Watchdog()
        hv = make_hv()
        hv.crashed = True
        hv.log.write("panic")
        anomaly = watchdog.handle_host_crash(hv, "host hung")
        assert anomaly.method is DetectionMethod.HOST_CRASH
        assert watchdog.restarts == 1
        assert not hv.crashed          # reset brought it back
        assert hv.log.lines == []      # logs cleared on restart

    def test_vm_crash_does_not_restart(self):
        watchdog = Watchdog()
        hv = make_hv()
        anomaly = watchdog.handle_vm_crash(hv, "guest died")
        assert anomaly.method is DetectionMethod.VM_CRASH
        assert watchdog.restarts == 0
