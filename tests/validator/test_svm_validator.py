"""Tests for the AMD-V VMCB validator and its vmrun oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.registers import Cr0, Cr4, Efer
from repro.svm import fields as SF
from repro.svm.vmcb import Vmcb
from repro.validator.golden import golden_vmcb
from repro.validator.svm_validator import SvmHardwareOracle, VmcbValidator

raw_vmcb = st.binary(min_size=SF.LAYOUT_BYTES, max_size=SF.LAYOUT_BYTES)


class TestRounding:
    def test_golden_is_fixed_point(self):
        validator = VmcbValidator()
        vmcb = golden_vmcb()
        validator.round_to_valid(vmcb)
        assert validator.is_fixed_point(vmcb)

    def test_svme_forced(self):
        validator = VmcbValidator()
        vmcb = Vmcb()
        validator.round_to_valid(vmcb)
        assert vmcb.read(SF.EFER) & Efer.SVME

    def test_asid_nonzero(self):
        validator = VmcbValidator()
        vmcb = Vmcb()
        validator.round_to_valid(vmcb)
        assert vmcb.read(SF.GUEST_ASID) != 0

    def test_vmrun_intercept_forced(self):
        validator = VmcbValidator()
        vmcb = Vmcb()
        validator.round_to_valid(vmcb)
        assert vmcb.read(SF.INTERCEPT_MISC2) & SF.Misc2Intercept.VMRUN

    def test_long_mode_pae_forced(self):
        validator = VmcbValidator()
        vmcb = golden_vmcb()
        vmcb.write(SF.CR4, 0)
        validator.round_to_valid(vmcb)
        assert vmcb.read(SF.CR4) & Cr4.PAE

    def test_transitional_lme_no_pg_preserved(self):
        """The APM-permitted LME/!PG state must survive rounding — it is
        the trigger state for Xen bug #5."""
        validator = VmcbValidator()
        vmcb = golden_vmcb()
        vmcb.write(SF.CR0, vmcb.read(SF.CR0) & ~Cr0.PG)
        validator.round_to_valid(vmcb)
        assert vmcb.read(SF.EFER) & Efer.LME
        assert not vmcb.read(SF.CR0) & Cr0.PG

    def test_sev_rounded_away(self):
        validator = VmcbValidator()
        vmcb = golden_vmcb()
        vmcb.write(SF.NP_CONTROL, SF.NpControl.NP_ENABLE | SF.NpControl.SEV_ENABLE)
        validator.round_to_valid(vmcb)
        assert not vmcb.read(SF.NP_CONTROL) & SF.NpControl.SEV_ENABLE

    def test_corrections_recorded(self):
        validator = VmcbValidator()
        vmcb = Vmcb()
        corrections = validator.round_to_valid(vmcb)
        assert corrections
        assert all(c.before != c.after for c in corrections)

    @given(raw_vmcb)
    @settings(max_examples=40, deadline=None)
    def test_rounding_idempotent(self, raw):
        validator = VmcbValidator()
        vmcb = Vmcb.deserialize(raw)
        validator.round_to_valid(vmcb)
        assert validator.is_fixed_point(vmcb)

    @given(raw_vmcb)
    @settings(max_examples=40, deadline=None)
    def test_rounded_state_has_no_predicted_violations(self, raw):
        validator = VmcbValidator()
        vmcb = Vmcb.deserialize(raw)
        validator.round_to_valid(vmcb)
        assert validator.predicted_violations(vmcb) == []


class TestSvmOracle:
    def test_golden_enters(self):
        assert SvmHardwareOracle().verify(golden_vmcb())

    @given(raw_vmcb)
    @settings(max_examples=30, deadline=None)
    def test_rounded_states_enter(self, raw):
        validator = VmcbValidator()
        oracle = SvmHardwareOracle()
        vmcb = Vmcb.deserialize(raw)
        validator.round_to_valid(vmcb)
        assert oracle.verify(vmcb)

    def test_learns_lma_fixup(self):
        oracle = SvmHardwareOracle()
        vmcb = golden_vmcb()
        vmcb.write(SF.EFER, (vmcb.read(SF.EFER) | Efer.LME) & ~Efer.LMA)
        assert oracle.verify(vmcb)
        assert "efer" in oracle.fixup_masks
        set_mask, _ = oracle.fixup_masks["efer"]
        assert set_mask & Efer.LMA

    def test_rejection_then_rounding_recovers(self):
        oracle = SvmHardwareOracle()
        vmcb = golden_vmcb()
        vmcb.write(SF.GUEST_ASID, 0)
        assert oracle.verify(vmcb)
        assert oracle.rejections >= 1
        assert vmcb.read(SF.GUEST_ASID) != 0
