"""The simulated KVM host hypervisor (Linux 6.5 analogue).

Facade tying together the module parameters, the nested VMX/SVM
emulation, and the plain (non-nested) instruction intercepts. Coverage
measurement targets only :mod:`repro.hypervisors.kvm.nested_vmx` and
:mod:`repro.hypervisors.kvm.nested_svm`, mirroring the paper's
restriction to ``arch/x86/kvm/{vmx,svm}/nested.c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_EFER, MsrFile
from repro.arch.registers import Efer
from repro.hypervisors.base import (
    ExecResult,
    GuestInstruction,
    L0Hypervisor,
    VcpuConfig,
)
from repro.hypervisors.kvm.module import KvmModuleParams
from repro.hypervisors.kvm.nested_svm import NestedSvm, SvmNestedState
from repro.hypervisors.kvm.nested_vmx import NestedVmx, VmxNestedState
from repro.hypervisors.l2map import AMD_L2_EXITS, INTEL_L2_EXITS, svm_exception_code
from repro.hypervisors.memory import GuestMemory
from repro.vmx.exit_reasons import ExitReason

#: Mnemonics of SVM instructions routed to the nested-SVM handlers.
SVM_MNEMONICS = frozenset(NestedSvm.HANDLERS)
#: Mnemonics of VMX instructions routed to the nested-VMX handlers.
VMX_MNEMONICS = frozenset(NestedVmx.HANDLERS)


@dataclass
class KvmVcpu:
    """One virtual CPU of the L1 guest (the fuzz-harness VM)."""

    vendor: Vendor
    memory: GuestMemory
    vmx: VmxNestedState = field(default_factory=VmxNestedState)
    svm: SvmNestedState = field(default_factory=SvmNestedState)
    msrs: MsrFile = field(default_factory=MsrFile)

    @property
    def level(self) -> int:
        """The guest level currently executing (1 or 2)."""
        in_l2 = self.vmx.guest_mode if self.vendor is Vendor.INTEL else self.svm.guest_mode
        return 2 if in_l2 else 1


class KvmHypervisor(L0Hypervisor):
    """L0 KVM with nested virtualization enabled."""

    name = "kvm"

    def __init__(self, config: VcpuConfig,
                 patched: frozenset[str] = frozenset()) -> None:
        super().__init__(config)
        self.params = KvmModuleParams.from_config(config)
        self.memory = GuestMemory()
        self.patched = patched
        if config.vendor is Vendor.INTEL:
            self.nested_vmx = NestedVmx(self, self.params, self.memory, patched)
            self.nested_svm = None
        else:
            self.nested_vmx = None
            self.nested_svm = NestedSvm(self, self.params, self.memory, patched)

    def create_vcpu(self) -> KvmVcpu:
        """Create the (single) vCPU of the fuzz-harness VM."""
        vcpu = KvmVcpu(self.config.vendor, self.memory)
        if self.config.vendor is Vendor.AMD:
            vcpu.svm.hsave_pa = 0
        return vcpu

    # ------------------------------------------------------------------
    # Instruction dispatch
    # ------------------------------------------------------------------

    def execute(self, vcpu: KvmVcpu, instr: GuestInstruction) -> ExecResult:
        """Execute one guest instruction at its requested level."""
        if self.crashed:
            return ExecResult.fault("host is down")
        if instr.level == 2 and vcpu.level == 2:
            return self._execute_l2(vcpu, instr)
        return self._execute_l1(vcpu, instr)

    # --- L1 context -------------------------------------------------------

    def _execute_l1(self, vcpu: KvmVcpu, instr: GuestInstruction) -> ExecResult:
        mnemonic = instr.mnemonic
        if vcpu.vendor is Vendor.INTEL and mnemonic in VMX_MNEMONICS:
            assert self.nested_vmx is not None
            return self.nested_vmx.handle(vcpu.vmx, instr)
        if vcpu.vendor is Vendor.AMD and mnemonic in SVM_MNEMONICS:
            assert self.nested_svm is not None
            return self.nested_svm.handle(vcpu.svm, instr)
        return self._emulate_plain(vcpu, instr)

    def _emulate_plain(self, vcpu: KvmVcpu, instr: GuestInstruction) -> ExecResult:
        """Non-virtualization intercepts (vmx.c/svm.c territory)."""
        mnemonic = instr.mnemonic
        if mnemonic == "cpuid":
            return ExecResult.success("cpuid", value=0x000806F8)
        if mnemonic == "rdmsr":
            return ExecResult.success("rdmsr", value=vcpu.msrs.read(instr.op("msr")))
        if mnemonic == "wrmsr":
            index, value = instr.op("msr"), instr.op("value")
            vcpu.msrs.write(index, value)
            if index == IA32_EFER:
                vcpu.svm.svme = bool(value & Efer.SVME)
                vcpu.svm.efer = value
            return ExecResult.success("wrmsr")
        if mnemonic == "mov_cr":
            if instr.op("cr") == 4 and instr.op("write", 1):
                vcpu.vmx.cr4 = instr.op("value")
            return ExecResult.success("mov cr emulated")
        if mnemonic == "mov_dr":
            return ExecResult.success("mov dr emulated")
        if mnemonic in ("in", "out"):
            return ExecResult.success("pio emulated", value=0xFF)
        if mnemonic in ("hlt", "pause", "nop", "rdtsc", "rdtscp", "rdrand",
                        "rdseed", "wbinvd", "invd", "invlpg", "mwait",
                        "monitor", "rdpmc", "xsetbv", "sgdt", "sidt"):
            return ExecResult.success(f"{mnemonic} emulated", value=0)
        return ExecResult.success(f"{mnemonic} executed natively")

    # --- L2 context -----------------------------------------------------------

    def _execute_l2(self, vcpu: KvmVcpu, instr: GuestInstruction) -> ExecResult:
        if vcpu.vendor is Vendor.INTEL:
            return self._execute_l2_intel(vcpu, instr)
        return self._execute_l2_amd(vcpu, instr)

    def _execute_l2_intel(self, vcpu: KvmVcpu, instr: GuestInstruction) -> ExecResult:
        nested = self.nested_vmx
        assert nested is not None
        reason = INTEL_L2_EXITS.get(instr.mnemonic)
        if reason is None:
            return ExecResult.success("no exit", level=2)
        vmcs12 = nested.get_vmcs12(vcpu.vmx)
        if vmcs12 is None:
            return ExecResult.fault("L2 active without VMCS12")
        if nested.l1_wants_exit(vmcs12, reason, instr):
            nested.nested_vmx_vmexit(vcpu.vmx, vmcs12, int(reason),
                                     qualification=instr.op("value"),
                                     intr_info=instr.op("vector"))
            return ExecResult.success(f"L2 exit {reason.name} -> L1",
                                      exit_reason=int(reason), level=1)
        if reason in (ExitReason.EPT_VIOLATION, ExitReason.INVLPG,
                      ExitReason.MONITOR_INSTRUCTION):
            # L1 runs without nested EPT (or did not ask for this exit):
            # L0 resolves the guest address through shadow paging — the
            # CVE-2023-30456 walk. invlpg/monitor carry a linear address
            # KVM must walk exactly like a faulting access.
            nested.handle_l2_shadow_fault(vcpu.vmx, vmcs12,
                                          instr.op("value"))
        return ExecResult.success(f"L2 exit {reason.name} handled by L0",
                                  level=2, exit_reason=int(reason))

    def _execute_l2_amd(self, vcpu: KvmVcpu, instr: GuestInstruction) -> ExecResult:
        nested = self.nested_svm
        assert nested is not None
        code = AMD_L2_EXITS.get(instr.mnemonic)
        if code is None:
            return ExecResult.success("no exit", level=2)
        if instr.mnemonic == "exception":
            code = svm_exception_code(instr.op("vector"))
        vmcb12 = self.memory.get_vmcb(vcpu.svm.current_vmcb12_pa)
        if vmcb12 is None:
            return ExecResult.fault("L2 active without VMCB12")
        if nested.l1_wants_exit(vmcb12, code, instr):
            nested.nested_svm_vmexit(vcpu.svm, vmcb12, int(code),
                                     info1=instr.op("value"))
            return ExecResult.success(f"L2 #VMEXIT {code:#x} -> L1",
                                      exit_reason=int(code), level=1)
        return ExecResult.success(f"L2 #VMEXIT {code:#x} handled by L0",
                                  level=2, exit_reason=int(code))

    # ------------------------------------------------------------------
    # Coverage target modules
    # ------------------------------------------------------------------

    @staticmethod
    def nested_modules(vendor: Vendor):
        """The modules coverage is restricted to (nested.c analogues)."""
        from repro.hypervisors.kvm import nested_svm, nested_vmx

        if vendor is Vendor.INTEL:
            return (nested_vmx,)
        return (nested_svm,)
