"""VM state generation: raw input → rounded state → boundary injection.

The paper's recipe (§4.3, §5.6): interpret raw fuzzing input as VMCS
content, round it to the valid region with the Bochs-derived validator
(corrected at runtime by the hardware oracle), then selectively flip a
handful of bits — "one to three VMCS fields per fuzzing iteration,
mutating one to eight bits per field" — to land *near* the valid/invalid
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpuid import Vendor
from repro.fuzzer.input import FuzzInput, InputCursor
from repro.svm import fields as SF
from repro.svm.vmcb import Vmcb
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.validator.oracle import HardwareOracle
from repro.validator.rounding import VmStateValidator
from repro.validator.svm_validator import SvmHardwareOracle, VmcbValidator
from repro.vmx import fields as F
from repro.vmx.fields import FieldGroup
from repro.vmx.msr_caps import VmxCapabilities
from repro.vmx.vmcs import Vmcs

#: Per-iteration mutation budget from the paper.
MAX_FIELDS_PER_ITERATION = 3
MAX_BITS_PER_FIELD = 8

#: Security-critical VMCS fields that bit selection favours (control
#: fields and access-rights registers, per §4.3).
_PRIORITY_FIELDS: tuple[int, ...] = tuple(
    spec.encoding for spec in F.ALL_FIELDS
    if spec.group is FieldGroup.CONTROL or spec.name.endswith("_ar_bytes")
    or spec.name in ("guest_cr0", "guest_cr4", "guest_ia32_efer",
                     "guest_activity_state", "guest_interruptibility_info")
)
_WRITABLE_ENCODINGS: tuple[int, ...] = tuple(
    spec.encoding for spec in F.WRITABLE_FIELDS
)

_VMCB_PRIORITY: tuple[str, ...] = tuple(
    spec.name for spec in SF.ALL_FIELDS
    if spec.area is SF.VmcbArea.CONTROL
    or spec.name in ("efer", "cr0", "cr4", "cs_attrib", "ss_attrib")
)
_VMCB_ALL: tuple[str, ...] = tuple(spec.name for spec in SF.ALL_FIELDS)


def _pick_bit_count(cursor: InputCursor) -> int:
    """How many bits to flip in one field: 1..MAX, geometrically biased.

    Deeply corrupted fields are rejected wholesale by the first
    consistency check they meet; single- and double-bit flips are the
    ones that land *near* the boundary (paper §5.6), so the distribution
    leans heavily toward them while still reaching eight.
    """
    nbits = 1
    while nbits < MAX_BITS_PER_FIELD and cursor.chance(1, 2):
        nbits += 1
    return nbits


def _pick_bit(cursor: InputCursor, width: int) -> int:
    """Bit-position selection, constrained to the field width (§4.3).

    Biased toward the low 16 bits, where the architecturally meaningful
    bits of control registers, control fields, and access-rights words
    concentrate — flips there land on the validity boundary far more
    often than flips in high address bits.
    """
    if width > 16 and cursor.chance(1, 2):
        return cursor.below(16)
    return cursor.below(width)


@dataclass
class GeneratedState:
    """One generated VM state plus its provenance."""

    rounding_corrections: int
    mutated_fields: list[str]
    flipped_bits: int
    oracle_entered: bool | None = None


@dataclass
class VmStateGenerator:
    """The Intel-side state generator (validator + oracle + injection)."""

    caps: VmxCapabilities
    use_validator: bool = True
    validator: VmStateValidator = field(init=False)
    oracle: HardwareOracle = field(init=False)

    def __post_init__(self) -> None:
        self.validator = VmStateValidator(self.caps)
        self.oracle = HardwareOracle(self.caps)

    def generate(self, fuzz_input: FuzzInput) -> tuple[Vmcs, GeneratedState]:
        """Produce the VMCS12 image for one fuzzing iteration."""
        if self.use_validator:
            vmcs = Vmcs.deserialize(fuzz_input.vm_state_bytes(),
                                    self.caps.vmcs_revision_id)
            report = self.validator.round_to_valid(vmcs)
            oracle_report = self.oracle.verify(vmcs)
            meta = GeneratedState(report.total, [], 0,
                                  oracle_entered=oracle_report.entered)
        else:
            # Ablation (§5.3): no boundary search — a golden template
            # with a few raw-input field overlays, Syzkaller-style.
            vmcs = golden_vmcs(self.caps)
            cursor = InputCursor(fuzz_input.vm_state_bytes())
            for _ in range(cursor.below(4)):
                encoding = _WRITABLE_ENCODINGS[cursor.below(len(_WRITABLE_ENCODINGS))]
                vmcs.write(encoding, cursor.u64())
            meta = GeneratedState(0, [], 0)

        self._inject_boundary_bits(vmcs, fuzz_input.mutation_cursor(), meta)
        return vmcs, meta

    def _inject_boundary_bits(self, vmcs: Vmcs, cursor: InputCursor,
                              meta: GeneratedState) -> None:
        """§4.3 mutation: field selection → bit selection → flip → repeat."""
        nfields = 1 + cursor.below(MAX_FIELDS_PER_ITERATION)
        for _ in range(nfields):
            if cursor.chance(3, 4):
                encoding = _PRIORITY_FIELDS[cursor.below(len(_PRIORITY_FIELDS))]
            else:
                encoding = _WRITABLE_ENCODINGS[cursor.below(len(_WRITABLE_ENCODINGS))]
            spec = F.SPEC_BY_ENCODING[encoding]
            nbits = _pick_bit_count(cursor)
            value = vmcs.read(encoding)
            for _ in range(nbits):
                value ^= 1 << _pick_bit(cursor, spec.bits)
            vmcs.write(encoding, value)
            meta.mutated_fields.append(spec.name)
            meta.flipped_bits += nbits


@dataclass
class VmcbStateGenerator:
    """The AMD-side state generator."""

    use_validator: bool = True
    validator: VmcbValidator = field(default_factory=VmcbValidator)
    oracle: SvmHardwareOracle = field(default_factory=SvmHardwareOracle)

    def generate(self, fuzz_input: FuzzInput) -> tuple[Vmcb, GeneratedState]:
        """Produce the VMCB12 image for one fuzzing iteration."""
        if self.use_validator:
            vmcb = Vmcb.deserialize(
                FuzzInput.normalize(fuzz_input.vm_state_bytes())[:SF.LAYOUT_BYTES])
            corrections = self.validator.round_to_valid(vmcb)
            entered = self.oracle.verify(vmcb)
            meta = GeneratedState(len(corrections), [], 0, oracle_entered=entered)
        else:
            vmcb = golden_vmcb()
            cursor = InputCursor(fuzz_input.vm_state_bytes())
            for _ in range(cursor.below(4)):
                name = _VMCB_ALL[cursor.below(len(_VMCB_ALL))]
                vmcb.write(name, cursor.u64())
            meta = GeneratedState(0, [], 0)

        self._inject_boundary_bits(vmcb, fuzz_input.mutation_cursor(), meta)
        return vmcb, meta

    def _inject_boundary_bits(self, vmcb: Vmcb, cursor: InputCursor,
                              meta: GeneratedState) -> None:
        nfields = 1 + cursor.below(MAX_FIELDS_PER_ITERATION)
        for _ in range(nfields):
            if cursor.chance(3, 4):
                name = _VMCB_PRIORITY[cursor.below(len(_VMCB_PRIORITY))]
            else:
                name = _VMCB_ALL[cursor.below(len(_VMCB_ALL))]
            spec = SF.SPEC_BY_NAME[name]
            nbits = _pick_bit_count(cursor)
            value = vmcb.read(name)
            for _ in range(nbits):
                value ^= 1 << _pick_bit(cursor, spec.bits)
            vmcb.write(name, value)
            meta.mutated_fields.append(name)
            meta.flipped_bits += nbits


def state_generator_for(vendor: Vendor, caps: VmxCapabilities, *,
                        use_validator: bool = True):
    """Factory: the right generator for *vendor*."""
    if vendor is Vendor.INTEL:
        return VmStateGenerator(caps, use_validator=use_validator)
    return VmcbStateGenerator(use_validator=use_validator)
