"""Table 4: Xen nested-virtualization coverage after 24 hours.

Reproduces the hypervisor-independence result (RQ3): against Xen 4.18's
nvmx/nestedsvm analogues, NecoFuzz dwarfs the Xen Test Framework on both
vendors (paper: 83.4% vs 20.4% Intel, 79.0% vs 10.8% AMD).
"""

import pytest

from common import (
    BenchReport,
    coverage_percents,
    median_result_lines,
    necofuzz_runs,
)
from repro import Vendor
from repro.analysis.stats import confidence_interval, median_of
from repro.baselines import XtfSuite
from repro.coverage.report import CoverageTable

BUDGET = 500  # 24-hour mark


def _run_table(vendor: Vendor):
    neco = necofuzz_runs(vendor, hypervisor="xen", budget=BUDGET)
    xtf = XtfSuite(vendor).run()
    table = CoverageTable(f"Table 4 — Xen {vendor.value}",
                          neco[0].instrumented_lines)
    table.add("NecoFuzz", median_result_lines(neco))
    table.add("XTF", xtf.covered_lines)
    table.add_algebra("NecoFuzz", "XTF")
    return table, neco


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                         ids=["intel", "amd"])
def test_table4_xen(benchmark, capsys, vendor):
    box = {}

    def experiment():
        box["result"] = _run_table(vendor)
        return box["result"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    table, neco = box["result"]

    percents = coverage_percents(neco)
    lo, hi = confidence_interval(percents)
    report = BenchReport(f"Table 4: Xen coverage ({vendor.value}, 24h)")
    report.add(table.render())
    report.add(f"\nNecoFuzz median {median_of(percents):.1f}% "
               f"(95% CI: {lo:.1f}-{hi:.1f})")
    report.emit(capsys)

    neco_pct = table.reports["NecoFuzz"].percent
    xtf_pct = table.reports["XTF"].percent
    # Paper shape: a 60+ percentage-point gap on both vendors.
    assert neco_pct > 60
    assert xtf_pct < 35
    assert neco_pct - xtf_pct > 35
    # XTF-only code is tiny (paper: 1.7% / 2.4%).
    assert table.reports["XTF-NecoFuzz"].percent < 10
