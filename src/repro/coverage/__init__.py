"""Coverage collection (kcov/gcov analogue) and AFL edge bitmaps."""

from repro.coverage.bitmap import MAP_SIZE, CoverageBitmap, VirginMap
from repro.coverage.kcov import KcovTracer, executable_lines
from repro.coverage.report import CoverageReport, CoverageTable

__all__ = [
    "KcovTracer",
    "executable_lines",
    "CoverageBitmap",
    "VirginMap",
    "MAP_SIZE",
    "CoverageReport",
    "CoverageTable",
]
