"""Coverage reporting: totals, percentages, and set algebra.

Table 2 / Table 4 report coverage percentages plus the paper's
``A ∩ B`` / ``A − B`` rows; :class:`CoverageReport` is the object those
benches print from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Line = tuple[str, int]


@dataclass
class CoverageReport:
    """Line coverage of one tool relative to one instrumented total."""

    name: str
    covered: set[Line]
    instrumented: set[Line]

    def __post_init__(self) -> None:
        # Only instrumented lines count — stray trace data is clipped.
        self.covered = self.covered & self.instrumented

    @property
    def total_lines(self) -> int:
        """Size of the instrumented universe."""
        return len(self.instrumented)

    @property
    def covered_lines(self) -> int:
        """Number of instrumented lines covered."""
        return len(self.covered)

    @property
    def percent(self) -> float:
        """Covered percentage of the instrumented universe."""
        if not self.instrumented:
            return 0.0
        return 100.0 * self.covered_lines / self.total_lines

    def intersect(self, other: "CoverageReport") -> "CoverageReport":
        """Lines covered by both (the paper's A ∩ B rows)."""
        return CoverageReport(f"{self.name}∩{other.name}",
                              self.covered & other.covered, self.instrumented)

    def minus(self, other: "CoverageReport") -> "CoverageReport":
        """Lines covered by self but not other (the paper's A − B rows)."""
        return CoverageReport(f"{self.name}-{other.name}",
                              self.covered - other.covered, self.instrumented)

    def union(self, other: "CoverageReport") -> "CoverageReport":
        """Lines covered by either report."""
        return CoverageReport(f"{self.name}∪{other.name}",
                              self.covered | other.covered, self.instrumented)

    def row(self) -> str:
        """One Table-2-style row: name, percentage, #lines."""
        return f"{self.name:<24} {self.percent:6.1f}%  {self.covered_lines:>6}"


@dataclass
class CoverageTable:
    """A Table-2/Table-4-shaped collection of reports."""

    title: str
    instrumented: set[Line]
    reports: dict[str, CoverageReport] = field(default_factory=dict)

    def add(self, name: str, covered: set[Line]) -> CoverageReport:
        """Add one tool's coverage as a report row."""
        report = CoverageReport(name, covered, self.instrumented)
        self.reports[name] = report
        return report

    def add_algebra(self, a: str, b: str) -> None:
        """Add the A−B, B−A, and A∩B rows for two existing reports."""
        ra, rb = self.reports[a], self.reports[b]
        for derived in (ra.minus(rb), rb.minus(ra), ra.intersect(rb)):
            self.reports[derived.name] = derived

    def render(self) -> str:
        """Render the whole table as printable text."""
        lines = [self.title,
                 f"{'':<24} {'cov%':>7}  {'#line':>6}",
                 f"{'Total':<24} {100.0:6.1f}%  {len(self.instrumented):>6}"]
        lines += [report.row() for report in self.reports.values()]
        return "\n".join(lines)


def annotate_source(module, covered: set[Line],
                    instrumented: set[Line] | None = None) -> str:
    """Render *module*'s source with gcov-style per-line coverage marks.

    ``#####`` marks instrumented-but-uncovered lines (gcov's notation for
    never-executed lines), ``1`` marks covered lines, and ``-`` marks
    non-instrumented lines. Useful for eyeballing exactly which checks a
    campaign never reached.
    """
    from repro.coverage.kcov import executable_lines

    filename = module.__file__
    if instrumented is None:
        instrumented = executable_lines(module)
    instrumented_linenos = {l for f, l in instrumented if f == filename}
    covered_linenos = {l for f, l in covered if f == filename}

    out = []
    with open(filename, encoding="utf-8") as source:
        for lineno, text in enumerate(source, 1):
            if lineno in covered_linenos:
                mark = "1"
            elif lineno in instrumented_linenos:
                mark = "#####"
            else:
                mark = "-"
            out.append(f"{mark:>9}:{lineno:5}:{text.rstrip()}")
    return "\n".join(out)
