"""Integration tests: can full campaigns discover the paper's six bugs?

These reproduce Table 6 end-to-end through the fuzzing stack (not by
hand-crafting the trigger states as the unit tests do). Each campaign is
seeded and budgeted so that discovery is deterministic.
"""


from repro import NecoFuzz, Vendor
from repro.core.detectors import DetectionMethod


def methods_found(result):
    return {report.anomaly.method for report in result.reports}


def locations_found(result):
    return {report.anomaly.signature() for report in result.reports}


class TestKvmDiscovery:
    def test_bug3_shadow_root_found_quickly(self):
        """The invalid-EPTP triple fault surfaces within a few hundred
        cases — it needs only one boundary flip on the EPT pointer."""
        result = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=3).run(600)
        assert "Assertion@nested_ept_load_root" in locations_found(result)

    def test_bug3_amd_found(self):
        result = NecoFuzz(hypervisor="kvm", vendor=Vendor.AMD, seed=3).run(600)
        assert "Assertion@nested_svm_load_ncr3" in locations_found(result)

    def test_patched_kvm_is_quiet(self):
        patched = frozenset({"cr4_pae_consistency", "dummy_root"})
        result = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=3,
                          patched=patched).run(600)
        assert not result.reports


class TestXenDiscovery:
    def test_bug4_host_crash_found(self):
        """WAIT-FOR-SIPI needs only an activity-state flip; the watchdog
        must catch the hang and the campaign must keep running."""
        result = NecoFuzz(hypervisor="xen", vendor=Vendor.INTEL, seed=3).run(800)
        assert DetectionMethod.HOST_CRASH in methods_found(result)
        assert result.watchdog_restarts >= 1
        # The campaign survived the crash and kept fuzzing.
        assert result.engine_stats.iterations == 800

    def test_xen_amd_bugs_found(self):
        result = NecoFuzz(hypervisor="xen", vendor=Vendor.AMD, seed=3).run(1500)
        locations = locations_found(result)
        assert ("Assertion@nsvm_vcpu_vmexit_inject" in locations
                or "Assertion@nsvm_vmexit_handler" in locations)

    def test_patched_xen_survives(self):
        patched = frozenset({"activity_state_sanitize", "avic_sanitize",
                             "vgif_inject"})
        result = NecoFuzz(hypervisor="xen", vendor=Vendor.INTEL, seed=3,
                          patched=patched).run(600)
        assert result.watchdog_restarts == 0


class TestVboxDiscovery:
    def test_bug2_vm_crash_found(self):
        """CVE-2024-21106: the harness's MSR-area builder plus boundary
        values reach the missing canonicality check."""
        result = NecoFuzz(hypervisor="virtualbox", vendor=Vendor.INTEL,
                          seed=3).run(1200)
        assert DetectionMethod.VM_CRASH in methods_found(result)
        crash = next(r for r in result.reports
                     if r.anomaly.method is DetectionMethod.VM_CRASH)
        assert "CVE-2024-21106" in crash.anomaly.message

    def test_patched_vbox_no_crash(self):
        result = NecoFuzz(hypervisor="virtualbox", vendor=Vendor.INTEL, seed=3,
                          patched=frozenset({"canonical_msr_check"})).run(800)
        assert DetectionMethod.VM_CRASH not in methods_found(result)


class TestReportQuality:
    def test_reports_carry_reproduction_metadata(self):
        result = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=3).run(600)
        assert result.reports
        report = result.reports[0]
        assert len(report.fuzz_input.data) == 2048
        assert "modprobe" in report.command_line
        assert report.hypervisor == "kvm"
