"""Chaos suite: injected hook faults must leave usable crash artifacts.

``raise_in_hook`` plants an exception inside a real pipeline stage
(agent, executor, oracle). Case isolation must contain it, triage must
attribute it to the hook site (not the injector), and a reproducer
must land in ``corpus_dir/crashes/`` — the artifact the CI chaos job
uploads.
"""

from repro import NecoFuzz, Vendor, faults
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import load_reproducer

BUDGET = 30


class TestHookFaultReproducers:
    def test_hook_fault_is_contained_and_persisted(self, tmp_path):
        plan = FaultPlan([FaultSpec("raise_in_hook", hook="oracle.verify")])
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5,
                            corpus_dir=tmp_path)
        with faults.injected(plan):
            result = campaign.run(BUDGET)
        # The fault fired, was isolated at the case boundary, and the
        # campaign ran its full budget regardless.
        assert plan.fired
        assert result.engine_stats.iterations == BUDGET
        assert result.engine_stats.case_exceptions == 1

        reproducers = sorted((tmp_path / "crashes").glob("crash-*.json"))
        assert len(reproducers) == 1
        data, meta = load_reproducer(reproducers[0])
        assert meta["signature"]["exc_type"] == "InjectedFault"
        # Triage skips the injector's own frames: the signature points
        # at the hook site inside the oracle, not at faults.py.
        assert meta["signature"]["top_frame"].startswith("oracle.py:")
        assert meta["campaign_seed"] == 5

    def test_distinct_hooks_produce_distinct_reproducers(self, tmp_path):
        plan = FaultPlan([
            FaultSpec("raise_in_hook", hook="agent.run_case"),
            FaultSpec("raise_in_hook", hook="kvm.run"),
            FaultSpec("raise_in_hook", hook="oracle.verify"),
        ])
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5,
                            corpus_dir=tmp_path)
        with faults.injected(plan):
            result = campaign.run(BUDGET)
        assert plan.exhausted
        assert result.engine_stats.case_exceptions == 3
        files = sorted((tmp_path / "crashes").glob("crash-*.json"))
        assert len(files) == 3
        frames = {load_reproducer(f)[1]["signature"]["top_frame"]
                  for f in files}
        assert len(frames) == 3

    def test_reproducer_feeds_back_into_an_engine(self, tmp_path):
        plan = FaultPlan([FaultSpec("raise_in_hook", hook="oracle.verify")])
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5,
                            corpus_dir=tmp_path)
        with faults.injected(plan):
            campaign.run(BUDGET)
        payload = next((tmp_path / "crashes").glob("crash-*.json")).read_bytes()

        replay = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=6)
        assert replay.engine.import_case(payload) is not None
        assert replay.engine.stats.imported == 1
