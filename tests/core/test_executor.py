"""Tests for the UEFI-executor analogue and component toggles."""

from repro.arch.cpuid import Vendor
from repro.core.executor import ComponentToggles, UefiExecutor
from repro.core.necofuzz import golden_seed
from repro.core.state_generator import VmStateGenerator
from repro.fuzzer.input import FuzzInput
from repro.fuzzer.rng import Rng
from repro.hypervisors import KvmHypervisor, VcpuConfig
from repro.vmx.msr_caps import default_capabilities


def make_executor(seed=1, toggles=None):
    fi = FuzzInput(golden_seed(Vendor.INTEL, Rng(seed)))
    return UefiExecutor(
        vendor=Vendor.INTEL,
        embedded_input=fi,
        state_generator=VmStateGenerator(default_capabilities()),
        toggles=toggles or ComponentToggles(),
        runtime_iterations=10)


class TestToggles:
    def test_defaults_all_on(self):
        toggles = ComponentToggles()
        assert toggles.use_harness and toggles.use_validator
        assert toggles.use_configurator

    def test_none_all_off(self):
        toggles = ComponentToggles.none()
        assert not (toggles.use_harness or toggles.use_validator
                    or toggles.use_configurator)


class TestExecutor:
    def test_runs_both_phases(self):
        ran_runtime = False
        for seed in range(8):
            executor = make_executor(seed)
            hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
            result = executor.run(hv)
            assert result.completed
            if result.harness.entered_l2:
                # Runtime-phase activity shows up as L2 exits.
                exits = (result.harness.l2_exits_to_l1
                         + result.harness.l0_handled_exits)
                ran_runtime = ran_runtime or exits >= 1
        assert ran_runtime

    def test_self_contained_embedded_input(self):
        """The executor re-runs identically from its embedded input —
        the decoupling property of §4.5."""
        outputs = []
        for _ in range(2):
            executor = make_executor(seed=4)
            hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
            result = executor.run(hv)
            outputs.append((result.harness.instructions,
                            result.harness.vm_entries,
                            result.harness.entered_l2))
        assert outputs[0] == outputs[1]

    def test_pregenerated_state_used(self):
        executor = make_executor(seed=2)
        generator = VmStateGenerator(default_capabilities())
        pre = generator.generate(executor.embedded_input)
        executor.pregenerated = pre
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        result = executor.run(hv)
        assert result.state_meta is pre[1]

    def test_runtime_skipped_when_init_fails(self):
        # An executor whose input never boots L2 still completes.
        for seed in range(12):
            executor = make_executor(seed)
            hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
            result = executor.run(hv)
            if not result.harness.entered_l2:
                assert result.harness.l2_exits_to_l1 == 0
                return
