"""Crash isolation and triage: signatures, dedupe, minimization, files."""

import json
import os

import pytest

from repro.fuzzer.crashes import (
    CrashSignature,
    CrashStore,
    atomic_write_bytes,
    load_reproducer,
)
from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import HARNESS_REGION, INPUT_SIZE
from repro.fuzzer.rng import Rng


def _boom(message="kaboom"):
    """An exception with a real traceback."""
    try:
        raise RuntimeError(message)
    except RuntimeError as exc:
        return exc


class TestCrashSignature:
    def test_signature_captures_type_and_frame(self):
        sig = CrashSignature.of(_boom(), "kvm", "intel")
        assert sig.exc_type == "RuntimeError"
        assert sig.top_frame.startswith("test_crashes.py:")
        assert sig.hypervisor == "kvm"

    def test_same_site_same_signature_different_message(self):
        assert (CrashSignature.of(_boom("a"), "kvm", "intel")
                == CrashSignature.of(_boom("b"), "kvm", "intel"))

    def test_slug_is_stable_and_short(self):
        sig = CrashSignature.of(_boom(), "kvm", "intel")
        assert sig.slug() == sig.slug()
        assert len(sig.slug()) == 12

    def test_vendor_distinguishes_signatures(self):
        exc = _boom()
        assert (CrashSignature.of(exc, "kvm", "intel")
                != CrashSignature.of(exc, "kvm", "amd"))


class TestCrashStore:
    def test_dedupes_by_signature(self, tmp_path):
        store = CrashStore(tmp_path, "kvm", "intel", campaign_seed=1)
        _, first_new = store.record(_boom("a"), b"\x01" * INPUT_SIZE, 1)
        record, second_new = store.record(_boom("b"), b"\x02" * INPUT_SIZE, 2)
        assert first_new and not second_new
        assert len(store) == 1
        assert store.total == 2
        assert record.count == 2

    def test_persists_one_reproducer_per_signature(self, tmp_path):
        store = CrashStore(tmp_path, "kvm", "intel", campaign_seed=7)
        store.record(_boom(), b"\x03" * INPUT_SIZE, 5)
        store.record(_boom(), b"\x04" * INPUT_SIZE, 6)
        files = list(tmp_path.glob("crash-*.json"))
        assert len(files) == 1
        data, meta = load_reproducer(files[0])
        assert data == b"\x03" * INPUT_SIZE  # first occurrence wins
        assert meta["campaign_seed"] == 7
        assert meta["iteration"] == 5
        assert meta["signature"]["exc_type"] == "RuntimeError"

    def test_minimization_zeroes_irrelevant_regions(self, tmp_path):
        # Crash depends only on the first harness byte; every other
        # region should be zeroed by the region-minimizer.
        start = HARNESS_REGION[0]

        def reexecute(raw):
            if raw[start] == 0xAB:
                raise ValueError("trigger")
            return None

        data = bytearray(b"\xff" * INPUT_SIZE)
        data[start] = 0xAB
        try:
            reexecute(bytes(data))
        except ValueError as exc:
            trigger = exc
        store = CrashStore(tmp_path, "kvm", "intel")
        record, _ = store.record(trigger, bytes(data), 1, reexecute=reexecute)
        assert record.minimized
        assert record.input_bytes[start] == 0xAB
        # The VM-state region (disjoint from the trigger byte) is zeroed.
        assert record.input_bytes[:start] == bytes(start)

    def test_minimization_keeps_input_when_not_reproducing(self, tmp_path):
        store = CrashStore(tmp_path, "kvm", "intel")
        data = b"\x05" * INPUT_SIZE
        record, _ = store.record(_boom(), data, 1,
                                 reexecute=lambda raw: None)
        assert not record.minimized
        assert record.input_bytes == data

    def test_reproducer_file_imports_into_engine(self, tmp_path):
        store = CrashStore(tmp_path, "kvm", "intel")
        store.record(_boom(), b"\x06" * INPUT_SIZE, 3)
        payload = next(tmp_path.glob("crash-*.json")).read_bytes()

        def execute(candidate):
            bitmap = __import__(
                "repro.coverage.bitmap", fromlist=["CoverageBitmap"]
            ).CoverageBitmap()
            bitmap.record_edge(1, 2)
            return RunFeedback(bitmap=bitmap)

        engine = FuzzEngine(execute=execute, rng=Rng(1))
        assert engine.import_case(payload) is not None
        assert engine.stats.import_skipped == 0

    def test_load_reproducer_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "crash-bad.json"
        path.write_text(json.dumps({"schema": 99, "input": "00"}))
        with pytest.raises(ValueError):
            load_reproducer(path)


class TestAtomicWrite:
    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "entry"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"

    def test_leaves_no_tmp_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "entry", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["entry"]

    def test_interrupted_write_leaves_target_intact(self, tmp_path,
                                                    monkeypatch):
        target = tmp_path / "entry"
        atomic_write_bytes(target, b"original")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"partial")
        assert target.read_bytes() == b"original"
