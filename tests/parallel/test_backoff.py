"""Unit tests for the shared exponential-backoff curve.

One formula serves both the supervisor's restart delays and the
transport's reconnect loop (DESIGN.md §14), so these tests pin the
deterministic core, the hard cap, and the seeded-jitter contract that
the chaos suite relies on for reproducible schedules.
"""

from __future__ import annotations

import random

import pytest

from repro.parallel import expo_backoff


def test_deterministic_doubling_until_cap():
    delays = [expo_backoff(0.05, 2.0, attempt) for attempt in range(1, 9)]
    assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0]


def test_cap_is_a_hard_ceiling_even_with_jitter():
    rng = random.Random(1)
    for attempt in range(1, 80):
        delay = expo_backoff(0.05, 2.0, attempt, jitter=1.0, rng=rng)
        assert 0.0 <= delay <= 2.0


def test_huge_attempt_does_not_overflow():
    assert expo_backoff(0.05, 2.0, 10_000_000) == 2.0


def test_seeded_rng_reproduces_the_schedule():
    first = [expo_backoff(0.1, 5.0, a, jitter=0.25, rng=random.Random(42))
             for a in range(1, 6)]
    second = [expo_backoff(0.1, 5.0, a, jitter=0.25, rng=random.Random(42))
              for a in range(1, 6)]
    assert first == second


def test_jitter_spreads_within_the_symmetric_band():
    rng = random.Random(7)
    base_delay = expo_backoff(0.2, 10.0, 3)  # 0.8, uncapped
    draws = [expo_backoff(0.2, 10.0, 3, jitter=0.5, rng=rng)
             for _ in range(200)]
    assert all(0.4 <= d <= 1.2 for d in draws)
    assert min(draws) < base_delay < max(draws)


def test_zero_jitter_never_touches_the_rng():
    class Exploding(random.Random):
        def random(self):  # pragma: no cover - defensive
            raise AssertionError("rng consulted without jitter")

    assert expo_backoff(0.05, 2.0, 3, rng=Exploding()) == 0.2


@pytest.mark.parametrize("attempt", [0, -1])
def test_attempt_is_one_based(attempt):
    with pytest.raises(ValueError):
        expo_backoff(0.05, 2.0, attempt)


@pytest.mark.parametrize("jitter", [-0.1, 1.5])
def test_jitter_fraction_validated(jitter):
    with pytest.raises(ValueError):
        expo_backoff(0.05, 2.0, 1, jitter=jitter)


def test_negative_base_or_cap_rejected():
    with pytest.raises(ValueError):
        expo_backoff(-0.05, 2.0, 1)
    with pytest.raises(ValueError):
        expo_backoff(0.05, -2.0, 1)
