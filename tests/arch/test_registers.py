"""Unit tests for control-register bit definitions and validity rules."""

from repro.arch import registers as R


class TestCr0Rules:
    def test_valid_protected_paged(self):
        cr0 = R.Cr0.PE | R.Cr0.PG | R.Cr0.NE | R.Cr0.ET
        assert R.cr0_valid(cr0)

    def test_pg_requires_pe(self):
        assert not R.cr0_valid(R.Cr0.PG | R.Cr0.NE, unrestricted_guest=True)

    def test_nw_without_cd_invalid(self):
        cr0 = R.Cr0.PE | R.Cr0.PG | R.Cr0.NW
        assert not R.cr0_valid(cr0)

    def test_nw_with_cd_valid(self):
        cr0 = R.Cr0.PE | R.Cr0.PG | R.Cr0.NW | R.Cr0.CD
        assert R.cr0_valid(cr0)

    def test_unrestricted_guest_allows_realmode(self):
        assert R.cr0_valid(R.Cr0.ET, unrestricted_guest=True)
        assert not R.cr0_valid(R.Cr0.ET, unrestricted_guest=False)

    def test_reserved_bits_rejected(self):
        assert not R.cr0_valid(R.Cr0.PE | R.Cr0.PG | (1 << 8))


class TestCr4Rules:
    def test_known_bits_valid(self):
        assert R.cr4_valid(R.Cr4.PAE | R.Cr4.VMXE | R.Cr4.SMEP)

    def test_reserved_bit_rejected(self):
        assert not R.cr4_valid(1 << 31)
        assert not R.cr4_valid(1 << 15)


class TestEferRules:
    def test_valid_long_mode(self):
        assert R.efer_valid(R.Efer.LME | R.Efer.LMA | R.Efer.NXE)

    def test_reserved_rejected(self):
        assert not R.efer_valid(1 << 2)
        assert not R.efer_valid(1 << 9)

    def test_lma_consistency(self):
        cr0_paged = R.Cr0.PE | R.Cr0.PG
        assert R.efer_consistent_with_cr0(R.Efer.LME | R.Efer.LMA, cr0_paged)
        assert not R.efer_consistent_with_cr0(R.Efer.LME, cr0_paged)
        # The APM-permitted transitional state: LME=1, PG=0, LMA=0.
        assert R.efer_consistent_with_cr0(R.Efer.LME, R.Cr0.PE)

    def test_long_mode_requires_pae(self):
        assert R.long_mode_requires_pae(R.Efer.LME, R.Cr4.PAE)
        assert not R.long_mode_requires_pae(R.Efer.LME, 0)
        assert R.long_mode_requires_pae(0, 0)  # no long mode, no rule


class TestRflags:
    def test_canonicalize_sets_fixed_one(self):
        assert R.rflags_canonicalize(0) & R.Rflags.FIXED_1

    def test_canonicalize_clears_reserved(self):
        value = R.rflags_canonicalize(0xFFFF_FFFF)
        assert not value & R.Rflags.RESERVED

    def test_valid_after_canonicalize(self):
        assert R.rflags_valid(R.rflags_canonicalize(0xDEADBEEF))

    def test_zero_invalid(self):
        assert not R.rflags_valid(0)

    def test_reserved_bit_invalid(self):
        assert not R.rflags_valid(R.Rflags.FIXED_1 | (1 << 3))


class TestGprNames:
    def test_sixteen_registers(self):
        assert len(R.GPR_NAMES) == 16
        assert "rax" in R.GPR_NAMES and "r15" in R.GPR_NAMES
