"""kvm-intel.ko / kvm-amd.ko module parameters.

The vCPU configurator's KVM adapter "reloads the kernel module with the
desired parameter string" (paper §4.4). This module is the receiving end:
a typed view of the parameter set, plus the derivation of the VMX
capability MSRs the L1 guest will observe (KVM's
``nested_vmx_setup_ctls_msrs()`` analogue).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.arch.cpuid import Vendor
from repro.hypervisors.base import VcpuConfig
from repro.vmx.msr_caps import VmxCapabilities, capabilities_for_features


@dataclass
class KvmModuleParams:
    """Parameters accepted by the vendor modules (subset we model)."""

    nested: bool = True
    # kvm-intel.ko
    ept: bool = True
    unrestricted_guest: bool = True
    vpid: bool = True
    flexpriority: bool = True
    enable_shadow_vmcs: bool = True
    pml: bool = True
    enable_apicv: bool = True
    preemption_timer: bool = True
    ple: bool = True
    # kvm-amd.ko
    npt: bool = True
    avic: bool = False
    vgif: bool = True
    vls: bool = True
    lbrv: bool = True
    pause_filter: bool = True

    @classmethod
    def from_config(cls, config: VcpuConfig) -> "KvmModuleParams":
        """Build the parameter set a configurator adapter would pass."""
        params = cls()
        mapping = {
            "ept": "ept",
            "unrestricted_guest": "unrestricted_guest",
            "vpid": "vpid",
            "flexpriority": "flexpriority",
            "enable_shadow_vmcs": "enable_shadow_vmcs",
            "pml": "pml",
            "apicv": "enable_apicv",
            "preemption_timer": "preemption_timer",
            "ple": "ple",
            "npt": "npt",
            "avic": "avic",
            "vgif": "vgif",
            "vls": "vls",
            "lbrv": "lbrv",
            "pause_filter": "pause_filter",
            "nested": "nested",
        }
        for feature, param in mapping.items():
            if feature in config.features:
                setattr(params, param, config.features[feature])
        # Dependent parameters, as the real module resolves them.
        if not params.ept:
            params.unrestricted_guest = False
            params.pml = False
        return params

    def cmdline(self, vendor: Vendor) -> str:
        """Render as a modprobe parameter string (for crash reports)."""
        if vendor is Vendor.INTEL:
            names = ("nested", "ept", "unrestricted_guest", "vpid",
                     "flexpriority", "enable_shadow_vmcs", "pml",
                     "enable_apicv", "preemption_timer", "ple")
        else:
            names = ("nested", "npt", "avic", "vgif", "vls", "lbrv",
                     "pause_filter")
        return " ".join(f"{n}={int(getattr(self, n))}" for n in names)

    def as_feature_map(self) -> dict[str, bool]:
        """Back-map to the configurator's feature-name universe."""
        return {f.name if f.name != "enable_apicv" else "apicv":
                getattr(self, f.name) for f in fields(self)}

    def l1_vmx_capabilities(self) -> VmxCapabilities:
        """The IA32_VMX_* MSRs KVM exposes to its L1 guest."""
        features = {
            "ept": self.ept,
            "unrestricted_guest": self.unrestricted_guest,
            "vpid": self.vpid,
            "flexpriority": self.flexpriority,
            "enable_shadow_vmcs": self.enable_shadow_vmcs,
            "pml": self.pml,
            "apicv": self.enable_apicv,
            "preemption_timer": self.preemption_timer,
            "ple": self.ple,
        }
        return capabilities_for_features(features)
