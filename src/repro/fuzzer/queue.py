"""Seed queue with AFL-style favored-entry scheduling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fuzzer.rng import Rng

#: The cull rule's exercise budget: a favored entry keeps scheduling
#: priority until it has been picked this many times, after which it is
#: un-favored (see :meth:`SeedQueue.add_finding`) and competes with the
#: rest of the queue on equal terms.
EXERCISE_CAP = 32


@dataclass
class QueueEntry:
    """One queued seed."""

    data: bytes
    found_at: int            # iteration number when discovered
    new_bits: int            # 2 = new edge, 1 = new bucket, 0 = initial seed
    exercised: int = 0       # times picked for mutation
    favored: bool = False
    imported: bool = False   # pulled in from a sync partner, not found locally
    #: Sparse classified coverage ((cell, class-bit) pairs, sorted) the
    #: entry produced when found — what corpus protocol v2 exports so
    #: partners can test subsumption without executing. None for seeds
    #: and legacy-loaded entries (which are then never filter-skipped).
    coverage: Optional[tuple] = None
    #: Source lines the entry covered when found; shipped alongside
    #: ``coverage`` so a skipping importer can still absorb line stats.
    lines: Optional[frozenset] = None
    crashed: bool = False    # produced a crash when found (never skipped)
    anomaly: bool = False    # produced an anomaly when found (never skipped)
    #: Set by corpus distillation (``repro.schedule.distill``) when the
    #: entry covers no virgin bits that earlier entries don't already
    #: cover. Demoted entries stay in the queue (it is append-only);
    #: the fast power schedule drops their energy to the floor.
    redundant: bool = False


@dataclass
class SeedQueue:
    """The fuzzer's corpus.

    A light version of AFL's culling: entries that found brand-new edges
    (``new_bits == 2``) are favored; picking prefers favored entries
    that are still under :data:`EXERCISE_CAP` picks. The cull rule is
    enforced on every :meth:`add_finding`: any favored entry whose
    ``exercised`` count has reached the cap is un-favored, so the
    favored pool reflects the entries actually receiving priority
    instead of silently emptying while stale flags linger.
    """

    entries: list[QueueEntry] = field(default_factory=list)

    def add_seed(self, data: bytes) -> QueueEntry:
        """Add an initial seed (always kept, never favored)."""
        entry = QueueEntry(data, found_at=0, new_bits=0)
        self.entries.append(entry)
        return entry

    def add_finding(self, data: bytes, iteration: int, new_bits: int,
                    imported: bool = False, coverage: Optional[tuple] = None,
                    lines: Optional[frozenset] = None, crashed: bool = False,
                    anomaly: bool = False) -> QueueEntry:
        """Add an input that produced new coverage."""
        entry = QueueEntry(data, found_at=iteration, new_bits=new_bits,
                           favored=new_bits == 2, imported=imported,
                           coverage=coverage, lines=lines, crashed=crashed,
                           anomaly=anomaly)
        self.entries.append(entry)
        self.recull()
        return entry

    def recull(self) -> None:
        """Enforce the cull rule: un-favor entries past the exercise cap.

        Scheduling-neutral flag hygiene: :meth:`pick` already filters
        its favored pool to ``exercised < EXERCISE_CAP``, so clearing
        the stale flag changes no draw — it keeps ``favored`` honest
        for schedulers and reports that read it directly.
        """
        for entry in self.entries:
            if entry.favored and entry.exercised >= EXERCISE_CAP:
                entry.favored = False

    def pick(self, rng: Rng) -> QueueEntry:
        """Select the next entry to mutate."""
        if not self.entries:
            raise RuntimeError("empty seed queue")
        favored = [e for e in self.entries
                   if e.favored and e.exercised < EXERCISE_CAP]
        pool = favored if favored and rng.chance(0.75) else self.entries
        entry = rng.choice(pool)
        entry.exercised += 1
        return entry

    def pick_other(self, rng: Rng, entry: QueueEntry) -> QueueEntry:
        """A second, *different* entry (splice partner); equals *entry*
        only when the queue has a single element.

        The bounded retry loop always consumes exactly 0 or 4 draws
        more than a hit needs — keeping draw counts (and therefore
        campaign fingerprints) stable — but when all four draws land on
        *entry* the fallback is the deterministic successor in queue
        order rather than a degenerate self-splice.
        """
        if len(self.entries) == 1:
            return entry
        for _ in range(4):
            other = rng.choice(self.entries)
            if other is not entry:
                return other
        idx = self.entries.index(entry)
        return self.entries[(idx + 1) % len(self.entries)]

    def __len__(self) -> int:
        return len(self.entries)
