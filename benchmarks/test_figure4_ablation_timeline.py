"""Figure 4: coverage-contribution breakdown over time per component.

The timeline view of the Table-3 ablation: the full configuration's
trajectory dominates each single-component ablation throughout the run.
"""

import pytest

from common import BenchReport, necofuzz_runs, timeline_block
from repro import ComponentToggles, Vendor
from repro.analysis.timeline import median_timeline

BUDGET = 450

CONFIGS = (
    ("with ALL", ComponentToggles()),
    ("w/o harness", ComponentToggles(use_harness=False)),
    ("w/o validator", ComponentToggles(use_validator=False)),
    ("w/o configurator", ComponentToggles(use_configurator=False)),
)


@pytest.mark.benchmark(group="figure4")
@pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                         ids=["intel", "amd"])
def test_figure4(benchmark, capsys, vendor):
    box = {}

    def experiment():
        box["result"] = {
            name: necofuzz_runs(vendor, budget=BUDGET, toggles=toggles,
                                runs=3, sample_every=15)
            for name, toggles in CONFIGS
        }
        return box["result"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    runs = box["result"]

    sub = "a" if vendor is Vendor.INTEL else "b"
    report = BenchReport(f"Figure 4{sub}: ablation trajectories ({vendor.value})")
    for name, results in runs.items():
        report.lines += timeline_block(name, [r.timeline for r in results])
    report.emit(capsys)

    merged = {name: median_timeline([r.timeline for r in results], name)
              for name, results in runs.items()}
    full = merged["with ALL"]
    # The full configuration ends on top of every ablation (epsilon
    # covers median-of-3 noise on the smallest-contribution component).
    for name, timeline in merged.items():
        if name != "with ALL":
            assert full.final_coverage > timeline.final_coverage - 0.005
    # And it dominates through the second half of the run, not only at
    # the end (the figures show separation well before 24h).
    for name, timeline in merged.items():
        if name != "with ALL":
            assert full.at_hour(30) >= timeline.at_hour(30) - 0.02
