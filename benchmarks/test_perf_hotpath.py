"""Hot-path benchmark: incremental validation + merge vs. full recompute.

Drives the mutate -> correct -> verify -> merge -> execute loop the
fuzzer runs per case, on a persistent tracked VMCS (corpus style: a
mutation whose nested entry fails is reverted, like a non-entering
input being discarded), and measures both modes of this PR's
dirty-field tracking:

* full recompute — every rounding pass, consistency check, and the
  whole VMCS02 merge re-run from scratch each iteration;
* incremental — passes/checks are memoized against the change journal
  and validated by read *values*, and the merge re-copies only dirty
  fields (``repro.perf``).

Per-stage timings and the cases/sec speedup go to ``BENCH_hotpath.json``
at the repo root. The two modes are asserted behaviourally identical
(same correction counts, same hardware entries) here, and pinned
field-for-field equivalent by tests/unit/test_incremental_equivalence.py.

``NECOFUZZ_BENCH_BUDGET`` shrinks the iteration budget for CI smoke
runs; the speedup floor is only asserted at the full default budget,
since sub-100-iteration timings are warmup-dominated noise.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from common import BenchReport, PhaseDeadline, bench_budget
from repro import Vendor, perf
from repro.core.vcpu_config import VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor
from repro.hypervisors.kvm.nested_vmx import VMCS02_HPA, VmxNestedState
from repro.validator.golden import golden_vmcs
from repro.validator.oracle import HardwareOracle
from repro.validator.rounding import VmStateValidator
from repro.vmx import fields as F

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
DEFAULT_BUDGET = 400
BUDGET = bench_budget(DEFAULT_BUDGET)
SEED = 7
#: Acceptance floor from the issue; measured ~2.2x on the dev container.
MIN_SPEEDUP = 2.0

STAGES = ("correct", "validate", "merge", "execute")
_MUTABLE = [s for s in F.ALL_FIELDS if s.group is not F.FieldGroup.READ_ONLY]


def _update_json(section: str, payload: dict) -> None:
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    data["config"] = {"hypervisor": "kvm", "vendor": "intel",
                      "seed": SEED, "iterations": BUDGET}
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _run_workload(incremental: bool, budget: int = BUDGET) -> dict:
    """One validator-heavy pass over the hot path; returns its numbers.

    The loop checks the phase deadline every iteration, so a CI budget
    is a hard wall-clock stop, not advisory; the caller compares modes
    over the iterations that actually ran.
    """
    deadline = PhaseDeadline()
    with perf.incremental_mode(incremental):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        nested = hv.nested_vmx
        validator = VmStateValidator(nested.caps)
        oracle = HardwareOracle(nested.caps)
        state = VmxNestedState()
        vmcs = golden_vmcs(nested.caps)
        rng = random.Random(SEED)
        stages = dict.fromkeys(STAGES, 0.0)
        corrections = entries = reverted = 0

        ran = 0
        start = time.perf_counter()
        for _ in range(budget):
            if deadline.expired():
                break
            ran += 1
            spec = rng.choice(_MUTABLE)
            bit = rng.randrange(spec.bits)
            old = vmcs.read(spec.encoding)
            vmcs.write(spec.encoding, old ^ (1 << bit))

            t = time.perf_counter()
            corrections += validator.round_to_valid(vmcs).total
            stages["correct"] += time.perf_counter() - t

            t = time.perf_counter()
            report = oracle.verify(vmcs)
            stages["validate"] += time.perf_counter() - t
            entries += bool(report.entered)

            t = time.perf_counter()
            prep = nested.prepare_vmcs02(state, vmcs)
            stages["merge"] += time.perf_counter() - t
            if prep is not None:
                # Non-entering mutation: discard it, keep the corpus state.
                vmcs.write(spec.encoding, old)
                reverted += 1
                continue

            t = time.perf_counter()
            nested.phys.vmclear(VMCS02_HPA)
            image = state.vmcs02.copy()
            image.clear()
            nested.phys.install_vmcs(VMCS02_HPA, image)
            nested.phys.vmptrld(VMCS02_HPA)
            outcome = nested.phys.vmlaunch()
            stages["execute"] += time.perf_counter() - t
            entries += bool(outcome.entered)
        elapsed = time.perf_counter() - start

    return {
        "cases_per_sec": ran / elapsed if ran else 0.0,
        "seconds": elapsed,
        "iterations": ran,
        "truncated": deadline.hit,
        "stages": stages,
        "corrections": corrections,
        "entries": entries,
        "reverted": reverted,
    }


@pytest.mark.benchmark(group="perf-hotpath")
def test_incremental_hotpath_speedup(capsys):
    full = _run_workload(incremental=False)
    # The second phase replays exactly the iterations the first one
    # completed (its own deadline still applies), keeping the two
    # workloads comparable even when a CI deadline truncated phase one.
    inc = _run_workload(incremental=True, budget=full["iterations"])
    truncated = full["truncated"] or inc["truncated"]
    if not inc["cases_per_sec"]:
        pytest.skip("phase deadline left no iterations to compare")
    speedup = inc["cases_per_sec"] / full["cases_per_sec"]

    # The two modes must do identical work before their speed may differ.
    if full["iterations"] == inc["iterations"]:
        for key in ("corrections", "entries", "reverted"):
            assert full[key] == inc[key], key

    _update_json("hotpath", {
        "full_cases_per_sec": round(full["cases_per_sec"], 1),
        "incremental_cases_per_sec": round(inc["cases_per_sec"], 1),
        "speedup": round(speedup, 2),
        "iterations_run": full["iterations"],
        "deadline_truncated": truncated,
        "corrections": full["corrections"],
        "entries": full["entries"],
        "stage_seconds_full": {k: round(v, 4)
                               for k, v in full["stages"].items()},
        "stage_seconds_incremental": {k: round(v, 4)
                                      for k, v in inc["stages"].items()},
    })

    report = BenchReport("Hot path: incremental validation + merge")
    for label, r in (("full", full), ("incremental", inc)):
        per_stage = "  ".join(f"{k}={r['stages'][k] * 1000:.0f}ms"
                              for k in STAGES)
        report.add(f"{label:12s}{r['cases_per_sec']:7.1f} cases/s   "
                   f"{per_stage}")
    report.add(f"speedup     {speedup:7.2f}x  (floor {MIN_SPEEDUP}x)"
               + ("  [deadline truncated]" if truncated else ""))
    report.emit(capsys)

    if BUDGET >= DEFAULT_BUDGET and not truncated:
        assert speedup >= MIN_SPEEDUP
