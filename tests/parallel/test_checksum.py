"""Unit tests for the shared CRC32 + chunk helpers.

The checksum module is the single seam the three binary protocols
(corpus v2, NCF1 frames, NCD1 deltas) hash through; these tests pin the
seal/unseal and pack/unpack contracts — including the torn and lying
length prefixes the sync and transport corruption paths depend on — and
the bit-compatibility of the delegating protocol layers.
"""

from __future__ import annotations

import zlib

import pytest

from repro.parallel import checksum


def test_checksum_is_zlib_crc32():
    payload = b"necofuzz coverage plane"
    assert checksum.checksum(payload) == zlib.crc32(payload)
    assert checksum.verify(payload, zlib.crc32(payload))
    assert not checksum.verify(payload, zlib.crc32(payload) ^ 1)


def test_seal_unseal_round_trip():
    for payload in (b"", b"\x00", b"x" * 1000):
        assert checksum.unseal(checksum.seal(payload)) == payload


def test_unseal_rejects_corruption():
    sealed = bytearray(checksum.seal(b"payload bytes"))
    sealed[3] ^= 0x40
    assert checksum.unseal(bytes(sealed)) is None


def test_unseal_rejects_short_blob():
    assert checksum.unseal(b"ab") is None


def test_pack_unpack_chunks_round_trip():
    chunks = [b"", b"a", b"bb" * 500, b"\x00\xff"]
    assert checksum.unpack_chunks(checksum.pack_chunks(chunks)) == chunks
    assert checksum.unpack_chunks(b"") == []


def test_unpack_chunks_rejects_torn_prefix():
    raw = checksum.pack_chunks([b"abc"])
    with pytest.raises(ValueError, match="torn"):
        checksum.unpack_chunks(raw + b"\x01\x02")


def test_unpack_chunks_rejects_lying_prefix():
    raw = bytearray(checksum.pack_chunks([b"abc"]))
    raw[0] = 200  # claims 200 bytes; only 3 follow
    with pytest.raises(ValueError, match="exceeds"):
        checksum.unpack_chunks(bytes(raw))


def test_frames_and_wire_delegate_to_shared_checksum():
    # The protocols must stay bit-compatible: one definition, not three.
    from repro.parallel.transport import frames

    chunks = [b"one", b"two"]
    assert frames.encode_blobs(chunks) == checksum.pack_chunks(chunks)
    assert frames.decode_blobs(checksum.pack_chunks(chunks)) == chunks
    raw = frames.pack_ctrl({"op": "ping"})
    crc = frames.FRAME_HEADER.unpack_from(raw)[4]
    assert checksum.verify(raw[frames.FRAME_HEADER.size:], crc)
