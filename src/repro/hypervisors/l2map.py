"""Mapping from L2 guest instructions to architectural exit reasons.

The runtime phase of the execution harness "executes CPU instructions
that trigger VM exits" (paper §3.3, Table 1). This table is the shared
ground truth both vendors' dispatchers use to turn an executed L2
instruction into the exit the physical CPU would report.
"""

from __future__ import annotations

from repro.svm.exit_codes import SvmExitCode
from repro.vmx.exit_reasons import ExitReason

#: Intel: L2 mnemonic -> basic exit reason. Mnemonics missing here do
#: not exit at all (plain ALU work).
INTEL_L2_EXITS: dict[str, ExitReason] = {
    "cpuid": ExitReason.CPUID,
    "getsec": ExitReason.GETSEC,
    "hlt": ExitReason.HLT,
    "invd": ExitReason.INVD,
    "invlpg": ExitReason.INVLPG,
    "rdpmc": ExitReason.RDPMC,
    "rdtsc": ExitReason.RDTSC,
    "rdtscp": ExitReason.RDTSCP,
    "rdmsr": ExitReason.MSR_READ,
    "wrmsr": ExitReason.MSR_WRITE,
    "in": ExitReason.IO_INSTRUCTION,
    "out": ExitReason.IO_INSTRUCTION,
    "mov_cr": ExitReason.CR_ACCESS,
    "mov_dr": ExitReason.DR_ACCESS,
    "pause": ExitReason.PAUSE_INSTRUCTION,
    "monitor": ExitReason.MONITOR_INSTRUCTION,
    "mwait": ExitReason.MWAIT_INSTRUCTION,
    "wbinvd": ExitReason.WBINVD,
    "xsetbv": ExitReason.XSETBV,
    "rdrand": ExitReason.RDRAND,
    "rdseed": ExitReason.RDSEED,
    "invpcid": ExitReason.INVPCID,
    "sgdt": ExitReason.GDTR_IDTR_ACCESS,
    "sidt": ExitReason.GDTR_IDTR_ACCESS,
    "lgdt": ExitReason.GDTR_IDTR_ACCESS,
    "lidt": ExitReason.GDTR_IDTR_ACCESS,
    "sldt": ExitReason.LDTR_TR_ACCESS,
    "str": ExitReason.LDTR_TR_ACCESS,
    "ltr": ExitReason.LDTR_TR_ACCESS,
    "lldt": ExitReason.LDTR_TR_ACCESS,
    "encls": ExitReason.ENCLS,
    "xsaves": ExitReason.XSAVES,
    "xrstors": ExitReason.XRSTORS,
    "vmfunc": ExitReason.VMFUNC,
    "vmcall": ExitReason.VMCALL,
    "vmxon": ExitReason.VMXON,
    "vmxoff": ExitReason.VMXOFF,
    "vmclear": ExitReason.VMCLEAR,
    "vmptrld": ExitReason.VMPTRLD,
    "vmptrst": ExitReason.VMPTRST,
    "vmread": ExitReason.VMREAD,
    "vmwrite": ExitReason.VMWRITE,
    "vmlaunch": ExitReason.VMLAUNCH,
    "vmresume": ExitReason.VMRESUME,
    "invept": ExitReason.INVEPT,
    "invvpid": ExitReason.INVVPID,
    "memaccess": ExitReason.EPT_VIOLATION,
    "exception": ExitReason.EXCEPTION_NMI,
    "triple_fault": ExitReason.TRIPLE_FAULT,
    # Asynchronous events (the §6.3 future-work extension; injected only
    # when the harness opts in — the paper's configuration leaves the
    # corresponding reflect branches uncovered by design).
    "async_extint": ExitReason.EXTERNAL_INTERRUPT,
    "async_intr_window": ExitReason.INTERRUPT_WINDOW,
    "async_nmi_window": ExitReason.NMI_WINDOW,
    "async_preempt_timer": ExitReason.PREEMPTION_TIMER,
    "async_mtf": ExitReason.MONITOR_TRAP_FLAG,
    "async_apic_access": ExitReason.APIC_ACCESS,
    "async_apic_write": ExitReason.APIC_WRITE,
    "async_eoi": ExitReason.VIRTUALIZED_EOI,
    "async_tpr": ExitReason.TPR_BELOW_THRESHOLD,
    "async_pml_full": ExitReason.PML_FULL,
}

#: AMD: L2 mnemonic -> #VMEXIT code.
AMD_L2_EXITS: dict[str, SvmExitCode] = {
    "cpuid": SvmExitCode.CPUID,
    "hlt": SvmExitCode.HLT,
    "invd": SvmExitCode.INVD,
    "invlpg": SvmExitCode.INVLPG,
    "invlpga": SvmExitCode.INVLPGA,
    "rdpmc": SvmExitCode.RDPMC,
    "rdtsc": SvmExitCode.RDTSC,
    "rdtscp": SvmExitCode.RDTSCP,
    "rdmsr": SvmExitCode.MSR,
    "wrmsr": SvmExitCode.MSR,
    "in": SvmExitCode.IOIO,
    "out": SvmExitCode.IOIO,
    "mov_cr": SvmExitCode.CR0_WRITE,
    "mov_dr": SvmExitCode.DR0_WRITE,
    "pause": SvmExitCode.PAUSE,
    "monitor": SvmExitCode.MONITOR,
    "mwait": SvmExitCode.MWAIT,
    "wbinvd": SvmExitCode.WBINVD,
    "xsetbv": SvmExitCode.XSETBV,
    "sgdt": SvmExitCode.GDTR_READ,
    "sidt": SvmExitCode.IDTR_READ,
    "vmmcall": SvmExitCode.VMMCALL,
    "vmrun": SvmExitCode.VMRUN,
    "vmload": SvmExitCode.VMLOAD,
    "vmsave": SvmExitCode.VMSAVE,
    "stgi": SvmExitCode.STGI,
    "clgi": SvmExitCode.CLGI,
    "skinit": SvmExitCode.SKINIT,
    "memaccess": SvmExitCode.NPF,
    "exception": SvmExitCode.EXCP_BASE,
    "triple_fault": SvmExitCode.SHUTDOWN,
    # Asynchronous events (§6.3 extension, opt-in).
    "async_extint": SvmExitCode.INTR,
    "async_nmi": SvmExitCode.NMI,
    "async_vintr": SvmExitCode.VINTR,
    "async_smi": SvmExitCode.SMI,
    "async_init": SvmExitCode.INIT,
}


def svm_exception_code(vector: int) -> int:
    """#VMEXIT code for an intercepted exception vector (plain int: most
    EXCP codes have no enum member of their own)."""
    return int(SvmExitCode.EXCP_BASE) + (vector & 31)
