"""Tests for the comparison fuzzers and test suites."""

import pytest

from repro.arch.cpuid import Vendor
from repro.baselines import (
    IrisCampaign,
    KvmUnitTestsSuite,
    SelftestsSuite,
    SyzkallerCampaign,
    XtfSuite,
)
from repro.baselines.iris import CRASH_AFTER_ITERATIONS


class TestSyzkaller:
    def test_intel_coverage_substantial(self):
        result = SyzkallerCampaign(vendor=Vendor.INTEL, seed=1).run(60)
        assert 35 < result.coverage_percent < 75

    def test_amd_coverage_minimal(self):
        """No AMD harness: only generic ioctls reach nested code (§5.2:
        "Syzkaller lacks an AMD-specific harness")."""
        result = SyzkallerCampaign(vendor=Vendor.AMD, seed=1).run(60)
        assert result.coverage_percent < 25

    def test_intel_beats_amd_by_a_lot(self):
        intel = SyzkallerCampaign(vendor=Vendor.INTEL, seed=1).run(50)
        amd = SyzkallerCampaign(vendor=Vendor.AMD, seed=1).run(50)
        assert intel.coverage_percent > 2 * amd.coverage_percent

    def test_timeline_recorded(self):
        result = SyzkallerCampaign(vendor=Vendor.INTEL, seed=2).run(30)
        assert result.timeline.points
        assert result.timeline.final_coverage == pytest.approx(
            result.coverage_fraction, abs=1e-9)

    def test_deterministic(self):
        a = SyzkallerCampaign(vendor=Vendor.INTEL, seed=5).run(25)
        b = SyzkallerCampaign(vendor=Vendor.INTEL, seed=5).run(25)
        assert a.covered_lines == b.covered_lines


class TestIris:
    def test_intel_only(self):
        with pytest.raises(ValueError):
            IrisCampaign(vendor=Vendor.AMD)

    def test_crashes_after_a_few_minutes(self):
        campaign = IrisCampaign(seed=1)
        result = campaign.run(500)
        assert campaign.crashed
        assert result.engine_stats.iterations == CRASH_AFTER_ITERATIONS

    def test_saturates_quickly(self):
        """§5.2: IRIS reached its plateau almost immediately."""
        campaign = IrisCampaign(seed=1)
        result = campaign.run(CRASH_AFTER_ITERATIONS)
        early = result.timeline.points[1].coverage
        final = result.timeline.final_coverage
        assert final - early < 0.15

    def test_moderate_coverage(self):
        result = IrisCampaign(seed=1).run(CRASH_AFTER_ITERATIONS)
        assert 30 < result.coverage_percent < 70


class TestSelftests:
    def test_intel_run(self):
        result = SelftestsSuite(Vendor.INTEL).run()
        assert 40 < result.coverage_percent < 75

    def test_amd_run(self):
        result = SelftestsSuite(Vendor.AMD).run()
        assert 50 < result.coverage_percent < 85

    def test_deterministic(self):
        assert (SelftestsSuite(Vendor.INTEL).run().covered_lines
                == SelftestsSuite(Vendor.INTEL).run().covered_lines)

    def test_reaches_ioctl_only_code(self):
        """Selftests exercise KVM_{GET,SET}_NESTED_STATE — host-only code
        a guest-side fuzzer cannot reach (the Selftests−NecoFuzz rows)."""
        result = SelftestsSuite(Vendor.INTEL).run()
        import repro.hypervisors.kvm.nested_vmx as nv

        filename = nv.__file__
        covered_linenos = {num for f, num in result.covered_lines if f == filename}
        src = open(filename).read().splitlines()
        get_state_line = next(i for i, line in enumerate(src, 1)
                              if "def vmx_get_nested_state" in line)
        assert any(get_state_line <= num <= get_state_line + 12
                   for num in covered_linenos)

    def test_names_listed(self):
        names = SelftestsSuite(Vendor.INTEL).test_names()
        assert "state_test" in names
        assert len(names) >= 12


class TestKvmUnitTests:
    def test_intel_run(self):
        result = KvmUnitTestsSuite(Vendor.INTEL).run()
        assert 50 < result.coverage_percent < 85

    def test_amd_run(self):
        result = KvmUnitTestsSuite(Vendor.AMD).run()
        assert 45 < result.coverage_percent < 85

    def test_more_cases_than_selftests(self):
        assert (len(KvmUnitTestsSuite(Vendor.INTEL).test_names())
                > len(SelftestsSuite(Vendor.INTEL).test_names()))


class TestXtf:
    def test_intel_thin_coverage(self):
        result = XtfSuite(Vendor.INTEL).run()
        assert result.coverage_percent < 35

    def test_amd_thinner_coverage(self):
        result = XtfSuite(Vendor.AMD).run()
        assert result.coverage_percent < 25

    def test_runs_against_xen(self):
        result = XtfSuite(Vendor.INTEL).run()
        import repro.hypervisors.xen.nested_vmx as xnv

        files = {f for f, _ in result.instrumented_lines}
        assert xnv.__file__ in files
