"""Tests for coverage set algebra and table rendering."""

from repro.coverage.report import CoverageReport, CoverageTable

INSTRUMENTED = {("f.py", i) for i in range(1, 101)}


def lines(*nums):
    return {("f.py", n) for n in nums}


class TestCoverageReport:
    def test_percent(self):
        report = CoverageReport("tool", lines(*range(1, 51)), INSTRUMENTED)
        assert report.percent == 50.0
        assert report.covered_lines == 50

    def test_stray_lines_clipped(self):
        report = CoverageReport("tool", {("other.py", 1)}, INSTRUMENTED)
        assert report.covered_lines == 0

    def test_empty_instrumented(self):
        assert CoverageReport("tool", set(), set()).percent == 0.0

    def test_intersect(self):
        a = CoverageReport("A", lines(1, 2, 3), INSTRUMENTED)
        b = CoverageReport("B", lines(2, 3, 4), INSTRUMENTED)
        both = a.intersect(b)
        assert both.covered == lines(2, 3)
        assert both.name == "A∩B"

    def test_minus(self):
        a = CoverageReport("A", lines(1, 2, 3), INSTRUMENTED)
        b = CoverageReport("B", lines(2, 3, 4), INSTRUMENTED)
        assert a.minus(b).covered == lines(1)
        assert b.minus(a).covered == lines(4)

    def test_union(self):
        a = CoverageReport("A", lines(1), INSTRUMENTED)
        b = CoverageReport("B", lines(2), INSTRUMENTED)
        assert a.union(b).covered == lines(1, 2)

    def test_row_format(self):
        row = CoverageReport("NecoFuzz", lines(*range(1, 86)), INSTRUMENTED).row()
        assert "NecoFuzz" in row and "85.0%" in row


class TestCoverageTable:
    def test_table_2_shape(self):
        table = CoverageTable("KVM coverage", INSTRUMENTED)
        table.add("NecoFuzz", lines(*range(1, 86)))
        table.add("Syzkaller", lines(*range(1, 62)))
        table.add_algebra("NecoFuzz", "Syzkaller")
        rendered = table.render()
        assert "Total" in rendered
        assert "NecoFuzz-Syzkaller" in rendered
        assert "NecoFuzz∩Syzkaller" in rendered

    def test_algebra_values(self):
        table = CoverageTable("t", INSTRUMENTED)
        table.add("A", lines(1, 2, 3))
        table.add("B", lines(3, 4))
        table.add_algebra("A", "B")
        assert table.reports["A-B"].covered_lines == 2
        assert table.reports["B-A"].covered_lines == 1
        assert table.reports["A∩B"].covered_lines == 1
