"""Deterministic fault injection for the campaign runtime (chaos harness).

A :class:`FaultPlan` is pure data: a list of :class:`FaultSpec` entries
saying *what* to break, *where* (worker index, hook name) and *when*
(case counter, export round). The plan is installed process-globally and
consulted from a handful of fixed injection points:

* the worker loop (``CampaignWorker.run_chunk``) asks for ``kill_worker``
  and ``delay_case`` faults before each case;
* :meth:`repro.parallel.sync.SyncDirectory.export` asks for
  ``corrupt_sync`` faults after publishing its queue;
* named hooks (``faults.hook("kvm.run")`` etc.) inside the agent, the
  executor, and the oracle raise :class:`InjectedFault` for
  ``raise_in_hook`` specs.

Every spec fires **once** (its index is recorded in ``consumed``), so a
restarted worker replaying the same cases does not die forever on the
same fault — exactly the behaviour of a transient host failure. The
supervisor additionally :meth:`disarms <FaultPlan.disarm>` specs whose
firing it could only observe as a child-process death.

Nothing in this module imports the rest of ``repro``; the plan travels
by pickle into process-mode workers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

#: Exit code a process-mode worker dies with when a ``kill_worker``
#: fault fires (distinct from crash exit codes so the supervisor —
#: and the chaos tests — can tell injected deaths from real ones).
KILL_EXIT_CODE = 86

#: The fault kinds a plan may contain.
KINDS = frozenset({"kill_worker", "delay_case", "corrupt_sync",
                   "raise_in_hook",
                   # Network faults (federation transport, DESIGN.md §14):
                   "drop_frame", "delay_frame", "corrupt_frame",
                   "partition", "kill_coordinator",
                   # Coverage plane (DESIGN.md §15): flip a byte inside
                   # an encoded NCD1 delta *before* framing, so the
                   # frame decodes but the delta's own CRC fails and
                   # the watermark resync path is exercised.
                   "corrupt_delta"})

#: The subset injected at a node's outbound-frame gate.
NET_KINDS = frozenset({"drop_frame", "delay_frame", "corrupt_frame",
                       "partition"})

#: Sync-corruption shapes (what a crash mid-write can leave behind).
CORRUPTION_MODES = frozenset({"truncate", "garbage", "tmp_orphan"})


class InjectedFault(RuntimeError):
    """Raised inside a named hook by an active fault plan."""

    def __init__(self, hook: str) -> None:
        super().__init__(f"injected fault in hook {hook!r}")
        self.hook = hook


class WorkerKilled(BaseException):
    """Simulated abrupt worker death.

    Derives from :class:`BaseException` so the engine's case-boundary
    crash isolation cannot absorb it: a killed worker must actually die
    (``os._exit`` in process mode, an escaping raise in inline mode).
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault."""

    kind: str
    #: Target worker index; ``None`` matches any worker.
    worker: int | None = None
    #: Fire when the target worker is about to run this (1-based) case.
    at_case: int | None = None
    #: Hook name for ``raise_in_hook`` (e.g. ``"kvm.run"``).
    hook: str | None = None
    #: Sleep length for ``delay_case`` (pick > the case deadline).
    seconds: float = 0.0
    #: Corruption shape for ``corrupt_sync``.
    corrupt: str = "truncate"
    #: Export round (1-based) for ``corrupt_sync``; ``None`` = first.
    at_export: int | None = None
    #: Outbound transport frame (1-based, per node, heartbeats excluded)
    #: for the network kinds; ``None`` = the node's next frame.
    at_frame: int | None = None
    #: Coordinator message counter (1-based) for ``kill_coordinator``;
    #: ``None`` = the next message the coordinator processes.
    at_event: int | None = None
    #: Federation round (1-based) for ``corrupt_delta``; ``None`` = the
    #: node's next coverage-delta push.
    at_round: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "raise_in_hook" and not self.hook:
            raise ValueError("raise_in_hook needs a hook name")
        if self.corrupt not in CORRUPTION_MODES:
            raise ValueError(f"unknown corruption mode {self.corrupt!r}")
        if self.kind == "partition" and self.seconds <= 0:
            raise ValueError("partition needs seconds > 0 (how long the "
                             "link stays down)")


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of faults.

    The ``seed`` does not drive any randomness here (the plan is
    explicit); it salts reproducer metadata so two chaos runs with the
    same spec list but different seeds are distinguishable in artifacts.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    #: Indices into ``specs`` that have fired (or been disarmed).
    consumed: set[int] = field(default_factory=set)
    #: Audit trail of fired faults: (kind, worker, detail).
    fired: list[tuple[str, int | None, str]] = field(default_factory=list)

    # --- matching ------------------------------------------------------

    def _take(self, match) -> FaultSpec | None:
        for index, spec in enumerate(self.specs):
            if index in self.consumed or not match(spec):
                continue
            self.consumed.add(index)
            return spec
        return None

    def take_case_fault(self, worker: int, case: int) -> FaultSpec | None:
        """The kill/delay fault due when *worker* is about to run *case*."""
        return self._take(lambda s: (
            s.kind in ("kill_worker", "delay_case")
            and (s.worker is None or s.worker == worker)
            and s.at_case == case))

    def take_sync_fault(self, worker: int, export_round: int) -> FaultSpec | None:
        """The sync-corruption fault due at *worker*'s Nth export."""
        return self._take(lambda s: (
            s.kind == "corrupt_sync"
            and (s.worker is None or s.worker == worker)
            and (s.at_export is None or s.at_export == export_round)))

    def take_net_fault(self, worker: int, frame_no: int) -> FaultSpec | None:
        """The network fault due at *worker*'s Nth outbound frame.

        Heartbeats are excluded from the frame numbering (they are
        timing-driven), so ``at_frame`` counts protocol frames only and
        a plan stays deterministic across machines of any speed.
        """
        return self._take(lambda s: (
            s.kind in NET_KINDS
            and (s.worker is None or s.worker == worker)
            and (s.at_frame is None or s.at_frame == frame_no)))

    def take_delta_fault(self, worker: int | None,
                         round_no: int) -> FaultSpec | None:
        """The ``corrupt_delta`` fault due at *worker*'s Nth delta push."""
        return self._take(lambda s: (
            s.kind == "corrupt_delta"
            and (s.worker is None or s.worker == worker)
            and (s.at_round is None or s.at_round == round_no)))

    def take_coordinator_fault(self, event_no: int) -> FaultSpec | None:
        """The ``kill_coordinator`` fault due at the Nth handled message."""
        return self._take(lambda s: (
            s.kind == "kill_coordinator"
            and (s.at_event is None or s.at_event == event_no)))

    def take_hook_fault(self, name: str, worker: int | None) -> FaultSpec | None:
        """The injected exception due inside hook *name*, if any."""
        return self._take(lambda s: (
            s.kind == "raise_in_hook" and s.hook == name
            and (s.worker is None or worker is None or s.worker == worker)))

    def disarm(self, worker: int, kinds: tuple[str, ...]) -> bool:
        """Consume the first live spec matching *worker* and *kinds*.

        The supervisor calls this after a child-process death it
        attributes to an injected fault: the child's in-memory
        ``consumed`` set died with it, so the parent-side plan must be
        updated before the replacement worker replays the same cases.
        """
        spec = self._take(lambda s: (
            s.kind in kinds and (s.worker is None or s.worker == worker)))
        if spec is not None:
            self.record(spec.kind, worker, "disarmed by supervisor")
        return spec is not None

    def record(self, kind: str, worker: int | None, detail: str) -> None:
        """Append one firing to the audit trail."""
        self.fired.append((kind, worker, detail))

    @property
    def exhausted(self) -> bool:
        """True once every spec has fired or been disarmed."""
        return len(self.consumed) >= len(self.specs)


# --- process-global installation ------------------------------------------

_ACTIVE: FaultPlan | None = None
_CURRENT_WORKER: int | None = None


def install(plan: FaultPlan | None) -> None:
    """Make *plan* the active plan for this process (None uninstalls)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    """Deactivate fault injection in this process."""
    install(None)


def active() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE


def set_current_worker(index: int | None) -> None:
    """Tag subsequent hook firings with the worker now executing."""
    global _CURRENT_WORKER
    _CURRENT_WORKER = index


def current_worker() -> int | None:
    """The worker index the running code is executing on behalf of."""
    return _CURRENT_WORKER


@contextmanager
def injected(plan: FaultPlan):
    """Scoped installation for tests: install, yield, uninstall."""
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def hook(name: str) -> None:
    """Raise :class:`InjectedFault` if the active plan targets *name*.

    Costs one global read and a None check when no plan is installed,
    so the production hot path stays unaffected.
    """
    plan = _ACTIVE
    if plan is None:
        return
    spec = plan.take_hook_fault(name, _CURRENT_WORKER)
    if spec is not None:
        plan.record("raise_in_hook", _CURRENT_WORKER, name)
        raise InjectedFault(name)
