"""Work-stealing shard scheduler, warm pools, adaptive sync (DESIGN.md §13).

The static split in :meth:`ParallelCampaign._specs` fixes every worker's
share up front, so the slowest (or most-restarted) shard defines the
campaign's critical path. This module replaces that with a **lease
queue**: the campaign budget is carved into chunks ("leases") that idle
workers pull on demand, adaptively sized from each worker's measured
cases/sec, and reclaimed for re-issue when their owner dies or stalls.

Three pieces live here, all shared by inline and process mode:

* :class:`LeaseBoard` — the in-memory queue driving inline stealing
  campaigns (and the accounting core the tests pin: every lease id
  completes exactly once, completed sizes sum to the budget).
* :class:`FileLeaseBoard` — the same contract over one flock-guarded
  JSON state file, for process-mode workers that share nothing but the
  sync directory. Claims, completions, and reclaims are read-modify-
  write transactions under an exclusive lock.
* :class:`AdaptiveSync` — the sync-interval controller: back off
  geometrically while the subsumption filter absorbs >90% of imports
  (syncing is pure overhead then), snap back to the base interval the
  moment an import lights a new virgin bit.

Determinism: the board appends one :class:`LeaseRecord` per *completed*
lease. Inline stealing with a fixed ``lease_size`` is fully
deterministic; with adaptive sizing the lease log is the one
nondeterministic input, and replaying a recorded log
(``ParallelCampaign(lease_log=...)``) reproduces the campaign
fingerprint bit for bit (pinned by
``tests/parallel/test_stealing_campaign.py``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.fuzzer.crashes import atomic_write_bytes

try:  # POSIX; process mode already depends on fork-style semantics.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

#: Adaptive lease-size bounds (cases per lease) and the wall-clock a
#: lease should roughly take: size ~= measured cases/sec * target.
LEASE_MIN = 64
LEASE_MAX = 256
LEASE_TARGET_SECONDS = 0.5

SCHEDULES = ("static", "stealing")


class LeaseBoardError(RuntimeError):
    """The shared lease board is unreadable or corrupt.

    Raised instead of a raw ``JSONDecodeError`` escaping from inside a
    worker: the message names the board file and the failure shape, and
    the supervisor treats the resulting worker death as a restartable
    failure (the board file is written atomically, so corruption means
    external damage, not a mid-write race — a restart surfaces the same
    clear error instead of an opaque traceback).
    """


@dataclass(frozen=True)
class Lease:
    """One claimable chunk of the campaign budget."""

    id: int
    size: int


@dataclass
class LeaseRecord:
    """One completed lease, as the lease log records it."""

    id: int
    worker: int
    size: int
    #: Inline sync-round number the lease completed in (0 in process
    #: mode, where rounds are per-worker and unordered).
    round: int = 0
    #: Claimed past the claimant's static fair share — work that a
    #: static split would have assigned to somebody else.
    steal: bool = False
    #: Previously claimed by a worker that died; re-issued.
    reissued: bool = False

    def to_dict(self) -> dict:
        return {"id": self.id, "worker": self.worker, "size": self.size,
                "round": self.round, "steal": self.steal,
                "reissued": self.reissued}

    @classmethod
    def from_dict(cls, data: dict) -> "LeaseRecord":
        return cls(id=int(data["id"]), worker=int(data["worker"]),
                   size=int(data["size"]), round=int(data.get("round", 0)),
                   steal=bool(data.get("steal", False)),
                   reissued=bool(data.get("reissued", False)))


def _cut(remaining: int, fixed: int, lo: int, hi: int, rate: float) -> int:
    """Next lease size: fixed, or sized from the claimant's rate.

    A fixed size is honoured exactly (it is the determinism knob — only
    the remainder lease may be shorter). Adaptive sizing targets
    ``rate * LEASE_TARGET_SECONDS`` cases so a fast worker amortizes
    claim overhead over bigger leases while a slow one never holds more
    than ~half a second of work hostage — clamped into [lo, hi], and
    never more than what is left.
    """
    if fixed > 0:
        return max(1, min(remaining, fixed))
    size = int(round(rate * LEASE_TARGET_SECONDS)) if rate > 0 else lo
    return max(1, min(remaining, max(lo, min(hi, size))))


def _fair_share(total: int, workers: int) -> int:
    return -(-total // max(1, workers))  # ceil


@dataclass
class LeaseBoard:
    """In-memory lease queue for inline stealing campaigns.

    Invariants (the accounting contract the property tests pin):

    * ``remaining + issued + completed`` iteration counts always sum to
      ``total``;
    * a lease id is completed at most once, and :meth:`drained` is true
      exactly when every carved lease has completed;
    * a reclaimed lease keeps its id and size and is served to the next
      claimant before any fresh budget is carved.
    """

    total: int
    workers: int = 1
    lease_size: int = 0  # fixed cases per lease; 0 = adaptive
    lease_min: int = LEASE_MIN
    lease_max: int = LEASE_MAX
    remaining: int = field(init=False)
    next_id: int = field(default=0, init=False)
    #: id -> (worker, size) for claimed-but-unfinished leases.
    issued: dict = field(default_factory=dict, init=False)
    #: id -> size for finished leases.
    completed: dict = field(default_factory=dict, init=False)
    #: Reclaimed leases awaiting re-issue, FIFO.
    reissue: list = field(default_factory=list, init=False)
    #: worker -> iterations claimed so far (steal classification).
    claimed_by: dict = field(default_factory=dict, init=False)
    log: list = field(default_factory=list, init=False)
    steals: int = 0
    reclaims: int = 0

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("total must be >= 0")
        self.remaining = self.total

    # --- claim / complete / reclaim ------------------------------------

    def claim(self, worker: int, *, rate: float = 0.0) -> Lease | None:
        """The next lease for *worker*, or ``None`` when nothing is
        claimable (the board may still have issued leases in flight)."""
        reissued = False
        if self.reissue:
            lease_id, size = self.reissue.pop(0)
            reissued = True
        elif self.remaining > 0:
            size = _cut(self.remaining, self.lease_size, self.lease_min,
                        self.lease_max, rate)
            lease_id = self.next_id
            self.next_id += 1
            self.remaining -= size
        else:
            return None
        prior = self.claimed_by.get(worker, 0)
        steal = reissued or prior >= _fair_share(self.total, self.workers)
        self.claimed_by[worker] = prior + size
        self.issued[lease_id] = (worker, size, steal, reissued)
        with telemetry.shard_scope(worker):
            telemetry.counter("sched.leases_issued")
            if steal:
                telemetry.counter("sched.steals")
        if steal:
            self.steals += 1
        return Lease(lease_id, size)

    def complete(self, lease_id: int, worker: int, *, round_no: int = 0) -> None:
        """Retire one issued lease and append it to the lease log."""
        issued_to, size, steal, reissued = self.issued.pop(lease_id)
        assert lease_id not in self.completed, \
            f"lease {lease_id} completed twice"
        self.completed[lease_id] = size
        self.log.append(LeaseRecord(id=lease_id, worker=worker, size=size,
                                    round=round_no, steal=steal,
                                    reissued=reissued))

    def reclaim_lease(self, lease_id: int) -> None:
        """Return one issued lease to the queue (its owner died)."""
        worker, size, _steal, _re = self.issued.pop(lease_id)
        self.claimed_by[worker] = self.claimed_by.get(worker, 0) - size
        self.reissue.append((lease_id, size))
        self.reclaims += 1
        telemetry.counter("sched.reclaims")

    def claim_replay(self, record: LeaseRecord, worker: int) -> Lease:
        """Claim exactly *record* (lease-log replay mode)."""
        if record.size > self.remaining:
            raise ValueError(
                f"lease log does not fit the budget: lease {record.id} "
                f"needs {record.size}, {self.remaining} remaining")
        self.remaining -= record.size
        prior = self.claimed_by.get(worker, 0)
        self.claimed_by[worker] = prior + record.size
        self.issued[record.id] = (worker, record.size, record.steal,
                                  record.reissued)
        if record.steal:
            self.steals += 1
        with telemetry.shard_scope(worker):
            telemetry.counter("sched.leases_issued")
            if record.steal:
                telemetry.counter("sched.steals")
        return Lease(record.id, record.size)

    # --- progress -------------------------------------------------------

    def drained(self) -> bool:
        """Every carved lease has completed and no budget is left."""
        return (self.remaining == 0 and not self.issued
                and not self.reissue)

    def completed_total(self) -> int:
        return sum(self.completed.values())

    def summary(self) -> dict:
        return {"log": list(self.log), "steals": self.steals,
                "reclaims": self.reclaims,
                "completed": self.completed_total()}


# --- process-mode board ----------------------------------------------------


@contextmanager
def _locked(lock_path: Path):
    """Exclusive advisory lock around one board transaction.

    ``flock`` where available (held for the life of the open fd, so a
    crashed holder releases it automatically); a create-exclusive spin
    lock elsewhere.
    """
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is not None:
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        return
    sidecar = lock_path.with_suffix(".claim")  # pragma: no cover
    while True:  # pragma: no cover
        try:
            fd = sidecar.open("x")
        except FileExistsError:
            time.sleep(0.005)
            continue
        try:
            yield
        finally:
            fd.close()
            sidecar.unlink(missing_ok=True)
        return


class FileLeaseBoard:
    """The lease queue as one flock-guarded JSON file (process mode).

    Workers in separate processes share nothing but the sync root, so
    every board operation is a read-modify-write transaction on
    ``<root>/leases/board.json`` under an exclusive lock on
    ``<root>/leases/board.lock``. The state file is written atomically;
    a worker crashing mid-transaction leaves the previous state intact
    and its issued leases reclaimable by the supervisor.
    """

    DIR = "leases"
    STATE = "board.json"
    LOCK = "board.lock"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.dir = self.root / self.DIR
        self.state_path = self.dir / self.STATE
        self.lock_path = self.dir / self.LOCK

    # --- state plumbing -------------------------------------------------

    @classmethod
    def create(cls, root: Path, total: int, workers: int, *,
               lease_size: int = 0, lease_min: int = LEASE_MIN,
               lease_max: int = LEASE_MAX) -> "FileLeaseBoard":
        """Write a fresh board (clobbering any previous campaign's)."""
        board = cls(root)
        board.dir.mkdir(parents=True, exist_ok=True)
        board._write({
            "total": total, "workers": workers, "lease_size": lease_size,
            "lease_min": lease_min, "lease_max": lease_max,
            "next_id": 0, "remaining": total,
            "issued": {}, "completed": {}, "reissue": [],
            "claimed_by": {}, "steals": 0, "reclaims": 0, "log": [],
        })
        return board

    def exists(self) -> bool:
        return self.state_path.exists()

    def _read(self) -> dict:
        try:
            raw = self.state_path.read_text()
        except OSError as exc:
            raise LeaseBoardError(
                f"lease board {self.state_path} is unreadable: {exc}"
            ) from exc
        try:
            state = json.loads(raw)
        except ValueError as exc:
            raise LeaseBoardError(
                f"lease board {self.state_path} is corrupt "
                f"({exc}); a fresh campaign must recreate it"
            ) from exc
        if not isinstance(state, dict) or "remaining" not in state:
            raise LeaseBoardError(
                f"lease board {self.state_path} has unexpected shape "
                f"({type(state).__name__}); a fresh campaign must "
                f"recreate it")
        return state

    def _write(self, state: dict) -> None:
        payload = json.dumps(state, sort_keys=True).encode()
        atomic_write_bytes(self.state_path, payload)

    # --- transactions ---------------------------------------------------

    @staticmethod
    def _carve(state: dict, worker: int, rate: float
               ) -> tuple[int, int, bool] | None:
        """Cut (or re-issue) the next lease for *worker* inside *state*.

        Mutates *state*; the caller persists it. Returns
        ``(lease_id, size, steal)`` or ``None`` when nothing is
        claimable.
        """
        reissued = False
        if state["reissue"]:
            lease_id, size = state["reissue"].pop(0)
            reissued = True
        elif state["remaining"] > 0:
            size = _cut(state["remaining"], state["lease_size"],
                        state["lease_min"], state["lease_max"], rate)
            lease_id = state["next_id"]
            state["next_id"] += 1
            state["remaining"] -= size
        else:
            return None
        prior = state["claimed_by"].get(str(worker), 0)
        steal = (reissued
                 or prior >= _fair_share(state["total"],
                                         state["workers"]))
        state["claimed_by"][str(worker)] = prior + size
        state["issued"][str(lease_id)] = [worker, size, steal, reissued]
        if steal:
            state["steals"] += 1
        return lease_id, size, steal

    def claim(self, worker: int, *, rate: float = 0.0) -> Lease | None:
        with _locked(self.lock_path):
            state = self._read()
            carved = self._carve(state, worker, rate)
            if carved is None:
                return None
            lease_id, size, steal = carved
            self._write(state)
        with telemetry.shard_scope(worker):
            telemetry.counter("sched.leases_issued")
            if steal:
                telemetry.counter("sched.steals")
        return Lease(lease_id, size)

    def claim_once(self, worker: int, key: str, *,
                   rate: float = 0.0) -> Lease | None:
        """Idempotent claim, persisted under *key* (federation API).

        The federation coordinator keys claims by ``"round:node"``: the
        grant (or the fact that nothing was claimable) is recorded in
        the same atomic board transaction that carves the lease, so a
        node resending a claim after a lost reply — or a coordinator
        restarting after a crash between carve and reply — returns the
        recorded outcome instead of leaking a second lease out of the
        budget.
        """
        with _locked(self.lock_path):
            state = self._read()
            grants = state.setdefault("grants", {})
            if key in grants:
                recorded = grants[key]
                return (Lease(recorded[0], recorded[1])
                        if recorded is not None else None)
            carved = self._carve(state, worker, rate)
            if carved is None:
                grants[key] = None
                self._write(state)
                return None
            lease_id, size, steal = carved
            grants[key] = [lease_id, size]
            self._write(state)
        with telemetry.shard_scope(worker):
            telemetry.counter("sched.leases_issued")
            if steal:
                telemetry.counter("sched.steals")
        return Lease(lease_id, size)

    def recorded_grant(self, key: str) -> tuple[bool, Lease | None]:
        """Look up a :meth:`claim_once` outcome without carving.

        Returns ``(recorded, lease)``: the federation coordinator uses
        it to answer resent claims for already-released rounds without
        taking the write path.
        """
        state = self._read()
        grants = state.get("grants", {})
        if key not in grants:
            return False, None
        recorded = grants[key]
        return True, (Lease(recorded[0], recorded[1])
                      if recorded is not None else None)

    def complete(self, lease_id: int, worker: int, *,
                 round_no: int = 0) -> None:
        with _locked(self.lock_path):
            state = self._read()
            entry = state["issued"].pop(str(lease_id), None)
            if entry is None or str(lease_id) in state["completed"]:
                # Already retired (a reclaim raced our completion);
                # never double-count.
                return
            _owner, size, steal, reissued = entry
            state["completed"][str(lease_id)] = size
            state["log"].append(LeaseRecord(
                id=lease_id, worker=worker, size=size, round=round_no,
                steal=bool(steal), reissued=bool(reissued)).to_dict())
            self._write(state)

    def reclaim(self, worker: int) -> int:
        """Re-queue every unfinished lease *worker* holds; returns how
        many were reclaimed. Only safe once the owner is known dead."""
        with _locked(self.lock_path):
            state = self._read()
            mine = [(int(lease_id), entry)
                    for lease_id, entry in state["issued"].items()
                    if entry[0] == worker]
            for lease_id, entry in mine:
                del state["issued"][str(lease_id)]
                size = entry[1]
                state["claimed_by"][str(worker)] = (
                    state["claimed_by"].get(str(worker), 0) - size)
                state["reissue"].append([lease_id, size])
                state["reclaims"] += 1
            if mine:
                self._write(state)
        telemetry.counter("sched.reclaims", len(mine))
        return len(mine)

    def finished(self) -> bool:
        """No budget left, nothing issued, nothing awaiting re-issue.

        A corrupt board raises :class:`LeaseBoardError` (it used to
        return ``False``, which left idle process workers spinning on a
        board that could never drain — a silent hang; crashing is
        restartable, spinning is not).
        """
        state = self._read()
        return (state["remaining"] == 0 and not state["issued"]
                and not state["reissue"])

    def summary(self) -> dict:
        state = self._read()
        return {
            "log": [LeaseRecord.from_dict(raw) for raw in state["log"]],
            "steals": state["steals"],
            "reclaims": state["reclaims"],
            "completed": sum(state["completed"].values()),
        }


# --- adaptive sync ---------------------------------------------------------


@dataclass
class AdaptiveSync:
    """Geometric back-off controller for the corpus-sync interval.

    The worker consults :attr:`interval` (in cases) before scanning
    partners and reports back what each scan round yielded:

    * a round where imports lit **new virgin bits**, or where fewer
      than ``absorb_threshold`` of the consumed entries were absorbed
      by the subsumption filter, snaps the interval back to ``base`` —
      partners are finding things we do not have, sync eagerly;
    * any other round (everything absorbed, or nothing to import at
      all) doubles the interval, capped at ``base * max_factor`` —
      scanning is pure overhead while the filter eats everything.
    """

    base: int
    growth: int = 2
    max_factor: int = 8
    absorb_threshold: float = 0.9
    interval: int = 0

    def __post_init__(self) -> None:
        if self.base < 1:
            raise ValueError("base must be >= 1")
        if self.growth < 2:
            raise ValueError("growth must be >= 2")
        if self.interval <= 0:
            self.interval = self.base

    @property
    def cap(self) -> int:
        return self.base * self.max_factor

    def record_round(self, *, executed: int, subsumed: int,
                     new_bits: bool) -> int:
        """Feed one scan round's outcome; returns the next interval."""
        consumed = executed + subsumed
        productive = new_bits or (
            consumed > 0 and subsumed < self.absorb_threshold * consumed)
        if productive:
            self.interval = self.base
        else:
            self.interval = min(self.interval * self.growth, self.cap)
        return self.interval


# --- warm worker pool ------------------------------------------------------


class PoolMismatch(ValueError):
    """The pooled workers were built for a different campaign shape."""


class WorkerPool:
    """Warm inline workers reused across ``ParallelCampaign.run()`` calls.

    Worker construction is the expensive part of starting a campaign
    (module instrumentation, agent + hypervisor build, bitmap
    allocation). A pool keeps the finished workers — engines, corpora,
    virgin maps and all — so the next ``run()`` on a campaign carrying
    ``pool=`` continues them instead of rebuilding: subsequent runs are
    *continuations* of the same logical campaign (cumulative stats,
    like a corpus resume), which is exactly what long-lived fuzzing
    services want between budget grants.

    The pool is inline-only: process-mode workers already live for the
    whole campaign in their own processes (that is their warm pool),
    and their state dies with them by design.
    """

    def __init__(self) -> None:
        self.workers: dict[int, object] = {}
        self.key: tuple | None = None
        self.runs: int = 0
        self.reused: int = 0

    def compatible(self, key: tuple) -> bool:
        return self.key is None or self.key == key

    def acquire(self, key: tuple, index: int):
        """The warm worker for shard *index*, or ``None`` (cold)."""
        if not self.compatible(key):
            raise PoolMismatch(
                f"pool was built for campaign shape {self.key}, "
                f"requested {key}")
        worker = self.workers.get(index)
        if worker is not None:
            self.reused += 1
            with telemetry.shard_scope(index):
                telemetry.counter("pool.worker_reuse")
        return worker

    def park(self, key: tuple, workers: list) -> None:
        """Keep *workers* warm for the next run."""
        self.key = key
        self.runs += 1
        for worker in workers:
            self.workers[worker.spec.index] = worker
