"""x86 control/status register bit definitions and validity rules.

These are the architectural registers whose values appear in VMCS/VMCB
guest- and host-state areas. The bit layouts follow the Intel SDM Vol. 3
and the AMD APM Vol. 2; the validity helpers encode the architectural
constraints that both the physical CPU (``repro.cpu``) and the VM state
validator (``repro.validator``) enforce.
"""

from __future__ import annotations

from repro.arch.bits import bit, test_bit


class Cr0:
    """CR0 control register bits (SDM Vol. 3, 2.5)."""

    PE = bit(0)   # Protection Enable
    MP = bit(1)   # Monitor Coprocessor
    EM = bit(2)   # Emulation
    TS = bit(3)   # Task Switched
    ET = bit(4)   # Extension Type (fixed to 1 on modern CPUs)
    NE = bit(5)   # Numeric Error
    WP = bit(16)  # Write Protect
    AM = bit(18)  # Alignment Mask
    NW = bit(29)  # Not Write-through
    CD = bit(30)  # Cache Disable
    PG = bit(31)  # Paging

    #: Bits that are architecturally reserved (must be zero) in CR0.
    RESERVED = ~(PE | MP | EM | TS | ET | NE | WP | AM | NW | CD | PG) & ((1 << 64) - 1)


class Cr4:
    """CR4 control register bits (SDM Vol. 3, 2.5)."""

    VME = bit(0)
    PVI = bit(1)
    TSD = bit(2)
    DE = bit(3)
    PSE = bit(4)
    PAE = bit(5)          # Physical Address Extension
    MCE = bit(6)
    PGE = bit(7)
    PCE = bit(8)
    OSFXSR = bit(9)
    OSXMMEXCPT = bit(10)
    UMIP = bit(11)
    LA57 = bit(12)
    VMXE = bit(13)        # VMX Enable
    SMXE = bit(14)
    FSGSBASE = bit(16)
    PCIDE = bit(17)
    OSXSAVE = bit(18)
    SMEP = bit(20)
    SMAP = bit(21)
    PKE = bit(22)
    CET = bit(23)
    PKS = bit(24)

    RESERVED = ~(
        VME | PVI | TSD | DE | PSE | PAE | MCE | PGE | PCE | OSFXSR
        | OSXMMEXCPT | UMIP | LA57 | VMXE | SMXE | FSGSBASE | PCIDE
        | OSXSAVE | SMEP | SMAP | PKE | CET | PKS
    ) & ((1 << 64) - 1)


class Efer:
    """IA32_EFER / EFER MSR bits (SDM Vol. 4 / APM Vol. 2)."""

    SCE = bit(0)    # Syscall Enable
    LME = bit(8)    # Long Mode Enable
    LMA = bit(10)   # Long Mode Active
    NXE = bit(11)   # No-Execute Enable
    SVME = bit(12)  # Secure Virtual Machine Enable (AMD)
    LMSLE = bit(13)
    FFXSR = bit(14)
    TCE = bit(15)

    RESERVED = ~(SCE | LME | LMA | NXE | SVME | LMSLE | FFXSR | TCE) & ((1 << 64) - 1)


class Rflags:
    """RFLAGS bits (SDM Vol. 1, 3.4.3)."""

    CF = bit(0)
    FIXED_1 = bit(1)  # bit 1 is always 1
    PF = bit(2)
    AF = bit(4)
    ZF = bit(6)
    SF = bit(7)
    TF = bit(8)
    IF = bit(9)
    DF = bit(10)
    OF = bit(11)
    IOPL = bit(12) | bit(13)
    NT = bit(14)
    RF = bit(16)
    VM = bit(17)  # Virtual-8086 mode
    AC = bit(18)
    VIF = bit(19)
    VIP = bit(20)
    ID = bit(21)

    #: Reserved-zero bits in the low 32 bits (3, 5, 15, 22..31).
    RESERVED = (bit(3) | bit(5) | bit(15) | (((1 << 10) - 1) << 22)) | (
        ((1 << 32) - 1) << 32
    )


class Dr6:
    """DR6 debug status register."""

    #: Bits 4..11 and 16..31 read as 1; bit 12 must be 0.
    FIXED_1 = (((1 << 8) - 1) << 4) | (((1 << 16) - 1) << 16) & ~bit(16)
    RTM = bit(16)


class Dr7:
    """DR7 debug control register."""

    #: Bit 10 reads as 1.
    FIXED_1 = bit(10)
    GD = bit(13)
    #: Upper 32 bits must be zero when loaded by VM entry.
    HIGH_RESERVED = ((1 << 32) - 1) << 32


def cr0_valid(value: int, *, unrestricted_guest: bool = False) -> bool:
    """Check architectural CR0 validity for a guest context.

    Without the *unrestricted guest* VMX feature, the guest must run with
    ``CR0.PE`` and ``CR0.PG`` both set. Independently, ``PG=1`` requires
    ``PE=1``, and the cache-control combination ``NW=1, CD=0`` is invalid.
    """
    if value & Cr0.RESERVED:
        return False
    pe = test_bit(value, 0)
    pg = test_bit(value, 31)
    nw = test_bit(value, 29)
    cd = test_bit(value, 30)
    if pg and not pe:
        return False
    if nw and not cd:
        return False
    if not unrestricted_guest and not (pe and pg):
        return False
    return True


def cr4_valid(value: int) -> bool:
    """Check CR4 for reserved-bit violations."""
    return not value & Cr4.RESERVED


def efer_valid(value: int) -> bool:
    """Check EFER for reserved-bit violations."""
    return not value & Efer.RESERVED


def efer_consistent_with_cr0(efer: int, cr0: int) -> bool:
    """EFER.LMA must equal (EFER.LME & CR0.PG) (SDM 26.3.1.1)."""
    lme = bool(efer & Efer.LME)
    lma = bool(efer & Efer.LMA)
    pg = bool(cr0 & Cr0.PG)
    return lma == (lme and pg)


def long_mode_requires_pae(efer: int, cr4: int) -> bool:
    """Return True when the EFER/CR4 pair satisfies the long-mode PAE rule.

    Architecturally, IA-32e mode (``EFER.LME=1`` with paging) requires
    ``CR4.PAE=1``. This is the constraint whose mishandling underlies
    CVE-2023-30456 (paper §5.5.1).
    """
    if efer & Efer.LME:
        return bool(cr4 & Cr4.PAE)
    return True


def rflags_canonicalize(value: int) -> int:
    """Force the architecturally fixed RFLAGS bits (bit 1 set, reserved 0)."""
    value |= Rflags.FIXED_1
    value &= ~Rflags.RESERVED
    return value


def rflags_valid(value: int) -> bool:
    """Check the fixed/reserved RFLAGS bit rules."""
    if not value & Rflags.FIXED_1:
        return False
    if value & Rflags.RESERVED:
        return False
    return True


#: Register file order used by the execution harness when materialising
#: general-purpose register state from fuzzing input.
GPR_NAMES = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)
