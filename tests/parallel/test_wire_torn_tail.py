"""Property tests for protocol-v2 torn-tail detection and healing.

The exporter's crash-recovery contract (DESIGN.md §12, reused verbatim
by the federation relay): after *any* truncation of ``queue.bin`` or
``queue.idx`` at an arbitrary byte offset,

* :func:`tail_intact` notices the damage (O(1), before appending more);
* consumers reading the damaged files in the meantime never see a
  corrupt record — every manifest entry either yields the exact
  original blob or ``None`` (CRC mismatch, skipped and retried later);
* :func:`rewrite_records` from the live queue heals both files so the
  full record set reads back bit for bit — zero record loss.

Hypothesis drives the record shapes and the cut offsets; the exporter
model mirrors ``SyncDirectory._export_v2`` (count + byte bookkeeping,
``tail_intact`` check, rewrite on damage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.wire import (
    QUEUE_BIN,
    QUEUE_IDX,
    append_records,
    pack_record,
    parse_record,
    read_manifest,
    read_record_blob,
    rewrite_records,
    tail_intact,
)


@dataclass
class _Entry:
    """The minimal queue-entry shape :func:`pack_record` serializes."""

    data: bytes
    found_at: int = 0
    new_bits: int = 0
    imported: bool = False
    crashed: bool = False
    anomaly: bool = False
    coverage: tuple = field(default_factory=tuple)


entry_strategy = st.builds(
    _Entry,
    data=st.binary(min_size=1, max_size=64),
    found_at=st.integers(min_value=0, max_value=2**20),
    new_bits=st.integers(min_value=0, max_value=255),
    imported=st.booleans(),
    crashed=st.booleans(),
    coverage=st.lists(
        st.tuples(st.integers(min_value=0, max_value=0xFFFF),
                  st.integers(min_value=0, max_value=7)),
        max_size=8).map(lambda pairs: tuple(sorted(set(pairs)))),
)

corpus_strategy = st.lists(entry_strategy, min_size=1, max_size=8)
# A fraction in [0, 1) mapped onto each file's byte length, so cuts
# land anywhere: mid-header, mid-data, on a record boundary, at zero.
cut_strategy = st.floats(min_value=0.0, max_value=1.0, exclude_max=True)


def _blobs(entries):
    return [pack_record(i, e) for i, e in enumerate(entries)]


def _truncate(path, fraction):
    size = path.stat().st_size
    keep = int(size * fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return size - keep


def _read_all(queue_dir):
    """Every CRC-valid record the manifest currently exposes."""
    out = []
    bin_path = queue_dir / QUEUE_BIN
    if not bin_path.exists():
        return [None for _ in read_manifest(queue_dir)]
    with open(bin_path, "rb") as handle:
        for offset, length, crc in read_manifest(queue_dir):
            out.append(read_record_blob(handle, offset, length, crc))
    return out


class TestTornTailHealing:
    @given(corpus=corpus_strategy, bin_cut=cut_strategy,
           idx_cut=cut_strategy, cut_bin=st.booleans(),
           cut_idx=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_truncation_is_detected_and_healed_without_loss(
            self, tmp_path_factory, corpus, bin_cut, idx_cut,
            cut_bin, cut_idx):
        queue_dir = tmp_path_factory.mktemp("queue")
        blobs = _blobs(corpus)
        appended = append_records(queue_dir, blobs)
        assert tail_intact(queue_dir, len(blobs), appended)

        lost = 0
        if cut_bin:
            lost += _truncate(queue_dir / QUEUE_BIN, bin_cut)
        if cut_idx:
            lost += _truncate(queue_dir / QUEUE_IDX, idx_cut)

        # 1. Detection: any actual byte loss breaks the O(1) tail check.
        if lost:
            assert not tail_intact(queue_dir, len(blobs), appended)

        # 2. Mid-damage consumers: every manifest entry yields the
        #    original blob or None — never a different, corrupt record.
        for i, blob in enumerate(_read_all(queue_dir)):
            assert blob is None or blob == blobs[i]

        # 3. Healing: a rewrite from the live queue restores everything.
        healed = rewrite_records(queue_dir, blobs)
        assert healed == sum(len(b) for b in blobs)
        assert tail_intact(queue_dir, len(blobs), healed)
        assert _read_all(queue_dir) == blobs
        for i, blob in enumerate(blobs):
            record = parse_record(blob)
            assert record is not None
            assert record.index == i
            assert record.data == corpus[i].data

    @given(corpus=corpus_strategy, idx_cut=cut_strategy)
    @settings(max_examples=40, deadline=None)
    def test_torn_manifest_tail_hides_only_the_tail(
            self, tmp_path_factory, corpus, idx_cut):
        """With queue.bin intact, a torn queue.idx only *hides* trailing
        records — every record the manifest still exposes reads back
        exactly (the importer's no-corruption guarantee)."""
        queue_dir = tmp_path_factory.mktemp("queue")
        blobs = _blobs(corpus)
        append_records(queue_dir, blobs)
        _truncate(queue_dir / QUEUE_IDX, idx_cut)

        manifest = read_manifest(queue_dir)
        assert len(manifest) <= len(blobs)
        visible = _read_all(queue_dir)
        assert visible == blobs[:len(manifest)]

    @given(corpus=corpus_strategy)
    @settings(max_examples=25, deadline=None)
    def test_incremental_appends_keep_the_tail_intact(
            self, tmp_path_factory, corpus):
        """The undamaged path: append one export at a time, checking the
        exporter's (records, bytes) bookkeeping after each round."""
        queue_dir = tmp_path_factory.mktemp("queue")
        blobs = _blobs(corpus)
        written = 0
        total = 0
        for blob in blobs:
            assert tail_intact(queue_dir, written, total)
            total += append_records(queue_dir, [blob])
            written += 1
        assert tail_intact(queue_dir, written, total)
        assert _read_all(queue_dir) == blobs

    @given(corpus=corpus_strategy,
           garbage=st.binary(min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_garbage_tail_fails_crc_not_parse(
            self, tmp_path_factory, corpus, garbage):
        """Overwriting the last record's bytes (not just truncating)
        breaks its CRC: tail_intact flags it and the consumer skips it."""
        queue_dir = tmp_path_factory.mktemp("queue")
        blobs = _blobs(corpus)
        appended = append_records(queue_dir, blobs)
        offset, length, crc = read_manifest(queue_dir)[-1]
        original = blobs[-1]
        with open(queue_dir / QUEUE_BIN, "r+b") as handle:
            handle.seek(offset)
            handle.write(garbage[:length])
        with open(queue_dir / QUEUE_BIN, "rb") as handle:
            damaged = read_record_blob(handle, offset, length, crc)
        # Either the overwrite happened to be a no-op (same bytes) or
        # the CRC catches it; a *different* blob must never come back.
        assert damaged is None or damaged == original
        if damaged is None:
            assert not tail_intact(queue_dir, len(blobs), appended)
