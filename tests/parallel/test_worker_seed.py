"""Worker-seed derivation: the determinism contract's foundation."""

from repro.parallel import worker_seed


class TestWorkerSeed:
    def test_worker_zero_is_campaign_seed(self):
        for seed in (0, 1, 7, 2**63):
            assert worker_seed(seed, 0) == seed

    def test_derived_seeds_distinct(self):
        seeds = [worker_seed(42, i) for i in range(16)]
        assert len(set(seeds)) == 16

    def test_derived_seeds_deterministic(self):
        assert worker_seed(42, 3) == worker_seed(42, 3)

    def test_derived_seeds_fit_64_bits(self):
        for i in range(8):
            assert 0 <= worker_seed(2**64 - 1, i) < 2**64

    def test_different_campaign_seeds_decorrelate(self):
        assert worker_seed(1, 1) != worker_seed(2, 1)
