"""Corpus-sync protocol tests (export / incremental import / corruption).

Behavioural tests run against both wire formats — the binary v2
protocol must behave exactly like the legacy v1 per-file layout for
everything a campaign can observe. Format-specific classes cover the
on-disk layout and the v2-only subsumption filter.
"""

import json

import pytest

from repro import faults
from repro.coverage.bitmap import CoverageBitmap
from repro.faults import FaultPlan, FaultSpec
from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE
from repro.fuzzer.rng import Rng
from repro.parallel.sync import (
    COVERAGE_SIDECAR,
    SyncDirectory,
    worker_queue_dir,
)
from repro.parallel.wire import QUEUE_BIN, QUEUE_IDX, LineCodec


def novel_execute():
    counter = {"n": 0}

    def execute(fi):
        counter["n"] += 1
        bitmap = CoverageBitmap()
        bitmap.record_edge(counter["n"] * 64, counter["n"] * 64 + 1)
        return RunFeedback(bitmap=bitmap)

    return execute


def make_engine(seed=1, execute=None):
    engine = FuzzEngine(execute=execute or novel_execute(), rng=Rng(seed))
    engine.add_seed(bytes(INPUT_SIZE))
    return engine


@pytest.fixture(params=["v1", "v2"])
def sync_format(request):
    return request.param


def make_sync(root, worker, sync_format, total_workers=2):
    return SyncDirectory(root, worker=worker, total_workers=total_workers,
                         sync_format=sync_format)


class TestSyncDirectory:
    def test_export_covers_the_whole_local_queue(self, tmp_path, sync_format):
        engine = make_engine()
        engine.run(4)
        sync = make_sync(tmp_path, 0, sync_format)
        assert sync.export(engine) == len(engine.queue)

    def test_import_new_executes_partner_entries(self, tmp_path, sync_format):
        producer = make_engine(seed=1)
        producer.run(3)
        make_sync(tmp_path, 1, sync_format).export(producer)

        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, sync_format)
        imported = sync.import_new(consumer)
        assert imported == len(producer.queue)
        assert consumer.stats.imported == imported

    def test_import_is_incremental(self, tmp_path, sync_format):
        producer = make_engine(seed=1)
        producer.run(2)
        producer_sync = make_sync(tmp_path, 1, sync_format)
        producer_sync.export(producer)

        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, sync_format)
        first = sync.import_new(consumer)
        assert sync.import_new(consumer) == 0  # nothing new yet
        producer.run(2)
        producer_sync.export(producer)
        second = sync.import_new(consumer)
        assert first > 0 and second == 2  # only the fresh entries

    def test_imported_entries_not_reexported(self, tmp_path, sync_format):
        producer = make_engine(seed=1)
        producer.run(3)
        make_sync(tmp_path, 1, sync_format).export(producer)

        consumer = make_engine(seed=2)
        consumer.run(1)
        sync = make_sync(tmp_path, 0, sync_format)
        sync.import_new(consumer)
        local = sum(1 for e in consumer.queue.entries if not e.imported)
        assert sync.export(consumer) == local
        assert local < len(consumer.queue)  # some imports did join the queue

    def test_own_directory_never_imported(self, tmp_path, sync_format):
        engine = make_engine()
        engine.run(2)
        sync = make_sync(tmp_path, 0, sync_format)
        sync.export(engine)
        assert sync.import_new(engine) == 0


class TestV2Layout:
    """Protocol v2 on-disk shape: two files, append-only growth."""

    def test_exactly_two_files(self, tmp_path):
        engine = make_engine()
        engine.run(4)
        make_sync(tmp_path, 0, "v2").export(engine)
        names = {p.name for p in worker_queue_dir(tmp_path, 0).iterdir()}
        assert names == {QUEUE_BIN, QUEUE_IDX}

    def test_reexport_appends_instead_of_rewriting(self, tmp_path):
        engine = make_engine()
        engine.run(3)
        sync = make_sync(tmp_path, 0, "v2")
        sync.export(engine)
        queue_dir = worker_queue_dir(tmp_path, 0)
        first_size = (queue_dir / QUEUE_BIN).stat().st_size
        first_head = (queue_dir / QUEUE_BIN).read_bytes()

        engine.run(3)
        sync.export(engine)
        grown = (queue_dir / QUEUE_BIN).read_bytes()
        assert len(grown) > first_size
        # Append-only: the old region is byte-identical, not rewritten.
        assert grown[:first_size] == first_head

    def test_noop_export_writes_nothing(self, tmp_path):
        engine = make_engine()
        engine.run(3)
        sync = make_sync(tmp_path, 0, "v2")
        sync.export(engine)
        queue_dir = worker_queue_dir(tmp_path, 0)
        before = ((queue_dir / QUEUE_BIN).stat().st_mtime_ns,
                  (queue_dir / QUEUE_IDX).stat().st_size)
        sync.export(engine)  # no new entries since the last round
        after = ((queue_dir / QUEUE_BIN).stat().st_mtime_ns,
                 (queue_dir / QUEUE_IDX).stat().st_size)
        assert after == before


class TestSubsumptionFilter:
    """V2-only: imports whose coverage is already known are not executed."""

    LINE = ("nested.py", 7)

    def _constant_edge_execute(self, executions):
        def execute(fi):
            executions.append(fi)
            bitmap = CoverageBitmap()
            bitmap.record_edge(64, 65)  # every case hits the same cell
            return RunFeedback(bitmap=bitmap, lines=frozenset({self.LINE}))

        return execute

    def test_subsumed_imports_skip_execution(self, tmp_path):
        codec = LineCodec([self.LINE])
        producer = make_engine(seed=1,
                               execute=self._constant_edge_execute([]))
        producer.run(5)
        make_sync(tmp_path, 1, "v2").export(producer, codec=codec)

        executions = []
        consumer = make_engine(seed=2,
                               execute=self._constant_edge_execute(executions))
        consumer.run(1)  # the local run already lit the shared cell
        baseline = len(executions)
        absorbed = []
        sync = make_sync(tmp_path, 0, "v2")
        imported = sync.import_new(consumer, codec=codec,
                                   absorb_lines=absorbed.extend)
        queued = [e for e in producer.queue.entries if e.coverage is not None]
        assert imported == len(producer.queue)
        assert consumer.stats.imported == imported
        # Every coverage-carrying entry was subsumed: zero executions.
        assert consumer.stats.imports_skipped_subsumed == len(queued)
        assert len(executions) == baseline + (imported - len(queued))
        assert self.LINE in absorbed

    def test_novel_coverage_still_executes(self, tmp_path):
        codec = LineCodec([self.LINE])
        producer = make_engine(seed=1)  # novel edge per case
        producer.run(3)
        make_sync(tmp_path, 1, "v2").export(producer)

        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, "v2")
        imported = sync.import_new(consumer, codec=codec)
        assert imported == len(producer.queue)
        assert consumer.stats.imports_skipped_subsumed == 0

    def test_filter_can_be_disabled(self, tmp_path):
        codec = LineCodec([self.LINE])
        producer = make_engine(seed=1,
                               execute=self._constant_edge_execute([]))
        producer.run(5)
        make_sync(tmp_path, 1, "v2").export(producer, codec=codec)

        executions = []
        consumer = make_engine(seed=2,
                               execute=self._constant_edge_execute(executions))
        consumer.run(1)
        baseline = len(executions)
        sync = make_sync(tmp_path, 0, "v2")
        sync.subsumption_filter = False
        imported = sync.import_new(consumer, codec=codec)
        assert imported == len(producer.queue)
        assert consumer.stats.imports_skipped_subsumed == 0
        assert len(executions) == baseline + imported

    def test_overhead_phases_are_accounted(self, tmp_path):
        producer = make_engine(seed=1)
        producer.run(3)
        producer_sync = make_sync(tmp_path, 1, "v2")
        producer_sync.export(producer)
        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, "v2")
        sync.import_new(consumer)
        assert producer_sync.stats.export_seconds > 0
        assert producer_sync.stats.entries_exported == len(producer.queue)
        assert sync.stats.scan_seconds > 0
        assert sync.stats.execute_seconds > 0
        assert sync.stats.entries_scanned == len(producer.queue)


class TestPhaseTimersSurviveFailures:
    """Regression: phase timers are charged through ``finally``.

    The old ``stats.x += perf_counter() - started`` accounting silently
    dropped any phase that raised partway through, so a corrupt-sync
    round (or a real crash mid-import) under-reported sync_overhead.
    Every guarded phase must record its elapsed time even when the
    guarded call blows up — and the matching telemetry span must see
    the identical value.
    """

    def _registry(self, tmp_path):
        from repro import telemetry

        return telemetry.campaign_scope("metrics", tmp_path / "telemetry")

    def test_crc_failed_records_still_charge_scan_time(self, tmp_path):
        producer = make_engine(seed=1)
        producer.run(3)
        producer_sync = make_sync(tmp_path, 1, "v2")
        plan = FaultPlan([FaultSpec("corrupt_sync", worker=1, at_export=1,
                                    corrupt="garbage")])
        with faults.injected(plan):
            producer_sync.export(producer)

        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, "v2")
        with self._registry(tmp_path) as registry:
            sync.import_new(consumer)
        assert consumer.stats.import_skipped == 1
        # The corrupt record was scanned, and its scan time counted.
        assert sync.stats.scan_seconds > 0
        assert sync.stats.entries_scanned == len(producer.queue)
        assert registry.span_total("sync.scan") == pytest.approx(
            sync.stats.scan_seconds)

    def test_scan_time_recorded_when_manifest_read_raises(self, tmp_path,
                                                          monkeypatch):
        producer = make_engine(seed=1)
        producer.run(2)
        make_sync(tmp_path, 1, "v2").export(producer)

        import repro.parallel.sync as sync_mod

        def explode(queue_dir):
            raise RuntimeError("torn manifest")

        monkeypatch.setattr(sync_mod.wire, "read_manifest", explode)
        sync = make_sync(tmp_path, 0, "v2")
        with pytest.raises(RuntimeError):
            sync.import_new(make_engine(seed=2))
        assert sync.stats.scan_seconds > 0

    def test_execute_time_recorded_when_import_raises(self, tmp_path,
                                                      sync_format):
        producer = make_engine(seed=1)
        producer.run(2)
        make_sync(tmp_path, 1, sync_format).export(producer)

        consumer = make_engine(seed=2)
        boom = RuntimeError("executor died")

        def explode(*args, **kwargs):
            raise boom

        consumer.import_case = explode
        consumer.import_packed = explode
        sync = make_sync(tmp_path, 0, sync_format)
        with pytest.raises(RuntimeError):
            sync.import_new(consumer)
        assert sync.stats.execute_seconds > 0

    def test_filter_time_recorded_when_subsumes_raises(self, tmp_path,
                                                       monkeypatch):
        line = ("nested.py", 7)
        codec = LineCodec([line])

        def covered_execute(fi):
            bitmap = CoverageBitmap()
            bitmap.record_edge(64, 65)
            return RunFeedback(bitmap=bitmap, lines=frozenset({line}))

        producer = make_engine(seed=1, execute=covered_execute)
        producer.run(2)
        make_sync(tmp_path, 1, "v2").export(producer, codec=codec)

        consumer = make_engine(seed=2, execute=covered_execute)
        monkeypatch.setattr(
            consumer.virgin, "subsumes",
            lambda coverage: (_ for _ in ()).throw(RuntimeError("virgin")))
        sync = make_sync(tmp_path, 0, "v2")
        with pytest.raises(RuntimeError):
            sync.import_new(consumer, codec=codec)
        assert sync.stats.filter_seconds > 0

    def test_export_time_recorded_when_export_raises(self, tmp_path,
                                                     sync_format,
                                                     monkeypatch):
        engine = make_engine()
        engine.run(2)
        sync = make_sync(tmp_path, 0, sync_format)
        import repro.parallel.sync as sync_mod

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(engine, "save_corpus", explode)
        monkeypatch.setattr(sync_mod.wire, "append_records", explode)
        monkeypatch.setattr(sync_mod.wire, "rewrite_records", explode)
        with pytest.raises(OSError):
            sync.export(engine)
        assert sync.stats.export_seconds > 0


class TestSyncCorruption:
    """Injected mid-write corruption: skip, count, heal on re-export."""

    def _corrupted_export(self, tmp_path, mode, sync_format):
        producer = make_engine(seed=1)
        producer.run(3)
        sync = make_sync(tmp_path, 1, sync_format)
        plan = FaultPlan([FaultSpec("corrupt_sync", worker=1, at_export=1,
                                    corrupt=mode)])
        with faults.injected(plan):
            sync.export(producer)
        assert plan.exhausted
        return producer, sync

    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupt_entry_skipped_then_healed(self, tmp_path, sync_format,
                                               mode):
        producer, producer_sync = self._corrupted_export(tmp_path, mode,
                                                         sync_format)
        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, sync_format)
        first = sync.import_new(consumer)
        assert first == len(producer.queue) - 1
        assert consumer.stats.import_skipped == 1
        # The owner's next export heals the damage (v1 rewrites every
        # file; v2 notices the broken tail and rebuilds both files);
        # the entry was never marked consumed, so it imports now.
        producer_sync.export(producer)
        assert sync.import_new(consumer) == 1
        assert consumer.stats.imported == len(producer.queue)

    def test_corrupt_entry_counted_only_once(self, tmp_path, sync_format):
        producer, producer_sync = self._corrupted_export(
            tmp_path, "truncate", sync_format)
        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, sync_format)
        sync.import_new(consumer)
        skipped = consumer.stats.import_skipped
        assert skipped == 1
        if sync_format == "v2":
            # V1 recounts on every retry round (the pre-heal rounds are
            # bounded by sync cadence); v2 pins the stricter contract.
            sync.import_new(consumer)
            assert consumer.stats.import_skipped == skipped

    def test_tmp_orphan_never_listed(self, tmp_path, sync_format):
        producer, _ = self._corrupted_export(tmp_path, "tmp_orphan",
                                             sync_format)
        consumer = make_engine(seed=2)
        sync = make_sync(tmp_path, 0, sync_format)
        assert sync.import_new(consumer) == len(producer.queue)
        assert consumer.stats.import_skipped == 0
        orphans = list(worker_queue_dir(tmp_path, 1).glob("*.tmp"))
        assert orphans  # the fault really did leave one behind


class TestDeltaBatchReject:
    """V2-only coverage sidecar (DESIGN.md §15): a reader whose virgin
    map subsumes the exporter's entire map absorbs the fresh batch from
    one NCD1 delta, without opening ``queue.bin`` — and every fallback
    (corrupt or stale sidecar, flagged head record, novel coverage,
    torn tail) degrades to the per-record path with identical results.
    """

    LINES = [("nested.py", n) for n in range(1, 9)]

    def _novel_lines_execute(self, executions=None):
        counter = {"n": 0}

        def execute(fi):
            if executions is not None:
                executions.append(bytes(fi))
            counter["n"] += 1
            bitmap = CoverageBitmap()
            bitmap.record_edge(counter["n"] * 64, counter["n"] * 64 + 1)
            line = self.LINES[counter["n"] % len(self.LINES)]
            return RunFeedback(bitmap=bitmap, lines=frozenset({line}))

        return execute

    def _producer(self, tmp_path, codec, runs=3):
        producer = make_engine(seed=1, execute=self._novel_lines_execute())
        producer.run(runs)
        psync = make_sync(tmp_path, 1, "v2")
        psync.export(producer, codec=codec)
        return producer, psync

    def _catch_up(self, tmp_path, codec, consumer, sync, absorbed):
        """First round: reader imports everything per-record (the seed
        heads the batch and is flagged — no coverage — so the batch
        path must decline) and ends a full superset of the exporter."""
        imported = sync.import_new(consumer, codec=codec,
                                   absorb_lines=absorbed.extend)
        assert imported > 0
        assert sync.stats.batches_delta_rejected == 0
        return imported

    def test_sidecar_written_next_to_queue(self, tmp_path):
        codec = LineCodec(self.LINES)
        producer, _psync = self._producer(tmp_path, codec)
        sidecar = worker_queue_dir(tmp_path, 1) / COVERAGE_SIDECAR
        assert sidecar.exists()
        from repro.coverage import delta
        from repro.parallel import checksum
        chunks = checksum.unpack_chunks(checksum.unseal(sidecar.read_bytes()))
        meta = json.loads(chunks[0])
        assert meta["records"] == len(producer.queue)
        assert meta["universe"] == len(codec.universe)
        assert meta["flagged"] == [0]  # the seed ships no coverage
        side = delta.decode(chunks[1])
        assert side.full
        rebuilt = bytearray(len(producer.virgin.bits))
        delta.apply_runs(rebuilt, side.runs)
        assert rebuilt == producer.virgin.bits
        # One packed line payload per skippable record.
        assert len(chunks) == 2 + meta["records"] - 1

    def test_superset_reader_rejects_batch_without_reading_records(
            self, tmp_path):
        codec = LineCodec(self.LINES)
        producer, psync = self._producer(tmp_path, codec)
        executions = []
        consumer = make_engine(seed=2,
                               execute=self._novel_lines_execute(executions))
        consumer.virgin.merge_bits(producer.virgin.snapshot())
        sync = make_sync(tmp_path, 0, "v2")
        absorbed = []
        self._catch_up(tmp_path, codec, consumer, sync, absorbed)

        producer.run(3)
        psync.export(producer, codec=codec)
        consumer.virgin.merge_bits(producer.virgin.snapshot())
        skipped_before = consumer.stats.imports_skipped_subsumed
        executed_before = len(executions)
        imported = sync.import_new(consumer, codec=codec,
                                   absorb_lines=absorbed.extend)
        assert imported == 3
        assert sync.stats.batches_delta_rejected == 1
        assert consumer.stats.imports_skipped_subsumed == skipped_before + 3
        assert len(executions) == executed_before  # nothing executed
        # The fresh records' own lines were absorbed from the sidecar.
        fresh_lines = {e.lines for e in producer.queue.entries[-3:]}
        assert all(line in absorbed
                   for lines in fresh_lines for line in lines)
        # The cursor really advanced: nothing left to import.
        assert sync.import_new(consumer, codec=codec) == 0

    def test_batch_and_per_record_paths_are_equivalent(self, tmp_path):
        """The acceptance pin: a delta-plane reader and a per-record
        reader observe identical engine state from the same queue."""
        codec = LineCodec(self.LINES)
        producer, psync = self._producer(tmp_path, codec)

        readers = {}
        for worker, delta_plane in ((0, True), (2, False)):
            consumer = make_engine(seed=2,
                                   execute=self._novel_lines_execute())
            consumer.virgin.merge_bits(producer.virgin.snapshot())
            sync = SyncDirectory(tmp_path, worker=worker, total_workers=3,
                                 sync_format="v2", delta_plane=delta_plane)
            absorbed = []
            sync.import_new(consumer, codec=codec,
                            absorb_lines=absorbed.extend)
            readers[worker] = (consumer, sync, absorbed)

        producer.run(3)
        psync.export(producer, codec=codec)
        for worker, (consumer, sync, absorbed) in readers.items():
            consumer.virgin.merge_bits(producer.virgin.snapshot())
            sync.import_new(consumer, codec=codec,
                            absorb_lines=absorbed.extend)

        on, off = readers[0], readers[2]
        assert on[1].stats.batches_delta_rejected == 1
        assert off[1].stats.batches_delta_rejected == 0
        assert on[0].stats.imported == off[0].stats.imported
        assert (on[0].stats.imports_skipped_subsumed
                == off[0].stats.imports_skipped_subsumed)
        assert sorted(set(on[2])) == sorted(set(off[2]))
        assert bytes(on[0].virgin.bits) == bytes(off[0].virgin.bits)

    @pytest.mark.parametrize("damage", ["corrupt", "stale", "missing"])
    def test_unusable_sidecar_falls_back_to_per_record(self, tmp_path,
                                                       damage):
        codec = LineCodec(self.LINES)
        producer, psync = self._producer(tmp_path, codec)
        consumer = make_engine(seed=2, execute=self._novel_lines_execute())
        consumer.virgin.merge_bits(producer.virgin.snapshot())
        sync = make_sync(tmp_path, 0, "v2")
        self._catch_up(tmp_path, codec, consumer, sync, [])

        producer.run(3)
        psync.export(producer, codec=codec)
        sidecar = worker_queue_dir(tmp_path, 1) / COVERAGE_SIDECAR
        if damage == "corrupt":
            raw = bytearray(sidecar.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            sidecar.write_bytes(bytes(raw))
        elif damage == "stale":
            # A sidecar describing the previous, shorter manifest.
            producer2 = make_engine(seed=1,
                                    execute=self._novel_lines_execute())
            producer2.run(3)
            stale_root = tmp_path / "stale"
            make_sync(stale_root, 1, "v2").export(producer2, codec=codec)
            sidecar.write_bytes(
                (worker_queue_dir(stale_root, 1) / COVERAGE_SIDECAR)
                .read_bytes())
        else:
            sidecar.unlink()

        consumer.virgin.merge_bits(producer.virgin.snapshot())
        skipped_before = consumer.stats.imports_skipped_subsumed
        imported = sync.import_new(consumer, codec=codec)
        assert imported == 3
        assert sync.stats.batches_delta_rejected == 0
        # Per-record filtering still absorbed every record.
        assert consumer.stats.imports_skipped_subsumed == skipped_before + 3

    def test_novel_partner_coverage_declines_the_batch(self, tmp_path):
        codec = LineCodec(self.LINES)
        producer, psync = self._producer(tmp_path, codec)
        executions = []
        consumer = make_engine(seed=2,
                               execute=self._novel_lines_execute(executions))
        sync = make_sync(tmp_path, 0, "v2")
        # No superset merge: the partner's map holds bits this reader
        # has never seen, so the whole-batch subsumption must fail and
        # every record must execute.
        imported = sync.import_new(consumer, codec=codec)
        assert imported == len(producer.queue)
        assert sync.stats.batches_delta_rejected == 0
        assert consumer.stats.imports_skipped_subsumed == 0

    def test_torn_tail_declines_batch_then_heals(self, tmp_path):
        codec = LineCodec(self.LINES)
        producer, psync = self._producer(tmp_path, codec)
        consumer = make_engine(seed=2, execute=self._novel_lines_execute())
        consumer.virgin.merge_bits(producer.virgin.snapshot())
        sync = make_sync(tmp_path, 0, "v2")
        self._catch_up(tmp_path, codec, consumer, sync, [])

        producer.run(3)
        psync.export(producer, codec=codec)
        consumer.virgin.merge_bits(producer.virgin.snapshot())

        # Tear the append tail the way a partner crash would: the batch
        # prefix reaches the manifest end, so the O(1) tail CRC check
        # must catch it and decline the whole batch.
        from repro.parallel.wire import read_manifest
        queue_dir = worker_queue_dir(tmp_path, 1)
        offset, length, _crc = read_manifest(queue_dir)[-1]
        raw = bytearray((queue_dir / QUEUE_BIN).read_bytes())
        original = raw[offset + 5]
        raw[offset + 5] ^= 0xFF
        (queue_dir / QUEUE_BIN).write_bytes(bytes(raw))

        imported = sync.import_new(consumer, codec=codec)
        assert sync.stats.batches_delta_rejected == 0
        assert imported == 2  # the torn record parked on the retry list
        assert consumer.stats.import_skipped == 1

        # Heal the tail; the retry set forces the per-record path.
        raw[offset + 5] = original
        (queue_dir / QUEUE_BIN).write_bytes(bytes(raw))
        assert sync.import_new(consumer, codec=codec) == 1
        assert consumer.stats.import_skipped == 1  # counted once

    def test_delta_plane_off_writes_no_sidecar(self, tmp_path):
        codec = LineCodec(self.LINES)
        producer = make_engine(seed=1, execute=self._novel_lines_execute())
        producer.run(2)
        psync = make_sync(tmp_path, 1, "v2")
        psync.delta_plane = False
        psync.export(producer, codec=codec)
        assert not (worker_queue_dir(tmp_path, 1) / COVERAGE_SIDECAR).exists()
