"""VirtualBox nested VMX emulation — analogue of VBox's IEM/HM VMX code.

VirtualBox 7.0.12 emulates nested VT-x largely in its instruction
emulator (IEM). The structure below mirrors that: one ``iemVmx*``
handler per instruction and a monolithic ``vmentry`` that performs the
checks VirtualBox implements.

Seeded bug (Table 6 #2, CVE-2024-21106): the VM-entry MSR-load
processing validates neither canonicality nor the forbidden-MSR list.
Loading a non-canonical value (e.g. ``0x8000000000000000``) into
``MSR_K8_KERNEL_GS_BASE`` raises a general-protection fault *on the
host* when the value is written to the real MSR during the world switch
— the guest VM dies and the host logs the #GP. Patched by
``canonical_msr_check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.arch.msr import CANONICAL_MSRS, is_canonical
from repro.arch.registers import Cr0, Cr4, Efer, Rflags
from repro.cpu.physical_cpu import VmxCpu
from repro.hypervisors.base import ExecResult, GuestInstruction, VmCrash
from repro.hypervisors.memory import GuestMemory
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import EntryControls, ExitControls, PinBased, ProcBased, Secondary
from repro.vmx.exit_reasons import ENTRY_FAILURE_BIT, ExitReason, VmInstructionError
from repro.vmx.msr_caps import VmxCapabilities, default_capabilities
from repro.vmx.vmcs import Vmcs

SHADOW_VMCS_HPA = 0x140000
VBOX_VMXON_HPA = 0x141000
VMPTR_INVALID = (1 << 64) - 1

#: Guest-group field specs, precomputed for the merge.
_GUEST_SPECS: tuple = tuple(
    spec for spec in F.ALL_FIELDS if spec.group is F.FieldGroup.GUEST)
_GUEST_ENCODINGS: frozenset[int] = frozenset(s.encoding for s in _GUEST_SPECS)

#: VMCS12 fields read by the control section of merge_vmcs.
_MERGE_CONTROL_INPUTS: frozenset[int] = frozenset({
    F.PIN_BASED_VM_EXEC_CONTROL, F.CPU_BASED_VM_EXEC_CONTROL,
    F.SECONDARY_VM_EXEC_CONTROL, F.VM_ENTRY_CONTROLS, F.EXCEPTION_BITMAP,
})


@dataclass
class VboxNestedState:
    """Per-vCPU nested VMX state (VMXVVMCS bookkeeping analogue)."""

    vmxon: bool = False
    vmxon_ptr: int = VMPTR_INVALID
    current_vmptr: int = VMPTR_INVALID
    guest_mode: bool = False
    vmcs02: Vmcs = field(default_factory=Vmcs)
    #: (vmcs12, generation, merged vmcs02) from the last merge_vmcs.
    merge_cache: tuple | None = None
    cr4: int = Cr4.PAE | Cr4.VMXE
    #: MSRs loaded into the *host* CPU during the world switch.
    host_loaded_msrs: dict[int, int] = field(default_factory=dict)


class VboxNestedVmx:
    """VirtualBox's nested VT-x emulation for one VM."""

    def __init__(self, hypervisor, memory: GuestMemory,
                 caps: VmxCapabilities | None = None,
                 patched: frozenset[str] = frozenset()) -> None:
        self.hv = hypervisor
        self.memory = memory
        self.caps = caps or default_capabilities()
        self.patched = patched
        self.phys = VmxCpu(default_capabilities())
        self.phys.vmxon(VBOX_VMXON_HPA)
        self._vmcs02_proto = golden_vmcs(self.phys.caps)

    HANDLERS = {
        "vmxon": "iem_vmxon",
        "vmxoff": "iem_vmxoff",
        "vmclear": "iem_vmclear",
        "vmptrld": "iem_vmptrld",
        "vmptrst": "iem_vmptrst",
        "vmread": "iem_vmread",
        "vmwrite": "iem_vmwrite",
        "vmlaunch": "iem_vmlaunch",
        "vmresume": "iem_vmresume",
        "invept": "iem_invept",
        "invvpid": "iem_invvpid",
        "vmcall": "iem_vmcall",
    }

    def handle(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate one VMX instruction from the L1 guest (IEM path)."""
        handler_name = self.HANDLERS.get(instr.mnemonic)
        if handler_name is None:
            return ExecResult.fault(f"#UD: {instr.mnemonic}")
        return getattr(self, handler_name)(state, instr)

    # ------------------------------------------------------------------
    # Instruction emulation
    # ------------------------------------------------------------------

    def iem_vmxon(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmxon` instruction."""
        if not state.cr4 & Cr4.VMXE:
            return ExecResult.fault("#UD: CR4.VMXE clear")
        if state.vmxon:
            return self._vmfail(state, VmInstructionError.VMXON_IN_VMX_ROOT)
        ptr = instr.op("addr")
        if ptr & 0xFFF or not self.memory.in_guest_ram(ptr):
            return ExecResult.success("VMfailInvalid", value=-1)
        state.vmxon = True
        state.vmxon_ptr = ptr
        state.current_vmptr = VMPTR_INVALID
        return ExecResult.success("vmxon ok")

    def iem_vmxoff(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmxoff` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        state.vmxon = False
        return ExecResult.success("vmxoff ok")

    def iem_vmclear(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmclear` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        ptr = instr.op("addr")
        if ptr & 0xFFF or not self.memory.in_guest_ram(ptr):
            return self._vmfail(state, VmInstructionError.VMCLEAR_INVALID_ADDRESS)
        if ptr == state.vmxon_ptr:
            return self._vmfail(state, VmInstructionError.VMCLEAR_VMXON_POINTER)
        self.memory.ensure_vmcs(ptr, self.caps.vmcs_revision_id).clear()
        if state.current_vmptr == ptr:
            state.current_vmptr = VMPTR_INVALID
        return ExecResult.success("vmclear ok")

    def iem_vmptrld(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmptrld` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        ptr = instr.op("addr")
        if ptr & 0xFFF or not self.memory.in_guest_ram(ptr):
            return self._vmfail(state, VmInstructionError.VMPTRLD_INVALID_ADDRESS)
        if ptr == state.vmxon_ptr:
            return self._vmfail(state, VmInstructionError.VMPTRLD_VMXON_POINTER)
        vmcs12 = self.memory.get_vmcs(ptr)
        if vmcs12 is None or vmcs12.revision_id != self.caps.vmcs_revision_id:
            return self._vmfail(state,
                                VmInstructionError.VMPTRLD_INCORRECT_REVISION_ID)
        state.current_vmptr = ptr
        return ExecResult.success("vmptrld ok")

    def iem_vmptrst(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmptrst` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        return ExecResult.success("vmptrst ok", value=state.current_vmptr)

    def iem_vmread(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmread` instruction."""
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is None:
            return ExecResult.success("VMfailInvalid", value=-1)
        encoding = instr.op("field")
        if encoding not in F.SPEC_BY_ENCODING:
            return self._vmfail(state, VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)
        return ExecResult.success("vmread ok", value=vmcs12.read(encoding))

    def iem_vmwrite(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmwrite` instruction."""
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is None:
            return ExecResult.success("VMfailInvalid", value=-1)
        encoding = instr.op("field")
        spec = F.SPEC_BY_ENCODING.get(encoding)
        if spec is None:
            return self._vmfail(state, VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)
        if spec.group is F.FieldGroup.READ_ONLY:
            return self._vmfail(state, VmInstructionError.VMWRITE_READ_ONLY_COMPONENT)
        vmcs12.write(encoding, instr.op("value"))
        return ExecResult.success("vmwrite ok")

    def iem_vmlaunch(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmlaunch` instruction."""
        return self.vmentry(state, launch=True)

    def iem_vmresume(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmresume` instruction."""
        return self.vmentry(state, launch=False)

    def iem_invept(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invept` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        return ExecResult.success("invept ok")

    def iem_invvpid(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invvpid` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        return ExecResult.success("invvpid ok")

    def iem_vmcall(self, state: VboxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmcall` instruction."""
        return ExecResult.success("vmcall ok")

    def get_vmcs12(self, state: VboxNestedState) -> Vmcs | None:
        """The VMCS12 currently selected by L1, if any."""
        if not state.vmxon or state.current_vmptr == VMPTR_INVALID:
            return None
        return self.memory.get_vmcs(state.current_vmptr)

    def _vmfail(self, state: VboxNestedState, error: VmInstructionError) -> ExecResult:
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is not None:
            vmcs12.write(F.VM_INSTRUCTION_ERROR, int(error))
        return ExecResult.success(f"VMfailValid({int(error)})", value=int(error))

    # ------------------------------------------------------------------
    # Nested VM entry (iemVmxVmentry analogue)
    # ------------------------------------------------------------------

    def vmentry(self, state: VboxNestedState, *, launch: bool) -> ExecResult:
        """iemVmxVmentry: checks, MSR loading (the CVE), merge, run."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is None:
            return ExecResult.success("VMfailInvalid", value=-1)
        if launch and vmcs12.launched:
            return self._vmfail(state, VmInstructionError.VMLAUNCH_NONCLEAR_VMCS)
        if not launch and not vmcs12.launched:
            return self._vmfail(state, VmInstructionError.VMRESUME_NONLAUNCHED_VMCS)

        # All three checks are pure in the VMCS12 fields and capability
        # MSRs, so the results are memoized on the VMCS12 and revalidated
        # via its dirty journal. (The MSR-load loop below reads guest
        # memory, so it is never memoized.)
        if perf.memoized_check(vmcs12, ("vbox_vmx", id(self), "controls"),
                               lambda: self.check_exec_controls(vmcs12)):
            return self._vmfail(state, VmInstructionError.ENTRY_INVALID_CONTROL_FIELDS)
        if perf.memoized_check(vmcs12, ("vbox_vmx", id(self), "host"),
                               lambda: self.check_host_state(vmcs12)):
            return self._vmfail(state, VmInstructionError.ENTRY_INVALID_HOST_STATE)
        guest_problems = perf.memoized_check(
            vmcs12, ("vbox_vmx", id(self), "guest"),
            lambda: self.check_guest_state(vmcs12))
        if guest_problems:
            reason = int(ExitReason.INVALID_GUEST_STATE) | ENTRY_FAILURE_BIT
            vmcs12.write(F.VM_EXIT_REASON, reason)
            return ExecResult.success(f"entry failed: {guest_problems[0]}",
                                      exit_reason=reason, level=1)

        # VM-entry MSR loading — CVE-2024-21106's home. VirtualBox walks
        # the area and programs the host MSRs for the world switch
        # WITHOUT checking canonicality or the forbidden list.
        count = vmcs12.read(F.VM_ENTRY_MSR_LOAD_COUNT)
        if count:
            addr = vmcs12.read(F.VM_ENTRY_MSR_LOAD_ADDR)
            entries = self.memory.get_msr_area(addr, count)
            for entry in entries:
                if "canonical_msr_check" in self.patched:
                    if entry.index in CANONICAL_MSRS and not is_canonical(entry.value):
                        reason = int(ExitReason.MSR_LOAD_FAIL) | ENTRY_FAILURE_BIT
                        vmcs12.write(F.VM_EXIT_REASON, reason)
                        return ExecResult.success("entry failed: msr load",
                                                  exit_reason=reason, level=1)
                state.host_loaded_msrs[entry.index] = entry.value
                if (entry.index in CANONICAL_MSRS
                        and not is_canonical(entry.value)):
                    # The wrmsr to the physical MSR faults on the host.
                    self.hv.log.write(
                        "general protection fault, probably for non-canonical "
                        f"address {entry.value:#x}: 0000 [#1] SMP")
                    self.hv.log.write(
                        f"VBoxHeadless: MSR {entry.index:#x} load during "
                        "nested VM entry")
                    raise VmCrash(
                        f"host #GP loading MSR {entry.index:#x} with "
                        f"non-canonical value {entry.value:#x} "
                        "(CVE-2024-21106)")

        vmcs02 = self.merge_vmcs(vmcs12, state)
        self.phys.vmclear(SHADOW_VMCS_HPA)
        image = vmcs02.copy()
        image.clear()
        self.phys.install_vmcs(SHADOW_VMCS_HPA, image)
        self.phys.vmptrld(SHADOW_VMCS_HPA)
        outcome = self.phys.vmlaunch()
        if not outcome.entered:
            reason = int(ExitReason.INVALID_GUEST_STATE) | ENTRY_FAILURE_BIT
            vmcs12.write(F.VM_EXIT_REASON, reason)
            return ExecResult.success("entry failed on hardware",
                                      exit_reason=reason, level=1)
        state.vmcs02 = image
        if launch:
            vmcs12.mark_launched()
        state.guest_mode = True
        return ExecResult.success("nested VM entry", level=2)

    # ------------------------------------------------------------------
    # Checks (VirtualBox's own; middle ground between KVM and Xen)
    # ------------------------------------------------------------------

    def check_exec_controls(self, vmcs12: Vmcs) -> list[str]:
        """VirtualBox's execution-control checks."""
        problems: list[str] = []
        if not self.caps.pin_based.permits(vmcs12.read(F.PIN_BASED_VM_EXEC_CONTROL)):
            problems.append("pin controls")
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        if not self.caps.proc_based.permits(proc):
            problems.append("proc controls")
        if proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS:
            proc2 = vmcs12.read(F.SECONDARY_VM_EXEC_CONTROL)
            if not self.caps.secondary.permits(proc2):
                problems.append("secondary controls")
        if not self.caps.entry.permits(vmcs12.read(F.VM_ENTRY_CONTROLS)):
            problems.append("entry controls")
        if not self.caps.exit.permits(vmcs12.read(F.VM_EXIT_CONTROLS)):
            problems.append("exit controls")
        if vmcs12.read(F.CR3_TARGET_COUNT) > 4:
            problems.append("cr3 target count")
        if proc & ProcBased.USE_MSR_BITMAPS:
            if vmcs12.read(F.MSR_BITMAP) & 0xFFF:
                problems.append("MSR bitmap alignment")
        count = vmcs12.read(F.VM_ENTRY_MSR_LOAD_COUNT)
        if count and vmcs12.read(F.VM_ENTRY_MSR_LOAD_ADDR) & 0xF:
            problems.append("MSR-load area alignment")
        return problems

    def check_host_state(self, vmcs12: Vmcs) -> list[str]:
        """VirtualBox's host-state checks."""
        problems: list[str] = []
        if not self.caps.cr0_valid_for_vmx(vmcs12.read(F.HOST_CR0)):
            problems.append("host CR0")
        if not self.caps.cr4_valid_for_vmx(vmcs12.read(F.HOST_CR4)):
            problems.append("host CR4")
        if not vmcs12.read(F.HOST_CS_SELECTOR):
            problems.append("host CS null")
        if not vmcs12.read(F.HOST_TR_SELECTOR):
            problems.append("host TR null")
        if not is_canonical(vmcs12.read(F.HOST_RIP)):
            problems.append("host RIP not canonical")
        return problems

    def check_guest_state(self, vmcs12: Vmcs) -> list[str]:
        """VirtualBox's guest-state checks (note: it DOES check IA-32e/PAE)."""
        problems: list[str] = []
        cr0 = vmcs12.read(F.GUEST_CR0)
        cr4 = vmcs12.read(F.GUEST_CR4)
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        proc2 = vmcs12.read(F.SECONDARY_VM_EXEC_CONTROL)
        unrestricted = bool(proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS
                            and proc2 & Secondary.UNRESTRICTED_GUEST)
        if not self.caps.cr0_valid_for_vmx(cr0, unrestricted_guest=unrestricted):
            problems.append("guest CR0")
        if not self.caps.cr4_valid_for_vmx(cr4):
            problems.append("guest CR4")
        entry = vmcs12.read(F.VM_ENTRY_CONTROLS)
        if entry & EntryControls.IA32E_MODE_GUEST:
            if not cr0 & Cr0.PG:
                problems.append("IA-32e without paging")
            if not cr4 & Cr4.PAE:
                problems.append("IA-32e without PAE")  # VBox *does* check this
        if entry & EntryControls.LOAD_EFER:
            efer = vmcs12.read(F.GUEST_IA32_EFER)
            if efer & Efer.RESERVED:
                problems.append("guest EFER reserved")
        if not vmcs12.read(F.GUEST_RFLAGS) & Rflags.FIXED_1:
            problems.append("guest RFLAGS bit 1")
        return problems

    def merge_vmcs(self, vmcs12: Vmcs,
                   state: VboxNestedState | None = None) -> Vmcs:
        """Build the hardware VMCS for the nested guest.

        When *state* is given and incremental mode is on, the last merge
        is cached per vCPU and only dirty VMCS12 fields are re-applied
        (perf.merge_state replays the skipped sections' kcov event
        slices, so coverage is mode-independent); the caller copies the
        result before installing it, so hardware write-backs never touch
        the cached master.
        """
        vmcs02 = perf.merge_state(
            state, vmcs12,
            build=lambda: self._vmcs02_base(vmcs12),
            controls=lambda merged: self._vmcs02_controls(vmcs12, merged),
            state_fields=_GUEST_ENCODINGS,
            control_inputs=_MERGE_CONTROL_INPUTS)

        vmcs02.write(F.VMCS_LINK_POINTER, VMPTR_INVALID)
        # VirtualBox, like KVM, sanitizes the activity state. Always
        # re-applied: the write is change-detecting and depends only on
        # the (possibly just re-copied) VMCS12 field.
        activity = vmcs12.read(F.GUEST_ACTIVITY_STATE)
        if activity > 1:
            vmcs02.write(F.GUEST_ACTIVITY_STATE, 0)
        # Pre-warm the entry-check memo so the installed image copy
        # revalidates from the journal instead of re-running checks.
        perf.prewarm(lambda: self.phys.checker.check_all(vmcs02))
        return vmcs02

    def _vmcs02_base(self, vmcs12: Vmcs) -> Vmcs:
        """Prototype copy with vmcs12's guest-state fields applied."""
        vmcs02 = self._vmcs02_proto.copy()
        for spec in _GUEST_SPECS:
            vmcs02.write(spec.encoding, vmcs12.read(spec.encoding))
        return vmcs02

    def _vmcs02_controls(self, vmcs12: Vmcs, vmcs02: Vmcs) -> None:
        """Control merge — a pure function of the _MERGE_CONTROL_INPUTS
        fields of vmcs12 plus the constant capability MSRs."""
        vmcs02.write(F.PIN_BASED_VM_EXEC_CONTROL, self.phys.caps.pin_based.round(
            vmcs12.read(F.PIN_BASED_VM_EXEC_CONTROL)))
        vmcs02.write(F.CPU_BASED_VM_EXEC_CONTROL, self.phys.caps.proc_based.round(
            vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
            | ProcBased.ACTIVATE_SECONDARY_CONTROLS))
        vmcs02.write(F.SECONDARY_VM_EXEC_CONTROL, self.phys.caps.secondary.round(
            vmcs12.read(F.SECONDARY_VM_EXEC_CONTROL) | Secondary.ENABLE_EPT))
        vmcs02.write(F.VM_ENTRY_CONTROLS, self.phys.caps.entry.round(
            vmcs12.read(F.VM_ENTRY_CONTROLS)))
        vmcs02.write(F.VM_EXIT_CONTROLS, self.phys.caps.exit.round(
            ExitControls.HOST_ADDR_SPACE_SIZE | ExitControls.LOAD_EFER
            | ExitControls.SAVE_EFER))
        vmcs02.write(F.EXCEPTION_BITMAP, vmcs12.read(F.EXCEPTION_BITMAP))

    # ------------------------------------------------------------------
    # Nested VM exit
    # ------------------------------------------------------------------

    def vmexit_to_l1(self, state: VboxNestedState, vmcs12: Vmcs, reason: int,
                     *, qualification: int = 0) -> None:
        """iemVmxVmexit analogue."""
        for spec in F.ALL_FIELDS:
            if spec.group is F.FieldGroup.GUEST:
                vmcs12.write(spec.encoding, state.vmcs02.read(spec.encoding))
        vmcs12.write(F.VM_EXIT_REASON, reason)
        vmcs12.write(F.EXIT_QUALIFICATION, qualification)
        state.guest_mode = False

    def l1_wants_exit(self, vmcs12: Vmcs, reason: ExitReason,
                      instr: GuestInstruction) -> bool:
        """Reflection policy (close to the SDM defaults)."""
        pin = vmcs12.read(F.PIN_BASED_VM_EXEC_CONTROL)
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        if reason == ExitReason.EXCEPTION_NMI:
            return bool(vmcs12.read(F.EXCEPTION_BITMAP)
                        & (1 << (instr.op("vector") & 31)))
        if reason == ExitReason.EXTERNAL_INTERRUPT:
            return bool(pin & PinBased.EXT_INTR_EXITING)
        if reason in (ExitReason.TRIPLE_FAULT, ExitReason.CPUID,
                      ExitReason.INVD, ExitReason.VMCALL, ExitReason.XSETBV):
            return True
        if reason == ExitReason.HLT:
            return bool(proc & ProcBased.HLT_EXITING)
        if reason in (ExitReason.RDTSC, ExitReason.RDTSCP):
            return bool(proc & ProcBased.RDTSC_EXITING)
        if reason == ExitReason.IO_INSTRUCTION:
            if proc & ProcBased.USE_IO_BITMAPS:
                return bool(instr.op("port") & 1)
            return bool(proc & ProcBased.UNCOND_IO_EXITING)
        if reason in (ExitReason.MSR_READ, ExitReason.MSR_WRITE):
            if proc & ProcBased.USE_MSR_BITMAPS:
                return bool(instr.op("msr") & 1)
            return True
        if reason == ExitReason.CR_ACCESS:
            mask = vmcs12.read(F.CR0_GUEST_HOST_MASK)
            shadow = vmcs12.read(F.CR0_READ_SHADOW)
            value = instr.op("value")
            return bool(mask and (value & mask) != (shadow & mask))
        if reason == ExitReason.DR_ACCESS:
            return bool(proc & ProcBased.MOV_DR_EXITING)
        if reason == ExitReason.PAUSE_INSTRUCTION:
            return bool(proc & ProcBased.PAUSE_EXITING)
        if reason in (ExitReason.VMCLEAR, ExitReason.VMLAUNCH,
                      ExitReason.VMPTRLD, ExitReason.VMPTRST,
                      ExitReason.VMREAD, ExitReason.VMRESUME,
                      ExitReason.VMWRITE, ExitReason.VMXOFF, ExitReason.VMXON):
            return True
        return True
