"""The VM control structure (VMCS) object.

A VMCS is modelled as a typed mapping from field encodings to values,
with the architectural launch-state machine (clear / launched) attached.
Serialisation follows the canonical field layout from
:mod:`repro.vmx.fields` so that Hamming-distance comparisons (paper
Figure 5) are well defined over an 8,000-bit state.
"""

from __future__ import annotations

from typing import Iterator

from repro.arch.bits import bytes_hamming
from repro.vmx import fields as F
from repro.vmx.fields import ALL_FIELDS, FieldGroup, FieldSpec

#: Hot-path lookup tables: ``Vmcs.read``/``write`` execute hundreds of
#: times per test case (often under the coverage tracer, where every
#: helper frame also costs a trace callback), so width masks and byte
#: sizes are precomputed instead of going through FieldSpec properties.
_FIELD_MASK: dict[int, int] = {s.encoding: (1 << s.bits) - 1 for s in ALL_FIELDS}
_FIELD_NBYTES: tuple[tuple[int, int], ...] = tuple(
    (s.encoding, s.bits // 8) for s in ALL_FIELDS)


class VmcsState:
    """Architectural VMCS launch states (SDM 24.1)."""

    CLEAR = "clear"
    LAUNCHED = "launched"


#: Change-journal bounds: when a structure's journal exceeds ``_LOG_MAX``
#: entries it is truncated to the most recent ``_LOG_KEEP``; consumers
#: holding generations older than the truncation point fall back to a
#: full recompute (``changes_since`` returns ``None``).
_LOG_MAX = 4096
_LOG_KEEP = 1024

_EMPTY_SET: frozenset = frozenset()


class Vmcs:
    """One VM control structure.

    Values are stored truncated to their field width. Unknown encodings
    raise ``KeyError`` — the same condition that makes a real vmread /
    vmwrite fail with VMfailValid(12).

    Every value-changing write bumps a generation counter and appends
    the encoding to a change journal, so consumers (the incremental
    entry checker, the VMCS02 merge cache, the serialization cache) can
    ask "what changed since generation g" instead of re-reading all
    ~700 fields. Memoized derived results live in ``_memo`` as
    immutable entries keyed by the consumer; ``copy()`` shares them, so
    a snapshot inherits its parent's warm caches.
    """

    def __init__(self, revision_id: int = 0x12) -> None:
        self.revision_id = revision_id
        self.launch_state = VmcsState.CLEAR
        self._values: dict[int, int] = {spec.encoding: 0 for spec in ALL_FIELDS}
        # Architectural default: the VMCS link pointer must be all-ones
        # unless VMCS shadowing is in use.
        self._values[F.VMCS_LINK_POINTER] = (1 << 64) - 1
        self._gen = 0
        self._log: list[int] = []
        self._log_base = 0
        self._memo: dict = {}
        self._ser: bytes | None = None
        self._ser_gen = -1
        self._read_trace: set[int] | None = None

    # --- field access -----------------------------------------------------

    def read(self, encoding: int) -> int:
        """Read a field by encoding (vmread semantics)."""
        if self._read_trace is not None:
            self._read_trace.add(encoding)
        try:
            return self._values[encoding]
        except KeyError:
            raise KeyError(f"unsupported VMCS component {encoding:#x}") from None

    def write(self, encoding: int, value: int) -> None:
        """Write a field by encoding, truncating to the field width."""
        fmask = _FIELD_MASK.get(encoding)
        if fmask is None:
            raise KeyError(f"unsupported VMCS component {encoding:#x}")
        value &= fmask
        values = self._values
        if values[encoding] != value:
            values[encoding] = value
            self._gen += 1
            log = self._log
            log.append(encoding)
            if len(log) >= _LOG_MAX:
                del log[:len(log) - _LOG_KEEP]
                self._log_base = self._gen - _LOG_KEEP

    # --- dirty tracking ----------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter of value-changing writes."""
        return self._gen

    def changes_since(self, gen: int) -> frozenset[int] | set[int] | None:
        """Encodings written (with a new value) since generation *gen*.

        Returns ``None`` when the journal no longer reaches back to
        *gen* (it was truncated), which callers must treat as
        "everything may have changed".
        """
        if gen == self._gen:
            return _EMPTY_SET
        if gen < self._log_base:
            return None
        return set(self._log[gen - self._log_base:])

    def memo_get(self, key):
        """Fetch a memoized derived result (opaque entry) by *key*."""
        return self._memo.get(key)

    def memo_put(self, key, entry) -> None:
        """Store a memoized derived result.

        Entries must be treated as immutable: ``copy()`` shares them
        between snapshots, so consumers replace entries rather than
        mutating them in place.
        """
        self._memo[key] = entry

    def __getitem__(self, encoding: int) -> int:
        return self.read(encoding)

    def __setitem__(self, encoding: int, value: int) -> None:
        self.write(encoding, value)

    def by_name(self, name: str) -> int:
        """Read a field by its symbolic name."""
        return self.read(F.SPEC_BY_NAME[name].encoding)

    def set_by_name(self, name: str, value: int) -> None:
        """Write a field by its symbolic name."""
        self.write(F.SPEC_BY_NAME[name].encoding, value)

    def fields(self) -> Iterator[tuple[FieldSpec, int]]:
        """Iterate (spec, value) pairs in canonical layout order."""
        for spec in ALL_FIELDS:
            yield spec, self._values[spec.encoding]

    # --- launch state -----------------------------------------------------

    def clear(self) -> None:
        """vmclear semantics: flush and mark the VMCS clear."""
        self.launch_state = VmcsState.CLEAR

    def mark_launched(self) -> None:
        """Successful vmlaunch moves the VMCS to the launched state."""
        self.launch_state = VmcsState.LAUNCHED

    @property
    def launched(self) -> bool:
        """True when in the launched state."""
        return self.launch_state == VmcsState.LAUNCHED

    # --- whole-structure operations ----------------------------------------

    def copy(self) -> "Vmcs":
        """Deep copy, preserving launch state.

        Fast path: bypasses ``__init__`` (no field-table rebuild) and
        carries over the generation counter, change journal, memo
        entries, and the serialization cache, so a snapshot starts warm
        and diverges from its parent through its own journal.
        """
        dup = Vmcs.__new__(Vmcs)
        dup.revision_id = self.revision_id
        dup.launch_state = self.launch_state
        dup._values = dict(self._values)
        dup._gen = self._gen
        dup._log = list(self._log)
        dup._log_base = self._log_base
        dup._memo = dict(self._memo)
        dup._ser = self._ser
        dup._ser_gen = self._ser_gen
        dup._read_trace = None
        return dup

    def snapshot(self) -> "Vmcs":
        """Alias for :meth:`copy` in snapshot/restore pairs."""
        return self.copy()

    def restore(self, snap: "Vmcs") -> None:
        """Restore field values from *snap*, journalling the deltas.

        Restoring goes through :meth:`write` so that generation-holding
        consumers see the restored fields as changes instead of silently
        observing rolled-back values.
        """
        self.launch_state = snap.launch_state
        values = snap._values
        for encoding, value in self._values.items():
            other = values[encoding]
            if other != value:
                self.write(encoding, other)

    def load_dict(self, values: dict[int, int]) -> None:
        """Bulk-write fields from an encoding->value mapping."""
        for encoding, value in values.items():
            self.write(encoding, value)

    def diff(self, other: "Vmcs") -> list[tuple[FieldSpec, int, int]]:
        """Fields whose values differ, as (spec, self_value, other_value)."""
        return [
            (spec, self._values[spec.encoding], other._values[spec.encoding])
            for spec in ALL_FIELDS
            if self._values[spec.encoding] != other._values[spec.encoding]
        ]

    def serialize(self) -> bytes:
        """Pack every field into the canonical little-endian layout.

        The packed image is cached behind the generation counter, so
        repeated Hamming-distance comparisons (or hashes) of an
        unchanged structure reuse the same immutable bytes.
        """
        if self._ser_gen == self._gen and self._ser is not None:
            return self._ser
        values = self._values
        out = bytearray()
        for encoding, nbytes in _FIELD_NBYTES:
            out += values[encoding].to_bytes(nbytes, "little")
        packed = bytes(out)
        self._ser = packed
        self._ser_gen = self._gen
        return packed

    @classmethod
    def deserialize(cls, raw: bytes, revision_id: int = 0x12) -> "Vmcs":
        """Unpack a serialised layout (inverse of :meth:`serialize`).

        Extra trailing bytes are ignored; short input raises ValueError.
        This is also how the state generator interprets raw fuzzing input
        as "several kilobytes of binary data treated as raw VMCS content".
        """
        if len(raw) < F.LAYOUT_BYTES:
            raise ValueError(
                f"need {F.LAYOUT_BYTES} bytes for a VMCS image, got {len(raw)}"
            )
        vmcs = cls(revision_id)
        offset = 0
        for encoding, nbytes in _FIELD_NBYTES:
            vmcs._values[encoding] = int.from_bytes(
                raw[offset:offset + nbytes], "little"
            )
            offset += nbytes
        return vmcs

    def hamming(self, other: "Vmcs") -> int:
        """Bitwise Hamming distance over the serialised layout."""
        return bytes_hamming(self.serialize(), other.serialize())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vmcs):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self.serialize())

    def __repr__(self) -> str:
        nonzero = sum(1 for v in self._values.values() if v)
        return (f"<Vmcs rev={self.revision_id:#x} state={self.launch_state} "
                f"nonzero_fields={nonzero}/{len(self._values)}>")


def guest_state_fields() -> tuple[FieldSpec, ...]:
    """All guest-state field specs."""
    return tuple(s for s in ALL_FIELDS if s.group is FieldGroup.GUEST)


def host_state_fields() -> tuple[FieldSpec, ...]:
    """All host-state field specs."""
    return tuple(s for s in ALL_FIELDS if s.group is FieldGroup.HOST)


def control_fields() -> tuple[FieldSpec, ...]:
    """All control field specs."""
    return tuple(s for s in ALL_FIELDS if s.group is FieldGroup.CONTROL)
