"""Tests for the shared hypervisor infrastructure."""


from repro.arch.cpuid import Vendor
from repro.hypervisors.base import (
    ExecResult,
    GuestInstruction,
    KernelLog,
    SanitizerKind,
    VcpuConfig,
)
from repro.hypervisors.memory import GuestMemory
from repro.arch.msr import MsrEntry
from repro.svm.vmcb import Vmcb
from repro.vmx.vmcs import Vmcs


class TestVcpuConfig:
    def test_default_config(self):
        config = VcpuConfig.default(Vendor.INTEL)
        assert config.enabled("ept")
        assert config.enabled("nested")
        assert not config.enabled("sgx")

    def test_unknown_feature_defaults_off(self):
        assert not VcpuConfig.default(Vendor.INTEL).enabled("quantum")


class TestKernelLog:
    def test_write_and_grep(self):
        log = KernelLog()
        log.write("BUG: something bad")
        log.write("all fine")
        assert log.grep("BUG") == ["BUG: something bad"]

    def test_clear(self):
        log = KernelLog()
        log.write("x")
        log.clear()
        assert log.lines == []


class TestGuestInstruction:
    def test_operand_access(self):
        instr = GuestInstruction("rdmsr", {"msr": 0x10}, level=2)
        assert instr.op("msr") == 0x10
        assert instr.op("missing", 7) == 7

    def test_str(self):
        text = str(GuestInstruction("vmxon", {"addr": 0x1000}))
        assert "L1:vmxon" in text and "0x1000" in text


class TestExecResult:
    def test_success(self):
        result = ExecResult.success("ok", value=3, level=2)
        assert result.ok and result.value == 3 and result.level == 2

    def test_fault(self):
        result = ExecResult.fault("#UD")
        assert not result.ok and result.detail == "#UD"


class TestGuestMemory:
    def test_address_classification(self):
        assert GuestMemory.in_guest_ram(0x1000)
        assert not GuestMemory.in_guest_ram(0x2000_0000)
        assert GuestMemory.in_l0_reserved(0xF000_0000)
        assert not GuestMemory.in_l0_reserved(0x1000)

    def test_vmcs_page_alignment(self):
        memory = GuestMemory()
        vmcs = Vmcs()
        memory.put_vmcs(0x3123, vmcs)  # sub-page offset discarded
        assert memory.get_vmcs(0x3000) is vmcs

    def test_ensure_vmcs_idempotent(self):
        memory = GuestMemory()
        first = memory.ensure_vmcs(0x3000)
        assert memory.ensure_vmcs(0x3FFF) is first

    def test_vmcb_storage(self):
        memory = GuestMemory()
        vmcb = Vmcb()
        memory.put_vmcb(0x5000, vmcb)
        assert memory.get_vmcb(0x5000) is vmcb
        assert memory.get_vmcb(0x6000) is None

    def test_msr_area_roundtrip(self):
        memory = GuestMemory()
        entries = [MsrEntry(0x10, 1), MsrEntry(0x20, 2)]
        memory.put_msr_area(0x15000, entries)
        assert memory.get_msr_area(0x15000, 2) == entries

    def test_msr_area_pads_with_zero_entries(self):
        memory = GuestMemory()
        memory.put_msr_area(0x15000, [MsrEntry(0x10, 1)])
        area = memory.get_msr_area(0x15000, 3)
        assert len(area) == 3
        assert area[1] == MsrEntry(0, 0)

    def test_msr_area_count_clamped(self):
        """A fuzzed count field must never cause a giant allocation."""
        memory = GuestMemory()
        area = memory.get_msr_area(0x15000, 1 << 30)
        assert len(area) == GuestMemory.MSR_AREA_MAX


class TestSanitizerPlumbing:
    def test_report_mirrors_to_log(self):
        from repro.hypervisors import KvmHypervisor

        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        hv.report_sanitizer(SanitizerKind.KASAN, "somewhere", "uaf")
        assert len(hv.sanitizer_events) == 1
        assert hv.log.grep("KASAN")

    def test_bug_assert_records_only_on_failure(self):
        from repro.hypervisors import KvmHypervisor

        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        hv.bug_assert(True, "fine", "never seen")
        assert not hv.sanitizer_events
        hv.bug_assert(False, "broken", "seen")
        assert hv.sanitizer_events[0].kind is SanitizerKind.ASSERTION

    def test_reset_clears_state(self):
        from repro.hypervisors import KvmHypervisor

        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        hv.report_sanitizer(SanitizerKind.WARN, "x", "y")
        hv.crashed = True
        hv.reset()
        assert not hv.sanitizer_events and not hv.crashed
        assert hv.log.lines == []
