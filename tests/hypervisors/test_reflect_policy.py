"""Exhaustive tests of the exit-reflection policies (nested dispatchers).

The reflect decision — does an L2 exit belong to L1 or to L0? — is the
densest branch structure in the nested code and the reason diverse
control fields matter. Each case pins one (reason, control-bit) pair.
"""

import pytest

from repro.arch.cpuid import Vendor
from repro.hypervisors import GuestInstruction, KvmHypervisor, VcpuConfig
from repro.svm.exit_codes import SvmExitCode
from repro.svm.fields import Misc1Intercept, Misc2Intercept
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import PinBased, ProcBased, Secondary
from repro.vmx.exit_reasons import ExitReason


@pytest.fixture
def kvm_intel():
    hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
    return hv.nested_vmx


@pytest.fixture
def kvm_amd():
    hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD))
    return hv.nested_svm


def instr(mnemonic="probe", **operands):
    return GuestInstruction(mnemonic, operands, level=2)


class TestVmxReflectPolicy:
    def _vmcs(self, **controls):
        vmcs = golden_vmcs()
        for name, value in controls.items():
            vmcs.set_by_name(name, value)
        return vmcs

    def test_exception_follows_bitmap(self, kvm_intel):
        vmcs = self._vmcs(exception_bitmap=1 << 14)
        assert kvm_intel.l1_wants_exit(vmcs, ExitReason.EXCEPTION_NMI,
                                       instr(vector=14))
        assert not kvm_intel.l1_wants_exit(vmcs, ExitReason.EXCEPTION_NMI,
                                           instr(vector=13))

    def test_external_interrupt_follows_pin(self, kvm_intel):
        on = self._vmcs()
        on.write(F.PIN_BASED_VM_EXEC_CONTROL,
                 on.read(F.PIN_BASED_VM_EXEC_CONTROL)
                 | PinBased.EXT_INTR_EXITING)
        assert kvm_intel.l1_wants_exit(on, ExitReason.EXTERNAL_INTERRUPT, instr())
        off = self._vmcs()
        assert not kvm_intel.l1_wants_exit(off, ExitReason.EXTERNAL_INTERRUPT,
                                           instr())

    @pytest.mark.parametrize("reason", [
        ExitReason.TRIPLE_FAULT, ExitReason.CPUID, ExitReason.GETSEC,
        ExitReason.INVD, ExitReason.XSETBV, ExitReason.TASK_SWITCH,
        ExitReason.VMCALL, ExitReason.VMXON, ExitReason.VMLAUNCH,
        ExitReason.VMREAD, ExitReason.INVEPT, ExitReason.VMFUNC,
    ])
    def test_unconditional_exits_always_reflect(self, kvm_intel, reason):
        assert kvm_intel.l1_wants_exit(self._vmcs(), reason, instr())

    @pytest.mark.parametrize("reason,bit", [
        (ExitReason.HLT, ProcBased.HLT_EXITING),
        (ExitReason.INVLPG, ProcBased.INVLPG_EXITING),
        (ExitReason.RDPMC, ProcBased.RDPMC_EXITING),
        (ExitReason.RDTSC, ProcBased.RDTSC_EXITING),
        (ExitReason.MWAIT_INSTRUCTION, ProcBased.MWAIT_EXITING),
        (ExitReason.MONITOR_INSTRUCTION, ProcBased.MONITOR_EXITING),
        (ExitReason.DR_ACCESS, ProcBased.MOV_DR_EXITING),
    ])
    def test_proc_gated_exits(self, kvm_intel, reason, bit):
        vmcs = self._vmcs()
        proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL, proc | bit)
        assert kvm_intel.l1_wants_exit(vmcs, reason, instr())
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL, proc & ~bit)
        assert not kvm_intel.l1_wants_exit(vmcs, reason, instr())

    def test_cr0_mask_decides(self, kvm_intel):
        vmcs = self._vmcs(cr0_guest_host_mask=0x1, cr0_read_shadow=0x1)
        # Write agreeing with the shadow: L0 handles it.
        assert not kvm_intel.l1_wants_exit(
            vmcs, ExitReason.CR_ACCESS, instr(cr=0, write=1, value=0x31))
        # Write disagreeing on a masked bit: reflect.
        assert kvm_intel.l1_wants_exit(
            vmcs, ExitReason.CR_ACCESS, instr(cr=0, write=1, value=0x30))

    def test_cr3_target_whitelist(self, kvm_intel):
        vmcs = self._vmcs(cr3_target_count=1, cr3_target_value0=0x30000)
        proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   proc | ProcBased.CR3_LOAD_EXITING)
        assert not kvm_intel.l1_wants_exit(
            vmcs, ExitReason.CR_ACCESS, instr(cr=3, write=1, value=0x30000))
        assert kvm_intel.l1_wants_exit(
            vmcs, ExitReason.CR_ACCESS, instr(cr=3, write=1, value=0x40000))

    def test_cr8_gating(self, kvm_intel):
        vmcs = self._vmcs()
        proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL, proc | ProcBased.CR8_LOAD_EXITING)
        assert kvm_intel.l1_wants_exit(
            vmcs, ExitReason.CR_ACCESS, instr(cr=8, write=1, value=5))
        assert not kvm_intel.l1_wants_exit(
            vmcs, ExitReason.CR_ACCESS, instr(cr=8, write=0, value=0))

    def test_io_uncond_vs_bitmap(self, kvm_intel):
        uncond = self._vmcs()
        assert kvm_intel.l1_wants_exit(uncond, ExitReason.IO_INSTRUCTION,
                                       instr(port=0x70))
        bitmap = self._vmcs(io_bitmap_a=0x10000, io_bitmap_b=0x11000)
        proc = bitmap.read(F.CPU_BASED_VM_EXEC_CONTROL)
        bitmap.write(F.CPU_BASED_VM_EXEC_CONTROL, proc | ProcBased.USE_IO_BITMAPS)
        assert kvm_intel.l1_wants_exit(bitmap, ExitReason.IO_INSTRUCTION,
                                       instr(port=0x71))   # odd -> trapped
        assert not kvm_intel.l1_wants_exit(bitmap, ExitReason.IO_INSTRUCTION,
                                           instr(port=0x70))

    def test_msr_without_bitmap_always_reflects(self, kvm_intel):
        vmcs = self._vmcs()
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
                   & ~ProcBased.USE_MSR_BITMAPS)
        assert kvm_intel.l1_wants_exit(vmcs, ExitReason.MSR_READ,
                                       instr(msr=0x10))

    def test_ept_violation_ownership(self, kvm_intel):
        with_ept = self._vmcs()
        assert kvm_intel.l1_wants_exit(with_ept, ExitReason.EPT_VIOLATION,
                                       instr())  # golden enables EPT
        without = self._vmcs(secondary_vm_exec_control=0)
        assert not kvm_intel.l1_wants_exit(without, ExitReason.EPT_VIOLATION,
                                           instr())

    def test_pml_full_is_l0s(self, kvm_intel):
        assert not kvm_intel.l1_wants_exit(self._vmcs(), ExitReason.PML_FULL,
                                           instr())

    def test_pause_either_control(self, kvm_intel):
        plain = self._vmcs()
        proc = plain.read(F.CPU_BASED_VM_EXEC_CONTROL)
        plain.write(F.CPU_BASED_VM_EXEC_CONTROL, proc | ProcBased.PAUSE_EXITING)
        assert kvm_intel.l1_wants_exit(plain, ExitReason.PAUSE_INSTRUCTION,
                                       instr())
        ple = self._vmcs()
        ple.write(F.SECONDARY_VM_EXEC_CONTROL,
                  ple.read(F.SECONDARY_VM_EXEC_CONTROL)
                  | Secondary.PAUSE_LOOP_EXITING)
        assert kvm_intel.l1_wants_exit(ple, ExitReason.PAUSE_INSTRUCTION,
                                       instr())


class TestSvmReflectPolicy:
    def _vmcb(self, **fields):
        vmcb = golden_vmcb()
        for name, value in fields.items():
            vmcb.write(name, value)
        return vmcb

    def test_exception_follows_bitmap(self, kvm_amd):
        vmcb = self._vmcb(intercept_exceptions=1 << 14)
        from repro.hypervisors.l2map import svm_exception_code

        assert kvm_amd.l1_wants_exit(vmcb, svm_exception_code(14), instr())
        assert not kvm_amd.l1_wants_exit(vmcb, svm_exception_code(13), instr())

    @pytest.mark.parametrize("code,bit", [
        (SvmExitCode.CPUID, Misc1Intercept.CPUID),
        (SvmExitCode.HLT, Misc1Intercept.HLT),
        (SvmExitCode.RDTSC, Misc1Intercept.RDTSC),
        (SvmExitCode.INTR, Misc1Intercept.INTR),
        (SvmExitCode.NMI, Misc1Intercept.NMI),
        (SvmExitCode.SMI, Misc1Intercept.SMI),
        (SvmExitCode.INIT, Misc1Intercept.INIT),
        (SvmExitCode.VINTR, Misc1Intercept.VINTR),
        (SvmExitCode.INVLPG, Misc1Intercept.INVLPG),
        (SvmExitCode.PAUSE, Misc1Intercept.PAUSE),
    ])
    def test_misc1_gated(self, kvm_amd, code, bit):
        on = self._vmcb(intercept_misc1=bit)
        off = self._vmcb(intercept_misc1=0)
        assert kvm_amd.l1_wants_exit(on, int(code), instr())
        assert not kvm_amd.l1_wants_exit(off, int(code), instr())

    @pytest.mark.parametrize("code,bit", [
        (SvmExitCode.VMRUN, Misc2Intercept.VMRUN),
        (SvmExitCode.VMLOAD, Misc2Intercept.VMLOAD),
        (SvmExitCode.VMSAVE, Misc2Intercept.VMSAVE),
        (SvmExitCode.STGI, Misc2Intercept.STGI),
        (SvmExitCode.CLGI, Misc2Intercept.CLGI),
        (SvmExitCode.VMMCALL, Misc2Intercept.VMMCALL),
    ])
    def test_misc2_gated(self, kvm_amd, code, bit):
        on = self._vmcb(intercept_misc2=bit)
        off = self._vmcb(intercept_misc2=0)
        assert kvm_amd.l1_wants_exit(on, int(code), instr())
        assert not kvm_amd.l1_wants_exit(off, int(code), instr())

    def test_io_follows_iopm(self, kvm_amd):
        vmcb = self._vmcb()
        assert kvm_amd.l1_wants_exit(vmcb, int(SvmExitCode.IOIO),
                                     instr(port=0x71))
        assert not kvm_amd.l1_wants_exit(vmcb, int(SvmExitCode.IOIO),
                                         instr(port=0x70))

    def test_io_without_protection_is_l0s(self, kvm_amd):
        vmcb = self._vmcb(intercept_misc1=0)
        assert not kvm_amd.l1_wants_exit(vmcb, int(SvmExitCode.IOIO),
                                         instr(port=0x71))

    def test_npf_follows_nested_paging(self, kvm_amd):
        with_np = self._vmcb()
        assert kvm_amd.l1_wants_exit(with_np, int(SvmExitCode.NPF), instr())
        without = self._vmcb(np_control=0)
        assert not kvm_amd.l1_wants_exit(without, int(SvmExitCode.NPF), instr())
