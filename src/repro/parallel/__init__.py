"""Sharded parallel fuzzing campaigns (AFL++ primary/secondary style).

One logical campaign is split across N workers, each a full
agent + engine pair with a deterministically derived seed; workers
exchange locally discovered queue entries through a sync directory and
the orchestrator merges coverage, virgin maps, timelines, and stats into
one :class:`ParallelCampaignResult`. See DESIGN.md, "Parallel campaigns
& performance".
"""

from repro.parallel.backoff import expo_backoff
from repro.parallel.campaign import ParallelCampaign, ParallelCampaignResult
from repro.parallel.scheduler import (
    SCHEDULES,
    AdaptiveSync,
    FileLeaseBoard,
    Lease,
    LeaseBoard,
    LeaseBoardError,
    LeaseRecord,
    WorkerPool,
)
from repro.parallel.supervisor import (
    CampaignAborted,
    FailureKind,
    Supervisor,
    SupervisorConfig,
    SupervisorEvent,
)
from repro.parallel.sync import SYNC_FORMATS, SyncDirectory, SyncStats
from repro.parallel.transport import (
    FederatedCampaign,
    TransportError,
    run_federated_node,
)
from repro.parallel.worker import CampaignWorker, WorkerSpec, worker_seed

__all__ = [
    "AdaptiveSync",
    "CampaignAborted",
    "CampaignWorker",
    "FailureKind",
    "FederatedCampaign",
    "FileLeaseBoard",
    "Lease",
    "LeaseBoard",
    "LeaseBoardError",
    "LeaseRecord",
    "ParallelCampaign",
    "ParallelCampaignResult",
    "SCHEDULES",
    "SYNC_FORMATS",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorEvent",
    "SyncDirectory",
    "SyncStats",
    "TransportError",
    "WorkerPool",
    "WorkerSpec",
    "expo_backoff",
    "run_federated_node",
    "worker_seed",
]
