"""Command-line interface: run NecoFuzz campaigns from a shell.

    $ python -m repro --hypervisor kvm --vendor intel --iterations 1000
    $ python -m repro --hypervisor xen --vendor amd --seed 23 \\
          --reports-dir ./findings
    $ python -m repro --hypervisor kvm --vendor intel --patched \\
          cr4_pae_consistency,dummy_root --iterations 500
    $ python -m repro telemetry-report ./campaign-root
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import ComponentToggles, NecoFuzz, Vendor


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NecoFuzz: fuzz nested virtualization via "
                    "fuzz-harness VMs (EuroSys '26 reproduction)")
    parser.add_argument("--hypervisor", choices=("kvm", "xen", "virtualbox"),
                        default="kvm", help="L0 hypervisor model to fuzz")
    parser.add_argument("--vendor", choices=("intel", "amd"), default="intel",
                        help="CPU vendor (virtualbox supports intel only)")
    parser.add_argument("--iterations", type=int, default=500,
                        help="fuzzing budget (test cases)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed (campaigns are deterministic)")
    parser.add_argument("--reports-dir", type=Path, default=None,
                        help="directory for crash reports (.json + .bin)")
    parser.add_argument("--patched", default="",
                        help="comma-separated fix flags to apply "
                             "(e.g. cr4_pae_consistency,dummy_root)")
    parser.add_argument("--no-harness-mutation", action="store_true",
                        help="ablation: fixed init/runtime templates")
    parser.add_argument("--no-validator", action="store_true",
                        help="ablation: disable the VM state validator")
    parser.add_argument("--no-configurator", action="store_true",
                        help="ablation: static default vCPU configuration")
    parser.add_argument("--blackbox", action="store_true",
                        help="disable coverage guidance (Table-5 mode)")
    parser.add_argument("--async-events", action="store_true",
                        help="enable the asynchronous-event extension")
    parser.add_argument("--sample-every", type=int, default=50,
                        help="coverage-timeline sampling interval")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the campaign across N synced workers "
                             "(1 = serial; see DESIGN.md)")
    parser.add_argument("--sync-every", type=int, default=100,
                        help="iterations each worker runs between corpus "
                             "sync points (workers > 1 only)")
    parser.add_argument("--parallel-mode", choices=("inline", "process"),
                        default="process",
                        help="inline = deterministic round-robin in one "
                             "process; process = one forked OS process "
                             "per worker")
    parser.add_argument("--schedule", choices=("static", "stealing"),
                        default="static",
                        help="static = fixed per-worker shares; stealing = "
                             "workers pull adaptively sized leases off a "
                             "shared board, and stragglers' leases are "
                             "reclaimed and re-issued (DESIGN.md §13)")
    parser.add_argument("--lease-size", type=int, default=0, metavar="CASES",
                        help="fixed cases per lease under --schedule "
                             "stealing; 0 (default) sizes leases from each "
                             "worker's measured cases/sec")
    parser.add_argument("--power-schedule", choices=("flat", "fast"),
                        default="flat",
                        help="seed scheduling (DESIGN.md §16): flat = the "
                             "classic uniform draw (default, fingerprint-"
                             "pinned); fast = AFLFast-style energy "
                             "weighting with a Thompson-sampling operator "
                             "bandit and periodic corpus distillation "
                             "(deterministic, different trajectories)")
    parser.add_argument("--sync-adaptive", action="store_true",
                        help="back off the corpus-sync interval "
                             "geometrically while the subsumption filter "
                             "absorbs >=90%% of imports; snap back to "
                             "--sync-every on new virgin bits")
    parser.add_argument("--sync-format", choices=("v1", "v2"), default="v2",
                        help="corpus wire format between workers: v2 = "
                             "binary append-only queue (default), v1 = "
                             "legacy per-entry files for pre-existing "
                             "sync directories")
    parser.add_argument("--reuse-hypervisor", action="store_true",
                        help="reuse built hypervisors across same-config "
                             "cases (faster, changes trajectories)")
    parser.add_argument("--batch-size", type=int, default=0, metavar="N",
                        help="execute N cases per tick through the batched "
                             "oracle hot path (DESIGN.md §12); 0 = classic "
                             "loop, 1 = batched path with bit-identical "
                             "results")
    parser.add_argument("--corpus-dir", type=Path, default=None,
                        help="resume from a saved corpus directory "
                             "(serial campaigns only); crash reproducers "
                             "land in <corpus-dir>/crashes/")
    resilience = parser.add_argument_group(
        "resilience (DESIGN.md §9)")
    resilience.add_argument("--case-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-case wall-clock deadline; in process "
                                 "mode a worker whose heartbeat goes stale "
                                 "past it is killed and restarted")
    resilience.add_argument("--max-restarts", type=int, default=3,
                            help="consecutive failures per shard before "
                                 "the circuit breaker opens (default 3)")
    resilience.add_argument("--checkpoint-interval", type=int, default=0,
                            metavar="ROUNDS",
                            help="sync rounds between campaign checkpoints "
                                 "(0 = off; needs --sync-dir)")
    resilience.add_argument("--resume", action="store_true",
                            help="continue an interrupted campaign from "
                                 "its checkpoints (needs --sync-dir)")
    resilience.add_argument("--sync-dir", type=Path, default=None,
                            metavar="DIR",
                            help="persistent sync/checkpoint root for "
                                 "parallel campaigns (default: a "
                                 "temporary directory)")
    federation = parser.add_argument_group("federation (DESIGN.md §14)")
    federation.add_argument(
        "--coordinator", default=None, metavar="ADDR",
        help="run a federated campaign: serve leases and relay corpus "
             "records at ADDR (host:port or unix:/path) to --workers "
             "externally launched 'python -m repro --node ADDR' nodes")
    federation.add_argument(
        "--node", default=None, metavar="ADDR",
        help="join a federated campaign as one node: dial the "
             "coordinator at ADDR, fetch the campaign config, fuzz "
             "until the shared budget drains")
    federation.add_argument(
        "--transport-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-RPC reply timeout (and barrier resend period) for "
             "the federation transport (default 5.0)")
    observability = parser.add_argument_group("observability (DESIGN.md §11)")
    observability.add_argument(
        "--telemetry", choices=("off", "metrics", "full"), default="metrics",
        help="off = near-zero overhead; metrics = in-process "
             "counters/histograms (default); full = metrics plus a "
             "JSONL event stream per worker. Purely observational: "
             "results are identical across modes")
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    """Parser for the ``telemetry-report`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry-report",
        description="Render a merged telemetry summary for a campaign "
                    "root (the --sync-dir of a finished run)")
    parser.add_argument("root", type=Path,
                        help="campaign root holding metrics.json (or "
                             "worker-*/metrics.json shard snapshots)")
    parser.add_argument("--top", type=int, default=12,
                        help="how many spans/counters to show (default 12)")
    return parser


def telemetry_report_main(argv: list[str]) -> int:
    """Entry point for ``python -m repro telemetry-report <root>``."""
    from repro.telemetry.report import render_report

    args = build_report_parser().parse_args(argv)
    try:
        print(render_report(args.root, top=args.top))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def node_main(args) -> int:
    """Entry point for ``python -m repro --node ADDR``."""
    from repro.parallel import TransportError, run_federated_node

    print(f"joining federation at {args.node}...")
    try:
        report = run_federated_node(args.node,
                                    timeout=args.transport_timeout)
    except (TransportError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = report.result.engine_stats
    print(f"node {report.index} done: {stats.iterations} case(s), "
          f"{stats.crashes} crash(es), {stats.imported} import(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "telemetry-report":
        return telemetry_report_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.transport_timeout <= 0:
        print("error: --transport-timeout must be > 0", file=sys.stderr)
        return 2
    if args.coordinator and args.node:
        print("error: --coordinator and --node are mutually exclusive "
              "(one process is one role)", file=sys.stderr)
        return 2
    if args.node is not None:
        return node_main(args)
    if args.coordinator is not None and args.workers < 1:
        print("error: --coordinator needs --workers >= 1 (how many nodes "
              "will dial in)", file=sys.stderr)
        return 2
    if args.coordinator is not None and (args.resume
                                         or args.checkpoint_interval):
        print("error: --resume/--checkpoint-interval do not apply to "
              "federated campaigns", file=sys.stderr)
        return 2
    if args.hypervisor == "virtualbox" and args.vendor != "intel":
        print("error: the VirtualBox model is Intel-only", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1 and (args.reports_dir or args.corpus_dir):
        print("error: --reports-dir/--corpus-dir are serial-only "
              "(use --workers 1)", file=sys.stderr)
        return 2
    if (args.resume or args.checkpoint_interval) and args.sync_dir is None:
        print("error: --resume/--checkpoint-interval need a persistent "
              "--sync-dir", file=sys.stderr)
        return 2
    if (args.resume or args.checkpoint_interval) and args.workers == 1:
        print("error: checkpoint/resume applies to parallel campaigns "
              "(use --workers >= 2, or --corpus-dir for serial resume)",
              file=sys.stderr)
        return 2
    if args.batch_size < 0:
        print("error: --batch-size must be >= 0", file=sys.stderr)
        return 2
    if args.schedule == "stealing" and args.workers == 1:
        print("error: --schedule stealing needs --workers >= 2 "
              "(one worker has nobody to steal from)", file=sys.stderr)
        return 2
    if args.lease_size < 0:
        print("error: --lease-size must be >= 0", file=sys.stderr)
        return 2
    if (args.lease_size and args.schedule != "stealing"
            and args.coordinator is None):
        print("error: --lease-size applies to --schedule stealing "
              "(or a federated --coordinator campaign)", file=sys.stderr)
        return 2

    toggles = ComponentToggles(
        use_harness=not args.no_harness_mutation,
        use_validator=not args.no_validator,
        use_configurator=not args.no_configurator)
    patched = frozenset(f for f in args.patched.split(",") if f)

    print(f"fuzzing {args.hypervisor}/{args.vendor} "
          f"(seed {args.seed}, {args.iterations} cases"
          + (f", {args.workers} workers" if args.workers > 1 else "")
          + ")...")
    if args.coordinator is not None:
        from repro.parallel import FederatedCampaign

        campaign = FederatedCampaign(
            hypervisor=args.hypervisor,
            vendor=Vendor(args.vendor),
            seed=args.seed,
            workers=args.workers,
            lease_size=args.lease_size,
            sync_dir=args.sync_dir,
            toggles=toggles,
            coverage_guided=not args.blackbox,
            patched=patched,
            async_events=args.async_events,
            reuse_hypervisor=args.reuse_hypervisor,
            batch_size=args.batch_size,
            power_schedule=args.power_schedule,
            address=args.coordinator,
            transport_timeout=args.transport_timeout,
            external=True,
            telemetry_mode=args.telemetry)
        print(f"federation coordinator at {args.coordinator}; start "
              f"{args.workers} node(s) with: python -m repro --node "
              f"{args.coordinator}")
    elif args.workers > 1:
        from repro.parallel import ParallelCampaign

        campaign = ParallelCampaign(
            hypervisor=args.hypervisor,
            vendor=Vendor(args.vendor),
            seed=args.seed,
            workers=args.workers,
            sync_every=args.sync_every,
            mode=args.parallel_mode,
            sync_dir=args.sync_dir,
            sync_format=args.sync_format,
            toggles=toggles,
            coverage_guided=not args.blackbox,
            patched=patched,
            async_events=args.async_events,
            reuse_hypervisor=args.reuse_hypervisor,
            batch_size=args.batch_size,
            case_timeout=args.case_timeout,
            max_restarts=args.max_restarts,
            checkpoint_interval=args.checkpoint_interval,
            resume=args.resume,
            telemetry_mode=args.telemetry,
            schedule=args.schedule,
            lease_size=args.lease_size,
            sync_adaptive=args.sync_adaptive,
            power_schedule=args.power_schedule)
    else:
        from repro import telemetry

        telemetry.set_mode(args.telemetry)
        campaign = NecoFuzz(
            hypervisor=args.hypervisor,
            vendor=Vendor(args.vendor),
            seed=args.seed,
            toggles=toggles,
            coverage_guided=not args.blackbox,
            patched=patched,
            async_events=args.async_events,
            reports_dir=args.reports_dir,
            corpus_dir=args.corpus_dir,
            reuse_hypervisor=args.reuse_hypervisor,
            batch_size=args.batch_size,
            power_schedule=args.power_schedule)
    result = campaign.run(args.iterations, sample_every=args.sample_every)

    for point in result.timeline.points:
        print(f"  {point.iteration:>7} cases  "
              f"{100 * point.coverage:5.1f}% nested-code coverage")
    print(result.summary())

    for report in result.reports:
        print(f"\n[{report.anomaly.method.value}] iteration {report.iteration}")
        print(f"  {report.anomaly.message}")
        print(f"  reproduce: {report.command_line}")
    if args.reports_dir and result.reports:
        print(f"\nreports written to {args.reports_dir}/")
    if args.workers > 1 and args.sync_dir is not None and args.telemetry != "off":
        print(f"telemetry: python -m repro telemetry-report {args.sync_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
