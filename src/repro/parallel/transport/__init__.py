"""Federated campaign transport (DESIGN.md §14).

Fault-tolerant corpus replication and lease scheduling over a
length-prefixed, CRC-framed socket protocol:

* :mod:`frames` — the wire framing (control JSON + binary blobs).
* :mod:`coordinator` — the single-threaded lease/relay server.
* :mod:`node` — the retrying RPC client and the node protocol loop.
* :mod:`federation` — :class:`FederatedCampaign` and the external-node
  entry point :func:`run_federated_node`.
"""

from repro.parallel.transport.coordinator import (
    Coordinator,
    TransportError,
    default_local_address,
    format_address,
    parse_address,
)
from repro.parallel.transport.federation import (
    FederatedCampaign,
    run_federated_node,
)
from repro.parallel.transport.frames import FrameDecoder, FrameError
from repro.parallel.transport.node import NodeClient, run_node

__all__ = [
    "Coordinator",
    "FederatedCampaign",
    "FrameDecoder",
    "FrameError",
    "NodeClient",
    "TransportError",
    "default_local_address",
    "format_address",
    "parse_address",
    "run_federated_node",
    "run_node",
]
