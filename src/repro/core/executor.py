"""The UEFI executor analogue (paper §4.1/§4.5).

"The core fuzzing logic within the fuzz-harness VM is orchestrated by an
executor, implemented as a self-contained UEFI application." The agent
embeds the fuzzing input into the executor at build time; the executor
then runs without talking back to the fuzzer: initialization phase,
runtime phase, termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import faults
from repro.arch.cpuid import Vendor
from repro.core.harness import HarnessStats, VmExecutionHarness
from repro.core.state_generator import GeneratedState
from repro.fuzzer.input import FuzzInput
from repro.hypervisors.base import L0Hypervisor


@dataclass
class ComponentToggles:
    """The §5.3 ablation switches over the three VM-generator parts."""

    use_harness: bool = True
    use_validator: bool = True
    use_configurator: bool = True

    @classmethod
    def none(cls) -> "ComponentToggles":
        """The "w/o ALL" configuration."""
        return cls(False, False, False)


@dataclass
class ExecutorResult:
    """Everything one executor run reports to the agent."""

    harness: HarnessStats
    state_meta: GeneratedState
    completed: bool = True


@dataclass
class UefiExecutor:
    """One build of the executor with its embedded input.

    The state generator is injected by the agent (its oracle learns
    across iterations, as the real validator's corrections persist in
    the executor binary between rebuilds).
    """

    vendor: Vendor
    embedded_input: FuzzInput
    state_generator: object
    toggles: ComponentToggles = field(default_factory=ComponentToggles)
    runtime_iterations: int = 24
    #: §6.3 extension: schedule asynchronous events in the runtime loop.
    async_events: bool = False
    #: Optional (vm_state, meta) produced ahead of time — the agent uses
    #: this to keep state generation outside the coverage tracer, the
    #: way the real executor is built before the VM boots.
    pregenerated: tuple | None = None

    def run(self, hv: L0Hypervisor) -> ExecutorResult:
        """Boot the fuzz-harness VM on *hv* and run both phases.

        HostCrash / VmCrash exceptions propagate to the agent, which
        plays the role of the hardware watchdog.
        """
        faults.hook(f"{hv.name}.run")
        vcpu = hv.create_vcpu()
        if self.pregenerated is not None:
            vm_state, meta = self.pregenerated
        else:
            vm_state, meta = self.state_generator.generate(self.embedded_input)
        harness = VmExecutionHarness(
            self.vendor,
            mutate=self.toggles.use_harness,
            runtime_iterations=self.runtime_iterations,
            async_events=self.async_events)
        stats = HarnessStats()
        harness.run_init_phase(hv, vcpu, self.embedded_input, vm_state, stats)
        if stats.entered_l2:
            harness.run_runtime_phase(hv, vcpu, self.embedded_input, stats)
        return ExecutorResult(harness=stats, state_meta=meta)
