"""Work-stealing campaign acceptance tests (DESIGN.md §13).

The determinism contract pinned here: inline stealing with a fixed
``lease_size`` is bit-for-bit reproducible; adaptively sized runs are
not, but replaying their recorded lease log is — same seed + same lease
log ⇒ identical campaign fingerprint. Plus the empty-shard fix: a
budget smaller than the worker count must not spawn (or report)
zero-iteration shards in either schedule.
"""

import pytest

from repro import __main__ as cli
from repro.arch.cpuid import Vendor
from repro.parallel import ParallelCampaign, WorkerPool
from repro.resilience import campaign_fingerprint

SEED = 11


def _campaign(**overrides):
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=3, schedule="stealing", lease_size=10,
                  sync_every=20, mode="inline")
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


class TestInlineStealing:
    @pytest.fixture(scope="class")
    def result(self):
        return _campaign().run(60, sample_every=10)

    def test_budget_conserved_through_leases(self, result):
        assert result.engine_stats.iterations == 60
        assert sum(record.size for record in result.lease_log) == 60
        ids = [record.id for record in result.lease_log]
        assert len(ids) == len(set(ids))

    def test_result_carries_scheduler_fields(self, result):
        assert result.schedule == "stealing"
        assert len(result.lease_log) == 6
        assert result.reclaims == 0

    def test_every_worker_claims_under_even_load(self, result):
        shares = [r.engine_stats.iterations for r in result.per_worker]
        assert all(share > 0 for share in shares)
        assert sum(shares) == 60

    def test_fixed_lease_size_is_deterministic(self, result):
        again = _campaign().run(60, sample_every=10)
        assert campaign_fingerprint(again) == campaign_fingerprint(result)
        assert [(r.id, r.worker, r.size) for r in again.lease_log] \
            == [(r.id, r.worker, r.size) for r in result.lease_log]

    def test_sched_telemetry_counters_recorded(self, result):
        counters = {}
        for shard in (result.telemetry or {}).get("shards", {}).values():
            for name, value in shard.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
        assert counters.get("sched.leases_issued") == 6


class TestLeaseLogReplay:
    def test_adaptive_run_replays_to_identical_fingerprint(self):
        # Adaptive sizing keys off wall-clock rates — the one
        # nondeterministic input. Feeding the recorded log back pins it.
        original = _campaign(workers=2, lease_size=0).run(150,
                                                          sample_every=25)
        assert len(original.lease_log) >= 2
        replay = _campaign(workers=2, lease_size=0,
                           lease_log=original.lease_log).run(
                               150, sample_every=25)
        assert campaign_fingerprint(replay) == campaign_fingerprint(original)
        assert replay.lease_log == original.lease_log

    def test_short_log_rejected(self):
        original = _campaign(workers=2).run(60, sample_every=10)
        with pytest.raises(ValueError):
            _campaign(workers=2,
                      lease_log=original.lease_log[:-1]).run(
                          60, sample_every=10)


class TestAdaptiveSyncCampaign:
    def test_adaptive_sync_completes_and_skips_rounds(self):
        eager = _campaign(lease_size=5).run(60, sample_every=10)
        lazy = _campaign(lease_size=5, sync_adaptive=True).run(
            60, sample_every=10)
        assert lazy.engine_stats.iterations == 60
        # Small leases force many rounds; the controller must have
        # elided some scans the eager run paid for.
        assert lazy.sync_overhead.rounds_skipped_adaptive > 0
        assert (lazy.sync_overhead.import_rounds
                < eager.sync_overhead.import_rounds)


class TestEmptyShardSkip:
    def test_static_inline_skips_zero_iteration_shards(self):
        result = ParallelCampaign(hypervisor="kvm", vendor=Vendor.INTEL,
                                  seed=3, workers=4, mode="inline").run(2)
        assert result.engine_stats.iterations == 2
        assert len(result.per_worker) == 2
        assert all(r.engine_stats.iterations == 1
                   for r in result.per_worker)

    def test_static_process_skips_zero_iteration_shards(self, tmp_path):
        result = ParallelCampaign(
            hypervisor="kvm", vendor=Vendor.INTEL, seed=3, workers=4,
            sync_every=5, mode="process", sync_dir=tmp_path).run(2)
        assert result.engine_stats.iterations == 2
        assert len(result.per_worker) == 2

    def test_stealing_caps_workers_at_lease_count(self):
        result = _campaign(workers=3, lease_size=30).run(60, sample_every=10)
        assert len(result.per_worker) == 2
        assert result.engine_stats.iterations == 60


class TestProcessStealing:
    def test_forked_workers_drain_the_board(self, tmp_path):
        result = ParallelCampaign(
            hypervisor="kvm", vendor=Vendor.AMD, seed=5, workers=2,
            schedule="stealing", lease_size=25, sync_every=50,
            mode="process", sync_dir=tmp_path).run(100, sample_every=25)
        assert result.engine_stats.iterations == 100
        assert sum(record.size for record in result.lease_log) == 100
        ids = [record.id for record in result.lease_log]
        assert len(ids) == len(set(ids))
        assert (tmp_path / "leases" / "board.json").exists()


class TestWarmPool:
    def test_pool_reuses_workers_across_runs(self):
        pool = WorkerPool()
        campaign = ParallelCampaign(hypervisor="kvm", vendor=Vendor.INTEL,
                                    seed=3, workers=2, sync_every=10,
                                    mode="inline", pool=pool)
        first = campaign.run(40)
        second = campaign.run(40)
        assert first.pool_reuse == 0
        assert second.pool_reuse == 2
        # The second run continues the pooled engines: cumulative stats.
        assert second.engine_stats.iterations == 80

    def test_pooled_continuation_extends_coverage_monotonically(self):
        pool = WorkerPool()
        campaign = ParallelCampaign(hypervisor="kvm", vendor=Vendor.INTEL,
                                    seed=3, workers=2, sync_every=10,
                                    mode="inline", pool=pool)
        first = campaign.run(40)
        second = campaign.run(40)
        assert second.covered_lines >= first.covered_lines


class TestValidation:
    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            ParallelCampaign(schedule="round-robin")

    def test_negative_lease_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelCampaign(schedule="stealing", lease_size=-1)

    def test_lease_log_requires_stealing_inline(self):
        with pytest.raises(ValueError):
            ParallelCampaign(lease_log=[])
        with pytest.raises(ValueError):
            ParallelCampaign(schedule="stealing", mode="process",
                             lease_log=[])

    def test_pool_requires_inline_mode(self):
        with pytest.raises(ValueError):
            ParallelCampaign(mode="process", pool=WorkerPool())


class TestCli:
    def test_stealing_needs_two_workers(self, capsys):
        assert cli.main(["--schedule", "stealing", "--workers", "1"]) == 2
        assert "--workers >= 2" in capsys.readouterr().err

    def test_lease_size_needs_stealing(self, capsys):
        assert cli.main(["--workers", "2", "--lease-size", "50"]) == 2
        assert "--schedule stealing" in capsys.readouterr().err
