"""Shared types for the Bochs-derived VM state validator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.vmx import fields as F
from repro.vmx.vmcs import Vmcs


@dataclass(frozen=True)
class Correction:
    """One rounding step applied by the validator.

    ``rule`` names the specification clause (or Bochs routine) that
    motivated the fix; the before/after pair makes the rounding auditable
    and feeds the Hamming-distance experiments.
    """

    field: str
    before: int
    after: int
    rule: str

    def __str__(self) -> str:
        return f"{self.field}: {self.before:#x} -> {self.after:#x} ({self.rule})"


class Rounder:
    """Helper that applies and records field corrections on one VMCS."""

    def __init__(self, vmcs: Vmcs) -> None:
        self.vmcs = vmcs
        self.corrections: list[Correction] = []

    def force(self, encoding: int, value: int, rule: str) -> None:
        """Set a field to *value*, recording a correction when it changes."""
        before = self.vmcs.read(encoding)
        spec = F.SPEC_BY_ENCODING[encoding]
        after = value & ((1 << spec.bits) - 1)
        if before != after:
            self.vmcs.write(encoding, after)
            self.corrections.append(Correction(spec.name, before, after, rule))

    def set_bits(self, encoding: int, bits: int, rule: str) -> None:
        """OR *bits* into a field."""
        self.force(encoding, self.vmcs.read(encoding) | bits, rule)

    def clear_bits(self, encoding: int, bits: int, rule: str) -> None:
        """Clear *bits* in a field."""
        self.force(encoding, self.vmcs.read(encoding) & ~bits, rule)

    def read(self, encoding: int) -> int:
        """Read a field of the VMCS being rounded."""
        return self.vmcs.read(encoding)
