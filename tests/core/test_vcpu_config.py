"""Tests for the vCPU configurator core and its adapters."""

import pytest

from repro.arch.cpuid import Vendor, features_for
from repro.core.adapters import KvmAdapter, VboxAdapter, XenAdapter, adapter_for
from repro.core.vcpu_config import VcpuConfigurator
from repro.fuzzer.input import FuzzInput
from repro.fuzzer.rng import Rng
from repro.hypervisors import KvmHypervisor, VboxHypervisor, VcpuConfig, XenHypervisor


def make_input(seed=1):
    return FuzzInput.from_rng(Rng(seed))


class TestConfiguratorCore:
    def test_deterministic(self):
        configurator = VcpuConfigurator(Vendor.INTEL)
        fi = make_input()
        assert configurator.generate(fi).features == configurator.generate(fi).features

    def test_covers_feature_universe(self):
        configurator = VcpuConfigurator(Vendor.INTEL)
        config = configurator.generate(make_input())
        for feature in features_for(Vendor.INTEL):
            assert feature.name in config.features

    def test_nested_is_pinned(self):
        configurator = VcpuConfigurator(Vendor.INTEL)
        for seed in range(30):
            config = configurator.generate(make_input(seed))
            assert config.enabled("nested")

    def test_diversity_across_inputs(self):
        configurator = VcpuConfigurator(Vendor.INTEL)
        maps = {tuple(sorted(configurator.generate(make_input(s)).features.items()))
                for s in range(30)}
        assert len(maps) > 15

    def test_disabled_returns_defaults(self):
        configurator = VcpuConfigurator(Vendor.INTEL, enabled=False)
        from repro.arch.cpuid import default_feature_map

        for seed in range(5):
            config = configurator.generate(make_input(seed))
            assert config.features == default_feature_map(Vendor.INTEL)

    def test_bit_width_documented(self):
        assert VcpuConfigurator(Vendor.INTEL).bit_width() == len(
            features_for(Vendor.INTEL))

    def test_amd_features(self):
        config = VcpuConfigurator(Vendor.AMD).generate(make_input())
        assert "npt" in config.features
        assert "ept" not in config.features


class TestAdapters:
    def test_registry(self):
        assert isinstance(adapter_for("kvm"), KvmAdapter)
        assert isinstance(adapter_for("xen"), XenAdapter)
        assert isinstance(adapter_for("virtualbox"), VboxAdapter)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown hypervisor"):
            adapter_for("hyperv")

    def test_kvm_build(self):
        hv = KvmAdapter().build(VcpuConfig.default(Vendor.INTEL))
        assert isinstance(hv, KvmHypervisor)

    def test_xen_build(self):
        hv = XenAdapter().build(VcpuConfig.default(Vendor.AMD))
        assert isinstance(hv, XenHypervisor)

    def test_vbox_build(self):
        hv = VboxAdapter().build(VcpuConfig.default(Vendor.INTEL))
        assert isinstance(hv, VboxHypervisor)

    def test_patched_passthrough(self):
        hv = KvmAdapter(patched=frozenset({"dummy_root"})).build(
            VcpuConfig.default(Vendor.INTEL))
        assert "dummy_root" in hv.patched

    def test_kvm_command_line(self):
        config = VcpuConfig.default(Vendor.INTEL)
        config.features["ept"] = False
        line = KvmAdapter().command_line(config)
        assert "modprobe kvm-intel" in line
        assert "ept=0" in line
        assert "qemu-kvm" in line

    def test_xen_command_line(self):
        config = VcpuConfig.default(Vendor.INTEL)
        config.features["ept"] = False
        line = XenAdapter().command_line(config)
        assert "xl create" in line and "hap=0" in line

    def test_vbox_command_line(self):
        line = VboxAdapter().command_line(VcpuConfig.default(Vendor.INTEL))
        assert "--nested-hw-virt on" in line
