"""Federated campaigns: the stealing scheduler over the socket transport.

:class:`FederatedCampaign` is the transport-backed sibling of
``ParallelCampaign(schedule="stealing")``: the same worker set, the same
lease board, the same merge — but leases are served and corpus records
replicated by a :class:`~repro.parallel.transport.coordinator.Coordinator`
over a real socket instead of a shared filesystem. Because the BSP
protocol reproduces the inline stealing loop's observable schedule
exactly (see the coordinator module docstring), a federated campaign
with a fixed ``lease_size`` produces the **identical campaign
fingerprint** to the equivalent inline run — the acceptance pin the
chaos suite holds under every injected network fault.

Two deployment shapes share the class:

* **In-process** (default): node loops run in threads of this process,
  serialized around engine execution by one lock (the coverage tracer
  is process-global). This is what the tests and single-machine
  campaigns use; the sockets are real (AF_UNIX under the campaign root,
  or loopback TCP), so the transport code path is the production one.
* **External** (``external=True``, the ``repro --coordinator`` CLI
  mode): this process only runs the coordinator; nodes are separate
  ``repro --node <addr>`` processes that fetch their campaign config in
  the hello reply and drive themselves.
"""

from __future__ import annotations

import logging
import pickle
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, telemetry
from repro.arch.cpuid import Vendor
from repro.core.executor import ComponentToggles
from repro.parallel.campaign import ParallelCampaign, ParallelCampaignResult
from repro.parallel.scheduler import FileLeaseBoard
from repro.parallel.transport.coordinator import (
    Coordinator,
    TransportError,
    default_local_address,
    parse_address,
)
from repro.parallel.transport.node import NodeClient, run_node
from repro.parallel.worker import CampaignWorker, WorkerSpec, worker_seed

log = logging.getLogger("repro.parallel.transport")


@dataclass
class FederatedCampaign:
    """One logical campaign spread across transport-connected nodes."""

    hypervisor: str = "kvm"
    vendor: Vendor = Vendor.INTEL
    seed: int = 1
    workers: int = 2
    #: Fixed cases per lease; 0 sizes adaptively (and gives up the
    #: fingerprint-equality guarantee, exactly like inline stealing).
    lease_size: int = 0
    #: Campaign root (board, relay, reports, telemetry); a temporary
    #: directory when None.
    sync_dir: Path | None = None
    subsumption_filter: bool = True
    #: Ship virgin-map coverage deltas each round so the coordinator can
    #: elide relay records the receiver's own filter would reject
    #: (DESIGN.md §15). Off reproduces the pure record-replay plane;
    #: both settings yield the identical campaign fingerprint.
    delta_plane: bool = True
    toggles: ComponentToggles = field(default_factory=ComponentToggles)
    coverage_guided: bool = True
    patched: frozenset = frozenset()
    runtime_iterations: int = 24
    async_events: bool = False
    iterations_per_hour: float = 10.0
    reuse_hypervisor: bool = False
    batch_size: int = 0
    #: Seed scheduling inside every node's workers (DESIGN.md §16);
    #: forwarded through the inner campaign, so external nodes receive
    #: it in their config payload.
    power_schedule: str = "flat"
    #: Endpoint: an address tuple, an ``"addr:port"`` / ``"unix:/path"``
    #: string, or None for AF_UNIX under the campaign root (loopback
    #: TCP where AF_UNIX is unavailable or the socket path too long).
    address: tuple | str | None = None
    #: Per-RPC reply timeout; also the resend period for barrier ops.
    transport_timeout: float = 5.0
    #: Silence budget before a node is expired and its leases
    #: reclaimed. Keep it comfortably above the longest expected
    #: partition; 0 disables expiry.
    node_ttl: float = 300.0
    heartbeat_interval: float = 0.5
    #: Coordinator only; nodes are separate ``repro --node`` processes.
    external: bool = False
    fault_plan: faults.FaultPlan | None = None
    telemetry_mode: str = "metrics"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.transport_timeout <= 0:
            raise ValueError("transport_timeout must be > 0")
        if self.external and self.address is None:
            raise ValueError("an external federation needs an explicit "
                             "address for its nodes to dial")
        # The inner campaign supplies _specs/_campaign_kwargs/_merge/
        # _finish_telemetry so federated and inline stealing campaigns
        # cannot drift apart.
        self._inner = ParallelCampaign(
            hypervisor=self.hypervisor, vendor=self.vendor, seed=self.seed,
            workers=self.workers, toggles=self.toggles,
            coverage_guided=self.coverage_guided, patched=self.patched,
            runtime_iterations=self.runtime_iterations,
            async_events=self.async_events,
            iterations_per_hour=self.iterations_per_hour,
            reuse_hypervisor=self.reuse_hypervisor,
            batch_size=self.batch_size,
            power_schedule=self.power_schedule,
            subsumption_filter=self.subsumption_filter,
            schedule="stealing", lease_size=self.lease_size,
            telemetry_mode=self.telemetry_mode)

    # ------------------------------------------------------------------

    def _resolve_address(self, root: Path) -> tuple:
        if self.address is None:
            return default_local_address(root)
        if isinstance(self.address, str):
            return parse_address(self.address)
        return self.address

    def _config_payload(self, sample_every: int) -> bytes:
        """The campaign config shipped to externally launched nodes."""
        return pickle.dumps({
            "seed": self.seed,
            "campaign_kwargs": self._inner._campaign_kwargs(),
            "sample_every": sample_every,
            "subsumption_filter": self.subsumption_filter,
            "delta_plane": self.delta_plane,
        })

    def run(self, iterations: int, *,
            sample_every: int = 10) -> ParallelCampaignResult:
        """Run the federated campaign for *iterations* total cases."""
        if self.sync_dir is not None:
            root = Path(self.sync_dir)
            root.mkdir(parents=True, exist_ok=True)
            return self._run_in(root, iterations, sample_every)
        with tempfile.TemporaryDirectory(prefix="necofuzz-fed-") as tmp:
            return self._run_in(Path(tmp), iterations, sample_every)

    def _run_in(self, root: Path, iterations: int,
                sample_every: int) -> ParallelCampaignResult:
        with telemetry.campaign_scope(self.telemetry_mode, root):
            plan = self.fault_plan
            if plan is not None and faults.active() is None:
                with faults.injected(plan):
                    return self._federate(root, iterations, sample_every)
            return self._federate(root, iterations, sample_every)

    def _federate(self, root: Path, iterations: int,
                  sample_every: int) -> ParallelCampaignResult:
        specs = self._inner._specs(iterations)
        board = FileLeaseBoard.create(root, iterations, len(specs),
                                      lease_size=self.lease_size)
        coordinator = Coordinator(
            root, board, len(specs), node_ttl=self.node_ttl,
            fault_plan=self.fault_plan,
            config_payload=(self._config_payload(sample_every)
                            if self.external else None),
            auto_stop=self.external)
        address = coordinator.start(self._resolve_address(root))
        log.info("federation coordinator serving %d node(s) at %s",
                 len(specs), address)
        try:
            if self.external:
                coordinator.join()
            else:
                self._drive_local_nodes(address, specs, sample_every)
        finally:
            coordinator.stop()
        if coordinator.error is not None:
            raise TransportError(
                f"coordinator died: {coordinator.error}"
            ) from coordinator.error
        reports_by_node = coordinator.load_reports()
        missing = [spec.index for spec in specs
                   if spec.index not in reports_by_node]
        if missing:
            raise TransportError(
                f"federation finished without reports from node(s) "
                f"{missing}")
        reports = [reports_by_node[spec.index] for spec in specs]
        summary = board.summary()
        sched = {"schedule": "federated", "lease_log": summary["log"],
                 "steals": summary["steals"],
                 "reclaims": summary["reclaims"], "pool_reuse": 0}
        result = self._inner._merge(reports, None, sched)
        result.telemetry = self._inner._finish_telemetry(root, reports)
        return result

    def _drive_local_nodes(self, address: tuple, specs: list[WorkerSpec],
                           sample_every: int) -> None:
        """Run every node loop in a thread of this process.

        Workers are constructed sequentially in this thread (engine
        construction instruments modules and must not race), and one
        ``exec_lock`` serializes engine execution across node threads —
        the process-global coverage tracer admits one collector at a
        time. Network waits happen outside the lock, so a partitioned
        node never blocks its partners' fuzzing.
        """
        workers = [CampaignWorker(spec, self._inner._campaign_kwargs(),
                                  sample_every=sample_every, sync=None)
                   for spec in specs]
        exec_lock = threading.Lock()
        errors: dict[int, BaseException] = {}

        def drive(worker: CampaignWorker) -> None:
            client = NodeClient(
                address, worker.spec.index,
                timeout=self.transport_timeout,
                heartbeat_interval=self.heartbeat_interval,
                fault_plan=self.fault_plan)
            try:
                run_node(client, worker,
                         subsumption_filter=self.subsumption_filter,
                         exec_lock=exec_lock,
                         delta_plane=self.delta_plane)
            except BaseException as exc:
                errors[worker.spec.index] = exc
                log.exception("federated node %d failed",
                              worker.spec.index)
            finally:
                client.close()

        threads = [threading.Thread(target=drive, args=(worker,),
                                    name=f"necofuzz-node-{worker.spec.index}")
                   for worker in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            index = sorted(errors)[0]
            raise TransportError(
                f"federated node {index} failed: {errors[index]}"
            ) from errors[index]


def run_federated_node(address: tuple | str, *, timeout: float = 5.0,
                       heartbeat_interval: float = 1.0,
                       fault_plan: faults.FaultPlan | None = None):
    """One externally launched node (the ``repro --node`` CLI mode).

    Dials the coordinator, fetches the campaign config in the hello
    reply (seed, engine kwargs, sampling), builds its worker, and runs
    the standard node protocol to completion. Returns the worker's
    final report (which the coordinator also persisted).
    """
    addr = parse_address(address) if isinstance(address, str) else address
    client = NodeClient(addr, None, timeout=timeout,
                        heartbeat_interval=heartbeat_interval,
                        fault_plan=fault_plan)
    try:
        reply, raw = client.hello(want_config=True)
        if reply.get("status") != "ok":
            raise TransportError(
                f"coordinator refused this node (status="
                f"{reply.get('status')!r})")
        if not raw:
            raise TransportError(
                "coordinator sent no campaign config; was it started "
                "with --coordinator?")
        config = pickle.loads(raw)
        client.node = reply["node"]
        spec = WorkerSpec(index=client.node,
                          seed=worker_seed(config["seed"], client.node),
                          iterations=0)
        worker = CampaignWorker(
            spec, config["campaign_kwargs"],
            sample_every=config.get("sample_every", 10), sync=None)
        return run_node(
            client, worker,
            subsumption_filter=config.get("subsumption_filter", True),
            delta_plane=config.get("delta_plane", True))
    finally:
        client.close()
