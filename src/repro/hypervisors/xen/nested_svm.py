"""Xen nested SVM emulation — the analogue of ``xen/arch/x86/hvm/svm/nestedsvm.c``.

Two seeded bugs from the paper (Table 6 #5/#6, Xen issues 215/216):

* **LME/!PG corruption (#5).** An L1 sets ``CR0.PG = 0`` in VMCB12 after
  previously running a 64-bit L2. The APM permits this transitional
  state but leaves vmrun behaviour ambiguous; Xen's merge path corrupts
  the virtual-interrupt control word, erroneously enabling AVIC in
  VMCB02. The next L2 exit is ``AVIC_NOACCEL`` on a host without AVIC —
  an assertion in the exit handler. Patched by ``avic_sanitize``.

* **VGIF injection assertion (#6).** An invalid CR4 in VMCB12 makes the
  vmrun correctly fail back to L1, but the failure-injection path
  ``nsvm_vcpu_vmexit_inject()`` assumes the virtual GIF is set whenever
  VGIF is enabled. After ``clgi`` (the standard pre-vmrun step) the
  virtual GIF is clear, and the assertion fires. Patched by
  ``vgif_inject``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.arch.registers import Cr0, Cr4, Efer
from repro.cpu.svm_cpu import SvmCpu
from repro.hypervisors.base import ExecResult, GuestInstruction
from repro.hypervisors.memory import GuestMemory
from repro.svm import fields as SF
from repro.svm.exit_codes import SvmExitCode
from repro.svm.fields import Misc1Intercept, Misc2Intercept, VintrControl
from repro.svm.vmcb import Vmcb
from repro.validator.golden import golden_vmcb

XEN_VMCB02_HPA = 0x130000
XEN_HSAVE_HPA = 0x131000


@dataclass
class NsvmState:
    """Per-vCPU nested SVM state (struct nestedsvm analogue)."""

    svme: bool = False
    gif: bool = True
    guest_mode: bool = False
    l2_ever_ran: bool = False
    prev_l2_long_mode: bool = False
    current_vmcb12_pa: int = 0
    vmcb02: Vmcb = field(default_factory=Vmcb)
    #: vGIF configuration of the host VMCB for this vCPU.
    vgif_enabled: bool = False


class XenNestedSvm:
    """Xen's nested SVM for one HVM guest."""

    def __init__(self, hypervisor, memory: GuestMemory, *,
                 vgif_supported: bool,
                 patched: frozenset[str] = frozenset()) -> None:
        self.hv = hypervisor
        self.memory = memory
        self.vgif_supported = vgif_supported
        self.avic_supported = False  # the paper's host has no AVIC in Xen
        self.patched = patched
        self.phys = SvmCpu()
        self.phys.set_svme(True)
        self.phys.set_hsave(XEN_HSAVE_HPA)
        self._vmcb02_proto = golden_vmcb(nested_paging=True)

    HANDLERS = {
        "vmrun": "nsvm_handle_vmrun",
        "vmload": "nsvm_handle_vmload",
        "vmsave": "nsvm_handle_vmsave",
        "stgi": "nsvm_handle_stgi",
        "clgi": "nsvm_handle_clgi",
        "invlpga": "nsvm_handle_invlpga",
        "skinit": "nsvm_handle_skinit",
        "vmmcall": "nsvm_handle_vmmcall",
    }

    def handle(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate one SVM instruction from the L1 HVM guest."""
        if not state.svme and instr.mnemonic not in ("skinit",):
            return ExecResult.fault("#UD: EFER.SVME clear")
        handler_name = self.HANDLERS.get(instr.mnemonic)
        if handler_name is None:
            return ExecResult.fault(f"#UD: {instr.mnemonic}")
        return getattr(self, handler_name)(state, instr)

    # ------------------------------------------------------------------
    # Instruction emulation
    # ------------------------------------------------------------------

    def nsvm_handle_vmrun(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmrun` instruction."""
        return self.nsvm_vcpu_vmrun(state, instr.op("addr"))

    def nsvm_handle_vmload(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmload` instruction."""
        addr = instr.op("addr")
        if addr & 0xFFF or not self.memory.in_guest_ram(addr):
            return ExecResult.fault("#GP: bad vmload address")
        return ExecResult.success("vmload ok")

    def nsvm_handle_vmsave(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmsave` instruction."""
        addr = instr.op("addr")
        if addr & 0xFFF or not self.memory.in_guest_ram(addr):
            return ExecResult.fault("#GP: bad vmsave address")
        return ExecResult.success("vmsave ok")

    def nsvm_handle_stgi(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `stgi` instruction."""
        state.gif = True
        return ExecResult.success("stgi ok")

    def nsvm_handle_clgi(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `clgi` instruction."""
        state.gif = False
        return ExecResult.success("clgi ok")

    def nsvm_handle_invlpga(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invlpga` instruction."""
        return ExecResult.success("invlpga ok")

    def nsvm_handle_skinit(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `skinit` instruction."""
        return ExecResult.fault("#UD: SKINIT not supported")

    def nsvm_handle_vmmcall(self, state: NsvmState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmmcall` instruction."""
        return ExecResult.success("vmmcall ok")

    # ------------------------------------------------------------------
    # Nested vmrun
    # ------------------------------------------------------------------

    def nsvm_vcpu_vmrun(self, state: NsvmState, vmcb12_pa: int) -> ExecResult:
        """Xen's nested vmrun path (checks, merge, bug #5)."""
        if vmcb12_pa & 0xFFF or not self.memory.in_guest_ram(vmcb12_pa):
            return ExecResult.fault("#GP: bad VMCB12 address")
        vmcb12 = self.memory.get_vmcb(vmcb12_pa)
        if vmcb12 is None:
            return ExecResult.fault("#GP: no VMCB at address")
        state.current_vmcb12_pa = vmcb12_pa

        # Pure in the VMCB12 fields: memoized on the VMCB and revalidated
        # via the dirty journal. (The merge below is NOT cached — it
        # depends on prev_l2_long_mode and the vgif/bug-#5 state.)
        problems = perf.memoized_check(
            vmcb12, ("xen_svm", id(self), "check"),
            lambda: self.nsvm_vmcb_check(vmcb12))
        if problems:
            return self.nsvm_vcpu_vmexit_inject(state, vmcb12, problems[0])

        self.nsvm_prepare_vmcb02(state, vmcb12)
        self.phys.install_vmcb(XEN_VMCB02_HPA, state.vmcb02)
        outcome = self.phys.vmrun(XEN_VMCB02_HPA)
        if not outcome.entered:
            return self.nsvm_vcpu_vmexit_inject(
                state, vmcb12,
                str(outcome.violations[0]) if outcome.violations else "vmrun fail")

        state.guest_mode = True
        state.l2_ever_ran = True
        efer12 = vmcb12.read(SF.EFER)
        cr0_12 = vmcb12.read(SF.CR0)
        state.prev_l2_long_mode = bool(efer12 & Efer.LME and cr0_12 & Cr0.PG)

        # BUG #5 visible side: with the vintr word corrupted, the very
        # next exit is AVIC_NOACCEL although the host has no AVIC.
        if state.vmcb02.avic_enabled and not self.avic_supported:
            self.hv.bug_assert(
                False, "nsvm_vmexit_handler",
                "VMEXIT_AVIC_NOACCEL on a host without AVIC support "
                "(vintr control corrupted by LME/!PG merge)")
            self.nsvm_vmexit(state, vmcb12, int(SvmExitCode.AVIC_NOACCEL))
            return ExecResult.success("AVIC_NOACCEL exit (bug)",
                                      exit_reason=int(SvmExitCode.AVIC_NOACCEL),
                                      level=1)
        return ExecResult.success("nested vmrun", level=2)

    def nsvm_vmcb_check(self, vmcb12: Vmcb) -> list[str]:
        """Xen's VMCB12 consistency checks (abridged, like the original)."""
        problems: list[str] = []
        efer = vmcb12.read(SF.EFER)
        cr0 = vmcb12.read(SF.CR0)
        cr4 = vmcb12.read(SF.CR4)
        if efer & Efer.RESERVED:
            problems.append("EFER reserved bits")
        if cr0 >> 32:
            problems.append("CR0 high bits")
        if cr4 & Cr4.RESERVED:
            problems.append("CR4 reserved bits set")
        if not vmcb12.read(SF.GUEST_ASID):
            problems.append("ASID zero")
        if not vmcb12.read(SF.INTERCEPT_MISC2) & Misc2Intercept.VMRUN:
            problems.append("VMRUN intercept clear")
        if efer & Efer.LME and cr0 & Cr0.PG and not cr4 & Cr4.PAE:
            problems.append("long mode without PAE")
        return problems

    def nsvm_prepare_vmcb02(self, state: NsvmState, vmcb12: Vmcb) -> None:
        """Merge VMCB12 into VMCB02 — bug #5's corruption site."""
        vmcb02 = self._vmcb02_proto.copy()
        for spec, value in vmcb12.fields():
            if spec.area is SF.VmcbArea.SAVE:
                vmcb02.write(spec.name, value)
        vmcb02.write(SF.INTERCEPT_MISC1,
                     vmcb12.read(SF.INTERCEPT_MISC1) | Misc1Intercept.INTR
                     | Misc1Intercept.NMI | Misc1Intercept.SHUTDOWN
                     | Misc1Intercept.MSR_PROT | Misc1Intercept.IOIO_PROT)
        vmcb02.write(SF.INTERCEPT_MISC2,
                     vmcb12.read(SF.INTERCEPT_MISC2) | Misc2Intercept.VMRUN)
        vmcb02.write(SF.INTERCEPT_EXCEPTIONS, vmcb12.read(SF.INTERCEPT_EXCEPTIONS))
        vmcb02.write(SF.GUEST_ASID, 2)
        vmcb02.write(SF.EVENT_INJECTION, vmcb12.read(SF.EVENT_INJECTION))
        vmcb02.write(SF.NP_CONTROL, SF.NpControl.NP_ENABLE)
        vmcb02.write(SF.N_CR3, 0x20000)

        vintr12 = vmcb12.read(SF.VINTR_CONTROL)
        vintr02 = vintr12 & (VintrControl.V_TPR_MASK | VintrControl.V_IRQ
                             | VintrControl.V_IGN_TPR
                             | VintrControl.V_INTR_MASKING)
        if self.vgif_supported and state.vgif_enabled:
            vintr02 |= VintrControl.V_GIF_ENABLE
            if state.gif:
                vintr02 |= VintrControl.V_GIF

        efer12 = vmcb12.read(SF.EFER)
        cr0_12 = vmcb12.read(SF.CR0)
        if (efer12 & Efer.LME and not cr0_12 & Cr0.PG
                and state.prev_l2_long_mode
                and "avic_sanitize" not in self.patched):
            # BUG #5: the inconsistent long-mode transition state makes
            # Xen's EFER/paging bookkeeping scribble over the adjacent
            # vintr word; the stray bit lands on AVIC-enable.
            vintr02 |= VintrControl.AVIC_ENABLE
            self.hv.log.write(
                "nestedsvm: inconsistent LME/PG state during VMCB merge")

        vmcb02.write(SF.VINTR_CONTROL, vintr02)
        state.vmcb02 = vmcb02

    # ------------------------------------------------------------------
    # Nested #VMEXIT and failure injection
    # ------------------------------------------------------------------

    def nsvm_vmexit(self, state: NsvmState, vmcb12: Vmcb, code: int, *,
                    info1: int = 0, info2: int = 0) -> None:
        """Reflect a #VMEXIT into VMCB12 and resume L1."""
        for spec, value in state.vmcb02.fields():
            if spec.area is SF.VmcbArea.SAVE:
                vmcb12.write(spec.name, value)
        vmcb12.write(SF.EXIT_CODE, code)
        vmcb12.write(SF.EXIT_INFO_1, info1)
        vmcb12.write(SF.EXIT_INFO_2, info2)
        state.guest_mode = False

    def nsvm_vcpu_vmexit_inject(self, state: NsvmState, vmcb12: Vmcb,
                                detail: str) -> ExecResult:
        """Inject VMEXIT_INVALID for a failed vmrun — bug #6's home.

        Pre-patch, the function assumes that with VGIF enabled the
        virtual GIF must be set. The standard ``clgi; vmrun`` sequence
        leaves GIF clear when vmrun fails, so the assumption is wrong.
        """
        if self.vgif_supported and state.vgif_enabled:
            if "vgif_inject" not in self.patched:
                self.hv.bug_assert(
                    state.gif, "nsvm_vcpu_vmexit_inject",
                    "vmcb_vintr.fields.vgif unexpectedly zero while VGIF "
                    "is enabled (failed vmrun injection path)")
        vmcb12.write(SF.EXIT_CODE, int(SvmExitCode.INVALID))
        vmcb12.write(SF.EXIT_INFO_1, 0)
        vmcb12.write(SF.EXIT_INFO_2, 0)
        state.guest_mode = False
        return ExecResult.success(f"vmrun failed: {detail}",
                                  exit_reason=int(SvmExitCode.INVALID), level=1)

    # ------------------------------------------------------------------
    # Host-side toolstack surface (domctl / save-restore / setup)
    #
    # Outside the threat model; never dispatched by fuzzing (see the
    # matching block in xen/nested_vmx.py).
    # ------------------------------------------------------------------

    def nsvm_domctl_get_state(self, state: NsvmState) -> dict:
        """XEN_DOMCTL_get_nsvm_state: snapshot for live migration."""
        blob: dict = {
            "svme": state.svme,
            "gif": state.gif,
            "guest_mode": state.guest_mode,
            "vmcb12_pa": state.current_vmcb12_pa,
            "vgif_enabled": state.vgif_enabled,
        }
        vmcb12 = self.memory.get_vmcb(state.current_vmcb12_pa)
        if vmcb12 is not None:
            blob["vmcb12"] = vmcb12.serialize()
        return blob

    def nsvm_domctl_set_state(self, state: NsvmState, blob: dict) -> int:
        """XEN_DOMCTL_set_nsvm_state: restore after migration."""
        if blob.get("guest_mode") and not blob.get("svme"):
            return -22  # -EINVAL
        state.svme = bool(blob.get("svme"))
        state.gif = bool(blob.get("gif", True))
        state.vgif_enabled = bool(blob.get("vgif_enabled"))
        pa = blob.get("vmcb12_pa", 0)
        if blob.get("guest_mode"):
            if pa & 0xFFF or not self.memory.in_guest_ram(pa):
                return -22
            raw = blob.get("vmcb12")
            if raw is not None:
                self.memory.put_vmcb(pa, Vmcb.deserialize(raw))
            vmcb12 = self.memory.get_vmcb(pa)
            if vmcb12 is None or self.nsvm_vmcb_check(vmcb12):
                return -22
            state.current_vmcb12_pa = pa
            state.guest_mode = True
        return 0

    def nsvm_vcpu_initialise(self, state: NsvmState) -> int:
        """Per-vCPU nested-SVM setup at domain creation."""
        if state.guest_mode:
            return -16  # -EBUSY
        state.svme = False
        state.gif = True
        state.current_vmcb12_pa = 0
        state.prev_l2_long_mode = False
        state.vgif_enabled = self.vgif_supported
        return 0

    def nsvm_vcpu_destroy(self, state: NsvmState) -> None:
        """Per-vCPU teardown: drop the cached VMCB12 mapping."""
        if state.current_vmcb12_pa:
            self.memory.vmcb_pages.pop(state.current_vmcb12_pa & ~0xFFF, None)
        state.guest_mode = False
        state.svme = False

    def nsvm_hap_walk_l1_p2m(self, gpa: int) -> int | None:
        """Host-side nested p2m walk used by the toolstack's dirty-page
        tracking during live migration of a nested guest."""
        if not self.memory.in_guest_ram(gpa):
            return None
        # Identity mapping in our model: L1 gpa == host-visible frame.
        return gpa & ~0xFFF

    # ------------------------------------------------------------------
    # Exit reflection policy
    # ------------------------------------------------------------------

    def l1_wants_exit(self, vmcb12: Vmcb, code: int,
                      instr: GuestInstruction) -> bool:
        """nsvm_vmexit routing (abridged relative to KVM's)."""
        misc1 = vmcb12.read(SF.INTERCEPT_MISC1)
        misc2 = vmcb12.read(SF.INTERCEPT_MISC2)
        if SvmExitCode.EXCP_BASE <= code < SvmExitCode.INTR:
            vector = int(code) - int(SvmExitCode.EXCP_BASE)
            return bool(vmcb12.read(SF.INTERCEPT_EXCEPTIONS) & (1 << vector))
        simple = {
            SvmExitCode.INTR: Misc1Intercept.INTR,
            SvmExitCode.NMI: Misc1Intercept.NMI,
            SvmExitCode.SHUTDOWN: Misc1Intercept.SHUTDOWN,
            SvmExitCode.CPUID: Misc1Intercept.CPUID,
            SvmExitCode.HLT: Misc1Intercept.HLT,
            SvmExitCode.INVLPG: Misc1Intercept.INVLPG,
            SvmExitCode.INVLPGA: Misc1Intercept.INVLPGA,
            SvmExitCode.RDTSC: Misc1Intercept.RDTSC,
            SvmExitCode.RDPMC: Misc1Intercept.RDPMC,
            SvmExitCode.PAUSE: Misc1Intercept.PAUSE,
            SvmExitCode.INVD: Misc1Intercept.INVD,
            SvmExitCode.TASK_SWITCH: Misc1Intercept.TASK_SWITCH,
        }
        if code in simple:
            return bool(misc1 & simple[code])
        if code == SvmExitCode.IOIO:
            if misc1 & Misc1Intercept.IOIO_PROT:
                return bool(instr.op("port") & 1)
            return False
        if code == SvmExitCode.MSR:
            if misc1 & Misc1Intercept.MSR_PROT:
                return bool(instr.op("msr") & 1)
            return False
        vmx_map = {
            SvmExitCode.VMRUN: Misc2Intercept.VMRUN,
            SvmExitCode.VMMCALL: Misc2Intercept.VMMCALL,
            SvmExitCode.VMLOAD: Misc2Intercept.VMLOAD,
            SvmExitCode.VMSAVE: Misc2Intercept.VMSAVE,
            SvmExitCode.STGI: Misc2Intercept.STGI,
            SvmExitCode.CLGI: Misc2Intercept.CLGI,
            SvmExitCode.SKINIT: Misc2Intercept.SKINIT,
        }
        if code in vmx_map:
            return bool(misc2 & vmx_map[code])
        if code == SvmExitCode.NPF:
            return vmcb12.nested_paging
        return True
