"""Unit tests for MSR modelling and canonical-address rules."""

import pytest

from repro.arch import msr as M


class TestCanonical:
    def test_low_half_canonical(self):
        assert M.is_canonical(0)
        assert M.is_canonical(0x7FFF_FFFF_FFFF)

    def test_high_half_canonical(self):
        assert M.is_canonical(0xFFFF_8000_0000_0000)
        assert M.is_canonical(0xFFFF_FFFF_FFFF_FFFF)

    def test_non_canonical_hole(self):
        # The paper's probe value for CVE-2024-21106.
        assert not M.is_canonical(0x8000_0000_0000_0000)
        assert not M.is_canonical(0x0000_8000_0000_0000)

    def test_la57_width(self):
        addr = 0x0080_0000_0000_0000
        assert not M.is_canonical(addr, virtual_address_width=48)
        assert M.is_canonical(addr, virtual_address_width=57)


class TestMsrEntry:
    def test_roundtrip(self):
        entry = M.MsrEntry(M.IA32_KERNEL_GS_BASE, 0xFFFF_8000_0000_1234)
        assert M.MsrEntry.from_bytes(entry.to_bytes()) == entry

    def test_slot_is_sixteen_bytes(self):
        assert len(M.MsrEntry(0, 0).to_bytes()) == 16

    def test_from_bytes_wrong_size(self):
        with pytest.raises(ValueError):
            M.MsrEntry.from_bytes(b"\x00" * 15)

    def test_value_truncated_to_64_bits(self):
        entry = M.MsrEntry(0, (1 << 64) + 5)
        assert M.MsrEntry.from_bytes(entry.to_bytes()).value == 5


class TestMsrLoadValidity:
    def test_canonical_value_accepted(self):
        assert M.msr_load_entry_valid(
            M.MsrEntry(M.IA32_KERNEL_GS_BASE, 0xFFFF_8000_0000_0000))

    def test_non_canonical_rejected(self):
        assert not M.msr_load_entry_valid(
            M.MsrEntry(M.IA32_KERNEL_GS_BASE, 0x8000_0000_0000_0000))

    def test_non_canonical_ok_for_plain_msr(self):
        assert M.msr_load_entry_valid(M.MsrEntry(M.IA32_TSC, 0x8000_0000_0000_0000))

    def test_forbidden_msrs(self):
        assert not M.msr_load_entry_valid(M.MsrEntry(M.IA32_FS_BASE, 0))
        assert not M.msr_load_entry_valid(M.MsrEntry(M.IA32_GS_BASE, 0))

    def test_reserved_dword(self):
        assert not M.msr_load_entry_valid(M.MsrEntry(M.IA32_TSC, 0, reserved=1))


class TestMsrFile:
    def test_default_zero(self):
        assert M.MsrFile().read(0x1234) == 0

    def test_write_read(self):
        f = M.MsrFile()
        f.write(M.IA32_EFER, 0xD01)
        assert f.read(M.IA32_EFER) == 0xD01
        assert M.IA32_EFER in f

    def test_write_truncates(self):
        f = M.MsrFile()
        f.write(0x10, 1 << 65)
        assert f.read(0x10) == 0

    def test_snapshot_is_copy(self):
        f = M.MsrFile({0x10: 5})
        snap = f.snapshot()
        snap[0x10] = 99
        assert f.read(0x10) == 5
