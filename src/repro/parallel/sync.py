"""Corpus sync between campaign workers (AFL's ``sync_fuzzers`` shape).

Each worker owns ``<root>/worker-NNN/queue/``, an AFL-style queue
directory written with :meth:`FuzzEngine.save_corpus`. Partners read
each other's directories incrementally: the queue is append-only and
indices are stable, so a per-partner high-water mark is enough to
import each entry exactly once. Only locally discovered entries are
exported (``exclude_imported=True``) — re-exporting imports would
ping-pong cases between workers forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzzer.engine import FuzzEngine


def worker_queue_dir(root: Path, index: int) -> Path:
    """The queue directory one worker exports to."""
    return Path(root) / f"worker-{index:03d}" / "queue"


@dataclass
class SyncDirectory:
    """One worker's view of the shared sync directory."""

    root: Path
    worker: int
    total_workers: int
    #: Per-partner count of queue files already imported.
    seen: dict[int, int] = field(default_factory=dict)

    def export(self, engine: FuzzEngine) -> int:
        """Publish the worker's locally found queue entries."""
        return engine.save_corpus(worker_queue_dir(self.root, self.worker),
                                  exclude_imported=True)

    def import_new(self, engine: FuzzEngine) -> int:
        """Run every not-yet-seen partner entry through *engine*.

        Returns the number of cases imported (executed), whether or not
        they proved novel enough to join the local queue.
        """
        imported = 0
        for partner in range(self.total_workers):
            if partner == self.worker:
                continue
            queue_dir = worker_queue_dir(self.root, partner)
            if not queue_dir.is_dir():
                continue
            files = sorted(p for p in queue_dir.iterdir() if p.is_file())
            start = self.seen.get(partner, 0)
            for path in files[start:]:
                engine.import_case(path.read_bytes())
                imported += 1
            self.seen[partner] = len(files)
        return imported
