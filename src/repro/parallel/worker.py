"""One shard of a parallel campaign: a full agent + engine pair.

Worker 0 always receives the campaign seed verbatim, which is what makes
a one-worker parallel campaign reproduce the serial ``NecoFuzz.run``
bit for bit; workers 1..N-1 get seeds derived through the same
multiplier :meth:`repro.fuzzer.rng.Rng.fork` uses, with a salt space
disjoint from the campaign's own seed-corpus salts.

Resilience plumbing (all optional, off in the plain fast path):

* ``heartbeat_path`` — the worker stamps its case counter there before
  every case, so the supervisor can tell a hung case from a live one;
* ``checkpoint_path`` — after every sync round the worker pickles its
  complete state (engine, agent, RNG, queue, timeline) atomically, so a
  restarted replacement resumes from the last round instead of redoing
  the whole share;
* an installed :mod:`repro.faults` plan is consulted before each case
  for injected kills and delays.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import faults, perf, telemetry
from repro.analysis.timeline import CoverageTimeline
from repro.core.necofuzz import CampaignResult, NecoFuzz
from repro.fuzzer.crashes import atomic_write_bytes
from repro.parallel.scheduler import AdaptiveSync
from repro.parallel.sync import SyncDirectory, SyncStats
from repro.parallel.wire import LineCodec

log = logging.getLogger("repro.parallel")

#: Salt base for derived worker seeds (disjoint from the small corpus
#: salts NecoFuzz.__post_init__ forks off the campaign RNG).
_WORKER_SALT = 0x9E3779B9


def worker_seed(campaign_seed: int, index: int) -> int:
    """Deterministic per-worker engine seed.

    Index 0 is the campaign seed itself (serial == 1-worker contract);
    other indices reuse the ``Rng.fork`` mixing so derived seeds are
    decorrelated from the campaign seed and from each other.
    """
    if index == 0:
        return campaign_seed
    return (campaign_seed * 1_000_003 + _WORKER_SALT + index) & 0xFFFFFFFFFFFFFFFF


@dataclass
class WorkerSpec:
    """Static description of one worker's shard."""

    index: int
    seed: int
    iterations: int  # this worker's share of the campaign budget


@dataclass
class WorkerReport:
    """Everything the orchestrator needs back from one worker."""

    index: int
    share: int
    result: CampaignResult
    #: Per-sample newly covered lines: (local iteration, line delta).
    samples: list[tuple[int, frozenset]]
    #: Snapshot of the worker's virgin map for the merged map — empty
    #: when the worker published into a shared-memory map instead.
    virgin_bits: bytes
    #: Order-sensitive digest of the final seed queue (entry data +
    #: provenance flags) — the corpus half of the campaign fingerprint.
    corpus_digest: str = ""
    #: Cases whose wall-clock time exceeded the per-case deadline
    #: (observed post hoc in inline mode, enforced by the supervisor in
    #: process mode).
    deadline_overruns: int = 0
    #: Per-phase sync wall-clock breakdown (None when not syncing).
    sync_stats: SyncStats | None = None
    #: Process-mode only: the worker process's final metrics-registry
    #: snapshot (:meth:`repro.telemetry.MetricsRegistry.snapshot`), so
    #: the orchestrator can merge without touching the filesystem.
    #: ``None`` in inline mode, where metrics land in the campaign
    #: registry directly.
    telemetry: dict | None = None


@dataclass
class CampaignWorker:
    """Drives one shard in chunks, sampling like the serial loop does."""

    spec: WorkerSpec
    campaign_kwargs: dict
    sample_every: int = 10
    sync: SyncDirectory | None = None
    #: Supervisor liveness file; stamped before every case.
    heartbeat_path: Path | None = None
    #: Atomic whole-worker snapshot written after every sync round.
    checkpoint_path: Path | None = None
    #: Per-case wall-clock deadline (bookkeeping only in-process; the
    #: supervisor is what actually preempts a hung process worker).
    case_timeout: float | None = None
    #: Shared-memory virgin-map publisher (process mode). Process-local:
    #: dropped from checkpoints and re-injected by whichever process
    #: restores the worker.
    virgin_publisher: Callable[[bytes], None] | None = None
    done: int = field(default=0, init=False)
    deadline_overruns: int = field(default=0, init=False)
    _published_generation: int = field(default=0, init=False)
    #: Measured throughput (cases/sec) of the last lease — what the
    #: lease board sizes this worker's next lease from.
    rate: float = field(default=0.0, init=False)
    #: Cases executed since the last import round (adaptive-sync gate).
    _since_import: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.campaign = NecoFuzz(seed=self.spec.seed, **self.campaign_kwargs)
        label = (f"NecoFuzz/{self.campaign.hypervisor}/"
                 f"{self.campaign.vendor.value}")
        if self.spec.index:
            label += f"[w{self.spec.index}]"
        self.timeline = CoverageTimeline(label, self.campaign.iterations_per_hour)
        self.samples: list[tuple[int, frozenset]] = []
        self._seen_lines: set = set()
        #: Shared line-index table for protocol-v2 records; identical
        #: across workers because they instrument the same modules.
        self.line_codec = LineCodec(self.campaign.agent.tracer.instrumented)

    @property
    def finished(self) -> bool:
        return self.done >= self.spec.iterations

    def _heartbeat(self) -> None:
        if self.heartbeat_path is not None:
            try:
                self.heartbeat_path.write_text(f"{self.done}\n")
            except OSError:
                pass  # liveness reporting must never kill the worker

    def run_chunk(self, budget: int) -> int:
        """Run up to *budget* engine steps of the remaining share.

        Sampling follows the exact serial rule (`i % sample_every == 0
        or i == share`) over the worker's local iteration counter, so a
        one-worker campaign produces the serial timeline.
        """
        steps = min(budget, self.spec.iterations - self.done)
        agent = self.campaign.agent
        engine = self.campaign.engine
        plan = faults.active()
        # Tag hook firings — and telemetry — with this worker for the
        # chunk only: inline mode interleaves workers in one process,
        # so the tag must not leak to the next worker (or outlive the
        # campaign).
        previous_worker = faults.current_worker()
        faults.set_current_worker(self.spec.index)
        previous_shard = telemetry.current_shard()
        telemetry.set_shard(self.spec.index)
        timeout = self.case_timeout
        try:
            if self.campaign.batch_size > 0:
                with perf.batch_mode(self.campaign.batch_size):
                    self._run_batched(steps, engine, agent, plan, timeout)
            else:
                for _ in range(steps):
                    self.done += 1
                    self._heartbeat()
                    if plan is not None:
                        spec = plan.take_case_fault(self.spec.index, self.done)
                        if spec is not None:
                            plan.record(spec.kind, self.spec.index,
                                        f"case {self.done}")
                            if spec.kind == "kill_worker":
                                raise faults.WorkerKilled(
                                    f"worker {self.spec.index} killed at "
                                    f"case {self.done}")
                            time.sleep(spec.seconds)
                    started = time.monotonic() if timeout else 0.0
                    engine.step()
                    if timeout and time.monotonic() - started > timeout:
                        self.deadline_overruns += 1
                    i = self.done
                    if i % self.sample_every == 0 or i == self.spec.iterations:
                        self._sample(i, agent)
        finally:
            faults.set_current_worker(previous_worker)
            telemetry.set_shard(previous_shard)
        self._since_import += steps
        return steps

    def run_lease(self, size: int) -> int:
        """Extend this worker's share by one lease and run it.

        Under the stealing schedule a worker's share is whatever it has
        claimed so far: the spec grows lease by lease, so ``finished``,
        sampling, and reports all see the claimed total. The lease's
        wall-clock feeds :attr:`rate`, which sizes the next claim.
        """
        self.spec.iterations += size
        started = time.perf_counter()
        steps = self.run_chunk(size)
        elapsed = time.perf_counter() - started
        if steps and elapsed > 0:
            self.rate = steps / elapsed
        return steps

    def _sample(self, i: int, agent) -> None:
        """Record one timeline sample and its newly covered lines."""
        self.timeline.record(i, agent.coverage_fraction)
        covered = agent.covered_lines()
        delta = frozenset(covered - self._seen_lines)
        self._seen_lines |= delta
        self.samples.append((i, delta))

    def _run_batched(self, steps: int, engine, agent, plan, timeout) -> None:
        """The batched chunk loop (DESIGN.md §12).

        Per-case heartbeat and fault checks are hoisted to the start of
        each sub-batch, in case order: a kill scheduled mid-batch still
        fires at its exact case number, after the preceding lanes of the
        batch have executed — so a restored checkpoint replays to the
        same state the serial rule would. Deadline accounting moves to
        batch granularity (one overrun when a batch exceeds its summed
        per-case budget), and timeline samples inside one batch read the
        batch-final coverage.
        """
        remaining = steps
        while remaining:
            batch = min(self.campaign.batch_size, remaining)
            first = self.done + 1
            killed = None
            pending = 0
            for _ in range(batch):
                self.done += 1
                self._heartbeat()
                if plan is not None:
                    spec = plan.take_case_fault(self.spec.index, self.done)
                    if spec is not None:
                        plan.record(spec.kind, self.spec.index,
                                    f"case {self.done}")
                        if spec.kind == "kill_worker":
                            killed = faults.WorkerKilled(
                                f"worker {self.spec.index} killed at "
                                f"case {self.done}")
                            break
                        time.sleep(spec.seconds)
                pending += 1
            if pending:
                started = time.monotonic() if timeout else 0.0
                engine.step_batch(pending)
                if timeout and time.monotonic() - started > timeout * pending:
                    self.deadline_overruns += 1
                for i in range(first, first + pending):
                    if i % self.sample_every == 0 or i == self.spec.iterations:
                        self._sample(i, agent)
            if killed is not None:
                raise killed
            remaining -= batch

    # --- corpus sync -------------------------------------------------------

    def export(self) -> int:
        """Publish locally found queue entries to the sync directory."""
        if self.sync is None:
            return 0
        with telemetry.shard_scope(self.spec.index):
            return self.sync.export(self.campaign.engine,
                                    codec=self.line_codec)

    def import_new(self) -> int:
        """Consume partners' new entries; keep the locally novel ones."""
        if self.sync is None:
            return 0
        with telemetry.shard_scope(self.spec.index):
            return self.sync.import_new(
                self.campaign.engine, codec=self.line_codec,
                absorb_lines=self.campaign.agent.absorb_lines)

    def maybe_import(self, adaptive: AdaptiveSync | None = None) -> int:
        """Import partners' finds, subject to the adaptive-sync gate.

        With no controller this is :meth:`import_new`. With one, the
        scan only runs once the cases executed since the last import
        reach the controller's current interval; the round's outcome
        (executed vs subsumed entries, whether any import lit new
        virgin bits) is fed back to the controller, and the resulting
        interval is published as the ``sync.interval`` gauge. Skipped
        rounds are counted in ``sync_stats.rounds_skipped_adaptive`` —
        they are the sync overhead the controller saved.
        """
        if self.sync is None:
            return 0
        if adaptive is not None and self._since_import < adaptive.interval:
            self.sync.stats.rounds_skipped_adaptive += 1
            return 0
        stats = self.campaign.engine.stats
        virgin = self.campaign.engine.virgin
        imported_before = stats.imported
        subsumed_before = stats.imports_skipped_subsumed
        generation_before = virgin.generation
        imported = self.import_new()
        self._since_import = 0
        if adaptive is not None:
            subsumed = stats.imports_skipped_subsumed - subsumed_before
            executed = (stats.imported - imported_before) - subsumed
            interval = adaptive.record_round(
                executed=executed, subsumed=subsumed,
                new_bits=virgin.generation > generation_before)
            with telemetry.shard_scope(self.spec.index):
                telemetry.gauge("sync.interval", interval)
        return imported

    def publish_virgin(self) -> None:
        """OR local virgin bits into the shared map, if one is attached.

        Free when nothing changed since the last publish (the map's
        generation counter). A failing publisher — the segment vanished
        under us — is dropped for good: reports then carry the full
        snapshot again, so no bits are ever lost.
        """
        publisher = self.virgin_publisher
        if publisher is None:
            return
        virgin = self.campaign.engine.virgin
        if virgin.generation == self._published_generation:
            return
        try:
            with telemetry.shard_scope(self.spec.index):
                publisher(bytes(virgin.bits))
        except Exception as exc:
            log.warning("worker %d: shared virgin-map publish failed (%s); "
                        "falling back to report snapshots",
                        self.spec.index, exc)
            self.virgin_publisher = None
            return
        self._published_generation = virgin.generation

    def run_share(self, sync_every: int,
                  adaptive: AdaptiveSync | None = None) -> "WorkerReport":
        """Self-paced loop for process mode: chunk, publish, import."""
        rounds = 0
        while not self.finished:
            self.run_chunk(sync_every)
            self.export()
            self.maybe_import(adaptive)
            self.publish_virgin()
            rounds += 1
            with telemetry.shard_scope(self.spec.index):
                telemetry.event("worker.sync_round", round=rounds,
                                done=self.done,
                                queue=len(self.campaign.engine.queue))
                telemetry.flush()
            self.save_checkpoint()
        if self.spec.iterations == 0:
            self.export()
        return self.report()

    def run_leases(self, board, *, adaptive: AdaptiveSync | None = None,
                   idle_poll: float = 0.01) -> "WorkerReport":
        """Self-paced stealing loop for process mode: claim, run, sync.

        The worker pulls leases off the shared board until the board is
        drained. ``board.complete`` runs **before** the checkpoint, so
        the ledger — not the snapshot — is authoritative: a lease can
        never be re-executed because its completion record survives any
        crash that follows it (the converse window, a crash between
        completion and checkpoint, costs at most one lease's engine
        state and is documented in DESIGN.md §13). An idle worker — the
        board is empty but partners still hold leases that may yet be
        reclaimed — keeps stamping its heartbeat so the supervisor does
        not mistake patience for a hang.
        """
        rounds = 0
        while True:
            lease = board.claim(self.spec.index, rate=self.rate)
            if lease is None:
                if board.finished():
                    break
                self._heartbeat()
                time.sleep(idle_poll)
                continue
            self.run_lease(lease.size)
            board.complete(lease.id, self.spec.index, round_no=rounds)
            self.export()
            self.maybe_import(adaptive)
            self.publish_virgin()
            rounds += 1
            with telemetry.shard_scope(self.spec.index):
                telemetry.event("worker.lease", round=rounds,
                                lease=lease.id, size=lease.size,
                                done=self.done)
                telemetry.flush()
            self.save_checkpoint()
        self.export()
        return self.report()

    # --- checkpointing ------------------------------------------------------

    def __getstate__(self) -> dict:
        # The shared-memory publisher is a process-local handle; the
        # restoring process re-injects its own. Dropping the published
        # generation with it forces a full republish after restore — a
        # restarted supervisor may own a brand-new (empty) segment.
        state = self.__dict__.copy()
        state.pop("virgin_publisher", None)
        state.pop("_published_generation", None)
        return state

    def save_checkpoint(self) -> None:
        """Atomically snapshot this worker's complete state, if enabled."""
        if self.checkpoint_path is not None:
            atomic_write_bytes(self.checkpoint_path, pickle.dumps(self))

    @classmethod
    def load_checkpoint(cls, path: Path) -> "CampaignWorker | None":
        """Restore a worker from its snapshot; ``None`` if unreadable."""
        try:
            worker = pickle.loads(Path(path).read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        return worker if isinstance(worker, cls) else None

    # --- results -----------------------------------------------------------

    def corpus_digest(self) -> str:
        """Order-sensitive digest of the current seed queue."""
        digest = hashlib.sha256()
        for entry in self.campaign.engine.queue.entries:
            digest.update(entry.data)
            digest.update(bytes((entry.new_bits, entry.imported)))
            digest.update(entry.found_at.to_bytes(8, "little"))
        return digest.hexdigest()

    def result(self) -> CampaignResult:
        """This worker's own view, shaped exactly like a serial result."""
        agent = self.campaign.agent
        return CampaignResult(
            timeline=self.timeline,
            covered_lines=agent.covered_lines(),
            instrumented_lines=set(agent.tracer.instrumented),
            reports=list(agent.reports.reports),
            engine_stats=self.campaign.engine.stats,
            watchdog_restarts=agent.watchdog.restarts)

    def report(self) -> WorkerReport:
        # With a live shared map the final publish lands there and the
        # report ships an empty snapshot instead of 64 KiB of pickle.
        self.publish_virgin()
        virgin_bits = (b"" if self.virgin_publisher is not None
                       else bytes(self.campaign.engine.virgin.bits))
        return WorkerReport(
            index=self.spec.index,
            share=self.spec.iterations,
            result=self.result(),
            samples=list(self.samples),
            virgin_bits=virgin_bits,
            corpus_digest=self.corpus_digest(),
            deadline_overruns=self.deadline_overruns,
            sync_stats=self.sync.stats if self.sync is not None else None)
