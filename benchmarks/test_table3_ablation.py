"""Table 3: contribution of each VM-generator component (24-hour mark).

Reproduces the ablation: disabling any one of the three components —
execution harness, state validator, vCPU configurator — costs coverage,
and disabling all three ("w/o ALL": fixed template, default config)
costs the most.
"""

import pytest

from common import BenchReport, coverage_percents, necofuzz_runs
from repro import ComponentToggles, Vendor
from repro.analysis.stats import median_of

#: Table 3 is measured at the 24-hour mark — half the Figure-3 budget.
ABLATION_BUDGET = 450

CONFIGS = (
    ("with ALL", ComponentToggles()),
    ("w/o VM execution harness", ComponentToggles(use_harness=False)),
    ("w/o VM state validator", ComponentToggles(use_validator=False)),
    ("w/o vCPU configurator", ComponentToggles(use_configurator=False)),
    ("w/o ALL", ComponentToggles.none()),
)


def _run_ablation(vendor: Vendor) -> dict[str, list[float]]:
    medians: dict[str, list[float]] = {}
    for name, toggles in CONFIGS:
        results = necofuzz_runs(vendor, budget=ABLATION_BUDGET,
                                toggles=toggles)
        medians[name] = coverage_percents(results)
    return medians


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                         ids=["intel", "amd"])
def test_table3_ablation(benchmark, capsys, vendor):
    box = {}

    def experiment():
        box["result"] = _run_ablation(vendor)
        return box["result"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    samples = box["result"]
    medians = {name: median_of(values) for name, values in samples.items()}

    report = BenchReport(f"Table 3: component ablation ({vendor.value}, 24h)")
    full = medians["with ALL"]
    for name, value in medians.items():
        delta = "" if name == "with ALL" else f"  ({value - full:+.1f} pp)"
        report.add(f"{name:<28} {value:5.1f}%{delta}")
    report.emit(capsys)

    # Every single-component ablation costs coverage (paper: 6-20 pp).
    for name in ("w/o VM execution harness", "w/o VM state validator",
                 "w/o vCPU configurator"):
        assert medians[name] < full, f"{name} did not reduce coverage"
    # The full ablation costs the most (paper: 28.2 pp Intel, 22.5 AMD).
    assert medians["w/o ALL"] <= min(
        medians[name] + 3.0
        for name in ("w/o VM execution harness", "w/o VM state validator",
                     "w/o vCPU configurator"))
    assert full - medians["w/o ALL"] > 8.0
