"""Corpus-distillation invariants: exemptions, determinism, greedy cover."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer.queue import SeedQueue
from repro.schedule import distill

coverage_strategy = st.lists(
    st.tuples(st.integers(0, 2047), st.sampled_from((1, 2, 4, 8))),
    min_size=1, max_size=20).map(lambda pairs: tuple(sorted(set(pairs))))


def _random_queue(draw_covs, flags):
    queue = SeedQueue()
    queue.add_seed(b"seed")  # coverage None: exempt
    for i, (cov, (crashed, anomaly)) in enumerate(zip(draw_covs, flags)):
        queue.add_finding(bytes([i % 256]) * 4, iteration=i + 1, new_bits=1,
                          coverage=cov, crashed=crashed, anomaly=anomaly)
    return queue


class TestExemptions:
    @given(st.lists(coverage_strategy, min_size=1, max_size=12),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_never_demotes_crashed_anomaly_or_seed_entries(self, covs, data):
        flags = [(data.draw(st.booleans()), data.draw(st.booleans()))
                 for _ in covs]
        queue = _random_queue(covs, flags)
        distill(queue)
        for entry in queue.entries:
            if entry.coverage is None or entry.crashed or entry.anomaly:
                assert not entry.redundant

    def test_nothing_is_ever_dropped(self):
        covs = [((1, 1),), ((1, 1),), ((2, 2),)]
        queue = _random_queue(covs, [(False, False)] * 3)
        size = len(queue)
        demoted = distill(queue)
        assert len(queue) == size
        assert demoted == 1


class TestGreedyCover:
    def test_duplicate_coverage_demoted_in_discovery_order(self):
        queue = _random_queue(
            [((1, 1), (2, 1)), ((1, 1),), ((3, 4),)],
            [(False, False)] * 3)
        distill(queue)
        assert [e.redundant for e in queue.entries] == [
            False, False, True, False]

    def test_crasher_coverage_still_blocks_duplicates(self):
        # A crasher is exempt from demotion, but an ordinary later entry
        # duplicating its coverage is exactly what distillation demotes.
        queue = _random_queue(
            [((5, 1),), ((5, 1),)],
            [(True, False), (False, False)])
        distill(queue)
        assert not queue.entries[1].redundant  # the crasher
        assert queue.entries[2].redundant      # its shadow

    def test_promotion_back_when_cover_changes(self):
        # redundant is recomputed, not sticky: an entry demoted once is
        # promoted again if the entries before it change.
        queue = _random_queue([((1, 1),), ((1, 1),)], [(False, False)] * 2)
        distill(queue)
        assert queue.entries[2].redundant
        del queue.entries[1]
        distill(queue)
        assert not queue.entries[1].redundant


class TestDeterminism:
    @given(st.lists(coverage_strategy, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_idempotent_and_replica_stable(self, covs):
        q1 = _random_queue(covs, [(False, False)] * len(covs))
        q2 = _random_queue(covs, [(False, False)] * len(covs))
        first = distill(q1)
        again = distill(q1)
        replica = distill(q2)
        assert first == again == replica
        assert ([e.redundant for e in q1.entries]
                == [e.redundant for e in q2.entries])
