"""Simulated L0 hypervisors — the fuzz targets (KVM, Xen, VirtualBox)."""

from repro.hypervisors.base import (
    ExecResult,
    GuestInstruction,
    L0Hypervisor,
    SanitizerEvent,
    SanitizerKind,
    VcpuConfig,
    VmCrash,
)
from repro.hypervisors.kvm import KvmHypervisor
from repro.hypervisors.vbox import VboxHypervisor
from repro.hypervisors.xen import XenHypervisor

#: Registry used by the agent and the configurator adapters.
HYPERVISORS = {
    "kvm": KvmHypervisor,
    "xen": XenHypervisor,
    "virtualbox": VboxHypervisor,
}

__all__ = [
    "L0Hypervisor",
    "KvmHypervisor",
    "XenHypervisor",
    "VboxHypervisor",
    "HYPERVISORS",
    "VcpuConfig",
    "GuestInstruction",
    "ExecResult",
    "SanitizerEvent",
    "SanitizerKind",
    "VmCrash",
]
