"""Tests for the baseline scaffolding (shared coverage/anomaly plumbing)."""

from repro.arch.cpuid import Vendor
from repro.arch.exceptions import HostCrash
from repro.baselines.common import BaselineHarness
from repro.hypervisors import KvmHypervisor, VcpuConfig, XenHypervisor
from repro.hypervisors.base import VmCrash


class TestBaselineHarness:
    def test_coverage_accumulates_across_cases(self):
        harness = BaselineHarness("t", Vendor.INTEL, KvmHypervisor)

        def case(hv):
            vcpu = hv.create_vcpu()
            from repro.hypervisors import GuestInstruction

            hv.execute(vcpu, GuestInstruction("vmxon", {"addr": 0x1000}))

        harness.run_case(KvmHypervisor(VcpuConfig.default(Vendor.INTEL)), case)
        first = harness.coverage_fraction
        assert first > 0
        harness.run_case(KvmHypervisor(VcpuConfig.default(Vendor.INTEL)), case)
        assert harness.coverage_fraction >= first
        assert harness.cases == 2

    def test_host_crash_absorbed(self):
        harness = BaselineHarness("t", Vendor.INTEL, XenHypervisor)
        hv = XenHypervisor(VcpuConfig.default(Vendor.INTEL))

        def crashing_case(_hv):
            _hv.crashed = True
            raise HostCrash("synthetic hang", hang=True)

        harness.run_case(hv, crashing_case)
        assert harness.watchdog.restarts == 1
        assert not hv.crashed  # restarted
        assert any(a.method.value == "Host Crash" for a in harness.anomalies)

    def test_vm_crash_recorded(self):
        harness = BaselineHarness("t", Vendor.INTEL, KvmHypervisor)
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))

        def crashing_case(_hv):
            raise VmCrash("guest died")

        harness.run_case(hv, crashing_case)
        assert any(a.method.value == "VM Crash" for a in harness.anomalies)
        assert harness.watchdog.restarts == 0

    def test_result_packaging(self):
        harness = BaselineHarness("tool", Vendor.INTEL, KvmHypervisor)
        result = harness.result()
        assert result.instrumented_lines == harness.tracer.instrumented
        assert result.engine_stats.iterations == 0
        assert result.timeline.label == "tool"

    def test_same_universe_as_campaigns(self):
        harness = BaselineHarness("t", Vendor.AMD, KvmHypervisor)
        import repro.hypervisors.kvm.nested_svm as mod

        files = {f for f, _ in harness.tracer.instrumented}
        assert files == {mod.__file__}
