"""Chaos suite: the checkpoint/resume determinism contract.

An inline campaign killed mid-run and ``--resume``'d from its last
checkpoint must reproduce the uninterrupted run's fingerprint bit for
bit — on both nesting stacks (VMX/Intel and SVM/AMD), since the
checkpoint pickles vendor-specific state (VMCS vs VMCB images, the
per-vendor correction rules) that each has its own pickling hazards.
"""

import pytest

from repro import Vendor, faults
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import (
    CampaignAborted,
    ParallelCampaign,
    campaign_fingerprint,
)

SEED = 11
BUDGET = 40
SYNC_EVERY = 10

STACKS = [
    pytest.param("kvm", Vendor.INTEL, id="vmx-intel"),
    pytest.param("kvm", Vendor.AMD, id="svm-amd"),
]


def _campaign(hypervisor, vendor, sync_dir, **overrides):
    kwargs = dict(hypervisor=hypervisor, vendor=vendor, seed=SEED,
                  workers=2, sync_every=SYNC_EVERY, mode="inline",
                  sync_dir=sync_dir, checkpoint_interval=1)
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


class TestResumeDeterminism:
    @pytest.mark.parametrize("hypervisor,vendor", STACKS)
    def test_resumed_campaign_reproduces_fingerprint(self, tmp_path,
                                                     hypervisor, vendor):
        clean = _campaign(hypervisor, vendor, tmp_path / "clean").run(BUDGET)

        # Interrupt: an unrecoverable worker death (max_restarts=0) in
        # the second chunk, after round 1 has been checkpointed.
        crashed_dir = tmp_path / "crashed"
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=15)])
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                _campaign(hypervisor, vendor, crashed_dir,
                          max_restarts=0).run(BUDGET)
        assert (crashed_dir / "campaign.ckpt").exists()

        resumed = _campaign(hypervisor, vendor, crashed_dir,
                            resume=True).run(BUDGET)
        assert resumed.engine_stats.iterations == BUDGET
        assert campaign_fingerprint(resumed) == campaign_fingerprint(clean)

    def test_resume_without_checkpoint_is_a_fresh_run(self, tmp_path):
        # Nothing to resume from: the campaign must simply run clean.
        clean = _campaign("kvm", Vendor.INTEL, tmp_path / "a").run(BUDGET)
        fresh = _campaign("kvm", Vendor.INTEL, tmp_path / "b",
                          resume=True).run(BUDGET)
        assert campaign_fingerprint(fresh) == campaign_fingerprint(clean)

    def test_checkpoint_from_other_campaign_shape_is_ignored(self, tmp_path,
                                                             caplog):
        # A checkpoint from a different campaign shape (here: another
        # seed) must not be resumed into: the manifest mismatch is
        # detected, logged, and the campaign starts over from round 0.
        sync_dir = tmp_path / "shared"
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=15)])
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                _campaign("kvm", Vendor.INTEL, sync_dir,
                          max_restarts=0).run(BUDGET)

        with caplog.at_level("WARNING", logger="repro.parallel"):
            resumed = _campaign("kvm", Vendor.INTEL, sync_dir, seed=SEED + 1,
                                resume=True).run(BUDGET)
        assert any("campaign shape changed" in r.message
                   for r in caplog.records)
        # A fresh full run, not a continuation of the 15 crashed cases.
        assert resumed.engine_stats.iterations == BUDGET
