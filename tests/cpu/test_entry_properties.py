"""Property-based tests over the hardware VM-entry machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.entry_checks import CheckStage, check_all
from repro.cpu.physical_cpu import VmxCpu
from repro.cpu.quirks import apply_entry_fixups
from repro.validator.golden import golden_vmcs
from repro.validator.rounding import VmStateValidator
from repro.vmx import fields as F
from repro.vmx.msr_caps import default_capabilities
from repro.vmx.vmcs import Vmcs

raw_vmcs = st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES)


class TestCheckProperties:
    @given(raw_vmcs)
    @settings(max_examples=40, deadline=None)
    def test_first_violation_defines_the_stage(self, raw):
        """check_all mirrors hardware: one failing group at a time."""
        vmcs = Vmcs.deserialize(raw)
        violations = check_all(vmcs, default_capabilities())
        stages = {v.stage for v in violations}
        assert len(stages) <= 1

    @given(raw_vmcs)
    @settings(max_examples=30, deadline=None)
    def test_fixups_preserve_validity(self, raw):
        """The silent roundings never invalidate an accepted state."""
        caps = default_capabilities()
        vmcs = Vmcs.deserialize(raw)
        VmStateValidator(caps).round_to_valid(vmcs)
        before = check_all(vmcs, caps)
        if before:
            return  # only accepted states are entered and fixed up
        apply_entry_fixups(vmcs)
        assert check_all(vmcs, caps) == []

    @given(raw_vmcs)
    @settings(max_examples=30, deadline=None)
    def test_fixups_idempotent(self, raw):
        vmcs = Vmcs.deserialize(raw)
        apply_entry_fixups(vmcs)
        assert apply_entry_fixups(vmcs) == []

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_single_control_field_fuzz_never_crashes_checks(self, value):
        """Whatever lands in a control field, the checker returns a list
        (no exception) — the robustness the L0 models rely on."""
        vmcs = golden_vmcs()
        vmcs.write(F.VM_ENTRY_INTR_INFO_FIELD, value)
        violations = check_all(vmcs, default_capabilities())
        assert isinstance(violations, list)


class TestEntryStateMachineProperties:
    @given(raw_vmcs)
    @settings(max_examples=20, deadline=None)
    def test_failed_entry_never_marks_launched(self, raw):
        cpu = VmxCpu()
        cpu.vmxon(0x1000)
        cpu.vmclear(0x2000)
        image = Vmcs.deserialize(raw)
        image.clear()
        cpu.install_vmcs(0x2000, image)
        cpu.vmptrld(0x2000)
        outcome = cpu.vmlaunch()
        if not outcome.entered:
            assert not cpu.current_vmcs.launched
        else:
            assert cpu.current_vmcs.launched

    @given(raw_vmcs)
    @settings(max_examples=20, deadline=None)
    def test_entry_outcome_consistency(self, raw):
        """entered, failed_entry, and VMfail are mutually exclusive."""
        cpu = VmxCpu()
        cpu.vmxon(0x1000)
        cpu.vmclear(0x2000)
        image = Vmcs.deserialize(raw)
        image.clear()
        cpu.install_vmcs(0x2000, image)
        cpu.vmptrld(0x2000)
        outcome = cpu.vmlaunch()
        if outcome.entered:
            assert outcome.vmx_result.ok and not outcome.failed_entry
        elif outcome.failed_entry:
            assert outcome.vmx_result.ok  # a failed entry is not VMfail
            assert outcome.violations
            assert outcome.violations[0].stage in (CheckStage.GUEST_STATE,
                                                   CheckStage.MSR_LOAD)
        else:
            assert not outcome.vmx_result.ok
