"""Campaign-level schedule contracts (DESIGN.md §16).

* flat (the default) is fingerprint-pinned: the schedule machinery adds
  zero RNG draws, so a flat campaign reproduces the pre-schedule
  fingerprint bit for bit on both vendors;
* fast is a different, but fully deterministic, trajectory — including
  under checkpoint/resume and lease-log replay, because the schedule
  and bandit state ride the worker pickle.
"""

import pytest

from repro import NecoFuzz, Vendor, faults
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import (
    CampaignAborted,
    ParallelCampaign,
    campaign_fingerprint,
)

SEED = 11
BUDGET = 40
SYNC_EVERY = 10

STACKS = [
    pytest.param("kvm", Vendor.INTEL, id="vmx-intel"),
    pytest.param("kvm", Vendor.AMD, id="svm-amd"),
]


def _campaign(hypervisor, vendor, sync_dir, **overrides):
    kwargs = dict(hypervisor=hypervisor, vendor=vendor, seed=SEED,
                  workers=2, sync_every=SYNC_EVERY, mode="inline",
                  sync_dir=sync_dir)
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


class TestFlatParity:
    @pytest.mark.parametrize("hypervisor,vendor", STACKS)
    def test_flat_equals_default_fingerprint(self, tmp_path, hypervisor,
                                             vendor):
        """Explicit ``power_schedule="flat"`` is the default, verbatim."""
        default = _campaign(hypervisor, vendor, tmp_path / "a").run(BUDGET)
        explicit = _campaign(hypervisor, vendor, tmp_path / "b",
                             power_schedule="flat").run(BUDGET)
        assert (campaign_fingerprint(default)
                == campaign_fingerprint(explicit))

    def test_serial_flat_matches_default(self):
        default = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL,
                           seed=SEED).run(BUDGET)
        explicit = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL,
                            seed=SEED, power_schedule="flat").run(BUDGET)
        assert default.covered_lines == explicit.covered_lines
        assert (default.engine_stats.queue_adds
                == explicit.engine_stats.queue_adds)


class TestFastDeterminism:
    @pytest.mark.parametrize("hypervisor,vendor", STACKS)
    def test_fast_campaign_reproducible(self, tmp_path, hypervisor, vendor):
        one = _campaign(hypervisor, vendor, tmp_path / "a",
                        power_schedule="fast").run(BUDGET)
        two = _campaign(hypervisor, vendor, tmp_path / "b",
                        power_schedule="fast").run(BUDGET)
        assert campaign_fingerprint(one) == campaign_fingerprint(two)

    def test_fast_diverges_from_flat(self, tmp_path):
        """fast must actually change scheduling, not just relabel it."""
        flat = _campaign("kvm", Vendor.INTEL, tmp_path / "flat").run(BUDGET)
        fast = _campaign("kvm", Vendor.INTEL, tmp_path / "fast",
                         power_schedule="fast").run(BUDGET)
        assert campaign_fingerprint(flat) != campaign_fingerprint(fast)

    def test_serial_fast_reproducible_and_learning(self):
        runs = [NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                         power_schedule="fast") for _ in range(2)]
        results = [c.run(BUDGET) for c in runs]
        assert results[0].covered_lines == results[1].covered_lines
        rates = [c.engine.bandit.hit_rates() for c in runs]
        assert rates[0] == rates[1] and rates[0]


class TestFastResume:
    @pytest.mark.parametrize("hypervisor,vendor", STACKS)
    def test_fast_resume_reproduces_fingerprint(self, tmp_path, hypervisor,
                                                vendor):
        """Schedule + bandit state ride the checkpoint pickle."""
        clean = _campaign(hypervisor, vendor, tmp_path / "clean",
                          power_schedule="fast",
                          checkpoint_interval=1).run(BUDGET)

        crashed_dir = tmp_path / "crashed"
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=15)])
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                _campaign(hypervisor, vendor, crashed_dir,
                          power_schedule="fast", checkpoint_interval=1,
                          max_restarts=0).run(BUDGET)

        resumed = _campaign(hypervisor, vendor, crashed_dir,
                            power_schedule="fast", checkpoint_interval=1,
                            resume=True).run(BUDGET)
        assert campaign_fingerprint(resumed) == campaign_fingerprint(clean)

    def test_checkpoint_manifest_pins_power_schedule(self, tmp_path):
        """A fast checkpoint must not be resumable by a flat campaign:
        the manifest tuple (the checkpoint-compatibility guard) has to
        distinguish the two schedules."""
        flat = _campaign("kvm", Vendor.INTEL, tmp_path)
        fast = _campaign("kvm", Vendor.INTEL, tmp_path,
                         power_schedule="fast")
        assert (flat._manifest(flat._specs(BUDGET), 10)
                != fast._manifest(fast._specs(BUDGET), 10))


class TestFastLeaseReplay:
    def test_lease_log_replay_pins_fast_fingerprint(self, tmp_path):
        original = _campaign("kvm", Vendor.INTEL, tmp_path / "a",
                             power_schedule="fast", schedule="stealing",
                             lease_size=8).run(BUDGET)
        assert original.lease_log
        replayed = _campaign("kvm", Vendor.INTEL, tmp_path / "b",
                             power_schedule="fast", schedule="stealing",
                             lease_size=8,
                             lease_log=original.lease_log).run(BUDGET)
        assert (campaign_fingerprint(replayed)
                == campaign_fingerprint(original))


class TestValidation:
    def test_unknown_power_schedule_rejected(self):
        with pytest.raises(ValueError, match="power_schedule"):
            ParallelCampaign(power_schedule="bogus")

    def test_unknown_mode_rejected_serially(self):
        with pytest.raises(ValueError, match="power schedule"):
            NecoFuzz(power_schedule="bogus")
