"""Tests for the AFL mutation operators (length preservation etc.)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer import mutators as M
from repro.fuzzer.rng import Rng

data_strategy = st.binary(min_size=16, max_size=256)
seed_strategy = st.integers(min_value=0, max_value=2**32 - 1)


class TestLengthPreservation:
    @given(data_strategy, seed_strategy)
    @settings(max_examples=50, deadline=None)
    def test_all_operators_preserve_length(self, data, seed):
        rng = Rng(seed)
        for op in (lambda d: M.bitflip(d, rng), lambda d: M.bitflip(d, rng, width=4),
                   lambda d: M.byteflip(d, rng), lambda d: M.arith(d, rng, width=2),
                   lambda d: M.interesting(d, rng, width=4),
                   lambda d: M.random_byte(d, rng),
                   lambda d: M.block_overwrite(d, rng),
                   lambda d: M.block_copy(d, rng),
                   lambda d: M.havoc(d, rng)):
            assert len(op(data)) == len(data)


class TestBitflip:
    def test_flips_exactly_width_bits(self):
        rng = Rng(1)
        data = bytes(32)
        flipped = M.bitflip(data, rng, width=1)
        diff = sum((a ^ b).bit_count() for a, b in zip(data, flipped))
        assert diff == 1

    def test_double_flip_restores(self):
        data = bytes(range(32))
        out = M.bitflip(M.bitflip(data, Rng(9)), Rng(9))
        assert out == data


class TestByteflip:
    def test_inverts_bytes(self):
        rng = Rng(2)
        data = bytes(16)
        flipped = M.byteflip(data, rng)
        assert sum(1 for a, b in zip(data, flipped) if a != b) == 1
        assert 0xFF in flipped


class TestArith:
    def test_changes_value_in_range(self):
        rng = Rng(3)
        data = bytes(16)
        out = M.arith(data, rng, width=1)
        changed = [b for b in out if b]
        assert changed and all(b <= M.ARITH_MAX or b >= 256 - M.ARITH_MAX
                               for b in changed)


class TestInteresting:
    def test_injects_table_value(self):
        rng = Rng(4)
        out = M.interesting(bytes(16), rng, width=2)
        value = next((int.from_bytes(out[i:i + 2], "little")
                      for i in range(15) if out[i:i + 2] != b"\x00\x00"), 0)
        assert value in {v % (1 << 16) for v in M.INTERESTING_16} or value == 0


class TestSplice:
    def test_head_from_first_tail_from_second(self):
        a, b = bytes([1] * 32), bytes([2] * 32)
        out = M.splice(a, b, Rng(5))
        assert out[0] == 1 and out[-1] == 2
        assert len(out) == 32

    def test_mismatched_lengths_handled(self):
        out = M.splice(bytes(32), bytes(8), Rng(6))
        assert len(out) == 32

    @given(st.binary(min_size=0, max_size=1),
           st.binary(min_size=0, max_size=64), seed_strategy)
    @settings(max_examples=50, deadline=None)
    def test_short_inputs_pass_through(self, data, other, seed):
        """Regression: length <= 1 used to raise ValueError through
        ``rng.below(0)`` — exactly what a 0/1-byte corpus entry feeds."""
        rng = Rng(seed)
        before = rng.getstate()
        assert M.splice(data, other, rng) == data
        # The guard consumes no draw, like a zero-length cut would.
        assert rng.getstate() == before

    def test_zero_and_one_byte_corpus_entries_mutable(self):
        """End-to-end shape of the original crash: a tiny corpus entry
        spliced with a full-size partner inside mutate_candidate."""
        for data in (b"", b"\x7f"):
            out = M.mutate_candidate(data, Rng(3), ((0, 1),),
                                     partner=bytes(64))
            assert isinstance(out, bytes)


class TestRegionHavoc:
    REGIONS = ((0, 16), (16, 32), (32, 64))

    @given(st.binary(min_size=64, max_size=64), seed_strategy)
    @settings(max_examples=50, deadline=None)
    def test_length_preserved(self, data, seed):
        out = M.region_havoc(data, Rng(seed), self.REGIONS)
        assert len(out) == len(data)

    def test_touches_multiple_regions(self):
        """Over many applications, every region must get mutated — the
        property uniform havoc lacks for partitioned inputs."""
        data = bytes(64)
        rng = Rng(7)
        touched = set()
        for _ in range(50):
            out = M.region_havoc(data, rng, self.REGIONS)
            for idx, (start, end) in enumerate(self.REGIONS):
                if out[start:end] != data[start:end]:
                    touched.add(idx)
        assert touched == {0, 1, 2}

    def test_deterministic_for_same_rng(self):
        data = bytes(range(64))
        assert (M.region_havoc(data, Rng(11), self.REGIONS)
                == M.region_havoc(data, Rng(11), self.REGIONS))
