"""AFL-style edge-coverage bitmap.

The agent maps hypervisor traces onto "a shared memory bitmap monitored
by AFL++ to guide mutation" (paper §4.1). We reproduce the classic AFL
scheme: 64 KiB of per-edge hit counters, bucketed into power-of-two
classes, with a persistent *virgin map* deciding whether a run found new
behaviour.

The hot loops are vectorized the way AFL itself treats the map as words,
not bytes: classification is a single ``bytes.translate`` over a
precomputed 256-entry table, population counts use ``bytes.count(0)``,
and the dense-run path of :meth:`VirginMap.has_new_bits` compares whole
maps as big integers before falling back to the per-cell loop.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

MAP_SIZE = 1 << 16

#: AFL's count-class buckets: a hit count maps to one bit of the byte.
_BUCKETS = ((1, 1), (2, 2), (3, 4), (4, 8), (8, 16), (16, 32), (32, 64),
            (128, 128))


def classify_count(count: int) -> int:
    """Map a raw hit count to its AFL count-class bit."""
    if count == 0:
        return 0
    for threshold, bucket in _BUCKETS:
        if count <= threshold:
            return bucket
    return 128


#: ``classify_count`` for every possible byte, so a whole map classifies
#: in one C-level ``bytes.translate`` instead of 64 Ki Python calls.
_CLASS_TABLE = bytes(classify_count(count) for count in range(256))

#: Runs touching at least this many cells take the big-int comparison
#: path in :meth:`VirginMap.has_new_bits` before the per-cell loop.
_DENSE_TOUCHED = 2048


def edge_index(prev_id: int, cur_id: int) -> int:
    """AFL edge hash: ``(prev >> 1) ^ cur`` folded into the map."""
    return ((prev_id >> 1) ^ cur_id) & (MAP_SIZE - 1)


@lru_cache(maxsize=65536)
def stable_line_id(filename: str, lineno: int) -> int:
    """Deterministic 16-bit id for a source location.

    ``hash()`` is randomized per interpreter run; campaigns must be
    reproducible, so we use a small FNV-1a over the location string.
    """
    h = 0x811C9DC5
    for byte in f"{filename}:{lineno}".encode():
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h & (MAP_SIZE - 1)


@lru_cache(maxsize=MAP_SIZE)
def edge_cell(edge: tuple) -> int:
    """Bitmap cell for one ((file, line), (file, line)) trace edge.

    The distinct source-line edges are bounded by the instrumented
    target code, so one memoized lookup per edge beats re-deriving the
    two line hashes plus the fold every case. Bounded at the map size:
    more distinct edges than cells cannot improve precision anyway.
    """
    (prev_file, prev_line), (cur_file, cur_line) = edge
    return edge_index(stable_line_id(prev_file, prev_line),
                      stable_line_id(cur_file, cur_line))


class CoverageBitmap:
    """One run's edge-hit bitmap."""

    def __init__(self) -> None:
        self.counts = bytearray(MAP_SIZE)
        self.touched: set[int] = set()

    def record_edge(self, prev_id: int, cur_id: int) -> None:
        """Count one traversal of the (prev, cur) edge."""
        idx = edge_index(prev_id, cur_id)
        if self.counts[idx] < 255:
            self.counts[idx] += 1
        self.touched.add(idx)

    def record_trace(self, edges) -> None:
        """Record a set of ((file, line), (file, line)) trace edges."""
        cell = edge_cell
        counts = self.counts
        touched = self.touched
        for edge in edges:
            idx = cell(edge)
            if counts[idx] < 255:
                counts[idx] += 1
            touched.add(idx)

    def classified(self) -> bytes:
        """The bucketed bitmap, as AFL would compare it."""
        return bytes(self.counts).translate(_CLASS_TABLE)

    def sparse_classified(self) -> tuple[tuple[int, int], ...]:
        """The touched cells as sorted ``(cell, class-bit)`` pairs.

        This is the wire representation corpus protocol v2 ships with
        every exported entry: a few dozen pairs instead of a 64 KiB map,
        enough for a partner to test subsumption against its own virgin
        map without executing the entry.
        """
        counts = self.counts
        table = _CLASS_TABLE
        return tuple(sorted((idx, table[counts[idx]])
                            for idx in self.touched if counts[idx]))

    def reset(self) -> None:
        """Clear recorded state (touched cells only — O(edges), not O(map))."""
        counts = self.counts
        for idx in self.touched:
            counts[idx] = 0
        self.touched.clear()

    def count_nonzero(self) -> int:
        """Number of map cells with at least one hit."""
        return MAP_SIZE - self.counts.count(0)


class VirginMap:
    """Cumulative map of behaviour already seen (AFL's virgin_bits)."""

    def __init__(self) -> None:
        self.bits = bytearray(MAP_SIZE)  # accumulated classified bits
        #: Bumped on every mutation; lets publishers (shared-memory map,
        #: ``merge_from`` fast path) skip work when nothing changed.
        self.generation = 0

    def has_new_bits(self, run: CoverageBitmap) -> int:
        """Merge *run* into the map.

        Returns 2 for brand-new edges, 1 for new count buckets on known
        edges, 0 for nothing new — the same tri-state AFL uses to decide
        whether an input is interesting. Dense runs first compare whole
        maps as big integers: one C-level AND/NOT proves "nothing new"
        without visiting thousands of cells individually.
        """
        counts = run.counts
        bits = self.bits
        if len(run.touched) >= _DENSE_TOUCHED:
            mine = int.from_bytes(bits, "little")
            theirs = int.from_bytes(run.classified(), "little")
            if theirs & ~mine == 0:
                return 0
        ret = 0
        table = _CLASS_TABLE
        for idx in run.touched:
            count = counts[idx]
            if not count:
                continue
            cls = table[count]
            old = bits[idx]
            if cls & ~old:
                ret = 2 if old == 0 else max(ret, 1)
                bits[idx] = old | cls
        if ret:
            self.generation += 1
        return ret

    def subsumes(self, coverage: Iterable[tuple[int, int]]) -> bool:
        """Would this sparse ``(cell, class-bit)`` coverage find nothing new?

        The import-filter predicate of corpus protocol v2: a partner
        entry whose recorded coverage is already fully present here
        cannot contribute virgin bits and need not be executed.
        """
        bits = self.bits
        for idx, cls in coverage:
            if cls & ~bits[idx]:
                return False
        return True

    def snapshot(self) -> bytes:
        """Immutable copy of the accumulated bits (checkpoint payload)."""
        return bytes(self.bits)

    def restore(self, bits: bytes) -> None:
        """Overwrite the map from a :meth:`snapshot` payload."""
        if len(bits) != MAP_SIZE:
            raise ValueError(
                f"virgin-map snapshot is {len(bits)} bytes, "
                f"expected {MAP_SIZE}")
        self.bits = bytearray(bits)
        self.generation += 1

    def merge_from(self, other: "VirginMap") -> bool:
        """OR another virgin map into this one (parallel-campaign merge).

        Returns whether anything changed. An all-zero *other* — a worker
        that found nothing since the last merge — is detected with one
        ``count(0)`` scan and skipped before the two 64 KiB big-int
        conversions are paid.
        """
        if other.bits.count(0) == MAP_SIZE:
            return False
        return self.merge_bits(bytes(other.bits))

    def merge_bits(self, bits: bytes) -> bool:
        """OR a raw :meth:`snapshot` payload in; returns whether changed."""
        if len(bits) != MAP_SIZE:
            raise ValueError(
                f"virgin-map payload is {len(bits)} bytes, "
                f"expected {MAP_SIZE}")
        mine = int.from_bytes(self.bits, "little")
        merged = mine | int.from_bytes(bits, "little")
        if merged == mine:
            return False
        self.bits = bytearray(merged.to_bytes(MAP_SIZE, "little"))
        self.generation += 1
        return True

    def delta_since(self, baseline: bytes, base_generation: int):
        """The :class:`repro.coverage.delta.CoverageDelta` carrying
        *baseline* → the current bits across the given watermark."""
        from repro.coverage import delta

        return delta.delta_between(baseline, bytes(self.bits),
                                   base_generation, self.generation)

    def apply_delta(self, cov_delta) -> bool:
        """Merge a decoded delta in; returns whether anything changed."""
        from repro.coverage import delta

        changed = delta.apply_runs(self.bits, cov_delta.runs)
        if changed:
            self.generation += 1
        return changed

    def subsumes_delta(self, cov_delta) -> bool:
        """Would applying *cov_delta* here change nothing?

        The whole-batch form of :meth:`subsumes`: a partner whose entire
        map diff is already present cannot ship any record that would
        light up new local bits.
        """
        from repro.coverage import delta

        return delta.runs_subsumed(self.bits, cov_delta.runs)

    def density(self) -> float:
        """Fraction of map bytes touched (AFL's map density)."""
        return (MAP_SIZE - self.bits.count(0)) / MAP_SIZE
