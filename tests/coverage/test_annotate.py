"""Tests for corpus persistence and source annotation."""

from repro.coverage.kcov import KcovTracer
from repro.coverage.report import annotate_source
from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE
from repro.fuzzer.rng import Rng
from repro.coverage.bitmap import CoverageBitmap

from tests.coverage import traced_target


class TestAnnotateSource:
    def _coverage(self):
        tracer = KcovTracer([traced_target])
        with tracer:
            traced_target.branchy(True)
        lines, _ = tracer.drain()
        return lines

    def test_marks(self):
        text = annotate_source(traced_target, self._coverage())
        lines = text.splitlines()
        true_line = lines[traced_target.BRANCH_TRUE_LINE - 1]
        false_line = lines[traced_target.BRANCH_FALSE_LINE - 1]
        module_line = lines[traced_target.MODULE_LEVEL_LINE - 1]
        assert true_line.lstrip().startswith("1:")
        assert false_line.lstrip().startswith("#####:")
        assert module_line.lstrip().startswith("-:")

    def test_line_numbers_present(self):
        text = annotate_source(traced_target, set())
        assert f":{traced_target.BRANCH_TRUE_LINE:5}:" in text


class TestCorpusPersistence:
    def _engine(self, seed=1):
        def execute(fi):
            bitmap = CoverageBitmap()
            bitmap.record_edge(sum(fi.data[:4]), 1)
            return RunFeedback(bitmap=bitmap)

        engine = FuzzEngine(execute=execute, rng=Rng(seed))
        engine.add_seed(bytes(INPUT_SIZE))
        return engine

    def test_save_and_load(self, tmp_path):
        engine = self._engine()
        engine.run(20)
        written = engine.save_corpus(tmp_path / "queue")
        assert written == len(engine.queue)
        files = list((tmp_path / "queue").iterdir())
        assert len(files) == written
        assert any("seed" in f.name for f in files)

        fresh = FuzzEngine(execute=lambda fi: RunFeedback(CoverageBitmap()),
                           rng=Rng(2))
        loaded = fresh.load_corpus(tmp_path / "queue")
        assert loaded == written
        assert len(fresh.queue) == written

    def test_loaded_corpus_is_deterministic(self, tmp_path):
        engine = self._engine()
        engine.run(10)
        engine.save_corpus(tmp_path / "q")
        seen = []
        for _ in range(2):
            fresh = self._engine(seed=9)
            fresh.load_corpus(tmp_path / "q")
            fresh.run(5)
            seen.append([e.data for e in fresh.queue.entries])
        assert seen[0] == seen[1]
