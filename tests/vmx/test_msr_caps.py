"""Unit tests for the VMX capability-MSR model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cpuid import Vendor, default_feature_map
from repro.vmx.controls import PinBased, ProcBased, Secondary
from repro.vmx.msr_caps import (
    ControlCaps,
    capabilities_for_features,
    default_capabilities,
)


class TestControlCaps:
    def test_permits_requires_allowed0(self):
        caps = ControlCaps(allowed0=0b11, allowed1=0xFF)
        assert caps.permits(0b11)
        assert not caps.permits(0b01)

    def test_permits_rejects_disallowed1(self):
        caps = ControlCaps(allowed0=0, allowed1=0b1111)
        assert caps.permits(0b1010)
        assert not caps.permits(0b10000)

    def test_round_produces_permitted(self):
        caps = ControlCaps(allowed0=0b11, allowed1=0b111)
        assert caps.permits(caps.round(0))
        assert caps.permits(caps.round(0xFFFFFFFF))

    def test_round_idempotent(self):
        caps = ControlCaps(allowed0=0x16, allowed1=0xFFFF)
        value = caps.round(0xDEAD)
        assert caps.round(value) == value

    def test_msr_value_packs_halves(self):
        caps = ControlCaps(allowed0=0x16, allowed1=0xFF)
        assert caps.msr_value == 0x16 | (0xFF << 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=100, deadline=None)
    def test_round_always_permitted(self, value):
        caps = default_capabilities().proc_based
        assert caps.permits(caps.round(value))


class TestFeatureDerivation:
    def test_default_allows_ept(self):
        caps = default_capabilities()
        assert caps.secondary.allowed1 & Secondary.ENABLE_EPT

    def test_disabling_ept_strips_dependents(self):
        features = default_feature_map(Vendor.INTEL)
        features["ept"] = False
        caps = capabilities_for_features(features)
        assert not caps.secondary.allowed1 & Secondary.ENABLE_EPT
        assert not caps.secondary.allowed1 & Secondary.UNRESTRICTED_GUEST
        assert not caps.secondary.allowed1 & Secondary.ENABLE_PML

    def test_disabling_apicv_strips_posted_interrupts(self):
        features = default_feature_map(Vendor.INTEL)
        features["apicv"] = False
        caps = capabilities_for_features(features)
        assert not caps.pin_based.allowed1 & PinBased.POSTED_INTERRUPTS
        assert not caps.secondary.allowed1 & Secondary.VIRTUAL_INTR_DELIVERY

    def test_disabling_flexpriority_strips_tpr_shadow(self):
        features = default_feature_map(Vendor.INTEL)
        features["flexpriority"] = False
        caps = capabilities_for_features(features)
        assert not caps.proc_based.allowed1 & ProcBased.USE_TPR_SHADOW

    def test_default1_bits_always_required(self):
        caps = default_capabilities()
        assert caps.pin_based.allowed0 == PinBased.DEFAULT1
        assert not caps.pin_based.permits(0)

    def test_vmfunc_off_by_default(self):
        caps = default_capabilities()
        assert not caps.secondary.allowed1 & Secondary.ENABLE_VMFUNC


class TestCrFixedBits:
    def test_cr0_requires_pe_pg_ne(self):
        caps = default_capabilities()
        assert caps.cr0_valid_for_vmx(0x80000021 | 0x10)
        assert not caps.cr0_valid_for_vmx(0x21)  # PG missing

    def test_unrestricted_guest_exempts_pe_pg(self):
        caps = default_capabilities()
        assert caps.cr0_valid_for_vmx(0x20, unrestricted_guest=True)
        assert not caps.cr0_valid_for_vmx(0x20, unrestricted_guest=False)

    def test_cr4_requires_vmxe(self):
        caps = default_capabilities()
        assert caps.cr4_valid_for_vmx(0x2020)
        assert not caps.cr4_valid_for_vmx(0x20)

    def test_cr4_rejects_out_of_range(self):
        caps = default_capabilities()
        assert not caps.cr4_valid_for_vmx(0x2000 | (1 << 30))
