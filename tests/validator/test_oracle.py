"""Tests for the physical-CPU-as-oracle correction loop (paper §3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validator.golden import golden_vmcs
from repro.validator.oracle import CANDIDATE_RULES, HardwareOracle
from repro.validator.rounding import VmStateValidator
from repro.vmx import fields as F
from repro.vmx.controls import PinBased, ProcBased, Secondary
from repro.vmx.vmcs import Vmcs

raw_vmcs = st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES)


@pytest.fixture
def oracle():
    return HardwareOracle()


class TestGoldenVerification:
    def test_golden_enters_first_try(self, oracle):
        report = oracle.verify(golden_vmcs())
        assert report.entered
        assert report.attempts == 1
        assert report.activated_rules == []
        assert report.golden_fallbacks == []


class TestRuleActivation:
    def test_ack_on_exit_gap_learned(self, oracle):
        """The deliberate posted-interrupts gap activates its rule."""
        vmcs = golden_vmcs()
        proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   proc | ProcBased.USE_TPR_SHADOW
                   | ProcBased.ACTIVATE_SECONDARY_CONTROLS)
        vmcs.write(F.SECONDARY_VM_EXEC_CONTROL,
                   vmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
                   | Secondary.VIRTUAL_INTR_DELIVERY)
        vmcs.write(F.VIRTUAL_APIC_PAGE_ADDR, 0x13000)
        vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL,
                   vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL)
                   | PinBased.POSTED_INTERRUPTS)
        report = oracle.verify(vmcs)
        assert report.entered
        assert "posted-interrupts-require-ack-on-exit" in report.activated_rules
        # The state was corrected in place.
        from repro.vmx.controls import ExitControls
        assert vmcs.read(F.VM_EXIT_CONTROLS) & ExitControls.ACK_INTR_ON_EXIT

    def test_learned_rule_applied_proactively(self, oracle):
        """After activation, future states are fixed *before* hardware."""
        self.test_ack_on_exit_gap_learned(oracle)
        vmcs = golden_vmcs()
        proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   proc | ProcBased.USE_TPR_SHADOW
                   | ProcBased.ACTIVATE_SECONDARY_CONTROLS)
        vmcs.write(F.SECONDARY_VM_EXEC_CONTROL,
                   vmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
                   | Secondary.VIRTUAL_INTR_DELIVERY)
        vmcs.write(F.VIRTUAL_APIC_PAGE_ADDR, 0x13000)
        vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL,
                   vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL)
                   | PinBased.POSTED_INTERRUPTS)
        report = oracle.verify(vmcs)
        assert report.entered
        assert report.attempts == 1  # no hardware rejection this time

    def test_host_tr_gap_learned(self, oracle):
        vmcs = golden_vmcs()
        vmcs.write(F.HOST_TR_SELECTOR, 0)
        report = oracle.verify(vmcs)
        assert report.entered
        assert "host-tr-selector-not-null" in report.activated_rules
        assert vmcs.read(F.HOST_TR_SELECTOR) != 0

    def test_candidate_rules_cover_documented_gaps(self):
        names = {rule.name for rule in CANDIDATE_RULES}
        assert "posted-interrupts-require-ack-on-exit" in names
        assert "host-tr-selector-not-null" in names


class TestGoldenFallback:
    def test_unmatched_violation_falls_back(self, oracle):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_TR_AR_BYTES, 1 << 16)  # TR unusable
        report = oracle.verify(vmcs)
        assert report.entered
        assert report.golden_fallbacks

    def test_silent_fixups_learned_on_entry(self, oracle):
        vmcs = golden_vmcs()
        # Clear the CS accessed bit: hardware silently sets it on entry.
        vmcs.write(F.GUEST_CS_AR_BYTES, vmcs.read(F.GUEST_CS_AR_BYTES) & ~1)
        report = oracle.verify(vmcs)
        assert report.entered
        assert "guest_cs_ar_bytes" in oracle.fixup_masks
        set_mask, _ = oracle.fixup_masks["guest_cs_ar_bytes"]
        assert set_mask & 1

    def test_predict_post_entry_uses_learned_masks(self, oracle):
        self.test_silent_fixups_learned_on_entry(oracle)
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_CS_AR_BYTES, vmcs.read(F.GUEST_CS_AR_BYTES) & ~1)
        predicted = oracle.predict_post_entry(vmcs)
        assert predicted.read(F.GUEST_CS_AR_BYTES) & 1


class TestConvergence:
    @given(raw_vmcs)
    @settings(max_examples=30, deadline=None)
    def test_every_rounded_state_eventually_enters(self, raw):
        """The paper's key loop property: validator + oracle always
        converge to an enterable state."""
        oracle = HardwareOracle()
        validator = VmStateValidator()
        vmcs = Vmcs.deserialize(raw)
        validator.round_to_valid(vmcs)
        assert oracle.verify(vmcs).entered

    def test_counters_track_outcomes(self, oracle):
        oracle.verify(golden_vmcs())
        assert oracle.entries >= 1
        vmcs = golden_vmcs()
        vmcs.write(F.HOST_TR_SELECTOR, 0)
        oracle.verify(vmcs)
        assert oracle.rejections >= 1
