"""Sequential three-group rounding (paper §4.3).

The rounding procedure operates across the three VMCS field groups in
order — control fields, host-state fields, guest-state fields. Each group
is first rounded to specification-compliant values using the
Bochs-derived routines, intra-group constraints are corrected, and
inter-group constraints are checked against the previously processed
groups (the guest routines read the already-rounded entry controls).
Dependent fields form a unidirectional graph, so this completes in a
bounded number of steps: a second pass is a fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.validator.base import Correction
from repro.validator.guest_state import vmenter_load_check_guest_state
from repro.validator.host_state import vmenter_load_check_host_state
from repro.validator.vm_controls import vmenter_load_check_vm_controls
from repro.vmx.msr_caps import VmxCapabilities, default_capabilities
from repro.vmx.vmcs import Vmcs


#: Replay memos for the group passes (batched mode only), shared across
#: validator instances: keyed by (group, capability set) so every case
#: in a campaign probes the same recordings.
_REPLAY_MEMOS: dict = {}


def _replay_memo(group: str, caps: VmxCapabilities, fn):
    memo = _REPLAY_MEMOS.get((group, caps))
    if memo is None:
        from repro.batch import ReplayMemo

        memo = ReplayMemo(lambda vmcs: fn(vmcs, caps))
        _REPLAY_MEMOS[group, caps] = memo
    return memo


@dataclass
class RoundingReport:
    """Everything one rounding pass did, by group."""

    controls: list[Correction] = field(default_factory=list)
    host: list[Correction] = field(default_factory=list)
    guest: list[Correction] = field(default_factory=list)

    @property
    def all(self) -> list[Correction]:
        """Every correction, in group order."""
        return self.controls + self.host + self.guest

    @property
    def total(self) -> int:
        """Total number of corrections."""
        return len(self.all)


class VmStateValidator:
    """The Bochs-derived VM state validator for Intel VT-x.

    ``round_to_valid`` mutates a VMCS toward the valid region;
    ``is_fixed_point`` lets tests assert the bounded-steps property the
    paper claims for the sequential correction procedure.
    """

    def __init__(self, caps: VmxCapabilities | None = None) -> None:
        self.caps = caps or default_capabilities()

    def round_to_valid(self, vmcs: Vmcs) -> RoundingReport:
        """Round *vmcs* in the architectural group order.

        Each group pass is memoized at its fixed point: once a pass ran
        without correcting anything, it is skipped until one of the
        fields it read changes (every corrected field is read first by
        ``Rounder.force``, so the read trace covers the write targets).
        """
        report = RoundingReport()
        if perf.batch_enabled():
            # Batched hot path: each pass additionally goes through a
            # value-signature replay memo, so a repeat input replays the
            # recorded net writes instead of re-running the Bochs
            # routine (memoized_fixpoint alone only skips passes that
            # are already at their fixed point).
            def run(group, fn):
                return _replay_memo(group, self.caps, fn).run(vmcs)
        else:
            def run(group, fn):
                return fn(vmcs, self.caps)
        report.controls = perf.memoized_fixpoint(
            vmcs, ("round_controls", self.caps),
            lambda: run("controls", vmenter_load_check_vm_controls))
        report.host = perf.memoized_fixpoint(
            vmcs, ("round_host", self.caps),
            lambda: run("host", vmenter_load_check_host_state))
        report.guest = perf.memoized_fixpoint(
            vmcs, ("round_guest", self.caps),
            lambda: run("guest", vmenter_load_check_guest_state))
        return report

    def is_fixed_point(self, vmcs: Vmcs) -> bool:
        """True when another rounding pass would change nothing."""
        probe = vmcs.copy()
        return self.round_to_valid(probe).total == 0

    def predicted_violations(self, vmcs: Vmcs) -> list[Correction]:
        """What the validator *believes* is invalid, without mutating."""
        probe = vmcs.copy()
        return self.round_to_valid(probe).all
