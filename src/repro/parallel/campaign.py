"""The parallel campaign orchestrator.

``ParallelCampaign`` shards one iteration budget across N workers and
merges their results. Two execution modes share all of the sharding,
sync, and merge machinery:

* ``mode="inline"`` runs the workers round-robin in this process —
  fully deterministic (chunk order and sync order are fixed), the mode
  the determinism tests and single-core CI use;
* ``mode="process"`` forks one OS process per worker for real
  parallelism; workers sync through the filesystem at their own pace,
  so merged trajectories are only reproducible in the aggregate
  (superset semantics), exactly like AFL++ primary/secondary instances.

The determinism contract: with ``workers=1`` the (single) worker uses
the campaign seed verbatim, never imports anything, and reproduces the
serial ``NecoFuzz.run`` result bit for bit. With N workers the merged
covered-line set is a superset-style union — not bit-for-bit comparable
to any serial run, but measured over the same instrumented universe.

Resilience (off by default, see DESIGN.md §9): inline mode restores a
killed worker from an in-memory snapshot and replays its chunk, process
mode delegates to :class:`repro.parallel.supervisor.Supervisor`, and
``checkpoint_interval``/``resume`` give interrupted inline campaigns a
bit-for-bit continuation from the last round boundary.
"""

from __future__ import annotations

import logging
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, telemetry
from repro.analysis.timeline import CoverageTimeline
from repro.arch.cpuid import Vendor
from repro.core.executor import ComponentToggles
from repro.core.necofuzz import CampaignResult
from repro.coverage.bitmap import VirginMap
from repro.fuzzer.crashes import atomic_write_bytes
from repro.fuzzer.engine import EngineStats
from repro.parallel.scheduler import (
    LEASE_MIN,
    SCHEDULES,
    AdaptiveSync,
    FileLeaseBoard,
    LeaseBoard,
    LeaseRecord,
    WorkerPool,
)
from repro.parallel.supervisor import (
    CampaignAborted,
    FailureKind,
    Supervisor,
    SupervisorConfig,
    SupervisorEvent,
)
from repro.parallel.sync import SYNC_FORMATS, SyncDirectory, SyncStats
from repro.schedule import SCHEDULE_MODES
from repro.parallel.worker import (
    CampaignWorker,
    WorkerReport,
    WorkerSpec,
    worker_seed,
)

log = logging.getLogger("repro.parallel")


@dataclass
class ParallelCampaignResult(CampaignResult):
    """A merged campaign result plus the per-worker breakdown."""

    workers: int
    per_worker: list[CampaignResult]
    #: OR-merge of every worker's virgin map: the campaign-global
    #: "behaviour already seen" map.
    virgin: VirginMap
    #: Per-worker final-corpus digests, in shard order — the corpus
    #: half of :func:`repro.resilience.campaign_fingerprint`.
    corpus_digests: list[str] = field(default_factory=list)
    #: Every failure the runtime observed and what it did about it.
    events: list[SupervisorEvent] = field(default_factory=list)
    #: Cases that overran the per-case deadline, summed across workers.
    deadline_overruns: int = 0
    #: Per-phase sync wall-clock, summed across workers (where the
    #: parallel overhead actually goes; exported to the bench JSON).
    sync_overhead: SyncStats = field(default_factory=SyncStats)
    #: Whether process-mode workers merged through a shared-memory
    #: virgin map instead of pickled report snapshots.
    shared_virgin_map: bool = False
    #: Merged telemetry snapshot (campaign scope + every worker), the
    #: same payload ``<root>/metrics.json`` persists. ``None`` when the
    #: campaign ran with ``telemetry_mode="off"``.
    telemetry: dict | None = None
    #: Which scheduler ran the campaign: "static" or "stealing".
    schedule: str = "static"
    #: Completion-ordered lease ledger (stealing only). Feeding it back
    #: as ``ParallelCampaign(lease_log=...)`` replays the identical
    #: lease assignment, pinning the fingerprint of an adaptively sized
    #: run.
    lease_log: list[LeaseRecord] = field(default_factory=list)
    #: Leases claimed beyond a worker's static fair share (or re-issued
    #: after a reclaim) — the work the stealing schedule actually moved.
    steals: int = 0
    #: Leases taken back from dead or retired workers and re-issued.
    reclaims: int = 0
    #: Warm workers this run continued from the ``pool=`` handle
    #: instead of rebuilding.
    pool_reuse: int = 0

    def summary(self) -> str:
        text = (super().summary()
                + f", {self.workers} worker(s), "
                  f"{self.engine_stats.imported} synced import(s)")
        skipped = self.engine_stats.imports_skipped_subsumed
        if skipped:
            text += f" ({skipped} subsumed, not re-executed)"
        if self.schedule in ("stealing", "federated"):
            text += (f", {len(self.lease_log)} lease(s) "
                     f"({self.steals} stolen, {self.reclaims} reclaimed)")
        if self.pool_reuse:
            text += f", {self.pool_reuse} warm worker(s) reused"
        if self.events:
            restarted = sum(1 for e in self.events if e.action == "restart")
            text += (f", {len(self.events)} fault event(s) "
                     f"({restarted} restart(s))")
        return text


def _merge_stats(stats: list[EngineStats]) -> EngineStats:
    return EngineStats(
        iterations=sum(s.iterations for s in stats),
        queue_adds=sum(s.queue_adds for s in stats),
        crashes=sum(s.crashes for s in stats),
        anomalies=sum(s.anomalies for s in stats),
        last_find=max((s.last_find for s in stats), default=0),
        imported=sum(s.imported for s in stats),
        case_exceptions=sum(s.case_exceptions for s in stats),
        import_skipped=sum(s.import_skipped for s in stats),
        imports_skipped_subsumed=sum(s.imports_skipped_subsumed
                                     for s in stats))


def _merge_virgin(reports: list[WorkerReport],
                  shared_bits: bytes | None = None) -> VirginMap:
    """OR worker snapshots (and the shared-map state, if any) together.

    Workers that published into a shared-memory map ship empty
    ``virgin_bits``; their contribution arrives through *shared_bits*.
    """
    merged = VirginMap()
    if shared_bits:
        merged.merge_bits(shared_bits)
    for report in reports:
        if report.virgin_bits:
            merged.merge_bits(bytes(report.virgin_bits))
    return merged


def _merge_sync_overhead(reports: list[WorkerReport]) -> SyncStats:
    merged = SyncStats()
    for report in reports:
        if report.sync_stats is not None:
            merged = merged.merged_with(report.sync_stats)
    return merged


def _merge_timeline(reports: list[WorkerReport], instrumented_total: int,
                    label: str, iterations_per_hour: float) -> CoverageTimeline:
    """Union coverage over a lockstep global-iteration axis.

    At local sample iteration ``i`` the campaign as a whole has executed
    ``sum(min(i, share_w))`` cases (workers advance round-robin), and
    covers the union of every worker's lines up to ``i`` — monotone and
    deterministic given the workers' sample deltas.
    """
    merged = CoverageTimeline(label, iterations_per_hour)
    if not instrumented_total:
        return merged
    grid = sorted({i for report in reports for i, _ in report.samples})
    union: set = set()
    positions = {report.index: 0 for report in reports}
    for sample_iter in grid:
        for report in reports:
            pos = positions[report.index]
            samples = report.samples
            while pos < len(samples) and samples[pos][0] <= sample_iter:
                union |= samples[pos][1]
                pos += 1
            positions[report.index] = pos
        global_iter = sum(min(sample_iter, report.share) for report in reports)
        merged.record(global_iter, len(union) / instrumented_total)
    return merged


@dataclass
class ParallelCampaign:
    """One logical campaign sharded across N workers."""

    hypervisor: str = "kvm"
    vendor: Vendor = Vendor.INTEL
    seed: int = 1
    workers: int = 1
    #: Iterations each worker runs between corpus-sync points.
    sync_every: int = 100
    mode: str = "inline"  # "inline" (deterministic) or "process" (forked)
    #: Sync-directory root; a temporary directory when None.
    sync_dir: Path | None = None
    #: Corpus wire format: "v2" (binary append-only, default) or "v1"
    #: (legacy per-entry files) for pre-existing sync roots.
    sync_format: str = "v2"
    #: Let v2 imports skip executing entries whose shipped coverage is
    #: already subsumed locally. Off isolates the wire format from the
    #: filter (equivalence pins, debugging).
    subsumption_filter: bool = True
    #: Publish per-worker coverage sidecars so importers can reject a
    #: partner's whole fresh batch from one virgin-map delta before
    #: scanning its queue file (DESIGN.md §15). Fingerprint-neutral.
    sync_delta: bool = True
    toggles: ComponentToggles = field(default_factory=ComponentToggles)
    coverage_guided: bool = True
    patched: frozenset = frozenset()
    runtime_iterations: int = 24
    async_events: bool = False
    iterations_per_hour: float = 10.0
    reuse_hypervisor: bool = False
    #: Batched execution per worker (DESIGN.md §12); 0 keeps the classic
    #: one-case-per-tick loop. Forwarded to every worker's NecoFuzz.
    batch_size: int = 0
    # --- resilience ---------------------------------------------------
    #: Per-case wall-clock deadline. Enforced by the supervisor in
    #: process mode (a stale heartbeat gets the worker killed and
    #: restarted); bookkeeping-only in inline mode.
    case_timeout: float | None = None
    #: Consecutive failures per shard before the circuit breaker opens.
    max_restarts: int = 3
    #: Sync rounds between campaign checkpoints in inline mode
    #: (0 disables). Process-mode workers checkpoint every round
    #: regardless — their snapshots live under the sync root.
    checkpoint_interval: int = 0
    #: Continue an interrupted campaign from its checkpoints. Requires
    #: a persistent ``sync_dir``. Inline resume is bit-for-bit; process
    #: resume keeps superset semantics.
    resume: bool = False
    #: Deterministic fault plan for chaos testing; also picked up from
    #: :func:`repro.faults.install` when None.
    fault_plan: faults.FaultPlan | None = None
    #: Observability level: ``off`` | ``metrics`` | ``full`` (DESIGN.md
    #: §11). Purely observational — excluded from the campaign
    #: fingerprint, and results are bit-for-bit identical across modes.
    telemetry_mode: str = "metrics"
    # --- scheduling (DESIGN.md §13) -----------------------------------
    #: "static" — the classic fixed divmod split; "stealing" — workers
    #: pull adaptively sized leases off a shared board, and a dead
    #: worker's leases are reclaimed and re-issued.
    schedule: str = "static"
    #: Fixed cases per lease (stealing). 0 sizes each lease from the
    #: claimant's measured cases/sec; a fixed size makes inline
    #: stealing fully deterministic.
    lease_size: int = 0
    #: Back off the sync interval geometrically while the subsumption
    #: filter absorbs >=90% of imports; snap back on new virgin bits.
    sync_adaptive: bool = False
    #: Warm worker pool (inline only). Pass the same ``WorkerPool``
    #: to successive campaigns with the same shape and each ``run()``
    #: continues the pooled workers — cumulative stats, no respawn.
    pool: WorkerPool | None = None
    #: Replay a previous stealing run's ``result.lease_log`` verbatim
    #: (inline only): same seed + same lease log => identical
    #: fingerprint, even when the original sizing was adaptive.
    lease_log: list[LeaseRecord] | None = None
    #: Seed scheduling inside every worker (DESIGN.md §16): ``flat``
    #: keeps the historical uniform draw (fingerprint-pinned), ``fast``
    #: enables energy weighting + the operator bandit + distillation.
    #: Schedule/bandit state rides worker checkpoints but — like
    #: telemetry — never enters the campaign fingerprint.
    power_schedule: str = "flat"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mode not in ("inline", "process"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.schedule not in SCHEDULES:
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.lease_size < 0:
            raise ValueError("lease_size must be >= 0")
        if self.lease_log is not None and self.schedule != "stealing":
            raise ValueError("lease_log replay requires schedule='stealing'")
        if self.lease_log is not None and self.mode != "inline":
            raise ValueError("lease_log replay requires mode='inline'")
        if self.lease_log is not None and self.resume:
            raise ValueError("lease_log replay and resume are exclusive")
        if self.pool is not None and self.mode != "inline":
            raise ValueError("a worker pool requires mode='inline' "
                             "(process workers already persist for the "
                             "campaign's lifetime)")
        if self.telemetry_mode not in telemetry.MODES:
            raise ValueError(
                f"unknown telemetry_mode {self.telemetry_mode!r}")
        if self.sync_format not in SYNC_FORMATS:
            raise ValueError(f"unknown sync_format {self.sync_format!r}")
        if self.power_schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown power_schedule {self.power_schedule!r}")
        if self.sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.resume and self.sync_dir is None:
            raise ValueError("resume requires a persistent sync_dir")
        self.events: list[SupervisorEvent] = []

    # ------------------------------------------------------------------

    def _campaign_kwargs(self) -> dict:
        """NecoFuzz construction arguments shared by every worker."""
        return dict(
            hypervisor=self.hypervisor,
            vendor=self.vendor,
            toggles=self.toggles,
            coverage_guided=self.coverage_guided,
            patched=self.patched,
            runtime_iterations=self.runtime_iterations,
            async_events=self.async_events,
            iterations_per_hour=self.iterations_per_hour,
            reuse_hypervisor=self.reuse_hypervisor,
            batch_size=self.batch_size,
            power_schedule=self.power_schedule)

    def _stealing_worker_count(self, iterations: int) -> int:
        """How many workers a stealing campaign actually spawns.

        There is no point holding a worker hostage for fewer cases than
        one minimum lease, so the count is capped at the number of
        minimum-sized leases the budget divides into. The formula is a
        pure function of (workers, iterations, lease_size): a lease-log
        replay rebuilds the identical worker set — every worker
        contributes its corpus digest to the fingerprint, claimant or
        not.
        """
        floor = self.lease_size if self.lease_size > 0 else LEASE_MIN
        leases = -(-iterations // floor) if iterations else 1
        return max(1, min(self.workers, leases))

    def _specs(self, iterations: int) -> list[WorkerSpec]:
        if self.schedule == "stealing":
            # Shares are claimed lease by lease; specs start empty and
            # grow (WorkerSpec.iterations tracks the claimed total).
            return [WorkerSpec(index=i, seed=worker_seed(self.seed, i),
                               iterations=0)
                    for i in range(self._stealing_worker_count(iterations))]
        base, remainder = divmod(iterations, self.workers)
        specs = [
            WorkerSpec(index=i,
                       seed=worker_seed(self.seed, i),
                       iterations=base + (1 if i < remainder else 0))
            for i in range(self.workers)
        ]
        # With iterations < workers the tail shards get zero cases;
        # spawning them would cost a process + an empty report each.
        # Keeping the non-empty prefix (shares are monotone
        # non-increasing) preserves contiguous worker indices, which
        # partner scans and derived seeds both rely on.
        active = [spec for spec in specs if spec.iterations > 0]
        return active or specs[:1]

    def run(self, iterations: int, *,
            sample_every: int = 10) -> ParallelCampaignResult:
        """Run the sharded campaign for *iterations* total test cases."""
        if self.sync_dir is not None:
            root = Path(self.sync_dir)
            root.mkdir(parents=True, exist_ok=True)
            return self._run_in(root, iterations, sample_every)
        with tempfile.TemporaryDirectory(prefix="necofuzz-sync-") as tmp:
            return self._run_in(Path(tmp), iterations, sample_every)

    def _run_in(self, root: Path, iterations: int,
                sample_every: int) -> ParallelCampaignResult:
        specs = self._specs(iterations)
        with telemetry.campaign_scope(self.telemetry_mode, root):
            if self.fault_plan is not None and faults.active() is None:
                # A plan passed as a field behaves exactly like one
                # already installed around run() — both modes consult
                # the global.
                with faults.injected(self.fault_plan):
                    return self._dispatch(root, specs, iterations,
                                          sample_every)
            return self._dispatch(root, specs, iterations, sample_every)

    def _dispatch(self, root: Path, specs: list[WorkerSpec],
                  iterations: int,
                  sample_every: int) -> ParallelCampaignResult:
        shared_bits = None
        sched: dict = {}
        with telemetry.span("campaign.run"):
            if self.mode == "process" and len(specs) > 1:
                reports, shared_bits, sched = self._run_processes(
                    root, specs, iterations, sample_every)
            elif self.schedule == "stealing":
                reports, sched = self._run_inline_stealing(
                    root, specs, iterations, sample_every)
            else:
                reports, sched = self._run_inline(root, specs, sample_every)
        result = self._merge(reports, shared_bits, sched)
        result.telemetry = self._finish_telemetry(root, reports)
        return result

    def _finish_telemetry(self, root: Path,
                          reports: list[WorkerReport]) -> dict | None:
        """Fold worker registries in, persist the campaign aggregate.

        Process-mode workers ship their registry snapshot inside their
        report; inline workers already recorded into the campaign
        registry. The merged snapshot is written to
        ``<root>/metrics.json`` and, in ``full`` mode, the per-worker
        event streams are merged into ``<root>/events.jsonl``.
        """
        if self.telemetry_mode == "off":
            return None
        registry = telemetry.registry()
        for report in reports:
            if report.telemetry is not None:
                registry.merge_snapshot(report.telemetry)
        telemetry.save_metrics(root / telemetry.METRICS_NAME)
        if self.telemetry_mode == "full":
            telemetry.flush()
            telemetry.merge_events(root)
        return telemetry.snapshot()

    # --- inline mode --------------------------------------------------------

    def _campaign_checkpoint_path(self, root: Path) -> Path:
        return root / "campaign.ckpt"

    def _manifest(self, specs: list[WorkerSpec], sample_every: int,
                  iterations: int | None = None) -> tuple:
        shares = (tuple(spec.iterations for spec in specs)
                  if self.schedule == "static" else (iterations or 0,))
        return (self.seed, self.workers, self.hypervisor, self.vendor.value,
                shares, sample_every, self.sync_every, self.schedule,
                self.lease_size, self.sync_adaptive, self.power_schedule)

    def _save_campaign_checkpoint(self, path: Path, manifest: tuple,
                                  workers: list[CampaignWorker],
                                  rounds: int, extra: dict | None = None
                                  ) -> None:
        payload = {"manifest": manifest, "rounds": rounds, "workers": workers}
        if extra:
            payload.update(extra)
        atomic_write_bytes(path, pickle.dumps(payload))

    def _load_campaign_checkpoint(self, path: Path, manifest: tuple):
        """The checkpoint payload dict if it matches, else ``None``."""
        try:
            payload = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("manifest") != manifest):
            log.warning("ignoring checkpoint %s: campaign shape changed",
                        path)
            return None
        return payload

    def _run_chunk_isolated(self, worker: CampaignWorker,
                            restarts: dict[int, int]) -> None:
        """One chunk, surviving injected worker deaths.

        A killed worker is rolled back to the pre-chunk snapshot and the
        chunk replayed — deterministic because exports only happen after
        a chunk completes, and the one-shot fault stays consumed. The
        snapshot is taken only when a fault plan is live, keeping the
        plain path allocation-free.
        """
        while True:
            snapshot = (pickle.dumps(worker)
                        if faults.active() is not None else None)
            try:
                worker.run_chunk(self.sync_every)
                return
            except faults.WorkerKilled as death:
                index = worker.spec.index
                restarts[index] = restarts.get(index, 0) + 1
                if snapshot is None or restarts[index] > self.max_restarts:
                    self.events.append(SupervisorEvent(
                        index, FailureKind.WORKER_CRASH, str(death),
                        "abort"))
                    raise CampaignAborted(
                        f"worker {index} died {restarts[index]} time(s), "
                        f"exceeding max_restarts={self.max_restarts}"
                    ) from death
                log.warning("worker %d died inline (%s); restart %d/%d "
                            "from pre-chunk snapshot", index, death,
                            restarts[index], self.max_restarts)
                self.events.append(SupervisorEvent(
                    index, FailureKind.WORKER_CRASH, str(death), "restart"))
                # Replace, don't merge: attributes still at their class
                # defaults when the snapshot was taken (e.g. ``done``)
                # are absent from the pickled __dict__ and must revert.
                restored = pickle.loads(snapshot)
                worker.__dict__.clear()
                worker.__dict__.update(restored.__dict__)

    def _pool_key(self, specs: list[WorkerSpec]) -> tuple:
        return (self.hypervisor, self.vendor.value, self.seed, len(specs),
                self.schedule, self.sync_format, self.batch_size,
                self.power_schedule)

    def _build_inline_workers(self, root: Path, specs: list[WorkerSpec],
                              sample_every: int, syncing: bool
                              ) -> tuple[list[CampaignWorker], int]:
        """Build (or warm-acquire) the inline worker set.

        A pooled worker carries its engine, corpus, and virgin map from
        the previous ``run()``; this run *continues* it — its share is
        extended by the new spec's budget and its stats stay cumulative.
        Pooled workers are re-bound to this run's sync root when it
        changed: the fresh ``SyncDirectory``'s zeroed export cursor
        fails the tail-intact check against the new (empty) queue dir,
        which rewrites the full live queue there — nothing is lost.
        """
        key = self._pool_key(specs)
        workers: list[CampaignWorker] = []
        reused = 0
        for spec in specs:
            warm = (self.pool.acquire(key, spec.index)
                    if self.pool is not None else None)
            if warm is not None:
                warm.spec.iterations += spec.iterations
                if not syncing:
                    warm.sync = None
                elif (warm.sync is None
                        or Path(warm.sync.root) != Path(root)):
                    warm.sync = SyncDirectory(
                        root, spec.index, len(specs),
                        sync_format=self.sync_format,
                        subsumption_filter=self.subsumption_filter,
                        delta_plane=self.sync_delta)
                workers.append(warm)
                reused += 1
                continue
            workers.append(CampaignWorker(
                spec, self._campaign_kwargs(), sample_every=sample_every,
                sync=SyncDirectory(
                    root, spec.index, len(specs),
                    sync_format=self.sync_format,
                    subsumption_filter=self.subsumption_filter,
                    delta_plane=self.sync_delta)
                if syncing else None,
                case_timeout=self.case_timeout))
        return workers, reused

    def _adaptives(self, specs: list[WorkerSpec]) -> dict:
        return {spec.index: (AdaptiveSync(base=self.sync_every)
                             if self.sync_adaptive else None)
                for spec in specs}

    def _run_inline(self, root: Path, specs: list[WorkerSpec],
                    sample_every: int) -> tuple[list[WorkerReport], dict]:
        syncing = len(specs) > 1
        checkpointing = self.checkpoint_interval > 0 or self.resume
        ckpt = self._campaign_checkpoint_path(root) if checkpointing else None
        manifest = self._manifest(specs, sample_every)
        workers, rounds, adaptives, pool_reuse = None, 0, None, 0
        if self.resume and ckpt is not None and ckpt.exists():
            payload = self._load_campaign_checkpoint(ckpt, manifest)
            if payload is not None:
                workers = payload["workers"]
                rounds = payload["rounds"]
                adaptives = payload.get("adaptives")
                log.info("resuming inline campaign from round %d", rounds)
        if workers is None:
            workers, pool_reuse = self._build_inline_workers(
                root, specs, sample_every, syncing)
        if adaptives is None:
            adaptives = self._adaptives(specs)
        restarts: dict[int, int] = {}
        while any(not worker.finished for worker in workers):
            for worker in workers:
                if not worker.finished:
                    self._run_chunk_isolated(worker, restarts)
                    worker.export()
            if syncing:
                # Bidirectional round: everyone has published, so every
                # worker sees every partner's finds from this round.
                for worker in workers:
                    worker.maybe_import(adaptives[worker.spec.index])
            rounds += 1
            if (ckpt is not None and self.checkpoint_interval
                    and rounds % self.checkpoint_interval == 0):
                self._save_campaign_checkpoint(ckpt, manifest, workers,
                                               rounds,
                                               {"adaptives": adaptives})
        if self.pool is not None:
            self.pool.park(self._pool_key(specs), workers)
        return ([worker.report() for worker in workers],
                {"schedule": "static", "pool_reuse": pool_reuse})

    # --- inline stealing (DESIGN.md §13) ------------------------------------

    def _run_lease_isolated(self, worker: CampaignWorker, lease, board,
                            restarts: dict[int, int]) -> bool:
        """Run one lease, surviving injected deaths; False = retired.

        Same snapshot-and-replay contract as the static chunk path, with
        one stealing-specific twist past ``max_restarts``: instead of
        aborting the campaign, the worker is **retired** — rolled back
        to its pre-lease snapshot and its lease reclaimed for a
        surviving partner to pick up (with the same id and size, so the
        ledger still records that lease exactly once).
        """
        while True:
            snapshot = (pickle.dumps(worker)
                        if faults.active() is not None else None)
            try:
                worker.run_lease(lease.size)
                return True
            except faults.WorkerKilled as death:
                index = worker.spec.index
                restarts[index] = restarts.get(index, 0) + 1
                if snapshot is None:
                    self.events.append(SupervisorEvent(
                        index, FailureKind.WORKER_CRASH, str(death),
                        "abort"))
                    raise CampaignAborted(
                        f"worker {index} died without a snapshot to "
                        f"restore") from death
                restored = pickle.loads(snapshot)
                worker.__dict__.clear()
                worker.__dict__.update(restored.__dict__)
                if restarts[index] > self.max_restarts:
                    board.reclaim_lease(lease.id)
                    log.warning(
                        "worker %d died %d time(s), exceeding "
                        "max_restarts=%d; retiring it and re-issuing "
                        "lease %d", index, restarts[index],
                        self.max_restarts, lease.id)
                    self.events.append(SupervisorEvent(
                        index, FailureKind.WORKER_CRASH, str(death),
                        "circuit-open"))
                    return False
                log.warning("worker %d died inline (%s); restart %d/%d "
                            "from pre-lease snapshot", index, death,
                            restarts[index], self.max_restarts)
                self.events.append(SupervisorEvent(
                    index, FailureKind.WORKER_CRASH, str(death), "restart"))

    def _replay_leases(self, board, workers: list[CampaignWorker],
                       adaptives: dict, syncing: bool) -> None:
        """Re-drive a recorded lease log verbatim (fingerprint replay)."""
        by_index = {worker.spec.index: worker for worker in workers}
        by_round: dict[int, list[LeaseRecord]] = {}
        for record in self.lease_log or []:
            by_round.setdefault(record.round, []).append(record)
        for round_no in sorted(by_round):
            for record in by_round[round_no]:
                worker = by_index.get(record.worker)
                if worker is None:
                    raise ValueError(
                        f"lease log names worker {record.worker}, but "
                        f"this campaign builds {len(workers)} worker(s)")
                board.claim_replay(record, record.worker)
                worker.run_lease(record.size)
                board.complete(record.id, record.worker,
                               round_no=record.round)
                worker.export()
            if syncing:
                for worker in workers:
                    worker.maybe_import(adaptives[worker.spec.index])
        if not board.drained():
            raise ValueError(
                f"lease log is short of the budget: {board.remaining} "
                f"case(s) left unassigned")

    def _run_inline_stealing(self, root: Path, specs: list[WorkerSpec],
                             iterations: int, sample_every: int
                             ) -> tuple[list[WorkerReport], dict]:
        syncing = len(specs) > 1
        checkpointing = self.checkpoint_interval > 0 or self.resume
        ckpt = self._campaign_checkpoint_path(root) if checkpointing else None
        manifest = self._manifest(specs, sample_every, iterations)
        workers = board = adaptives = None
        rounds, pool_reuse = 0, 0
        retired: set[int] = set()
        if self.resume and ckpt is not None and ckpt.exists():
            payload = self._load_campaign_checkpoint(ckpt, manifest)
            if payload is not None:
                workers = payload["workers"]
                rounds = payload["rounds"]
                board = payload.get("board")
                adaptives = payload.get("adaptives")
                retired = payload.get("retired", set())
                log.info("resuming stealing campaign from round %d "
                         "(%d lease(s) completed)", rounds,
                         len(board.log) if board is not None else 0)
        if workers is None:
            workers, pool_reuse = self._build_inline_workers(
                root, specs, sample_every, syncing)
        if board is None:
            board = LeaseBoard(total=iterations, workers=len(specs),
                               lease_size=self.lease_size)
        if adaptives is None:
            adaptives = self._adaptives(specs)
        if self.lease_log is not None:
            self._replay_leases(board, workers, adaptives, syncing)
        else:
            restarts: dict[int, int] = {}
            while not board.drained():
                for worker in workers:
                    index = worker.spec.index
                    if index in retired:
                        continue
                    lease = board.claim(index, rate=worker.rate)
                    if lease is None:
                        continue
                    if self._run_lease_isolated(worker, lease, board,
                                                restarts):
                        board.complete(lease.id, index, round_no=rounds)
                        worker.export()
                    else:
                        retired.add(index)
                if syncing:
                    for worker in workers:
                        if worker.spec.index not in retired:
                            worker.maybe_import(adaptives[worker.spec.index])
                rounds += 1
                if len(retired) == len(workers) and not board.drained():
                    raise CampaignAborted(
                        f"all {len(workers)} worker(s) retired with "
                        f"{board.total - board.completed_total()} case(s) "
                        f"unexecuted")
                if (ckpt is not None and self.checkpoint_interval
                        and rounds % self.checkpoint_interval == 0):
                    self._save_campaign_checkpoint(
                        ckpt, manifest, workers, rounds,
                        {"board": board, "adaptives": adaptives,
                         "retired": retired})
        if self.pool is not None:
            self.pool.park(self._pool_key(specs), workers)
        summary = board.summary()
        return ([worker.report() for worker in workers],
                {"schedule": "stealing", "lease_log": summary["log"],
                 "steals": summary["steals"],
                 "reclaims": summary["reclaims"],
                 "pool_reuse": pool_reuse})

    # --- process mode -------------------------------------------------------

    def _run_processes(self, root: Path, specs: list[WorkerSpec],
                       iterations: int, sample_every: int
                       ) -> tuple[list[WorkerReport], bytes | None, dict]:
        from repro.parallel import supervisor as sup

        if not self.resume:
            # A fresh campaign in a persistent sync root must not pick
            # up a previous run's shard snapshots.
            for spec in specs:
                sup.checkpoint_path(root, spec.index).unlink(missing_ok=True)
                sup.report_path(root, spec.index).unlink(missing_ok=True)
        board = None
        if self.schedule == "stealing":
            board = FileLeaseBoard(root)
            if not (self.resume and board.exists()):
                board = FileLeaseBoard.create(
                    root, iterations, len(specs),
                    lease_size=self.lease_size)
        config = SupervisorConfig(max_restarts=self.max_restarts)
        if self.case_timeout is not None:
            config.case_timeout = self.case_timeout
        supervisor = Supervisor(
            root=root, specs=specs, campaign_kwargs=self._campaign_kwargs(),
            sample_every=sample_every, sync_every=self.sync_every,
            config=config, fault_plan=self.fault_plan or faults.active(),
            sync_format=self.sync_format,
            subsumption_filter=self.subsumption_filter,
            sync_delta=self.sync_delta,
            telemetry_mode=self.telemetry_mode,
            schedule=self.schedule, sync_adaptive=self.sync_adaptive,
            lease_board=board)
        try:
            reports = supervisor.run()
            sched = {"schedule": self.schedule, "pool_reuse": 0}
            if board is not None:
                summary = board.summary()
                sched.update(lease_log=summary["log"],
                             steals=summary["steals"],
                             reclaims=summary["reclaims"])
            return reports, supervisor.merged_virgin_bits, sched
        finally:
            self.events.extend(supervisor.events)

    # --- merge --------------------------------------------------------------

    def _merge(self, reports: list[WorkerReport],
               shared_bits: bytes | None = None,
               sched: dict | None = None) -> ParallelCampaignResult:
        sched = sched or {}
        reports = sorted(reports, key=lambda r: r.index)
        instrumented = reports[0].result.instrumented_lines
        for report in reports[1:]:
            assert report.result.instrumented_lines == instrumented, \
                "workers disagree on the instrumented universe"
        covered: set = set()
        merged_reports = []
        for report in reports:
            covered |= report.result.covered_lines
            merged_reports.extend(report.result.reports)
        label = f"NecoFuzz/{self.hypervisor}/{self.vendor.value}"
        timeline = _merge_timeline(reports, len(instrumented), label,
                                   self.iterations_per_hour)
        return ParallelCampaignResult(
            timeline=timeline,
            covered_lines=covered,
            instrumented_lines=set(instrumented),
            reports=merged_reports,
            engine_stats=_merge_stats([r.result.engine_stats for r in reports]),
            watchdog_restarts=sum(r.result.watchdog_restarts for r in reports),
            workers=self.workers,
            per_worker=[r.result for r in reports],
            virgin=_merge_virgin(reports, shared_bits),
            corpus_digests=[r.corpus_digest for r in reports],
            events=list(self.events),
            deadline_overruns=sum(r.deadline_overruns for r in reports),
            sync_overhead=_merge_sync_overhead(reports),
            shared_virgin_map=shared_bits is not None,
            schedule=sched.get("schedule", self.schedule),
            lease_log=list(sched.get("lease_log", [])),
            steals=sched.get("steals", 0),
            reclaims=sched.get("reclaims", 0),
            pool_reuse=sched.get("pool_reuse", 0))
