"""Unit tests for segment models and access-rights rules."""

from repro.arch import segments as S


class TestSegmentProperties:
    def test_flat_code_segment(self):
        seg = S.flat_segment(0x8, code=True, long_mode=True)
        assert seg.is_code()
        assert seg.long_mode
        assert not seg.db  # L and D/B may not both be set
        assert seg.present
        assert seg.s
        assert not seg.unusable

    def test_flat_data_segment(self):
        seg = S.flat_segment(0x10)
        assert not seg.is_code()
        assert seg.is_writable_data()
        assert seg.db
        assert seg.granularity

    def test_dpl_extraction(self):
        seg = S.flat_segment(0x8, code=True, dpl=3)
        assert seg.dpl == 3

    def test_rpl_and_ti(self):
        seg = S.Segment(selector=0x1F)
        assert seg.rpl == 3
        assert seg.ti

    def test_unusable_segment(self):
        seg = S.unusable_segment()
        assert seg.unusable
        assert seg.selector == 0

    def test_tss_segment_long_mode(self):
        tss = S.tss_segment(long_mode=True)
        assert tss.seg_type == 0xB
        assert not tss.s  # system descriptor
        assert tss.present

    def test_ldtr_segment(self):
        ldtr = S.ldtr_segment()
        assert ldtr.seg_type == S.SYS_TYPE_LDT
        assert not ldtr.s

    def test_expand_down_detection(self):
        seg = S.Segment(access_rights=S.SEG_TYPE_DATA_RW_EXPAND_DOWN
                        | S.AccessRights.S | S.AccessRights.P)
        assert seg.is_expand_down()


class TestAccessRightsRules:
    def test_reserved_bits(self):
        assert S.ar_reserved_ok(0x9B)
        assert not S.ar_reserved_ok(0x9B | (1 << 9))
        assert not S.ar_reserved_ok(0x9B | (1 << 20))

    def test_unusable_bit_not_reserved(self):
        assert S.ar_reserved_ok(S.AccessRights.UNUSABLE)


class TestGranularity:
    def test_byte_granular_small_limit(self):
        assert S.granularity_consistent(0xFFFF, 0x93)  # G=0, small limit

    def test_page_granular_full_limit(self):
        assert S.granularity_consistent(0xFFFFFFFF, 0x93 | S.AccessRights.G)

    def test_big_limit_requires_g(self):
        assert not S.granularity_consistent(0xFFFFFFFF, 0x93)

    def test_partial_low_bits_forbid_g(self):
        assert not S.granularity_consistent(0x1234, 0x93 | S.AccessRights.G)
