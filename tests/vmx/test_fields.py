"""Unit tests for the VMCS field table (the paper's 165-field layout)."""

from repro.vmx import fields as F


class TestLayoutInvariants:
    def test_paper_field_count(self):
        # Figure 5: "an 8,000-bit VM state across 165 fields".
        assert len(F.ALL_FIELDS) == 165

    def test_paper_layout_bits(self):
        assert F.LAYOUT_BITS == 8000
        assert F.LAYOUT_BYTES == 1000

    def test_encodings_unique(self):
        encodings = [s.encoding for s in F.ALL_FIELDS]
        assert len(encodings) == len(set(encodings))

    def test_names_unique(self):
        names = [s.name for s in F.ALL_FIELDS]
        assert len(names) == len(set(names))

    def test_lookup_tables_consistent(self):
        for spec in F.ALL_FIELDS:
            assert F.SPEC_BY_ENCODING[spec.encoding] is spec
            assert F.SPEC_BY_NAME[spec.name] is spec

    def test_widths_are_byte_multiples(self):
        for spec in F.ALL_FIELDS:
            assert spec.bits in (16, 32, 64)


class TestEncodingScheme:
    def test_group_encoded_in_bits_10_11(self):
        for spec in F.ALL_FIELDS:
            assert (spec.encoding >> 10) & 3 == spec.group.value

    def test_width_encoded_in_bits_13_14(self):
        for spec in F.ALL_FIELDS:
            assert (spec.encoding >> 13) & 3 == spec.width.value

    def test_known_architectural_encodings(self):
        # Cross-check a few against the Intel SDM Appendix B values.
        assert F.VIRTUAL_PROCESSOR_ID == 0x0000
        assert F.GUEST_ES_SELECTOR == 0x0800
        assert F.HOST_ES_SELECTOR == 0x0C00
        assert F.IO_BITMAP_A == 0x2000
        assert F.VM_EXIT_REASON == 0x4402
        assert F.GUEST_CR0 == 0x6800
        assert F.HOST_RIP == 0x6C16
        assert F.PIN_BASED_VM_EXEC_CONTROL == 0x4000
        assert F.GUEST_RIP == 0x681E


class TestGroupMembership:
    def test_writable_excludes_read_only(self):
        for spec in F.WRITABLE_FIELDS:
            assert spec.group is not F.FieldGroup.READ_ONLY

    def test_read_only_fields_exist(self):
        ro = [s for s in F.ALL_FIELDS if s.group is F.FieldGroup.READ_ONLY]
        assert len(ro) == len(F.ALL_FIELDS) - len(F.WRITABLE_FIELDS)
        assert any(s.name == "vm_exit_reason" for s in ro)

    def test_segment_tables_cover_all_segments(self):
        for table in (F.SEGMENT_SELECTOR_FIELDS, F.SEGMENT_BASE_FIELDS,
                      F.SEGMENT_LIMIT_FIELDS, F.SEGMENT_AR_FIELDS):
            assert set(table) == {"es", "cs", "ss", "ds", "fs", "gs",
                                  "ldtr", "tr"}

    def test_host_selector_table(self):
        assert set(F.HOST_SELECTOR_FIELDS) == {"es", "cs", "ss", "ds",
                                               "fs", "gs", "tr"}
