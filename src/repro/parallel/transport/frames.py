"""Length-prefixed, CRC-framed messages for the federation transport.

Every byte on a federation socket is a **frame**: a fixed header
(:data:`FRAME_HEADER` — magic, version, type, payload length, payload
CRC32) followed by the payload. Two frame types exist:

``FT_CTRL``
    A JSON control message (``{"op": ..., "seq": ..., ...}``) — the
    request/response vocabulary of the lease API, barriers, heartbeats.

``FT_BLOB``
    A control header plus raw bytes in one frame: a 4-byte meta length,
    the JSON meta, then the binary payload (NCQ2 record blobs, virgin
    bitmaps, pickled reports). Records cross the wire in exactly the
    bytes :func:`repro.parallel.wire.pack_record` produced, so their
    own header + coverage digest stay verifiable end to end.

``FT_DELTA``
    Same layout as ``FT_BLOB``, but the binary payload is an NCD1
    coverage delta (:mod:`repro.coverage.delta`). A distinct frame type
    keeps the coverage plane visually separable on the wire and lets a
    receiver route it without peeking at the meta: the delta carries
    its own CRC seal, so a corrupt *delta* (frame intact, NCD1 payload
    bad) degrades to a resync reply instead of a torn connection.

Corruption handling is deliberately blunt: a receiver that sees a bad
magic, an impossible length, or a CRC mismatch raises
:class:`FrameError` and the connection is torn down. There is no
in-band resync — the stream position is untrustworthy after a corrupt
header — and none is needed, because every RPC is idempotent and the
sender resends over a fresh connection (at-least-once delivery,
exactly-once apply; DESIGN.md §14).
"""

from __future__ import annotations

import json
import struct

from repro.parallel import checksum

FRAME_MAGIC = b"NCF1"
FRAME_VERSION = 1

#: magic, version, frame type, payload length, payload crc32.
FRAME_HEADER = struct.Struct("<4sBBII")
_META_LEN = struct.Struct("<I")

FT_CTRL = 1
FT_BLOB = 2
FT_DELTA = 3

_FRAME_TYPES = (FT_CTRL, FT_BLOB, FT_DELTA)

#: Hard ceiling on one frame's payload; anything bigger is treated as a
#: corrupt length field, not a legitimate message.
MAX_PAYLOAD = 64 * 1024 * 1024


class FrameError(RuntimeError):
    """The byte stream is not a valid frame sequence (corrupt link)."""


def pack_frame(ftype: int, payload: bytes) -> bytes:
    """One wire frame around *payload*."""
    return FRAME_HEADER.pack(FRAME_MAGIC, FRAME_VERSION, ftype,
                             len(payload),
                             checksum.checksum(payload)) + payload


def pack_ctrl(message: dict) -> bytes:
    """A JSON control frame."""
    return pack_frame(FT_CTRL, json.dumps(message, sort_keys=True).encode())


def pack_blob(meta: dict, raw: bytes, *, ftype: int = FT_BLOB) -> bytes:
    """A control-header-plus-binary frame."""
    encoded = json.dumps(meta, sort_keys=True).encode()
    return pack_frame(ftype,
                      _META_LEN.pack(len(encoded)) + encoded + raw)


def pack_delta(meta: dict, raw: bytes) -> bytes:
    """A coverage-delta frame (``FT_DELTA``; same layout as a blob)."""
    return pack_blob(meta, raw, ftype=FT_DELTA)


def split_blob(payload: bytes) -> tuple[dict, bytes]:
    """Decode a ``FT_BLOB``/``FT_DELTA`` payload back into (meta, raw)."""
    if len(payload) < _META_LEN.size:
        raise FrameError("blob frame too short for its meta length")
    (meta_len,) = _META_LEN.unpack_from(payload)
    if _META_LEN.size + meta_len > len(payload):
        raise FrameError("blob meta length exceeds the frame payload")
    try:
        meta = json.loads(payload[_META_LEN.size:_META_LEN.size + meta_len])
    except ValueError as exc:
        raise FrameError(f"blob meta is not valid JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise FrameError("blob meta must be a JSON object")
    return meta, payload[_META_LEN.size + meta_len:]


def encode_blobs(blobs: list[bytes]) -> bytes:
    """Concatenate record blobs with 4-byte length prefixes."""
    return checksum.pack_chunks(blobs)


def decode_blobs(raw: bytes) -> list[bytes]:
    """Invert :func:`encode_blobs`; raises :class:`FrameError` on a torn
    or lying length prefix."""
    try:
        return checksum.unpack_chunks(raw)
    except ValueError as exc:
        raise FrameError(str(exc)) from exc


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever ``recv`` returned; it yields complete
    ``(ftype, payload)`` pairs and buffers the rest. Any malformed
    header or failed CRC raises :class:`FrameError` — the caller drops
    the connection and lets the resend machinery recover.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        self._buffer += data
        frames = []
        while True:
            if len(self._buffer) < FRAME_HEADER.size:
                break
            magic, version, ftype, length, crc = FRAME_HEADER.unpack_from(
                self._buffer)
            if magic != FRAME_MAGIC:
                raise FrameError(f"bad frame magic {bytes(magic)!r}")
            if version != FRAME_VERSION:
                raise FrameError(f"unsupported frame version {version}")
            if ftype not in _FRAME_TYPES:
                raise FrameError(f"unknown frame type {ftype}")
            if length > MAX_PAYLOAD:
                raise FrameError(f"frame payload length {length} exceeds "
                                 f"the {MAX_PAYLOAD}-byte ceiling")
            if len(self._buffer) < FRAME_HEADER.size + length:
                break
            payload = bytes(
                self._buffer[FRAME_HEADER.size:FRAME_HEADER.size + length])
            del self._buffer[:FRAME_HEADER.size + length]
            if not checksum.verify(payload, crc):
                raise FrameError("frame payload failed its CRC check")
            frames.append((ftype, payload))
        return frames


def parse_ctrl(payload: bytes) -> dict:
    """Decode a ``FT_CTRL`` payload."""
    try:
        message = json.loads(payload)
    except ValueError as exc:
        raise FrameError(f"control frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise FrameError("control frame must be an object with an 'op'")
    return message
