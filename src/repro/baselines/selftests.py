"""Linux KVM selftests baseline (paper §5.1/§5.2).

The selftests in ``tools/testing/selftests/kvm`` drive nested
virtualization both from the guest (via small guest programs) and from
the host (via the ioctl surface — notably ``KVM_{GET,SET}_NESTED_STATE``,
which is why the paper measures a nonzero "Selftests − NecoFuzz" slice:
selftests reach host-only code a guest-side fuzzer cannot).

A fixed, deterministic list of test cases, run once, coverage aggregated
— "Selftests run only 60 test cases in about 80 seconds".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_EFER
from repro.arch.registers import Cr4, Efer
from repro.baselines.common import BaselineHarness
from repro.core.necofuzz import CampaignResult
from repro.core.templates import ALT_VMCS_GPA, VMCB12_GPA, VMCS12_GPA, VMXON_GPA
from repro.hypervisors.base import GuestInstruction, VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor
from repro.svm import fields as SF
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import EntryControls, PinBased, ProcBased


def _run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


def _write_vmcs(hv, vcpu, vmcs):
    for spec, value in vmcs.fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            _run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)


def _vmx_setup(hv, vcpu, vmcs=None):
    """The canonical selftest VMX bring-up."""
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)
    _run(hv, vcpu, "vmclear", addr=VMCS12_GPA)
    _run(hv, vcpu, "vmptrld", addr=VMCS12_GPA)
    _write_vmcs(hv, vcpu, vmcs or golden_vmcs())


# ---------------------------------------------------------------------------
# Intel test cases (each mirrors a real selftest by name)
# ---------------------------------------------------------------------------

def vmx_basic_test(hv):
    """vmx: boot L2, take exits, resume."""
    vcpu = hv.create_vcpu()
    _vmx_setup(hv, vcpu)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "cpuid", level=2)
    _run(hv, vcpu, "vmresume")
    _run(hv, vcpu, "hlt", level=2)


def vmx_close_while_nested_test(hv):
    """vmx: vmxoff while L2 is active."""
    vcpu = hv.create_vcpu()
    _vmx_setup(hv, vcpu)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "vmxoff")  # teardown while L2 "active"


def vmx_state_test(hv):
    """state_test: the KVM_{GET,SET}_NESTED_STATE round trip."""
    vcpu = hv.create_vcpu()
    _vmx_setup(hv, vcpu)
    _run(hv, vcpu, "vmlaunch")
    blob = hv.nested_vmx.vmx_get_nested_state(vcpu.vmx)
    hv.nested_vmx.vmx_set_nested_state(vcpu.vmx, blob)


def vmx_set_nested_state_test(hv):
    """vmx_set_nested_state_test: invalid-blob rejection paths."""
    vcpu = hv.create_vcpu()
    nested = hv.nested_vmx
    nested.vmx_set_nested_state(vcpu.vmx, {"format": "svm"})
    nested.vmx_set_nested_state(vcpu.vmx, {"format": "vmx", "guest_mode": True})
    nested.vmx_set_nested_state(vcpu.vmx, {
        "format": "vmx", "vmxon": True, "vmxon_ptr": 0x123})  # misaligned
    nested.vmx_set_nested_state(vcpu.vmx, {
        "format": "vmx", "vmxon": True, "vmxon_ptr": VMXON_GPA,
        "current_vmptr": 0xF0000000})  # outside guest RAM
    nested.vmx_set_nested_state(vcpu.vmx, {
        "format": "vmx", "vmxon": True, "vmxon_ptr": VMXON_GPA,
        "current_vmptr": VMCS12_GPA, "vmcs12": golden_vmcs().serialize()})


def vmx_preemption_timer_test(hv):
    """vmx: launch with the preemption timer armed."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL,
               vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL) | PinBased.PREEMPTION_TIMER)
    vmcs.write(F.VMX_PREEMPTION_TIMER_VALUE, 100)
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "pause", level=2)


def vmx_invalid_state_test(hv):
    """Entry with an invalid guest state must fail with reason 33."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.GUEST_ACTIVITY_STATE, 3)  # rejected by KVM's checks
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")


def vmx_msr_intercept_test(hv):
    """vmx: MSR-bitmap intercept routing."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
               vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) | ProcBased.USE_MSR_BITMAPS)
    vmcs.write(F.MSR_BITMAP, 0x12000)
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "rdmsr", level=2, msr=0x1B)   # even: L0 handles
    _run(hv, vcpu, "rdmsr", level=2, msr=0xC0000101)  # odd: to L1
    _run(hv, vcpu, "vmresume")


def vmx_io_bitmap_test(hv):
    """vmx: I/O-bitmap intercept routing."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
               vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) | ProcBased.USE_IO_BITMAPS)
    vmcs.write(F.IO_BITMAP_A, 0x10000)
    vmcs.write(F.IO_BITMAP_B, 0x11000)
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "out", level=2, port=0x71, value=1)
    _run(hv, vcpu, "vmresume")
    _run(hv, vcpu, "in", level=2, port=0x70)


def vmx_cr_intercept_test(hv):
    """vmx: CR0 mask and CR3-target intercepts."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.CR0_GUEST_HOST_MASK, 0x80000001)
    vmcs.write(F.CR0_READ_SHADOW, 0x80000001)
    vmcs.write(F.CR3_TARGET_COUNT, 1)
    vmcs.write(F.CR3_TARGET_VALUE0, 0x30000)
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "mov_cr", level=2, cr=0, write=1, value=0x33)
    _run(hv, vcpu, "vmresume")
    _run(hv, vcpu, "mov_cr", level=2, cr=3, write=1, value=0x30000)


def vmx_vmcall_test(hv):
    """vmx: vmcall exits reach L1."""
    vcpu = hv.create_vcpu()
    _vmx_setup(hv, vcpu)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "vmcall", level=2)
    _run(hv, vcpu, "vmresume")


def vmx_invept_invvpid_test(hv):
    """vmx: invept/invvpid valid and invalid operands."""
    vcpu = hv.create_vcpu()
    _vmx_setup(hv, vcpu)
    _run(hv, vcpu, "invept", type=2, eptp=0)
    _run(hv, vcpu, "invept", type=1, eptp=0x20000 | 6 | (3 << 3))
    _run(hv, vcpu, "invvpid", type=1, vpid=1)
    _run(hv, vcpu, "invvpid", type=0, vpid=1, linear_addr=0x1000)


def vmx_error_paths_test(hv):
    """vmx: the VMfail error-path battery."""
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "vmlaunch")                    # before vmxon: #UD path
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)       # VMXON_IN_VMX_ROOT
    _run(hv, vcpu, "vmclear", addr=VMXON_GPA)     # VMCLEAR_VMXON_POINTER
    _run(hv, vcpu, "vmclear", addr=0x123)         # misaligned
    _run(hv, vcpu, "vmptrld", addr=VMXON_GPA)     # VMPTRLD_VMXON_POINTER
    _run(hv, vcpu, "vmptrld", addr=ALT_VMCS_GPA)  # wrong revision
    _run(hv, vcpu, "vmlaunch")                    # no current VMCS
    _run(hv, vcpu, "vmwrite", field=0xFFFF, value=0)  # unsupported
    _run(hv, vcpu, "vmread", field=0xFFFF)
    _run(hv, vcpu, "vmptrst")


def vmx_ept_access_test(hv):
    """vmx: an L2 memory access under nested EPT."""
    vcpu = hv.create_vcpu()
    _vmx_setup(hv, vcpu)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "memaccess", level=2, value=0x5000)
    _run(hv, vcpu, "vmresume")


def vmx_exception_test(hv):
    """vmx: exception-bitmap reflection."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.EXCEPTION_BITMAP, 1 << 14)  # trap #PF to L1
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")
    _run(hv, vcpu, "exception", level=2, vector=14, value=0x1000)
    _run(hv, vcpu, "vmresume")
    _run(hv, vcpu, "exception", level=2, vector=3)


def vmx_apic_access_test(hv):
    """vmx: TPR-shadow configuration."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    proc = vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL) | ProcBased.USE_TPR_SHADOW
    vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL, proc)
    vmcs.write(F.VIRTUAL_APIC_PAGE_ADDR, 0x13000)
    vmcs.write(F.TPR_THRESHOLD, 5)
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")


def vmx_ia32e_test(hv):
    """vmx: legacy (non-IA-32e) guest entry."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.VM_ENTRY_CONTROLS,
               vmcs.read(F.VM_ENTRY_CONTROLS) & ~EntryControls.IA32E_MODE_GUEST)
    vmcs.write(F.GUEST_IA32_EFER, 0)
    vmcs.write(F.GUEST_CR4, Cr4.PAE | Cr4.VMXE)
    _vmx_setup(hv, vcpu, vmcs)
    _run(hv, vcpu, "vmlaunch")


INTEL_SELFTESTS = (
    ("vmx_basic_test", vmx_basic_test),
    ("vmx_close_while_nested_test", vmx_close_while_nested_test),
    ("state_test", vmx_state_test),
    ("vmx_set_nested_state_test", vmx_set_nested_state_test),
    ("vmx_preemption_timer_test", vmx_preemption_timer_test),
    ("vmx_invalid_state_test", vmx_invalid_state_test),
    ("vmx_msr_intercept_test", vmx_msr_intercept_test),
    ("vmx_io_bitmap_test", vmx_io_bitmap_test),
    ("vmx_cr_intercept_test", vmx_cr_intercept_test),
    ("vmx_vmcall_test", vmx_vmcall_test),
    ("vmx_invept_invvpid_test", vmx_invept_invvpid_test),
    ("vmx_error_paths_test", vmx_error_paths_test),
    ("vmx_ept_access_test", vmx_ept_access_test),
    ("vmx_exception_test", vmx_exception_test),
    ("vmx_apic_access_test", vmx_apic_access_test),
    ("vmx_ia32e_test", vmx_ia32e_test),
)


# ---------------------------------------------------------------------------
# AMD test cases
# ---------------------------------------------------------------------------

def _svm_setup(hv, vcpu, vmcb=None):
    _run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
    hv.memory.put_vmcb(VMCB12_GPA, vmcb or golden_vmcb())


def svm_vmrun_test(hv):
    """svm: boot L2 twice with exits between."""
    vcpu = hv.create_vcpu()
    _svm_setup(hv, vcpu)
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)
    _run(hv, vcpu, "cpuid", level=2)
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)
    _run(hv, vcpu, "hlt", level=2)


def svm_state_test(hv):
    """svm: nested-state ioctl round trip."""
    vcpu = hv.create_vcpu()
    _svm_setup(hv, vcpu)
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)
    blob = hv.nested_svm.svm_get_nested_state(vcpu.svm)
    hv.nested_svm.svm_set_nested_state(vcpu.svm, blob)
    hv.nested_svm.svm_leave_nested(vcpu.svm)


def svm_set_nested_state_test(hv):
    """svm: invalid-blob rejection paths."""
    vcpu = hv.create_vcpu()
    nested = hv.nested_svm
    nested.svm_set_nested_state(vcpu.svm, {"format": "vmx"})
    nested.svm_set_nested_state(vcpu.svm, {"format": "svm", "guest_mode": True})
    nested.svm_set_nested_state(vcpu.svm, {
        "format": "svm", "svme": True, "hsave_pa": 0x123})
    nested.svm_set_nested_state(vcpu.svm, {
        "format": "svm", "svme": True, "guest_mode": True,
        "vmcb12_pa": VMCB12_GPA, "vmcb12": golden_vmcb().serialize()})


def svm_vmcall_test(hv):
    """svm: vmmcall exits reach L1."""
    vcpu = hv.create_vcpu()
    _svm_setup(hv, vcpu)
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)
    _run(hv, vcpu, "vmmcall", level=2)


def svm_intercept_test(hv):
    """svm: exception/MSR/IO intercept routing."""
    vcpu = hv.create_vcpu()
    vmcb = golden_vmcb()
    vmcb.write(SF.INTERCEPT_EXCEPTIONS, 1 << 14)
    _svm_setup(hv, vcpu, vmcb)
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)
    _run(hv, vcpu, "exception", level=2, vector=14)
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)
    _run(hv, vcpu, "rdmsr", level=2, msr=0xC0000101)
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)
    _run(hv, vcpu, "out", level=2, port=0x71, value=2)


def svm_gif_test(hv):
    """svm: GIF toggling and vmload/vmsave."""
    vcpu = hv.create_vcpu()
    _svm_setup(hv, vcpu)
    _run(hv, vcpu, "clgi")
    _run(hv, vcpu, "stgi")
    _run(hv, vcpu, "vmload", addr=VMCB12_GPA)
    _run(hv, vcpu, "vmsave", addr=VMCB12_GPA)
    _run(hv, vcpu, "invlpga", asid=1, value=0x1000)


def svm_errors_test(hv):
    """svm: the #UD/#GP error-path battery."""
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)  # EFER.SVME clear
    _svm_setup(hv, vcpu)
    _run(hv, vcpu, "vmrun", addr=0x123)       # misaligned
    _run(hv, vcpu, "vmload", addr=0x123)
    _run(hv, vcpu, "vmsave", addr=0xF0000000)
    _run(hv, vcpu, "skinit", value=0)


AMD_SELFTESTS = (
    ("svm_vmrun_test", svm_vmrun_test),
    ("svm_nested_state_test", svm_state_test),
    ("svm_set_nested_state_test", svm_set_nested_state_test),
    ("svm_vmcall_test", svm_vmcall_test),
    ("svm_intercept_test", svm_intercept_test),
    ("svm_gif_test", svm_gif_test),
    ("svm_errors_test", svm_errors_test),
)


@dataclass
class SelftestsSuite:
    """Run the fixed selftest list once and aggregate coverage."""

    vendor: Vendor = Vendor.INTEL

    def run(self) -> CampaignResult:
        """Run the suite/campaign and return a CampaignResult."""
        harness = BaselineHarness("Selftests", self.vendor, KvmHypervisor)
        tests = INTEL_SELFTESTS if self.vendor is Vendor.INTEL else AMD_SELFTESTS
        for _, test in tests:
            hv = KvmHypervisor(VcpuConfig.default(self.vendor))
            harness.run_case(hv, test)
        return harness.result()

    def test_names(self) -> tuple[str, ...]:
        """Names of the fixed test cases, in execution order."""
        tests = INTEL_SELFTESTS if self.vendor is Vendor.INTEL else AMD_SELFTESTS
        return tuple(name for name, _ in tests)
