"""Adaptive fuzzing brain: power schedules + operator bandits (DESIGN.md §16).

The batched and federated execution planes (DESIGN.md §12-§15) made
cases cheap; this package decides which cases are *worth* that
throughput. Three cooperating pieces:

* :class:`~repro.schedule.power.PowerSchedule` — per-seed energy
  assignment. ``flat`` replicates the classic AFL-style draw bit for
  bit (the default; campaign fingerprints are pinned equal to a run
  without the feature), ``fast`` is an AFLFast-style schedule weighting
  seeds by coverage novelty, discovery depth, exercise count, and a
  deterministic execution-cost proxy.
* :class:`~repro.schedule.bandit.OperatorBandit` — deterministic
  Thompson sampling over the mutation operators (the havoc table plus
  the ``splice``/``region_havoc`` stages), seeded from
  :meth:`repro.fuzzer.rng.Rng.fork` so campaigns replay bit for bit,
  with per-operator hit-rate counters fed into the telemetry registry.
* :func:`~repro.schedule.distill.distill` — periodic corpus
  distillation: a greedy minimal-subset cover over the queue's recorded
  coverage (via :meth:`repro.coverage.bitmap.VirginMap.subsumes`) that
  *demotes* entries contributing no unique bits. Nothing is ever
  dropped — crashed/anomaly entries and seeds are exempt even from
  demotion.

Schedule and bandit state ride the engine's pickle, so checkpoints and
lease-log replays resume the learned posteriors exactly; like
telemetry, none of it enters the campaign fingerprint.
"""

from __future__ import annotations

from repro.schedule.bandit import BANDIT_ARMS, OperatorBandit
from repro.schedule.distill import distill
from repro.schedule.power import (
    BASE_ENERGY,
    SCHEDULE_MODES,
    FastSchedule,
    FlatSchedule,
    PowerSchedule,
    make_schedule,
)

__all__ = [
    "BANDIT_ARMS",
    "BASE_ENERGY",
    "FastSchedule",
    "FlatSchedule",
    "OperatorBandit",
    "PowerSchedule",
    "SCHEDULE_MODES",
    "distill",
    "make_schedule",
]
