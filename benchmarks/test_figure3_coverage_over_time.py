"""Figure 3: coverage transition over 48 hours (Intel a / AMD b).

Reproduces the trajectory comparison: NecoFuzz starts from moderate
harness-provided coverage and climbs fast; Syzkaller converges slowly
and lower; IRIS is a low horizontal line (it crashed after minutes).
"""

import pytest

from common import (
    BenchReport,
    SYZKALLER_BUDGET,
    necofuzz_runs,
    timeline_block,
)
from repro import Vendor
from repro.baselines import IrisCampaign, SyzkallerCampaign


def _run_figure(vendor: Vendor):
    neco = necofuzz_runs(vendor, sample_every=20)
    syz = [SyzkallerCampaign(vendor=vendor, seed=seed,
                             iterations_per_hour=SYZKALLER_BUDGET / 48.0)
           .run(SYZKALLER_BUDGET, sample_every=10)
           for seed in (11, 23, 37, 47, 59)]
    iris = (IrisCampaign(seed=11, iterations_per_hour=SYZKALLER_BUDGET / 48.0)
            .run(500) if vendor is Vendor.INTEL else None)
    return neco, syz, iris


@pytest.mark.benchmark(group="figure3")
@pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                         ids=["intel", "amd"])
def test_figure3(benchmark, capsys, vendor):
    box = {}

    def experiment():
        box["result"] = _run_figure(vendor)
        return box["result"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    neco, syz, iris = box["result"]

    sub = "a" if vendor is Vendor.INTEL else "b"
    report = BenchReport(f"Figure 3{sub}: coverage over 48h ({vendor.value})")
    report.lines += timeline_block("NecoFuzz", [r.timeline for r in neco])
    report.lines += timeline_block("Syzkaller", [r.timeline for r in syz])
    if iris is not None:
        report.add(f"{'IRIS (at termination)':<28} "
                   f"{iris.coverage_percent:5.1f}% (dotted line)")
    report.emit(capsys)

    from repro.analysis.timeline import median_timeline

    neco_median = median_timeline([r.timeline for r in neco], "n")
    syz_median = median_timeline([r.timeline for r in syz], "s")

    # Shape 1: NecoFuzz starts with moderate coverage from its harness
    # (paper: ~70% Intel / ~65% AMD early) and climbs.
    assert neco_median.at_hour(6) > 0.45
    assert neco_median.final_coverage > neco_median.at_hour(6)
    # Shape 2: NecoFuzz dominates Syzkaller at every sampled hour.
    for hour in (12, 24, 48):
        assert neco_median.at_hour(hour) > syz_median.at_hour(hour)
    # Shape 3: IRIS saturates low and stays below NecoFuzz (1.6x, §5.2).
    if iris is not None:
        assert iris.coverage_fraction < neco_median.final_coverage
