"""Tests for the instruction-template library (paper Table 1 / §4.2)."""

from repro.arch.cpuid import Vendor
from repro.core import templates as T
from repro.fuzzer.input import InputCursor
from repro.hypervisors.l2map import AMD_L2_EXITS, INTEL_L2_EXITS


def cursor(data=bytes(range(256))):
    return InputCursor(data)


class TestLibraryShape:
    def test_table1_classes_present_intel(self):
        names = {t.name for t in T.runtime_templates(Vendor.INTEL)}
        # VMX instructions, privileged registers, I/O+MSR, misc.
        assert {"l1_vmclear", "l1_vmptrld", "invept"} <= names
        assert {"mov_cr", "mov_dr"} <= names
        assert {"io_in", "io_out", "rdmsr", "wrmsr"} <= names
        assert {"cpuid", "hlt", "rdtsc", "pause", "rdrand"} <= names

    def test_table1_classes_present_amd(self):
        names = {t.name for t in T.runtime_templates(Vendor.AMD)}
        assert {"l2_vmrun", "vmload", "vmsave", "stgi", "clgi"} <= names
        assert {"mov_cr", "rdmsr", "io_out", "cpuid"} <= names

    def test_levels_are_sane(self):
        for vendor in (Vendor.INTEL, Vendor.AMD):
            for template in T.runtime_templates(vendor):
                assert template.levels
                assert set(template.levels) <= {1, 2}

    def test_both_levels_available(self):
        for vendor in (Vendor.INTEL, Vendor.AMD):
            templates = T.runtime_templates(vendor)
            assert any(1 in t.levels for t in templates)
            assert any(2 in t.levels for t in templates)


class TestInstantiation:
    def test_instantiate_sets_level(self):
        template = T.runtime_templates(Vendor.INTEL)[0]
        instr = template.instantiate(cursor(), 2)
        assert instr.level == 2
        assert instr.mnemonic == template.mnemonic

    def test_all_templates_instantiate(self):
        for vendor in (Vendor.INTEL, Vendor.AMD):
            c = cursor()
            for template in T.runtime_templates(vendor):
                instr = template.instantiate(c, template.levels[0])
                assert all(isinstance(v, int) for v in instr.operands.values())

    def test_msr_operands_bias_interesting(self):
        hits = 0
        c = cursor(bytes(range(256)) * 4)
        for _ in range(64):
            operands = T._msr_operands(c)
            if operands["msr"] in T.INTERESTING_MSRS:
                hits += 1
        assert hits > 20  # the 3/4 bias must be visible

    def test_cr_operand_range(self):
        c = cursor()
        for _ in range(32):
            assert T._cr_operands(c)["cr"] in (0, 3, 4, 8)

    def test_l2_mnemonics_have_exit_mappings(self):
        for template in T.runtime_templates(Vendor.INTEL):
            if 2 in template.levels and template.mnemonic not in ("nop",):
                assert template.mnemonic in INTEL_L2_EXITS
        # RDRAND/RDSEED have no SVM intercept on the parts we model, so
        # they legitimately never exit on AMD.
        no_amd_intercept = {"rdrand", "rdseed"}
        for template in T.runtime_templates(Vendor.AMD):
            if 2 in template.levels and template.mnemonic not in no_amd_intercept:
                assert template.mnemonic in AMD_L2_EXITS


class TestInitSequences:
    def test_intel_sequence_shape(self):
        steps = T.intel_init_sequence()
        mnemonics = [s.mnemonic for s in steps]
        assert mnemonics == ["vmxon", "vmclear", "vmptrld", "vmlaunch"]
        assert not steps[-1].mutable_args  # the entry itself is fixed

    def test_amd_sequence_shape(self):
        mnemonics = [s.mnemonic for s in T.amd_init_sequence()]
        assert mnemonics == ["wrmsr", "wrmsr", "clgi", "vmrun"]

    def test_dispatch_by_vendor(self):
        assert T.init_sequence(Vendor.INTEL)[0].mnemonic == "vmxon"
        assert T.init_sequence(Vendor.AMD)[0].mnemonic == "wrmsr"
