"""AFL-style mutation operators.

The classic deterministic + havoc repertoire from AFL++: walking bit and
byte flips, arithmetic, interesting-value substitution, stacked havoc,
and two-input splicing. Operators take and return ``bytes``; they never
change the input length (the harness contract is a fixed 2 KiB).
"""

from __future__ import annotations

from repro.fuzzer.rng import Rng

#: AFL's "interesting" value sets.
INTERESTING_8 = (0, 1, 16, 32, 64, 100, 127, 128, 255, 0x80)
INTERESTING_16 = (0, 1, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 32768, 65535)
INTERESTING_32 = (0, 1, 32768, 65535, 65536, 100 << 20, 0x7FFFFFFF, 0x80000000,
                  0xFFFFFFFF)

ARITH_MAX = 35


def bitflip(data: bytes, rng: Rng, *, width: int = 1) -> bytes:
    """Flip *width* consecutive bits at a random position."""
    out = bytearray(data)
    total_bits = len(out) * 8
    pos = rng.below(max(total_bits - width + 1, 1))
    for i in range(width):
        bit_pos = pos + i
        out[bit_pos // 8] ^= 1 << (bit_pos % 8)
    return bytes(out)


def byteflip(data: bytes, rng: Rng, *, width: int = 1) -> bytes:
    """Invert *width* consecutive bytes at a random position."""
    out = bytearray(data)
    pos = rng.below(max(len(out) - width + 1, 1))
    for i in range(width):
        out[pos + i] ^= 0xFF
    return bytes(out)


def arith(data: bytes, rng: Rng, *, width: int = 1) -> bytes:
    """Add/subtract a small delta at a random aligned position."""
    out = bytearray(data)
    if len(out) < width:
        return bytes(out)
    pos = rng.below(len(out) - width + 1)
    delta = rng.below(ARITH_MAX) + 1
    if rng.chance(0.5):
        delta = -delta
    value = int.from_bytes(out[pos:pos + width], "little")
    value = (value + delta) % (1 << (8 * width))
    out[pos:pos + width] = value.to_bytes(width, "little")
    return bytes(out)


def interesting(data: bytes, rng: Rng, *, width: int = 1) -> bytes:
    """Overwrite with an AFL interesting value."""
    out = bytearray(data)
    if len(out) < width:
        return bytes(out)
    pos = rng.below(len(out) - width + 1)
    table = {1: INTERESTING_8, 2: INTERESTING_16, 4: INTERESTING_32}[width]
    value = rng.choice(table) % (1 << (8 * width))
    out[pos:pos + width] = value.to_bytes(width, "little")
    return bytes(out)


def random_byte(data: bytes, rng: Rng) -> bytes:
    """Replace one byte with a random value."""
    out = bytearray(data)
    out[rng.below(len(out))] = rng.u8()
    return bytes(out)


def block_overwrite(data: bytes, rng: Rng) -> bytes:
    """Overwrite a random block with random bytes (length preserved)."""
    out = bytearray(data)
    length = rng.below(min(64, len(out))) + 1
    pos = rng.below(len(out) - length + 1)
    out[pos:pos + length] = rng.bytes(length)
    return bytes(out)


def block_copy(data: bytes, rng: Rng) -> bytes:
    """Copy one random block over another (length preserved)."""
    out = bytearray(data)
    length = rng.below(min(64, len(out))) + 1
    src = rng.below(len(out) - length + 1)
    dst = rng.below(len(out) - length + 1)
    out[dst:dst + length] = out[src:src + length]
    return bytes(out)


def splice(data: bytes, other: bytes, rng: Rng) -> bytes:
    """AFL splice: head of one input, tail of another.

    Inputs of length <= 1 have no interior cut point (``rng.below(0)``
    would raise), so they pass through unchanged — and consume no RNG
    draw, matching what a zero-length cut would mean.
    """
    if len(data) <= 1:
        return data
    if len(other) != len(data):
        other = (other + bytes(len(data)))[:len(data)]
    cut = rng.below(len(data) - 1) + 1
    return data[:cut] + other[cut:]


#: The havoc repertoire, named. Names are bandit-arm identities and
#: telemetry keys (``sched.op_uses.<name>``); the order is part of
#: fast-mode determinism — append, never reorder.
HAVOC_OPS = (
    ("bitflip1", lambda d, r: bitflip(d, r, width=1)),
    ("bitflip2", lambda d, r: bitflip(d, r, width=2)),
    ("bitflip4", lambda d, r: bitflip(d, r, width=4)),
    ("byteflip1", lambda d, r: byteflip(d, r, width=1)),
    ("byteflip2", lambda d, r: byteflip(d, r, width=2)),
    ("arith1", lambda d, r: arith(d, r, width=1)),
    ("arith2", lambda d, r: arith(d, r, width=2)),
    ("arith4", lambda d, r: arith(d, r, width=4)),
    ("interesting1", lambda d, r: interesting(d, r, width=1)),
    ("interesting2", lambda d, r: interesting(d, r, width=2)),
    ("interesting4", lambda d, r: interesting(d, r, width=4)),
    ("random_byte", random_byte),
    ("block_overwrite", block_overwrite),
    ("block_copy", block_copy),
)

#: Bare operator tuple for the uniform (flat-schedule) draw; identical
#: object identity and order to the historical table, so
#: ``rng.choice(_HAVOC_OPS)`` draws are fingerprint-stable.
_HAVOC_OPS = tuple(fn for _, fn in HAVOC_OPS)


def havoc(data: bytes, rng: Rng, *, max_stack: int = 8, bandit=None) -> bytes:
    """AFL havoc: a random stack of operators.

    Uniform over :data:`_HAVOC_OPS` by default; with *bandit* (an
    :class:`repro.schedule.bandit.OperatorBandit`) each stack slot is
    chosen by Thompson sampling from the bandit's own RNG stream — the
    main stream still draws only the stack depth, so flat-mode
    fingerprints never see the difference.

    Empty inputs pass through drawless: several operators would
    otherwise ask the RNG for a position in a zero-length buffer.
    """
    if not data:
        return data
    out = data
    for _ in range(rng.below(max_stack) + 1):
        if bandit is None:
            op = rng.choice(_HAVOC_OPS)
        else:
            op = bandit.choose_havoc()
        out = op(out, rng)
    return out


def mutate_candidate(data: bytes, rng: Rng,
                     regions: tuple[tuple[int, int], ...],
                     partner: bytes | None = None, bandit=None) -> bytes:
    """The engine's full per-candidate mutation stack.

    Exactly the sequence :class:`repro.fuzzer.engine.FuzzEngine`
    applies — optional splice with *partner*, havoc, then region
    havoc — factored out so the batched and single-case pipelines share
    one definition. RNG call order here is part of every campaign
    fingerprint; do not reorder. With *bandit* (fast schedule) the
    havoc operators come from posterior sampling and the region-havoc
    stage runs behind the bandit's ``region_havoc`` gate; splice-stage
    gating happens in the engine, where the partner is selected.
    """
    if partner is not None:
        data = splice(data, partner, rng)
    data = havoc(data, rng, bandit=bandit)
    if bandit is None or bandit.gate("region_havoc"):
        data = region_havoc(data, rng, regions, bandit=bandit)
    return data


def region_havoc(data: bytes, rng: Rng,
                 regions: tuple[tuple[int, int], ...], bandit=None) -> bytes:
    """Partition-aware havoc — the NecoFuzz extension to AFL++.

    The 2 KiB input is partitioned and dispatched to the VM-generator
    components (paper §3.2), so uniform havoc leaves most partitions
    untouched most iterations and the directive-driven components
    degenerate to their parent's behaviour. Region havoc applies an
    independent operator stack inside each partition, keeping every
    component's directives in motion while preserving determinism.
    """
    out = bytearray(data)
    for start, end in regions:
        if not rng.chance(0.8):
            continue
        slice_ = bytes(out[start:end])
        slice_ = havoc(slice_, rng, max_stack=6, bandit=bandit)
        out[start:end] = slice_
    return bytes(out)
