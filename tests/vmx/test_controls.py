"""Sanity tests for the VMX control-bit definitions."""

from repro.vmx.controls import (
    ActivityState,
    EntryControls,
    ExitControls,
    Interruptibility,
    PinBased,
    ProcBased,
    Secondary,
)
from repro.vmx.exit_reasons import (
    ENTRY_FAILURE_BIT,
    VMX_INSTRUCTION_EXITS,
    ExitReason,
)


class TestControlDefinitions:
    def test_default1_within_known(self):
        for cls in (PinBased, ProcBased, EntryControls, ExitControls):
            assert cls.DEFAULT1 & cls.KNOWN == cls.DEFAULT1

    def test_known_bits_disjoint_from_default1_features(self):
        # Feature bits must not collide with reserved-1 bits.
        assert not PinBased.EXT_INTR_EXITING & PinBased.DEFAULT1
        assert not ProcBased.HLT_EXITING & ProcBased.DEFAULT1
        assert not EntryControls.IA32E_MODE_GUEST & EntryControls.DEFAULT1
        assert not ExitControls.HOST_ADDR_SPACE_SIZE & ExitControls.DEFAULT1

    def test_architectural_positions(self):
        # Spot checks against the SDM bit positions.
        assert ProcBased.ACTIVATE_SECONDARY_CONTROLS == 1 << 31
        assert ProcBased.USE_MSR_BITMAPS == 1 << 28
        assert Secondary.ENABLE_EPT == 1 << 1
        assert Secondary.UNRESTRICTED_GUEST == 1 << 7
        assert EntryControls.IA32E_MODE_GUEST == 1 << 9
        assert ExitControls.ACK_INTR_ON_EXIT == 1 << 15
        assert PinBased.POSTED_INTERRUPTS == 1 << 7

    def test_activity_states(self):
        assert ActivityState.ALL == (0, 1, 2, 3)
        assert ActivityState.WAIT_FOR_SIPI == 3
        assert ActivityState.SHUTDOWN == 2

    def test_interruptibility_reserved(self):
        known = (Interruptibility.STI_BLOCKING | Interruptibility.MOV_SS_BLOCKING
                 | Interruptibility.SMI_BLOCKING | Interruptibility.NMI_BLOCKING
                 | Interruptibility.ENCLAVE_INTERRUPTION)
        assert not known & Interruptibility.RESERVED
        assert (known | Interruptibility.RESERVED) == (1 << 32) - 1


class TestExitReasons:
    def test_entry_failure_bit(self):
        assert ENTRY_FAILURE_BIT == 1 << 31

    def test_vmx_instruction_set(self):
        assert ExitReason.VMLAUNCH in VMX_INSTRUCTION_EXITS
        assert ExitReason.VMXON in VMX_INSTRUCTION_EXITS
        assert ExitReason.CPUID not in VMX_INSTRUCTION_EXITS

    def test_architectural_values(self):
        assert ExitReason.EXCEPTION_NMI == 0
        assert ExitReason.TRIPLE_FAULT == 2
        assert ExitReason.CPUID == 10
        assert ExitReason.EPT_VIOLATION == 48
        assert ExitReason.INVALID_GUEST_STATE == 33
        assert ExitReason.MSR_LOAD_FAIL == 34
