"""NecoFuzz: fuzzing nested virtualization via fuzz-harness VMs.

A faithful, laptop-scale reproduction of the EuroSys '26 paper. The
public API centres on :class:`repro.NecoFuzz` (a campaign against one of
the simulated L0 hypervisors) plus the substrates it is built from:

* ``repro.vmx`` / ``repro.svm`` — VMCS/VMCB data models;
* ``repro.cpu`` — the simulated physical CPU (hardware oracle);
* ``repro.validator`` — the Bochs-derived VM state validator;
* ``repro.hypervisors`` — simulated KVM / Xen / VirtualBox targets;
* ``repro.fuzzer`` — the AFL++-style coverage-guided engine;
* ``repro.baselines`` — Syzkaller / IRIS / Selftests / KVM-unit-tests / XTF;
* ``repro.analysis`` — Klees-et-al. statistics and the Figure-5 study.
"""

from repro.arch.cpuid import Vendor
from repro.core.executor import ComponentToggles
from repro.core.necofuzz import CampaignResult, NecoFuzz

__version__ = "1.0.0"

__all__ = ["NecoFuzz", "CampaignResult", "ComponentToggles", "Vendor",
           "__version__"]
