"""Tests for the simulated Xen hypervisor and its three seeded bugs."""

import pytest

from repro.arch.cpuid import Vendor
from repro.arch.exceptions import HostCrash
from repro.arch.msr import IA32_EFER
from repro.arch.registers import Cr0, Efer
from repro.hypervisors import GuestInstruction, VcpuConfig, XenHypervisor
from repro.hypervisors.base import SanitizerKind
from repro.svm import fields as SF
from repro.svm.exit_codes import SvmExitCode
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import ActivityState

VMXON = 0x1000
VMCS12 = 0x3000
VMCB12 = 0x3000


def run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


def launch_l2(hv, vcpu, vmcs):
    run(hv, vcpu, "vmxon", addr=VMXON)
    run(hv, vcpu, "vmclear", addr=VMCS12)
    run(hv, vcpu, "vmptrld", addr=VMCS12)
    for spec, value in vmcs.fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)
    return run(hv, vcpu, "vmlaunch")


@pytest.fixture
def xen_intel():
    hv = XenHypervisor(VcpuConfig.default(Vendor.INTEL))
    return hv, hv.create_vcpu()


@pytest.fixture
def xen_amd():
    hv = XenHypervisor(VcpuConfig.default(Vendor.AMD))
    vcpu = hv.create_vcpu()
    run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
    return hv, vcpu


class TestNvmxLifecycle:
    def test_golden_launch(self, xen_intel):
        hv, vcpu = xen_intel
        result = launch_l2(hv, vcpu, golden_vmcs(hv.nested_vmx.caps))
        assert result.level == 2

    def test_l2_exit_routing(self, xen_intel):
        hv, vcpu = xen_intel
        launch_l2(hv, vcpu, golden_vmcs(hv.nested_vmx.caps))
        result = run(hv, vcpu, "cpuid", level=2)
        assert result.level == 1

    def test_vmresume_cycle(self, xen_intel):
        hv, vcpu = xen_intel
        launch_l2(hv, vcpu, golden_vmcs(hv.nested_vmx.caps))
        run(hv, vcpu, "cpuid", level=2)
        assert run(hv, vcpu, "vmresume").level == 2

    def test_sparser_checks_than_kvm(self, xen_intel):
        """Xen misses the activity-state rule KVM enforces — the very
        omission behind bug #4."""
        hv, vcpu = xen_intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.HLT)
        assert hv.nested_vmx.check_guest_state(vmcs) == []


class TestBug4ActivityState:
    def test_wait_for_sipi_hangs_host(self, xen_intel):
        hv, vcpu = xen_intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.WAIT_FOR_SIPI)
        with pytest.raises(HostCrash) as excinfo:
            launch_l2(hv, vcpu, vmcs)
        assert excinfo.value.hang
        assert hv.crashed

    def test_shutdown_resets_platform(self, xen_intel):
        hv, vcpu = xen_intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.SHUTDOWN)
        with pytest.raises(HostCrash) as excinfo:
            launch_l2(hv, vcpu, vmcs)
        assert not excinfo.value.hang

    def test_patch_sanitizes_activity_state(self):
        hv = XenHypervisor(VcpuConfig.default(Vendor.INTEL),
                           patched=frozenset({"activity_state_sanitize"}))
        vcpu = hv.create_vcpu()
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.WAIT_FOR_SIPI)
        result = launch_l2(hv, vcpu, vmcs)
        assert result.level == 2  # sanitized to ACTIVE, host survives
        assert not hv.crashed

    def test_crashed_host_refuses_execution(self, xen_intel):
        hv, vcpu = xen_intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.WAIT_FOR_SIPI)
        with pytest.raises(HostCrash):
            launch_l2(hv, vcpu, vmcs)
        assert not run(hv, vcpu, "cpuid").ok

    def test_watchdog_reset_restores_host(self, xen_intel):
        hv, vcpu = xen_intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.WAIT_FOR_SIPI)
        with pytest.raises(HostCrash):
            launch_l2(hv, vcpu, vmcs)
        hv.reset()
        assert not hv.crashed
        vcpu2 = hv.create_vcpu()
        assert run(hv, vcpu2, "cpuid").ok


class TestBug5AvicCorruption:
    def _run_64bit_l2_then_clear_pg(self, hv, vcpu):
        vmcb = golden_vmcb()
        hv.memory.put_vmcb(VMCB12, vmcb)
        assert run(hv, vcpu, "vmrun", addr=VMCB12).level == 2
        run(hv, vcpu, "hlt", level=2)  # back to L1
        vmcb.write(SF.CR0, vmcb.read(SF.CR0) & ~Cr0.PG)  # LME stays set
        return run(hv, vcpu, "vmrun", addr=VMCB12)

    def test_lme_no_pg_after_64bit_l2(self, xen_amd):
        hv, vcpu = xen_amd
        result = self._run_64bit_l2_then_clear_pg(hv, vcpu)
        assert result.exit_reason == int(SvmExitCode.AVIC_NOACCEL)
        assert any(e.kind is SanitizerKind.ASSERTION
                   for e in hv.sanitizer_events)
        assert hv.log.grep("inconsistent")

    def test_no_corruption_without_prior_64bit_l2(self, xen_amd):
        hv, vcpu = xen_amd
        vmcb = golden_vmcb()
        vmcb.write(SF.CR0, vmcb.read(SF.CR0) & ~Cr0.PG)
        hv.memory.put_vmcb(VMCB12, vmcb)
        result = run(hv, vcpu, "vmrun", addr=VMCB12)
        assert result.exit_reason != int(SvmExitCode.AVIC_NOACCEL)

    def test_avic_sanitize_patch(self):
        hv = XenHypervisor(VcpuConfig.default(Vendor.AMD),
                           patched=frozenset({"avic_sanitize"}))
        vcpu = hv.create_vcpu()
        run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
        result = TestBug5AvicCorruption._run_64bit_l2_then_clear_pg(
            self, hv, vcpu)
        assert result.level == 2
        assert not hv.sanitizer_events


class TestBug6VgifAssertion:
    def test_invalid_cr4_with_clgi(self, xen_amd):
        hv, vcpu = xen_amd
        vmcb = golden_vmcb()
        vmcb.write(SF.CR4, 1 << 31)  # reserved CR4 bit
        hv.memory.put_vmcb(VMCB12, vmcb)
        run(hv, vcpu, "clgi")  # the standard pre-vmrun step
        result = run(hv, vcpu, "vmrun", addr=VMCB12)
        assert "vmrun failed" in result.detail
        assertions = [e for e in hv.sanitizer_events
                      if e.kind is SanitizerKind.ASSERTION]
        assert assertions and "vgif" in assertions[0].message

    def test_no_assertion_with_gif_set(self, xen_amd):
        hv, vcpu = xen_amd
        vmcb = golden_vmcb()
        vmcb.write(SF.CR4, 1 << 31)
        hv.memory.put_vmcb(VMCB12, vmcb)
        run(hv, vcpu, "stgi")
        run(hv, vcpu, "vmrun", addr=VMCB12)
        assert not any(e.kind is SanitizerKind.ASSERTION
                       for e in hv.sanitizer_events)

    def test_no_assertion_without_vgif_support(self):
        config = VcpuConfig.default(Vendor.AMD)
        config.features["vgif"] = False
        hv = XenHypervisor(config)
        vcpu = hv.create_vcpu()
        run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
        vmcb = golden_vmcb()
        vmcb.write(SF.CR4, 1 << 31)
        hv.memory.put_vmcb(VMCB12, vmcb)
        run(hv, vcpu, "clgi")
        run(hv, vcpu, "vmrun", addr=VMCB12)
        assert not hv.sanitizer_events

    def test_vgif_inject_patch(self):
        hv = XenHypervisor(VcpuConfig.default(Vendor.AMD),
                           patched=frozenset({"vgif_inject"}))
        vcpu = hv.create_vcpu()
        run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
        vmcb = golden_vmcb()
        vmcb.write(SF.CR4, 1 << 31)
        hv.memory.put_vmcb(VMCB12, vmcb)
        run(hv, vcpu, "clgi")
        run(hv, vcpu, "vmrun", addr=VMCB12)
        assert not hv.sanitizer_events
