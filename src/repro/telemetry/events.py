"""Structured JSONL event streams (``--telemetry full``).

Each worker appends to its own ``<root>/worker-NNN/events.jsonl`` —
append-only and single-writer, so no cross-process coordination is
needed and a worker restarting from a checkpoint just keeps appending.
The orchestrator merges the per-worker files into ``<root>/events.jsonl``
at the end of the campaign (a time-ordered merge of already-ordered
streams).

Timestamps are **monotonic-relative** (seconds since the stream
opened), never wall clock: an NTP step mid-campaign must not reorder or
stretch the event timeline. Cross-worker timestamps are therefore only
comparable per worker — which is all a per-phase breakdown needs.

The reader side tolerates whatever a crash mid-append can leave behind:
a torn final line is skipped, not raised on.
"""

from __future__ import annotations

import heapq
import json
import time
from pathlib import Path

EVENTS_NAME = "events.jsonl"


def worker_events_path(root: Path, shard) -> Path:
    if shard is None:
        return Path(root) / "events-campaign.jsonl"
    return Path(root) / f"worker-{shard:03d}" / EVENTS_NAME


def merged_events_path(root: Path) -> Path:
    return Path(root) / EVENTS_NAME


class EventStream:
    """Per-process JSONL event writer, one file per shard."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._files: dict = {}
        self._t0 = time.perf_counter()

    def emit(self, shard, name: str, **fields) -> None:
        record = {"t": round(time.perf_counter() - self._t0, 6),
                  "w": shard, "ev": name}
        record.update(fields)
        try:
            handle = self._files.get(shard)
            if handle is None:
                path = worker_events_path(self.root, shard)
                path.parent.mkdir(parents=True, exist_ok=True)
                handle = self._files[shard] = open(path, "a")
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass  # observability must never take the worker down

    def flush(self) -> None:
        for handle in self._files.values():
            try:
                handle.flush()
            except OSError:
                pass

    def close(self) -> None:
        for handle in self._files.values():
            try:
                handle.close()
            except OSError:
                pass
        self._files.clear()


def read_events(path: Path) -> list:
    """Parse one JSONL stream, skipping torn or garbled lines."""
    events = []
    try:
        raw = Path(path).read_text()
    except OSError:
        return events
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail from a crash mid-append
        if isinstance(record, dict):
            events.append(record)
    return events


def merge_events(root: Path) -> Path:
    """Merge every per-worker stream into ``<root>/events.jsonl``.

    Per-worker streams are already time-ordered; the merge is a k-way
    heap merge on the monotonic-relative timestamp (ties broken by
    worker index for a stable result). Returns the merged path; an
    existing merged file is rewritten, so re-merging is idempotent.
    """
    root = Path(root)
    streams = []
    campaign = root / "events-campaign.jsonl"
    if campaign.exists():
        streams.append(read_events(campaign))
    for worker_dir in sorted(root.glob("worker-*")):
        path = worker_dir / EVENTS_NAME
        if path.exists():
            streams.append(read_events(path))
    merged = heapq.merge(
        *streams,
        key=lambda r: (r.get("t", 0.0),
                       -1 if r.get("w") is None else r.get("w")))
    out = merged_events_path(root)
    with open(out, "w") as handle:
        for record in merged:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return out
