#!/usr/bin/env python3
"""Reproduce CVE-2023-30456 deterministically, then fuzz for it.

The paper's first KVM finding (§5.5.1): with EPT disabled, a VMCS12 that
sets the "IA-32e mode guest" VM-entry control while leaving guest
CR4.PAE = 0 passes both the hardware (which silently assumes PAE) and
pre-fix KVM's software checks — but KVM's shadow page walker then
interprets CR4.PAE literally and indexes its 4-entry PDPTE cache with
long-mode address bits. UBSAN reports the out-of-bounds write.

Part 1 builds the trigger state by hand and walks it through the stack.
Part 2 shows the patched KVM rejecting the same state.
Part 3 lets the fuzzer find the condition on its own.
"""

from repro import NecoFuzz, Vendor
from repro.arch.registers import Cr4
from repro.hypervisors import GuestInstruction, KvmHypervisor, VcpuConfig
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F

VMXON, VMCS12 = 0x1000, 0x3000


def launch(hv, vcpu, vmcs12):
    run = lambda m, **o: hv.execute(vcpu, GuestInstruction(m, o))
    run("vmxon", addr=VMXON)
    run("vmclear", addr=VMCS12)
    run("vmptrld", addr=VMCS12)
    for spec, value in vmcs12.fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            run("vmwrite", field=spec.encoding, value=value)
    return run("vmlaunch")


def trigger_state(hv):
    vmcs = golden_vmcs(hv.nested_vmx.caps)  # IA-32e guest by default
    vmcs.write(F.GUEST_CR4, vmcs.read(F.GUEST_CR4) & ~Cr4.PAE)  # the lie
    vmcs.write(F.GUEST_RIP, 0x7FFF_FFFF_F000)  # bits 38:30 = 511
    return vmcs


def main() -> None:
    config = VcpuConfig.default(Vendor.INTEL)
    config.features["ept"] = False  # the vCPU configurator's contribution

    print("=== Part 1: manual trigger against unpatched KVM (Linux 6.2) ===")
    hv = KvmHypervisor(config)
    vcpu = hv.create_vcpu()
    result = launch(hv, vcpu, trigger_state(hv))
    print(f"vmlaunch: {result.detail} (L{result.level})")
    for event in hv.sanitizer_events:
        print(f"  {event}")
    assert any(e.kind.value == "UBSAN" for e in hv.sanitizer_events)

    print("\n=== Part 2: the fix (commit 112e660, adds the consistency "
          "check) ===")
    hv = KvmHypervisor(config, patched=frozenset({"cr4_pae_consistency"}))
    vcpu = hv.create_vcpu()
    result = launch(hv, vcpu, trigger_state(hv))
    print(f"vmlaunch: {result.detail}")
    print(f"  sanitizer events: {len(hv.sanitizer_events)} (expected 0)")

    print("\n=== Part 3: letting NecoFuzz find it (this is the slow bit) ===")
    campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=23)
    budget, chunk = 14000, 1000
    while campaign.engine.stats.iterations < budget:
        campaign.run(iterations=chunk)
        hits = [r for r in campaign.agent.reports.reports
                if r.anomaly.method.value == "UBSAN"]
        print(f"  {campaign.engine.stats.iterations:>6} cases, "
              f"coverage {100 * campaign.agent.coverage_fraction:.1f}%, "
              f"UBSAN findings: {len(hits)}")
        if hits:
            report = hits[0]
            print(f"\nfound at iteration {report.iteration}:")
            print(f"  {report.anomaly.message}")
            print(f"  vCPU config: {report.command_line.split('&&')[0].strip()}")
            break
    else:
        print("not found in this budget — rerun with a different seed")


if __name__ == "__main__":
    main()
