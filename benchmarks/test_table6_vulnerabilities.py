"""Table 6: previously-unknown vulnerabilities across three hypervisors.

Runs full fuzzing campaigns against the unpatched KVM / Xen / VirtualBox
models and checks that all six of the paper's findings are rediscovered
with their Table-6 detection methods:

  #1 KVM/Intel      VM-state handling flaw   UBSAN      (CVE-2023-30456)
  #2 VirtualBox     VM-state handling flaw   VM crash   (CVE-2024-21106)
  #3 KVM/Intel+AMD  page-table handling flaw Assertion
  #4 Xen/Intel      VM-state handling flaw   Host crash
  #5 Xen/AMD        VM-state handling flaw   Assertion  (AVIC_NOACCEL)
  #6 Xen/AMD        VM-state handling flaw   Assertion  (vGIF inject)

Campaigns stop early once their targets are found; the worst-case budget
is the bug-#1 hunt, whose trigger needs a clean single-bit CR4.PAE flip
plus an ept=0 configuration.
"""

import pytest

from common import BenchReport
from repro import NecoFuzz, Vendor

#: (hypervisor, vendor, budget, {expected signature: table-6 bug id})
HUNTS = (
    ("kvm", Vendor.INTEL, 14000, {
        "UBSAN@nested_vmx.load_pdptrs": "#1 CVE-2023-30456",
        "Assertion@nested_ept_load_root": "#3 (Intel)",
    }),
    ("kvm", Vendor.AMD, 2000, {
        "Assertion@nested_svm_load_ncr3": "#3 (AMD)",
    }),
    ("xen", Vendor.INTEL, 2000, {
        "Host Crash@xen": "#4 wait-for-SIPI",
    }),
    ("xen", Vendor.AMD, 3000, {
        "Assertion@nsvm_vmexit_handler": "#5 AVIC_NOACCEL",
        "Assertion@nsvm_vcpu_vmexit_inject": "#6 vGIF",
    }),
    ("virtualbox", Vendor.INTEL, 4000, {
        "VM Crash@virtualbox": "#2 CVE-2024-21106",
    }),
)

CHUNK = 500


def _hunt(hypervisor: str, vendor: Vendor, budget: int,
          expected: dict[str, str]):
    campaign = NecoFuzz(hypervisor=hypervisor, vendor=vendor, seed=23)
    while campaign.engine.stats.iterations < budget:
        campaign.run(iterations=min(CHUNK,
                                    budget - campaign.engine.stats.iterations))
        found = campaign.agent.reports.unique_locations()
        if set(expected) <= found:
            break
    return campaign


@pytest.mark.benchmark(group="table6")
def test_table6_vulnerability_discovery(benchmark, capsys):
    box = {}

    def experiment():
        box["campaigns"] = [
            (hv, vendor, expected, _hunt(hv, vendor, budget, expected))
            for hv, vendor, budget, expected in HUNTS
        ]
        return box["campaigns"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = BenchReport("Table 6: discovered vulnerabilities")
    report.add(f"{'Bug':<22} {'Hypervisor':<12} {'CPU':<6} "
               f"{'Detection':<12} {'Found@iter':>10}")
    missing = []
    for hv, vendor, expected, campaign in box["campaigns"]:
        found = {r.anomaly.signature(): r for r in campaign.agent.reports.reports}
        for signature, bug_id in expected.items():
            if signature in found:
                r = found[signature]
                report.add(f"{bug_id:<22} {hv:<12} {vendor.value:<6} "
                           f"{r.anomaly.method.value:<12} {r.iteration:>10}")
            else:
                missing.append((bug_id, hv, vendor.value))
                report.add(f"{bug_id:<22} {hv:<12} {vendor.value:<6} "
                           f"{'NOT FOUND':<12} {'-':>10}")
    report.emit(capsys)

    assert not missing, f"undiscovered bugs: {missing}"

    # Detection-method fidelity (Table 6's "Detection Method" column).
    all_reports = [r for _, _, _, campaign in box["campaigns"]
                   for r in campaign.agent.reports.reports]
    methods = {r.anomaly.signature(): r.anomaly.method.value
               for r in all_reports}
    assert methods["UBSAN@nested_vmx.load_pdptrs"] == "UBSAN"
    assert methods["VM Crash@virtualbox"] == "VM Crash"
    assert methods["Host Crash@xen"] == "Host Crash"
    assert methods["Assertion@nsvm_vcpu_vmexit_inject"] == "Assertion"
