"""Tests for the coverage-guided engine and seed queue."""

from repro.coverage.bitmap import CoverageBitmap
from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE
from repro.fuzzer.queue import SeedQueue
from repro.fuzzer.rng import Rng


def make_engine(execute, *, guided=True, seed=1):
    engine = FuzzEngine(execute=execute, rng=Rng(seed), coverage_guided=guided)
    engine.add_seed(bytes(INPUT_SIZE))
    return engine


def feedback_with_edges(*edges):
    bitmap = CoverageBitmap()
    for prev, cur in edges:
        bitmap.record_edge(prev, cur)
    return RunFeedback(bitmap=bitmap)


class TestQueueGrowth:
    def test_new_coverage_enqueues(self):
        counter = {"n": 0}

        def execute(fi):
            counter["n"] += 1
            # Widely spaced ids avoid AFL's (prev>>1)^cur hash collisions.
            return feedback_with_edges((counter["n"] * 64, counter["n"] * 64 + 1))

        engine = make_engine(execute)
        engine.run(5)
        assert engine.stats.queue_adds == 5
        assert len(engine.queue) == 6  # seed + 5 findings

    def test_repeated_coverage_not_enqueued(self):
        def execute(fi):
            return feedback_with_edges((1, 2))

        engine = make_engine(execute)
        engine.run(10)
        assert engine.stats.queue_adds == 1

    def test_blackbox_mode_ignores_feedback(self):
        counter = {"n": 0}

        def execute(fi):
            counter["n"] += 1
            return feedback_with_edges((counter["n"], counter["n"] + 1))

        engine = make_engine(execute, guided=False)
        engine.run(10)
        assert engine.stats.queue_adds == 0
        assert len(engine.queue) == 1
        # But the map still accumulates for external measurement.
        assert engine.virgin.density() > 0


class TestCrashHandling:
    def test_crashes_recorded(self):
        def execute(fi):
            return RunFeedback(bitmap=CoverageBitmap(), crashed=True,
                               anomaly="boom")

        engine = make_engine(execute)
        engine.run(3)
        assert engine.stats.crashes == 3
        assert engine.stats.anomalies == 3
        assert len(engine.crash_inputs) == 3
        assert engine.crash_inputs[0][1] == "boom"

    def test_anomaly_without_crash(self):
        def execute(fi):
            return RunFeedback(bitmap=CoverageBitmap(), anomaly="warn")

        engine = make_engine(execute)
        engine.run(2)
        assert engine.stats.crashes == 0
        assert engine.stats.anomalies == 2


class TestDeterminism:
    def test_same_seed_same_inputs(self):
        seen_a, seen_b = [], []

        def make_execute(sink):
            def execute(fi):
                sink.append(fi.data)
                return feedback_with_edges()
            return execute

        make_engine(make_execute(seen_a), seed=42).run(5)
        make_engine(make_execute(seen_b), seed=42).run(5)
        assert seen_a == seen_b

    def test_different_seed_different_inputs(self):
        seen_a, seen_b = [], []

        def make_execute(sink):
            def execute(fi):
                sink.append(fi.data)
                return feedback_with_edges()
            return execute

        make_engine(make_execute(seen_a), seed=1).run(5)
        make_engine(make_execute(seen_b), seed=2).run(5)
        assert seen_a != seen_b

    def test_inputs_are_canonical_size(self):
        def execute(fi):
            assert len(fi.data) == INPUT_SIZE
            return feedback_with_edges()

        make_engine(execute).run(5)


class TestSeedQueue:
    def test_pick_from_empty_rejected(self):
        import pytest

        with pytest.raises(RuntimeError):
            SeedQueue().pick(Rng(1))

    def test_favored_preferred(self):
        queue = SeedQueue()
        queue.add_seed(b"seed")
        favored = queue.add_finding(b"finding", 1, new_bits=2)
        assert favored.favored
        picks = [queue.pick(Rng(i)) for i in range(20)]
        assert sum(1 for p in picks if p is favored) > 10

    def test_bucket_finding_not_favored(self):
        queue = SeedQueue()
        entry = queue.add_finding(b"x", 1, new_bits=1)
        assert not entry.favored

    def test_pick_other_differs_when_possible(self):
        queue = SeedQueue()
        a = queue.add_seed(b"a")
        queue.add_seed(b"b")
        rng = Rng(3)
        other = queue.pick_other(rng, a)
        assert other is not a or len(queue) == 1

    def test_pick_other_single_entry(self):
        queue = SeedQueue()
        a = queue.add_seed(b"a")
        assert queue.pick_other(Rng(1), a) is a


class TestCorpusPersistence:
    def _novel_execute(self):
        counter = {"n": 0}

        def execute(fi):
            counter["n"] += 1
            return feedback_with_edges((counter["n"] * 64,
                                        counter["n"] * 64 + 1))

        return execute

    def test_round_trip_preserves_queue(self, tmp_path):
        engine = make_engine(self._novel_execute())
        engine.run(6)
        saved = engine.save_corpus(tmp_path)
        assert saved == len(engine.queue)

        resumed = make_engine(self._novel_execute(), seed=2)
        before = len(resumed.queue)
        loaded = resumed.load_corpus(tmp_path)
        assert loaded == saved
        # Sorted filenames == queue-index order, so data round-trips
        # in the exact original order after the resumed engine's seeds.
        assert ([e.data for e in resumed.queue.entries[before:]]
                == [e.data for e in engine.queue.entries])

    def test_indices_stable_across_incremental_saves(self, tmp_path):
        engine = make_engine(self._novel_execute())
        engine.run(3)
        engine.save_corpus(tmp_path)
        first = {p.name: p.read_bytes() for p in tmp_path.iterdir()}
        engine.run(3)
        engine.save_corpus(tmp_path)
        second = {p.name: p.read_bytes() for p in tmp_path.iterdir()}
        assert set(first) <= set(second)
        assert all(second[name] == data for name, data in first.items())

    def test_import_case_keeps_novel_and_skips_known(self):
        engine = make_engine(self._novel_execute())
        adds = engine.stats.queue_adds
        new_bits = engine.import_case(b"\x01" * INPUT_SIZE)
        assert new_bits
        entry = engine.queue.entries[-1]
        assert entry.imported
        assert engine.stats.imported == 1
        assert engine.stats.iterations == 0      # no mutation budget spent
        assert engine.stats.queue_adds == adds   # tracked separately

        def replay(fi):
            return feedback_with_edges((64, 65))  # same edge as case 1

        engine.execute = replay
        queue_len = len(engine.queue)
        assert engine.import_case(b"\x02" * INPUT_SIZE) == 0
        assert len(engine.queue) == queue_len
        assert engine.stats.imported == 2

    def test_save_corpus_can_exclude_imported(self, tmp_path):
        engine = make_engine(self._novel_execute())
        engine.run(2)
        engine.import_case(b"\x03" * INPUT_SIZE)
        assert engine.queue.entries[-1].imported
        local_only = engine.save_corpus(tmp_path / "local",
                                        exclude_imported=True)
        everything = engine.save_corpus(tmp_path / "all")
        assert everything == local_only + 1
