"""Unit and property tests for the VMCB model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.registers import Cr0, Efer
from repro.svm import fields as SF
from repro.svm.vmcb import Vmcb


class TestFieldAccess:
    def test_default_zero(self):
        assert Vmcb().read(SF.EFER) == 0

    def test_write_read(self):
        vmcb = Vmcb()
        vmcb.write(SF.RIP, 0x1000)
        assert vmcb.read(SF.RIP) == 0x1000

    def test_write_truncates(self):
        vmcb = Vmcb()
        vmcb.write("cs_selector", 0x12345)  # 16-bit field
        assert vmcb.read("cs_selector") == 0x2345

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            Vmcb().read("bogus")
        with pytest.raises(KeyError):
            Vmcb().write("bogus", 1)

    def test_item_syntax(self):
        vmcb = Vmcb()
        vmcb[SF.RAX] = 3
        assert vmcb[SF.RAX] == 3


class TestPredicates:
    def test_nested_paging(self):
        vmcb = Vmcb()
        assert not vmcb.nested_paging
        vmcb.write(SF.NP_CONTROL, SF.NpControl.NP_ENABLE)
        assert vmcb.nested_paging

    def test_long_mode_active(self):
        vmcb = Vmcb()
        vmcb.write(SF.EFER, Efer.LMA)
        assert vmcb.long_mode_active

    def test_paging_enabled(self):
        vmcb = Vmcb()
        vmcb.write(SF.CR0, Cr0.PG)
        assert vmcb.paging_enabled

    def test_vgif_bits(self):
        vmcb = Vmcb()
        vmcb.write(SF.VINTR_CONTROL, SF.VintrControl.V_GIF_ENABLE)
        assert vmcb.vgif_enabled
        assert not vmcb.vgif_value
        vmcb.write(SF.VINTR_CONTROL,
                   SF.VintrControl.V_GIF_ENABLE | SF.VintrControl.V_GIF)
        assert vmcb.vgif_value

    def test_avic_bit(self):
        vmcb = Vmcb()
        assert not vmcb.avic_enabled
        vmcb.write(SF.VINTR_CONTROL, SF.VintrControl.AVIC_ENABLE)
        assert vmcb.avic_enabled


class TestWholeStructure:
    def test_layout_has_control_and_save_areas(self):
        areas = {spec.area for spec in SF.ALL_FIELDS}
        assert areas == {SF.VmcbArea.CONTROL, SF.VmcbArea.SAVE}

    def test_segment_fields_present(self):
        for seg in SF.SEGMENT_NAMES:
            for part in ("selector", "attrib", "limit", "base"):
                assert f"{seg}_{part}" in SF.SPEC_BY_NAME

    def test_copy_independent(self):
        a = Vmcb()
        b = a.copy()
        b.write(SF.RIP, 9)
        assert a.read(SF.RIP) == 0

    def test_diff(self):
        a, b = Vmcb(), Vmcb()
        b.write(SF.EFER, 1)
        assert [spec.name for spec, _, _ in a.diff(b)] == ["efer"]

    def test_serialize_roundtrip_default(self):
        raw = Vmcb().serialize()
        assert Vmcb.deserialize(raw) == Vmcb()

    def test_deserialize_short_rejected(self):
        with pytest.raises(ValueError):
            Vmcb.deserialize(b"\x01" * 8)

    @given(st.binary(min_size=SF.LAYOUT_BYTES, max_size=SF.LAYOUT_BYTES))
    @settings(max_examples=50, deadline=None)
    def test_serialize_deserialize_roundtrip(self, raw):
        vmcb = Vmcb.deserialize(raw)
        assert Vmcb.deserialize(vmcb.serialize()) == vmcb

    @given(st.binary(min_size=SF.LAYOUT_BYTES, max_size=SF.LAYOUT_BYTES))
    @settings(max_examples=25, deadline=None)
    def test_hamming_self_zero(self, raw):
        vmcb = Vmcb.deserialize(raw)
        assert vmcb.hamming(vmcb.copy()) == 0
