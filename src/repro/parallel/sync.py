"""Corpus sync between campaign workers (AFL's ``sync_fuzzers`` shape).

Each worker owns ``<root>/worker-NNN/queue/``, an AFL-style queue
directory written with :meth:`FuzzEngine.save_corpus`. Partners read
each other's directories incrementally: the queue is append-only and
indices are stable, so remembering which filenames were already imported
is enough to run each entry exactly once.  Only locally discovered
entries are exported (``exclude_imported=True``) — re-exporting imports
would ping-pong cases between workers forever.

Robustness contract: every export is atomic (``*.tmp`` + ``os.replace``
inside ``save_corpus``), and the import side tolerates whatever a
partner crashing mid-write can leave behind — ``*.tmp`` orphans are
never listed, and entries that fail to decode are skipped and counted
(``stats.import_skipped``) rather than raised on. A skipped entry is
*not* marked as seen: the owner rewrites its whole queue on every
export, so a truncated entry heals on the next sync round and is
imported then.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.fuzzer.engine import FuzzEngine


def worker_queue_dir(root: Path, index: int) -> Path:
    """The queue directory one worker exports to."""
    return Path(root) / f"worker-{index:03d}" / "queue"


def _corrupt(queue_dir: Path, spec) -> None:
    """Apply one injected sync-corruption shape (chaos testing).

    Writes bypass the atomic path on purpose: the fault simulates the
    partial state a crash mid-write would leave *without* atomicity.
    """
    entries = sorted(p for p in queue_dir.iterdir()
                     if p.is_file() and p.name.startswith("id:"))
    if spec.corrupt == "truncate" and entries:
        victim = entries[-1]
        victim.write_bytes(victim.read_bytes()[:17])
    elif spec.corrupt == "garbage" and entries:
        entries[-1].write_bytes(b'{"input": not-json')
    elif spec.corrupt == "tmp_orphan":
        (queue_dir / "id:999999,found:0.tmp").write_bytes(b"partial")


@dataclass
class SyncDirectory:
    """One worker's view of the shared sync directory."""

    root: Path
    worker: int
    total_workers: int
    #: Per-partner filenames already imported (valid entries only, so a
    #: corrupt entry is retried once its owner rewrites it).
    seen: dict[int, set[str]] = field(default_factory=dict)
    #: Export rounds completed (drives ``corrupt_sync`` fault timing).
    exports: int = 0

    def export(self, engine: FuzzEngine) -> int:
        """Publish the worker's locally found queue entries."""
        written = engine.save_corpus(worker_queue_dir(self.root, self.worker),
                                     exclude_imported=True)
        self.exports += 1
        plan = faults.active()
        if plan is not None:
            spec = plan.take_sync_fault(self.worker, self.exports)
            if spec is not None:
                plan.record("corrupt_sync", self.worker, spec.corrupt)
                _corrupt(worker_queue_dir(self.root, self.worker), spec)
        return written

    def import_new(self, engine: FuzzEngine) -> int:
        """Run every not-yet-seen partner entry through *engine*.

        Returns the number of cases imported (executed), whether or not
        they proved novel enough to join the local queue. Entries that
        fail to decode are skipped (counted by the engine) and retried
        on a later round, after the owner's next export heals them.
        """
        imported = 0
        for partner in range(self.total_workers):
            if partner == self.worker:
                continue
            queue_dir = worker_queue_dir(self.root, partner)
            if not queue_dir.is_dir():
                continue
            seen = self.seen.setdefault(partner, set())
            files = sorted(p for p in queue_dir.iterdir()
                           if p.is_file() and p.name.startswith("id:")
                           and not p.name.endswith(".tmp"))
            for path in files:
                if path.name in seen:
                    continue
                try:
                    payload = path.read_bytes()
                except OSError:
                    engine.stats.import_skipped += 1
                    continue
                if engine.import_case(payload) is None:
                    continue  # corrupt entry: counted, retried later
                seen.add(path.name)
                imported += 1
        return imported
