"""Tests for the simulated KVM hypervisor (nested VMX/SVM emulation)."""

import pytest

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_EFER, IA32_KERNEL_GS_BASE, MsrEntry
from repro.arch.registers import Cr4, Efer
from repro.hypervisors import GuestInstruction, KvmHypervisor, VcpuConfig
from repro.hypervisors.base import SanitizerKind
from repro.svm import fields as SF
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import ActivityState
from repro.vmx.exit_reasons import ExitReason

VMXON = 0x1000
VMCS12 = 0x3000
VMCB12 = 0x3000


def run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


def write_vmcs12(hv, vcpu, vmcs):
    for spec, value in vmcs.fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)


@pytest.fixture
def intel():
    hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
    return hv, hv.create_vcpu()


@pytest.fixture
def amd():
    hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD))
    vcpu = hv.create_vcpu()
    run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
    return hv, vcpu


def launch_l2(hv, vcpu, vmcs=None):
    run(hv, vcpu, "vmxon", addr=VMXON)
    run(hv, vcpu, "vmclear", addr=VMCS12)
    run(hv, vcpu, "vmptrld", addr=VMCS12)
    write_vmcs12(hv, vcpu, vmcs or golden_vmcs(hv.nested_vmx.caps))
    return run(hv, vcpu, "vmlaunch")


class TestNestedVmxLifecycle:
    def test_full_launch_reaches_l2(self, intel):
        hv, vcpu = intel
        result = launch_l2(hv, vcpu)
        assert result.ok and result.level == 2
        assert vcpu.level == 2

    def test_vmxon_requires_cr4_vmxe(self, intel):
        hv, vcpu = intel
        vcpu.vmx.cr4 = 0
        assert not run(hv, vcpu, "vmxon", addr=VMXON).ok

    def test_vmlaunch_without_vmxon_faults(self, intel):
        hv, vcpu = intel
        assert not run(hv, vcpu, "vmlaunch").ok

    def test_double_launch_vmfails(self, intel):
        hv, vcpu = intel
        launch_l2(hv, vcpu)
        result = run(hv, vcpu, "vmlaunch")
        assert "VMfail" in result.detail

    def test_l2_exit_reflects_to_l1(self, intel):
        hv, vcpu = intel
        launch_l2(hv, vcpu)
        result = run(hv, vcpu, "cpuid", level=2)
        assert result.level == 1
        assert result.exit_reason == int(ExitReason.CPUID)
        vmcs12 = hv.memory.get_vmcs(VMCS12)
        assert vmcs12.read(F.VM_EXIT_REASON) == int(ExitReason.CPUID)

    def test_vmresume_reenters_l2(self, intel):
        hv, vcpu = intel
        launch_l2(hv, vcpu)
        run(hv, vcpu, "cpuid", level=2)
        result = run(hv, vcpu, "vmresume")
        assert result.level == 2

    def test_msr_bitmap_decides_reflection(self, intel):
        hv, vcpu = intel
        from repro.vmx.controls import ProcBased

        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
                   | ProcBased.USE_MSR_BITMAPS)
        vmcs.write(F.MSR_BITMAP, 0x12000)
        launch_l2(hv, vcpu, vmcs)
        # Even-indexed MSR -> not in the modelled bitmap -> L0 handles.
        result = run(hv, vcpu, "rdmsr", level=2, msr=0x10)
        assert result.level == 2
        # Odd-indexed MSR -> trapped by L1.
        result = run(hv, vcpu, "rdmsr", level=2, msr=0x11)
        assert result.level == 1

    def test_l2_vmx_instruction_always_reflects(self, intel):
        hv, vcpu = intel
        launch_l2(hv, vcpu)
        result = run(hv, vcpu, "vmxon", level=2, addr=VMXON)
        assert result.level == 1
        assert result.exit_reason == int(ExitReason.VMXON)

    def test_activity_state_sanitized(self, intel):
        """KVM rejects auxiliary activity states (unlike Xen, bug #4)."""
        hv, vcpu = intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.WAIT_FOR_SIPI)
        result = launch_l2(hv, vcpu, vmcs)
        assert "entry failed" in result.detail
        assert result.exit_reason & (1 << 31)

    def test_isolation_rule_rejects_l0_pointers(self, intel):
        hv, vcpu = intel
        from repro.vmx.controls import ProcBased

        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
                   | ProcBased.USE_MSR_BITMAPS)
        vmcs.write(F.MSR_BITMAP, 0xF0000000)  # L0-reserved window
        result = launch_l2(hv, vcpu, vmcs)
        assert "VMfailValid" in result.detail


class TestKvmCanonicalMsrCheck:
    def test_non_canonical_msr_load_fails_entry(self, intel):
        """KVM validates canonicality correctly (§5.5.3's contrast with
        VirtualBox): entry fails cleanly with reason 34."""
        hv, vcpu = intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_COUNT, 1)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_ADDR, 0x15000)
        hv.memory.put_msr_area(0x15000, [
            MsrEntry(IA32_KERNEL_GS_BASE, 0x8000_0000_0000_0000)])
        result = launch_l2(hv, vcpu, vmcs)
        assert result.exit_reason & 0xFFFF == int(ExitReason.MSR_LOAD_FAIL)
        assert not hv.sanitizer_events  # no crash, clean rejection

    def test_unreadable_msr_area_fails_entry(self, intel):
        hv, vcpu = intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_COUNT, 1)
        # Outside guest RAM but not in the L0-reserved window (that
        # would trip the isolation check first).
        vmcs.write(F.VM_ENTRY_MSR_LOAD_ADDR, 0x20000000)
        result = launch_l2(hv, vcpu, vmcs)
        assert "not readable" in result.detail

    def test_l0_reserved_msr_area_hits_isolation_check(self, intel):
        hv, vcpu = intel
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_COUNT, 1)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_ADDR, 0xF0000000)
        result = launch_l2(hv, vcpu, vmcs)
        assert "VMfailValid" in result.detail


class TestBug1Cve202330456:
    def _cve_state(self, hv):
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_CR4, vmcs.read(F.GUEST_CR4) & ~Cr4.PAE)
        vmcs.write(F.GUEST_RIP, 0x7FFF_FFFF_F000)  # large walk address
        return vmcs

    def test_triggers_with_ept_disabled(self):
        config = VcpuConfig.default(Vendor.INTEL)
        config.features["ept"] = False
        hv = KvmHypervisor(config)
        vcpu = hv.create_vcpu()
        result = launch_l2(hv, vcpu, self._cve_state(hv))
        assert result.ok
        ubsan = [e for e in hv.sanitizer_events
                 if e.kind is SanitizerKind.UBSAN]
        assert ubsan and "out-of-bounds" in ubsan[0].message

    def test_l2_page_walk_also_triggers(self):
        config = VcpuConfig.default(Vendor.INTEL)
        config.features["ept"] = False
        hv = KvmHypervisor(config)
        vcpu = hv.create_vcpu()
        vmcs = self._cve_state(hv)
        vmcs.write(F.GUEST_RIP, 0x1000)  # small RIP: entry walk is clean
        launch_l2(hv, vcpu, vmcs)
        hv.sanitizer_events.clear()
        run(hv, vcpu, "memaccess", level=2, value=0x7FFF_0000_0000)
        assert any(e.kind is SanitizerKind.UBSAN for e in hv.sanitizer_events)

    def test_not_triggered_with_ept_enabled(self, intel):
        hv, vcpu = intel
        launch_l2(hv, vcpu, self._cve_state(hv))
        assert not any(e.kind is SanitizerKind.UBSAN
                       for e in hv.sanitizer_events)

    def test_patched_kvm_rejects_state(self):
        config = VcpuConfig.default(Vendor.INTEL)
        config.features["ept"] = False
        hv = KvmHypervisor(config, patched=frozenset({"cr4_pae_consistency"}))
        vcpu = hv.create_vcpu()
        result = launch_l2(hv, vcpu, self._cve_state(hv))
        assert "entry failed" in result.detail
        assert not hv.sanitizer_events


class TestBug3ShadowRoot:
    def _bad_eptp_state(self, hv):
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        # Format-valid EPTP pointing at unbacked memory.
        vmcs.write(F.EPT_POINTER, 0xF0000000 | 6 | (3 << 3))
        return vmcs

    def test_spurious_triple_fault(self, intel):
        hv, vcpu = intel
        result = launch_l2(hv, vcpu, self._bad_eptp_state(hv))
        assert result.exit_reason == int(ExitReason.TRIPLE_FAULT)
        assert any(e.kind is SanitizerKind.ASSERTION
                   for e in hv.sanitizer_events)

    def test_dummy_root_patch_fixes_it(self):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL),
                           patched=frozenset({"dummy_root"}))
        vcpu = hv.create_vcpu()
        result = launch_l2(hv, vcpu, self._bad_eptp_state(hv))
        assert result.level == 2  # L2 runs on the zero-page dummy root
        assert not hv.sanitizer_events
        assert hv.nested_vmx.mmu.root.dummy


class TestNestedSvm:
    def test_vmrun_reaches_l2(self, amd):
        hv, vcpu = amd
        hv.memory.put_vmcb(VMCB12, golden_vmcb())
        result = run(hv, vcpu, "vmrun", addr=VMCB12)
        assert result.level == 2

    def test_vmrun_requires_svme(self):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD))
        vcpu = hv.create_vcpu()
        hv.memory.put_vmcb(VMCB12, golden_vmcb())
        assert not run(hv, vcpu, "vmrun", addr=VMCB12).ok

    def test_invalid_vmcb_fails_with_exit_code(self, amd):
        hv, vcpu = amd
        vmcb = golden_vmcb()
        vmcb.write(SF.GUEST_ASID, 0)
        hv.memory.put_vmcb(VMCB12, vmcb)
        result = run(hv, vcpu, "vmrun", addr=VMCB12)
        assert "vmrun failed" in result.detail
        from repro.svm.exit_codes import SvmExitCode
        assert vmcb.read(SF.EXIT_CODE) == int(SvmExitCode.INVALID)

    def test_l2_exit_reflection(self, amd):
        hv, vcpu = amd
        hv.memory.put_vmcb(VMCB12, golden_vmcb())
        run(hv, vcpu, "vmrun", addr=VMCB12)
        result = run(hv, vcpu, "cpuid", level=2)
        assert result.level == 1

    def test_bug3_amd_invalid_ncr3(self, amd):
        hv, vcpu = amd
        vmcb = golden_vmcb()
        vmcb.write(SF.N_CR3, 0xF0000000)  # unbacked
        hv.memory.put_vmcb(VMCB12, vmcb)
        result = run(hv, vcpu, "vmrun", addr=VMCB12)
        assert "spurious shutdown" in result.detail
        assert any(e.kind is SanitizerKind.ASSERTION
                   for e in hv.sanitizer_events)

    def test_bug3_amd_dummy_root_patch(self):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD),
                           patched=frozenset({"dummy_root"}))
        vcpu = hv.create_vcpu()
        run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
        vmcb = golden_vmcb()
        vmcb.write(SF.N_CR3, 0xF0000000)
        hv.memory.put_vmcb(VMCB12, vmcb)
        result = run(hv, vcpu, "vmrun", addr=VMCB12)
        assert result.level == 2
        assert not hv.sanitizer_events

    def test_vmrun_works_under_clgi(self, amd):
        """The canonical clgi; vmrun; stgi sequence: GIF masks interrupt
        delivery but does not gate vmrun itself."""
        hv, vcpu = amd
        hv.memory.put_vmcb(VMCB12, golden_vmcb())
        run(hv, vcpu, "clgi")
        assert not vcpu.svm.gif
        assert run(hv, vcpu, "vmrun", addr=VMCB12).level == 2


class TestHostIoctlSurface:
    def test_nested_state_roundtrip(self, intel):
        hv, vcpu = intel
        launch_l2(hv, vcpu)
        blob = hv.nested_vmx.vmx_get_nested_state(vcpu.vmx)
        assert blob["vmxon"] and blob["guest_mode"]
        fresh = hv.create_vcpu()
        assert hv.nested_vmx.vmx_set_nested_state(fresh.vmx, blob) == 0
        assert fresh.vmx.guest_mode

    def test_set_nested_state_rejects_bad_blob(self, intel):
        hv, vcpu = intel
        assert hv.nested_vmx.vmx_set_nested_state(vcpu.vmx, {"format": "svm"}) == -22
        assert hv.nested_vmx.vmx_set_nested_state(
            vcpu.vmx, {"format": "vmx", "guest_mode": True}) == -22

    def test_hardware_setup(self, intel):
        hv, _ = intel
        assert hv.nested_vmx.nested_vmx_hardware_setup()

    def test_svm_nested_state_roundtrip(self, amd):
        hv, vcpu = amd
        hv.memory.put_vmcb(VMCB12, golden_vmcb())
        run(hv, vcpu, "vmrun", addr=VMCB12)
        blob = hv.nested_svm.svm_get_nested_state(vcpu.svm)
        fresh = hv.create_vcpu()
        assert hv.nested_svm.svm_set_nested_state(fresh.svm, blob) == 0
        assert fresh.svm.guest_mode


class TestModuleParams:
    def test_disabling_nested_blocks_vmx(self):
        config = VcpuConfig.default(Vendor.INTEL)
        config.features["nested"] = False
        hv = KvmHypervisor(config)
        vcpu = hv.create_vcpu()
        assert not run(hv, vcpu, "vmxon", addr=VMXON).ok

    def test_ept_param_shapes_l1_caps(self):
        from repro.vmx.controls import Secondary

        config = VcpuConfig.default(Vendor.INTEL)
        config.features["ept"] = False
        hv = KvmHypervisor(config)
        assert not hv.nested_vmx.caps.secondary.allowed1 & Secondary.ENABLE_EPT

    def test_cmdline_rendering(self):
        from repro.hypervisors.kvm.module import KvmModuleParams

        params = KvmModuleParams(ept=False)
        line = params.cmdline(Vendor.INTEL)
        assert "ept=0" in line and "nested=1" in line
