"""Engine robustness: case-boundary isolation and corrupt-entry imports."""

import json

import pytest

from repro.coverage.bitmap import CoverageBitmap
from repro.faults import WorkerKilled
from repro.fuzzer.crashes import CrashStore
from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE
from repro.fuzzer.rng import Rng


def _ok_feedback(_candidate=None):
    bitmap = CoverageBitmap()
    bitmap.record_edge(1, 2)
    return RunFeedback(bitmap=bitmap)


def _engine(execute):
    engine = FuzzEngine(execute=execute, rng=Rng(3))
    engine.add_seed(b"\x01" * INPUT_SIZE)
    return engine


class TestCaseIsolation:
    def test_escaping_exception_does_not_kill_the_loop(self):
        calls = {"n": 0}

        def execute(candidate):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ValueError("model blew up")
            return _ok_feedback()

        engine = _engine(execute)
        engine.run(5)
        assert engine.stats.iterations == 5
        assert engine.stats.case_exceptions == 1
        assert engine.stats.crashes >= 1

    def test_isolated_case_reported_as_crash_anomaly(self):
        def execute(candidate):
            raise KeyError("boom")

        engine = _engine(execute)
        feedback = engine.step()
        assert feedback.crashed
        assert "case-exception" in feedback.anomaly
        assert "KeyError" in feedback.anomaly

    def test_crash_store_receives_isolated_exceptions(self, tmp_path):
        def execute(candidate):
            raise KeyError("boom")

        engine = _engine(execute)
        engine.crashes = CrashStore(tmp_path, "kvm", "intel")
        engine.run(3)
        assert engine.stats.case_exceptions == 3
        assert len(engine.crashes) == 1  # one signature, deduplicated
        assert engine.crashes.total == 3
        assert len(list(tmp_path.glob("crash-*.json"))) == 1

    def test_worker_killed_passes_through_isolation(self):
        def execute(candidate):
            raise WorkerKilled("injected death")

        engine = _engine(execute)
        with pytest.raises(WorkerKilled):
            engine.step()


class TestImportCorruptionShapes:
    """One test per shape a partner crashing mid-write can leave."""

    def test_valid_raw_entry_imports(self):
        engine = _engine(_ok_feedback)
        assert engine.import_case(b"\x02" * INPUT_SIZE) is not None
        assert engine.stats.imported == 1
        assert engine.stats.import_skipped == 0

    def test_truncated_raw_entry_skipped(self):
        engine = _engine(_ok_feedback)
        assert engine.import_case(b"\x02" * 17) is None
        assert engine.stats.imported == 0
        assert engine.stats.import_skipped == 1

    def test_empty_entry_skipped(self):
        engine = _engine(_ok_feedback)
        assert engine.import_case(b"") is None
        assert engine.stats.import_skipped == 1

    def test_invalid_json_entry_skipped(self):
        engine = _engine(_ok_feedback)
        assert engine.import_case(b'{"input": not-json') is None
        assert engine.stats.import_skipped == 1

    def test_json_missing_input_field_skipped(self):
        engine = _engine(_ok_feedback)
        assert engine.import_case(json.dumps({"schema": 1}).encode()) is None
        assert engine.stats.import_skipped == 1

    def test_json_bad_hex_skipped(self):
        engine = _engine(_ok_feedback)
        payload = json.dumps({"input": "zz-not-hex"}).encode()
        assert engine.import_case(payload) is None
        assert engine.stats.import_skipped == 1

    def test_valid_json_reproducer_imports(self):
        engine = _engine(_ok_feedback)
        payload = json.dumps({"input": ("03" * INPUT_SIZE)}).encode()
        assert engine.import_case(payload) is not None
        assert engine.stats.imported == 1

    def test_skips_do_not_count_as_imports(self):
        engine = _engine(_ok_feedback)
        engine.import_case(b"short")
        engine.import_case(b"\x04" * INPUT_SIZE)
        assert engine.stats.imported == 1
        assert engine.stats.import_skipped == 1


class TestCorpusPersistence:
    def test_save_corpus_is_atomic_no_tmp_left(self, tmp_path):
        engine = _engine(_ok_feedback)
        engine.save_corpus(tmp_path)
        names = [p.name for p in tmp_path.iterdir()]
        assert names and not [n for n in names if n.endswith(".tmp")]

    def test_load_corpus_ignores_tmp_orphans(self, tmp_path):
        engine = _engine(_ok_feedback)
        engine.save_corpus(tmp_path)
        (tmp_path / "id:999999,found:0.tmp").write_bytes(b"partial")
        fresh = FuzzEngine(execute=_ok_feedback, rng=Rng(4))
        loaded = fresh.load_corpus(tmp_path)
        assert loaded == 1
