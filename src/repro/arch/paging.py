"""Page-table and EPT pointer models.

The nested-MMU code in the simulated hypervisors needs just enough paging
machinery to (a) validate EPT pointers / nested CR3 values, (b) perform
guest page walks in the modes the seeded bugs exercise, and (c) exhibit
the PAE-PDPTE array indexing that CVE-2023-30456 corrupts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.bits import extract, is_aligned

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

#: Maximum guest-physical address width we model (bits).
MAX_PHYSADDR_WIDTH = 46
PHYSADDR_MASK = (1 << MAX_PHYSADDR_WIDTH) - 1


class EptMemType:
    """EPT paging-structure memory types encoded in EPTP bits 2:0."""

    UNCACHEABLE = 0
    WRITE_BACK = 6
    VALID = frozenset({UNCACHEABLE, WRITE_BACK})


@dataclass(frozen=True)
class EptPointer:
    """Decoded EPTP (SDM 24.6.11)."""

    raw: int

    @property
    def memory_type(self) -> int:
        """EPT paging-structure memory type (EPTP bits 2:0)."""
        return extract(self.raw, 0, 2)

    @property
    def walk_length(self) -> int:
        """Encoded as (levels - 1) in bits 5:3."""
        return extract(self.raw, 3, 5) + 1

    @property
    def accessed_dirty(self) -> bool:
        """Accessed/dirty-flag enable (EPTP bit 6)."""
        return bool(extract(self.raw, 6, 6))

    @property
    def pml4_address(self) -> int:
        """Physical address of the EPT PML4 table."""
        return self.raw & ~((1 << PAGE_SHIFT) - 1) & PHYSADDR_MASK

    def valid(self, *, ept_5level: bool = False) -> bool:
        """Architectural EPTP validity (SDM 26.2.1.1)."""
        if self.memory_type not in EptMemType.VALID:
            return False
        allowed_walks = {4, 5} if ept_5level else {4}
        if self.walk_length not in allowed_walks:
            return False
        # Reserved bits 11:7 (bit 7 when no supervisor shadow stacks)
        # and bits above the physical address width must be zero.
        if extract(self.raw, 7, 11):
            return False
        if self.raw >> MAX_PHYSADDR_WIDTH:
            return False
        return True


def cr3_valid(cr3: int, *, long_mode: bool) -> bool:
    """Check a CR3 value against the physical-address-width rule.

    In long mode CR3 bits above MAXPHYADDR must be zero; in legacy PAE
    mode only the low 32 bits are used, so the value is trivially valid.
    """
    if not long_mode:
        return True
    return not cr3 >> MAX_PHYSADDR_WIDTH


@dataclass
class PageTableMemory:
    """Tiny sparse guest-physical memory holding paging structures.

    Maps page-aligned gpa -> 512-entry tables (lists of ints). Entries
    default to zero (not-present).
    """

    tables: dict[int, list[int]] = field(default_factory=dict)

    def table_at(self, gpa: int) -> list[int]:
        """Return (creating if needed) the table page at *gpa*."""
        if not is_aligned(gpa, PAGE_SIZE):
            raise ValueError(f"table gpa {gpa:#x} not page-aligned")
        return self.tables.setdefault(gpa, [0] * 512)

    def write_entry(self, gpa: int, index: int, value: int) -> None:
        """Write paging-structure entry *index* of the table at *gpa*."""
        self.table_at(gpa)[index & 511] = value & ((1 << 64) - 1)

    def read_entry(self, gpa: int, index: int) -> int:
        """Read paging-structure entry *index* of the table at *gpa*."""
        return self.table_at(gpa)[index & 511]


class PdpteCache:
    """The four PAE page-directory-pointer-table entry registers.

    In PAE paging (CR4.PAE=1, EFER.LME=0) the CPU caches exactly four
    PDPTEs. KVM mirrors this with a fixed ``pdptrs[4]`` array; the missing
    IA-32e/CR4.PAE consistency check of CVE-2023-30456 lets a page walk
    index this array out of bounds.
    """

    SLOTS = 4

    def __init__(self) -> None:
        self._entries = [0] * self.SLOTS
        self.oob_write: tuple[int, int] | None = None

    def load(self, index: int, value: int) -> None:
        """Store a PDPTE; records (index, value) on out-of-bounds access.

        A real C implementation would corrupt adjacent memory here; we
        record the event so the UBSAN model can report it as an
        array-index-out-of-bounds, matching the paper's detection method.
        """
        if 0 <= index < self.SLOTS:
            self._entries[index] = value & ((1 << 64) - 1)
        else:
            self.oob_write = (index, value)

    def entry(self, index: int) -> int:
        """Read a cached PDPTE (bounds-checked)."""
        if not 0 <= index < self.SLOTS:
            raise IndexError(f"PDPTE index {index} out of range")
        return self._entries[index]


def pae_pdpte_index(linear_address: int, *, long_mode_guest: bool) -> int:
    """Compute the PDPTE index a page walk uses for *linear_address*.

    In legacy PAE mode the index is bits 31:30 (always 0..3). If the walk
    code wrongly believes the guest is in 4-level mode while using the
    PAE PDPTE cache — the CVE-2023-30456 confusion — it extracts bits
    38:30 instead, which can exceed the 4-entry array.
    """
    if long_mode_guest:
        return extract(linear_address, 30, 38)
    return extract(linear_address, 30, 31)
