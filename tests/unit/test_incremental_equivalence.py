"""Pins the equivalence contract of the incremental hot path.

The dirty-tracking machinery in :mod:`repro.perf` (memoized check and
rounding passes, value-validated revalidation, incremental VMCS02/VMCB02
merge) must be a pure optimisation: for any mutation sequence, the
incremental and full-recompute modes produce identical corrections,
violations, oracle outcomes, merged-structure contents, exit reasons —
and identical campaign trajectories, coverage included.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro import NecoFuzz, Vendor, perf
from repro.core.vcpu_config import VcpuConfig
from repro.cpu.entry_checks import UNITS, check_all
from repro.hypervisors.kvm import KvmHypervisor
from repro.hypervisors.kvm.nested_svm import SvmNestedState
from repro.hypervisors.kvm.nested_vmx import VmxNestedState
from repro.svm import fields as SF
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.validator.oracle import HardwareOracle
from repro.validator.rounding import VmStateValidator
from repro.validator.svm_validator import SvmHardwareOracle, VmcbValidator
from repro.vmx import fields as F
from repro.vmx.msr_caps import default_capabilities

_VMX_MUTABLE = [s for s in F.ALL_FIELDS
                if s.group is not F.FieldGroup.READ_ONLY]

#: A mutation step: which mutable field, which bit to flip.
vmx_mutations = st.lists(
    st.tuples(st.integers(0, len(_VMX_MUTABLE) - 1), st.integers(0, 63)),
    min_size=1, max_size=6)
svm_mutations = st.lists(
    st.tuples(st.integers(0, len(SF.ALL_FIELDS) - 1), st.integers(0, 63)),
    min_size=1, max_size=6)


def _vmx_pipeline(incremental: bool, mutations) -> tuple:
    """Run the per-case hot path on a persistent VMCS; return observables."""
    with perf.incremental_mode(incremental):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        nested = hv.nested_vmx
        validator = VmStateValidator(nested.caps)
        oracle = HardwareOracle(nested.caps)
        state = VmxNestedState()
        vmcs = golden_vmcs(nested.caps)
        trail = []
        for index, bit in mutations:
            spec = _VMX_MUTABLE[index]
            vmcs.write(spec.encoding,
                       vmcs.read(spec.encoding) ^ (1 << (bit % spec.bits)))
            report = validator.round_to_valid(vmcs)
            oracle_report = oracle.verify(vmcs)
            prep = nested.prepare_vmcs02(state, vmcs)
            trail.append((
                [str(c) for c in report.all],
                oracle_report.entered,
                oracle_report.attempts,
                oracle_report.activated_rules,
                oracle_report.golden_fallbacks,
                [str(v) for v in oracle_report.final_violations],
                (prep.detail, prep.exit_reason) if prep is not None else None,
                vmcs.read(F.VM_EXIT_REASON),
                vmcs.serialize(),
                state.vmcs02.serialize(),
            ))
        return tuple(trail)


def _svm_pipeline(incremental: bool, mutations) -> tuple:
    with perf.incremental_mode(incremental):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD))
        nested = hv.nested_svm
        validator = VmcbValidator()
        oracle = SvmHardwareOracle()
        state = SvmNestedState()
        vmcb = golden_vmcb()
        trail = []
        for index, bit in mutations:
            spec = SF.ALL_FIELDS[index]
            vmcb.write(spec.name,
                       vmcb.read(spec.name) ^ (1 << (bit % spec.bits)))
            corrections = validator.round_to_valid(vmcb)
            entered = oracle.verify(vmcb)
            prep = nested.prepare_vmcb02(state, vmcb)
            trail.append((
                [str(c) for c in corrections],
                entered,
                [str(v) for v in validator.predicted_violations(vmcb)],
                (prep.detail, prep.exit_reason) if prep is not None else None,
                vmcb.serialize(),
                state.vmcb02.serialize(),
            ))
        return tuple(trail)


class TestPipelineEquivalence:
    @given(vmx_mutations)
    @settings(max_examples=20, deadline=None)
    def test_vmx_incremental_matches_full(self, mutations):
        assert _vmx_pipeline(False, mutations) == _vmx_pipeline(True, mutations)

    @given(svm_mutations)
    @settings(max_examples=20, deadline=None)
    def test_svm_incremental_matches_full(self, mutations):
        assert _svm_pipeline(False, mutations) == _svm_pipeline(True, mutations)


def _fingerprint(result):
    return (sorted(result.covered_lines),
            result.engine_stats.queue_adds,
            [(r.iteration, r.anomaly.signature()) for r in result.reports])


class TestCampaignEquivalence:
    """Whole campaigns — trajectory, coverage, findings — are mode-blind."""

    @pytest.mark.parametrize("hypervisor,vendor", [
        ("kvm", Vendor.INTEL),
        ("kvm", Vendor.AMD),
        ("xen", Vendor.INTEL),
        ("virtualbox", Vendor.INTEL),
    ], ids=["kvm-intel", "kvm-amd", "xen-intel", "vbox-intel"])
    def test_campaign_fingerprint(self, hypervisor, vendor):
        prints = []
        for mode in (False, True):
            with perf.incremental_mode(mode):
                campaign = NecoFuzz(hypervisor=hypervisor, vendor=vendor,
                                    seed=11)
                prints.append(_fingerprint(campaign.run(80)))
        assert prints[0] == prints[1]


class TestDeclaredReads:
    """The dependency index must cover everything a unit actually reads."""

    @given(st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES))
    @settings(max_examples=25, deadline=None)
    def test_unit_reads_are_declared(self, raw):
        from repro.vmx.vmcs import Vmcs

        caps = default_capabilities()
        vmcs = Vmcs.deserialize(raw)
        for unit in UNITS:
            traced: set[int] = set()
            vmcs._read_trace = traced
            try:
                unit.fn(vmcs, caps, lambda field, reason: None)
            finally:
                vmcs._read_trace = None
            undeclared = traced - unit.reads
            assert not undeclared, (
                f"{unit.name} read undeclared fields: "
                f"{[F.SPEC_BY_ENCODING[e].name for e in undeclared]}")


class TestValueRevalidation:
    """A journalled write back to the recorded value keeps memos valid."""

    def test_memoized_check_survives_write_revert(self):
        caps = default_capabilities()
        vmcs = golden_vmcs(caps)
        with perf.incremental_mode(True):
            runs = []
            key = "probe"
            enc = F.GUEST_RSP

            def compute():
                runs.append(vmcs.read(enc))
                return list(check_all(vmcs, caps))

            first = perf.memoized_check(vmcs, key, compute)
            old = vmcs.read(enc)
            vmcs.write(enc, old ^ 0xFF0)
            vmcs.write(enc, old)  # journalled, but back to the read value
            again = perf.memoized_check(vmcs, key, compute)
            assert len(runs) == 1  # revert did not invalidate
            assert again == first

    def test_memoized_fixpoint_records_only_at_fixpoint(self):
        caps = default_capabilities()
        validator = VmStateValidator(caps)
        vmcs = golden_vmcs(caps)
        with perf.incremental_mode(True):
            validator.round_to_valid(vmcs)  # reach + record the fixed point
            baseline = vmcs.generation
            validator.round_to_valid(vmcs)  # pure memo hit
            assert vmcs.generation == baseline
            # Breaking a constraint forces a re-run that corrects it
            # (entry-to-SMM is always rounded away outside SMM)...
            vmcs.write(F.VM_ENTRY_CONTROLS,
                       vmcs.read(F.VM_ENTRY_CONTROLS) | (1 << 10))
            report = validator.round_to_valid(vmcs)
            assert report.total >= 1
            # ...and the next pass is again a recorded fixed point.
            assert validator.round_to_valid(vmcs).total == 0
            settled = vmcs.generation
            validator.round_to_valid(vmcs)
            assert vmcs.generation == settled
