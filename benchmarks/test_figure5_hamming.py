"""Figure 5: distribution of VM states (Hamming distances).

Reproduces the three violin distributions over the 8,000-bit, 165-field
VMCS layout. Paper values: random↔validated 492.6±53.9, default↔validated
284.7±36.4, pairwise 353±63.9. Our simulated validator pins a somewhat
different fraction of the layout, so absolute magnitudes differ; the
qualitative claims are asserted:

* random states are astronomically unlikely to be valid (2^-mean);
* rounding moves states further than the validated population's own
  spread (random↔validated is the largest distribution);
* the validated population is diverse (pairwise ≫ 0) and centred near
  the default state (default↔validated ≲ pairwise).
"""

import pytest

from common import BenchReport
from repro.analysis.hamming import run_study, validity_probability_exponent

REPETITIONS = 2000  # paper: 10,000


@pytest.mark.benchmark(group="figure5")
def test_figure5_hamming_distributions(benchmark, capsys):
    study = benchmark.pedantic(
        lambda: run_study(repetitions=REPETITIONS, seed=11),
        rounds=1, iterations=1)

    report = BenchReport("Figure 5: distribution of VM states")
    report.add(study.render())
    report.add()
    report.add(f"P(random state is valid) ~ 2^-"
               f"{validity_probability_exponent(study):.1f} "
               "(paper: 2^-492.6)")
    report.emit(capsys)

    random_vs = study.random_vs_validated
    default_vs = study.default_vs_validated
    pairwise = study.pairwise_validated

    # Ordering (paper: 492.6 > 353 > 284.7).
    assert random_vs.mean > pairwise.mean > default_vs.mean * 0.9
    # The exponent argument: randomly reaching validity is hopeless.
    assert validity_probability_exponent(study) > 300
    # Diversity: the validated population is spread out, not collapsed
    # onto the golden state.
    assert pairwise.mean > 500
    assert default_vs.mean > 300
    # Distributions have meaningful, non-degenerate spread.
    for dist in (random_vs, default_vs, pairwise):
        assert dist.stdev > 10
        assert dist.minimum < dist.mean < dist.maximum
