"""VMCB validator/rounder for AMD-V.

AMD-V's consistency checks (APM 15.5.1) are far fewer than VT-x's, which
is why the paper's AMD coverage story leans more on the execution
harness than on the validator. The rounding below fixes exactly what
``vmrun`` would reject — and deliberately leaves alone the
states the APM *permits* but nested hypervisors mishandle, such as
``EFER.LME=1, CR0.PG=0`` (Xen bugs #5/#6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf, telemetry
from repro.arch.registers import Cr0, Cr4, Efer
from repro.cpu.svm_cpu import SvmCpu, check_vmcb, predict_vmrun_quirks
from repro.svm import fields as SF
from repro.svm.vmcb import Vmcb

#: Canonical field order, for replaying ``Vmcb.diff`` iteration order on
#: predicted quirk writes in the batched fast path.
_FIELD_ORDER: dict[str, int] = {
    spec.name: i for i, spec in enumerate(SF.ALL_FIELDS)}

#: Shared replay memo for the (stateless) rounding pass, batched mode
#: only: a repeat value signature replays the recorded net writes
#: instead of re-running the APM rounding routine.
_ROUND_REPLAY = None


def _replay_round():
    global _ROUND_REPLAY
    if _ROUND_REPLAY is None:
        from repro.batch import ReplayMemo

        _ROUND_REPLAY = ReplayMemo(VmcbValidator()._round)
    return _ROUND_REPLAY


@dataclass(frozen=True)
class VmcbCorrection:
    """One rounding step applied to a VMCB."""

    field: str
    before: int
    after: int
    rule: str

    def __str__(self) -> str:
        return f"{self.field}: {self.before:#x} -> {self.after:#x} ({self.rule})"


class VmcbValidator:
    """Round VMCBs toward vmrun-accepted states."""

    def round_to_valid(self, vmcb: Vmcb) -> list[VmcbCorrection]:
        """Mutate *vmcb* so that APM consistency checks pass.

        Memoized at the fixed point: once a pass corrected nothing, it
        is skipped until a field it read changes (``force`` reads every
        field before writing it, so the read trace covers the targets).
        In batched mode the pass additionally goes through a shared
        value-signature replay memo.
        """
        if perf.batch_enabled():
            return perf.memoized_fixpoint(
                vmcb, "svm_round", lambda: _replay_round().run(vmcb))
        return perf.memoized_fixpoint(
            vmcb, "svm_round", lambda: self._round(vmcb))

    def _round(self, vmcb: Vmcb) -> list[VmcbCorrection]:
        corrections: list[VmcbCorrection] = []

        def force(name: str, value: int, rule: str) -> None:
            before = vmcb.read(name)
            vmcb.write(name, value)
            after = vmcb.read(name)
            if before != after:
                corrections.append(VmcbCorrection(name, before, after, rule))

        efer = vmcb.read(SF.EFER) & ~Efer.RESERVED
        efer |= Efer.SVME
        force(SF.EFER, efer, "EFER.SVME set, reserved clear")

        cr0 = vmcb.read(SF.CR0) & 0xFFFFFFFF
        if not cr0 & Cr0.CD:
            cr0 &= ~Cr0.NW
        force(SF.CR0, cr0, "CR0 width and CD/NW rule")

        cr4 = vmcb.read(SF.CR4) & ~Cr4.RESERVED
        force(SF.CR4, cr4, "CR4 reserved bits clear")

        # Entering long mode (LME & PG) needs PAE/PE and a sane CS; the
        # transitional LME=1/PG=0 state is intentionally left untouched.
        efer = vmcb.read(SF.EFER)
        cr0 = vmcb.read(SF.CR0)
        if efer & Efer.LME and cr0 & Cr0.PG:
            force(SF.CR4, vmcb.read(SF.CR4) | Cr4.PAE,
                  "long mode with paging requires CR4.PAE")
            force(SF.CR0, cr0 | Cr0.PE, "long mode requires protected mode")
            cs_attrib = vmcb.read("cs_attrib")
            if cs_attrib & (1 << 9) and cs_attrib & (1 << 10):
                force("cs_attrib", cs_attrib & ~(1 << 10),
                      "CS.L and CS.D may not both be set")

        force(SF.DR6, vmcb.read(SF.DR6) & 0xFFFFFFFF, "DR6 bits 63:32 zero")
        force(SF.DR7, vmcb.read(SF.DR7) & 0xFFFFFFFF, "DR7 bits 63:32 zero")

        force(SF.INTERCEPT_MISC2,
              vmcb.read(SF.INTERCEPT_MISC2) | SF.Misc2Intercept.VMRUN,
              "VMRUN intercept must be set")

        if not vmcb.read(SF.GUEST_ASID):
            force(SF.GUEST_ASID, 1, "ASID 0 reserved for host")

        np = vmcb.read(SF.NP_CONTROL) & (SF.NpControl.NP_ENABLE
                                         | SF.NpControl.SEV_ENABLE
                                         | SF.NpControl.SEV_ES_ENABLE)
        # SEV needs platform setup our harness never performs; round away.
        np &= ~(SF.NpControl.SEV_ENABLE | SF.NpControl.SEV_ES_ENABLE)
        force(SF.NP_CONTROL, np, "NP control reserved/SEV bits clear")
        if np & SF.NpControl.NP_ENABLE:
            force(SF.N_CR3, vmcb.read(SF.N_CR3) & ((1 << 52) - 1) & ~0xFFF,
                  "nested CR3 aligned in range")

        return corrections

    def is_fixed_point(self, vmcb: Vmcb) -> bool:
        """True when another rounding pass would change nothing."""
        return not self.round_to_valid(vmcb.copy())

    def predicted_violations(self, vmcb: Vmcb):
        """The APM violations this VMCB would trigger (without mutating)."""
        return check_vmcb(vmcb)


class SvmHardwareOracle:
    """vmrun-based oracle for VMCB states (the AMD side of §3.4)."""

    VMCB_PA = 0x2000

    def __init__(self, max_attempts: int = 4) -> None:
        self.max_attempts = max_attempts
        self.rejections = 0
        self.entries = 0
        #: field -> (set_mask, clear_mask) from vmrun's silent fixups.
        self.fixup_masks: dict[str, tuple[int, int]] = {}

    def verify(self, vmcb: Vmcb) -> bool:
        """Run *vmcb* on a fresh SVM CPU; learn and fix on rejection."""
        with telemetry.span("oracle.verify"):
            entered = self._verify(vmcb)
        if entered:
            telemetry.counter("oracle.entries")
        else:
            telemetry.counter("oracle.failures")
        return entered

    def _verify(self, vmcb: Vmcb) -> bool:
        validator = VmcbValidator()
        if perf.batch_enabled():
            return self._verify_fast(vmcb, validator)
        for _ in range(self.max_attempts):
            telemetry.counter("oracle.attempts")
            cpu = SvmCpu()
            cpu.set_svme(True)
            cpu.set_hsave(0x3000)
            if perf.incremental_enabled():
                # Pre-warm the persistent VMCB so each attempt's image
                # copy carries a validated memo into vmrun.
                perf.memoized_check(vmcb, "svm_vmcb_check",
                                    lambda: check_vmcb(vmcb))
            image = vmcb.copy()
            cpu.install_vmcb(self.VMCB_PA, image)
            outcome = cpu.vmrun(self.VMCB_PA)
            if outcome.entered:
                self.entries += 1
                self._learn_fixups(vmcb, image)
                return True
            self.rejections += 1
            validator.round_to_valid(vmcb)
        return False

    def _verify_fast(self, vmcb: Vmcb, validator: VmcbValidator) -> bool:
        """Batched fast path: no per-attempt CPU build or image copy.

        The vmrun preconditions of the slow loop (SVME set, aligned
        nonzero VMCB_PA, VMCB installed) hold by construction there, so
        only the consistency checks and quirk prediction remain.
        """
        master = vmcb._anchor
        if master is not None and master.memo_get("svm_vmcb_check") is None:
            # Seed the frozen reference master once; every candidate
            # diffed from it then revalidates via its own journal inside
            # memoized_check's anchor fallback — O(changed fields).
            perf.memoized_check(master, "svm_vmcb_check",
                                lambda: check_vmcb(master))
        for _ in range(self.max_attempts):
            telemetry.counter("oracle.attempts")
            violations = perf.memoized_check(
                vmcb, "svm_vmcb_check", lambda: check_vmcb(vmcb))
            if not violations:
                self.entries += 1
                self._learn_predicted(vmcb, predict_vmrun_quirks(vmcb))
                return True
            self.rejections += 1
            validator.round_to_valid(vmcb)
        return False

    def verify_batch(self, vmcbs: list[Vmcb]) -> list[bool]:
        """Verify a batch in order (learning stays strictly sequential:
        batch results are identical to N sequential :meth:`verify`
        calls)."""
        return [self.verify(vmcb) for vmcb in vmcbs]

    def _learn_fixups(self, original: Vmcb, post_entry: Vmcb) -> None:
        for spec, before, after in original.diff(post_entry):
            set_mask, clear_mask = self.fixup_masks.get(spec.name, (0, 0))
            set_mask |= after & ~before
            clear_mask |= before & ~after
            self.fixup_masks[spec.name] = (set_mask, clear_mask)

    def _learn_predicted(self, vmcb: Vmcb, writes: tuple) -> None:
        """:meth:`_learn_fixups` from predicted quirk writes, sorted into
        canonical field order to match the diff-based slow path."""
        if not writes:
            return
        if len(writes) > 1:
            writes = sorted(writes, key=lambda w: _FIELD_ORDER[w[0]])
        for name, after in writes:
            before = vmcb._values[name]
            if before == after:
                continue
            set_mask, clear_mask = self.fixup_masks.get(name, (0, 0))
            set_mask |= after & ~before
            clear_mask |= before & ~after
            self.fixup_masks[name] = (set_mask, clear_mask)
