"""Shared plumbing for baseline fuzzers and test suites.

Every baseline measures coverage exactly the way NecoFuzz does — same
tracer, same instrumented-line universe — so that Table-2/Table-4 set
algebra is well defined across tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.timeline import CoverageTimeline
from repro.arch.cpuid import Vendor
from repro.arch.exceptions import HostCrash
from repro.core.detectors import Anomaly, AnomalyDetector, Watchdog
from repro.core.necofuzz import CampaignResult
from repro.coverage.kcov import KcovTracer
from repro.fuzzer.engine import EngineStats
from repro.hypervisors.base import L0Hypervisor, VmCrash


@dataclass
class BaselineHarness:
    """Coverage/anomaly scaffolding one baseline drives test cases through."""

    name: str
    vendor: Vendor
    hypervisor_class: type
    tracer: KcovTracer = field(init=False)
    detector: AnomalyDetector = field(default_factory=AnomalyDetector)
    watchdog: Watchdog = field(default_factory=Watchdog)
    cumulative_lines: set = field(default_factory=set)
    anomalies: list[Anomaly] = field(default_factory=list)
    cases: int = 0

    def __post_init__(self) -> None:
        self.tracer = KcovTracer(
            self.hypervisor_class.nested_modules(self.vendor))

    def run_case(self, hv: L0Hypervisor, case) -> None:
        """Run one scripted case (callable taking the hypervisor)."""
        self.cases += 1
        with self.tracer:
            try:
                case(hv)
            except HostCrash as crash:
                self.anomalies.append(
                    self.watchdog.handle_host_crash(hv, str(crash)))
            except VmCrash as crash:
                self.anomalies.append(
                    self.watchdog.handle_vm_crash(hv, str(crash)))
        lines, _ = self.tracer.drain()
        self.cumulative_lines |= lines
        self.anomalies.extend(self.detector.scan(hv))

    @property
    def coverage_fraction(self) -> float:
        """Cumulative covered fraction of instrumented lines."""
        return self.tracer.coverage_fraction(self.cumulative_lines)

    def result(self, timeline: CoverageTimeline | None = None) -> CampaignResult:
        """Package the harness state as a CampaignResult."""
        if timeline is None:
            timeline = CoverageTimeline(self.name)
            timeline.record(self.cases, self.coverage_fraction)
        stats = EngineStats(iterations=self.cases)
        return CampaignResult(
            timeline=timeline,
            covered_lines=set(self.cumulative_lines) & self.tracer.instrumented,
            instrumented_lines=set(self.tracer.instrumented),
            reports=[],
            engine_stats=stats,
            watchdog_restarts=self.watchdog.restarts)
