"""Coverage collection (kcov/gcov analogue) and AFL edge bitmaps."""

from repro.coverage.bitmap import MAP_SIZE, CoverageBitmap, VirginMap
from repro.coverage.kcov import KcovTracer, executable_lines
from repro.coverage.report import CoverageReport, CoverageTable

# NCD1 coverage deltas live in repro.coverage.delta; import the module
# directly — re-exporting it here would drag repro.parallel (its
# checksum helpers) into this package's import chain, which the engine
# imports before repro.parallel finishes initializing.

__all__ = [
    "KcovTracer",
    "executable_lines",
    "CoverageBitmap",
    "VirginMap",
    "MAP_SIZE",
    "CoverageReport",
    "CoverageTable",
]
