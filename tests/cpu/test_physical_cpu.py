"""Unit tests for the simulated VMX CPU (instruction state machine)."""

import pytest

from repro.cpu.physical_cpu import VmxCpu, VmxResultKind
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.exit_reasons import ExitReason, VmInstructionError
from repro.vmx.vmcs import Vmcs

VMXON = 0x1000
VMCS = 0x2000


@pytest.fixture
def cpu():
    return VmxCpu()


@pytest.fixture
def ready_cpu():
    """A CPU in VMX root operation with a current golden VMCS."""
    cpu = VmxCpu()
    cpu.vmxon(VMXON)
    cpu.vmclear(VMCS)
    image = golden_vmcs(cpu.caps)
    image.clear()
    cpu.install_vmcs(VMCS, image)
    cpu.vmptrld(VMCS)
    return cpu


class TestVmxon:
    def test_vmxon_succeeds(self, cpu):
        assert cpu.vmxon(VMXON).ok
        assert cpu.vmx_on

    def test_double_vmxon_fails_valid(self, cpu):
        cpu.vmxon(VMXON)
        result = cpu.vmxon(VMXON)
        assert result.kind is VmxResultKind.FAIL_VALID
        assert result.error is VmInstructionError.VMXON_IN_VMX_ROOT

    def test_misaligned_region_fails_invalid(self, cpu):
        assert cpu.vmxon(0x1234).kind is VmxResultKind.FAIL_INVALID

    def test_vmxoff(self, cpu):
        cpu.vmxon(VMXON)
        assert cpu.vmxoff().ok
        assert not cpu.vmx_on

    def test_vmxoff_outside_vmx_fails(self, cpu):
        assert cpu.vmxoff().kind is VmxResultKind.FAIL_INVALID


class TestVmclearVmptrld:
    def test_vmclear_creates_clear_vmcs(self, cpu):
        cpu.vmxon(VMXON)
        assert cpu.vmclear(VMCS).ok
        assert not cpu.memory[VMCS].launched

    def test_vmclear_vmxon_pointer_rejected(self, cpu):
        cpu.vmxon(VMXON)
        result = cpu.vmclear(VMXON)
        assert result.error is VmInstructionError.VMCLEAR_VMXON_POINTER

    def test_vmclear_clears_current_pointer(self, cpu):
        cpu.vmxon(VMXON)
        cpu.vmclear(VMCS)
        cpu.vmptrld(VMCS)
        cpu.vmclear(VMCS)
        assert cpu.current_vmcs_ptr is None

    def test_vmptrld_requires_matching_revision(self, cpu):
        cpu.vmxon(VMXON)
        cpu.install_vmcs(VMCS, Vmcs(revision_id=0x99))
        result = cpu.vmptrld(VMCS)
        assert result.error is VmInstructionError.VMPTRLD_INCORRECT_REVISION_ID

    def test_vmptrld_vmxon_pointer_rejected(self, cpu):
        cpu.vmxon(VMXON)
        result = cpu.vmptrld(VMXON)
        assert result.error is VmInstructionError.VMPTRLD_VMXON_POINTER

    def test_vmptrst_reports_pointer(self, cpu):
        cpu.vmxon(VMXON)
        assert cpu.vmptrst().value == (1 << 64) - 1
        cpu.vmclear(VMCS)
        cpu.vmptrld(VMCS)
        assert cpu.vmptrst().value == VMCS


class TestVmreadVmwrite:
    def test_roundtrip(self, ready_cpu):
        assert ready_cpu.vmwrite(F.GUEST_RIP, 0x1234).ok
        assert ready_cpu.vmread(F.GUEST_RIP).value == 0x1234

    def test_unsupported_component(self, ready_cpu):
        assert (ready_cpu.vmread(0xDEAD).error
                is VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)

    def test_read_only_component(self, ready_cpu):
        result = ready_cpu.vmwrite(F.VM_EXIT_REASON, 1)
        assert result.error is VmInstructionError.VMWRITE_READ_ONLY_COMPONENT

    def test_no_current_vmcs(self, cpu):
        cpu.vmxon(VMXON)
        assert cpu.vmread(F.GUEST_RIP).kind is VmxResultKind.FAIL_INVALID


class TestVmEntry:
    def test_golden_state_enters(self, ready_cpu):
        outcome = ready_cpu.vmlaunch()
        assert outcome.entered
        assert ready_cpu.in_guest
        assert ready_cpu.current_vmcs.launched

    def test_launch_of_launched_vmcs_fails(self, ready_cpu):
        ready_cpu.vmlaunch()
        result = ready_cpu.vmlaunch()
        assert result.vmx_result.error is VmInstructionError.VMLAUNCH_NONCLEAR_VMCS

    def test_resume_of_clear_vmcs_fails(self, ready_cpu):
        result = ready_cpu.vmresume()
        assert (result.vmx_result.error
                is VmInstructionError.VMRESUME_NONLAUNCHED_VMCS)

    def test_resume_after_launch(self, ready_cpu):
        ready_cpu.vmlaunch()
        ready_cpu.vm_exit(ExitReason.CPUID)
        assert ready_cpu.vmresume().entered

    def test_zero_vmcs_fails_controls(self, cpu):
        cpu.vmxon(VMXON)
        cpu.vmclear(VMCS)
        cpu.vmptrld(VMCS)
        outcome = cpu.vmlaunch()
        assert not outcome.entered
        assert (outcome.vmx_result.error
                is VmInstructionError.ENTRY_INVALID_CONTROL_FIELDS)

    def test_bad_host_state_error_8(self, ready_cpu):
        ready_cpu.vmwrite(F.HOST_CS_SELECTOR, 0)
        outcome = ready_cpu.vmlaunch()
        assert (outcome.vmx_result.error
                is VmInstructionError.ENTRY_INVALID_HOST_STATE)

    def test_bad_guest_state_failed_entry(self, ready_cpu):
        ready_cpu.vmwrite(F.GUEST_RFLAGS, 0)  # fixed-1 bit clear
        outcome = ready_cpu.vmlaunch()
        assert not outcome.entered
        assert outcome.failed_entry
        assert outcome.exit_reason & (1 << 31)
        assert outcome.exit_reason & 0xFFFF == int(ExitReason.INVALID_GUEST_STATE)

    def test_entry_without_vmcs_fails_invalid(self, cpu):
        cpu.vmxon(VMXON)
        assert cpu.vmlaunch().vmx_result.kind is VmxResultKind.FAIL_INVALID

    def test_entry_applies_silent_fixups(self, ready_cpu):
        # Activity-state truncation is one of the modelled quirks.
        ready_cpu.current_vmcs.write(F.GUEST_ACTIVITY_STATE, 1)
        outcome = ready_cpu.vmlaunch()
        assert outcome.entered

    def test_vm_exit_records_reason(self, ready_cpu):
        ready_cpu.vmlaunch()
        ready_cpu.vm_exit(ExitReason.HLT, qualification=0x55, guest_rip=0x999)
        vmcs = ready_cpu.current_vmcs
        assert vmcs.read(F.VM_EXIT_REASON) == int(ExitReason.HLT)
        assert vmcs.read(F.EXIT_QUALIFICATION) == 0x55
        assert vmcs.read(F.GUEST_RIP) == 0x999
        assert not ready_cpu.in_guest

    def test_vm_exit_without_vmcs_raises(self, cpu):
        with pytest.raises(RuntimeError):
            cpu.vm_exit(ExitReason.HLT)
