"""Tests for the agent program and crash reports."""

from pathlib import Path

from repro.arch.cpuid import Vendor
from repro.core.agent import Agent, AgentConfig
from repro.core.executor import ComponentToggles
from repro.core.reports import CrashReport, ReportStore
from repro.core.detectors import Anomaly, DetectionMethod
from repro.fuzzer.input import FuzzInput
from repro.fuzzer.rng import Rng


def make_agent(**kwargs):
    return Agent(AgentConfig(**kwargs))


def inputs(n, seed=1):
    rng = Rng(seed)
    return [FuzzInput.from_rng(rng) for _ in range(n)]


class TestAgentLoop:
    def test_case_produces_feedback(self):
        agent = make_agent()
        outcome = agent.run_case(inputs(1)[0])
        assert outcome.feedback.bitmap is not None
        assert "modprobe" in outcome.command_line

    def test_coverage_accumulates(self):
        agent = make_agent()
        for fi in inputs(6):
            agent.run_case(fi)
        assert agent.coverage_fraction > 0.2
        assert agent.cases_run == 6

    def test_covered_lines_subset_of_instrumented(self):
        agent = make_agent()
        for fi in inputs(4):
            agent.run_case(fi)
        assert agent.covered_lines() <= agent.tracer.instrumented

    def test_generator_cache_bounded(self):
        agent = make_agent()
        for fi in inputs(100, seed=3):
            agent._generator_for(agent.configurator.generate(fi))
        assert len(agent._generators) <= Agent.GENERATOR_CACHE_LIMIT

    def test_generator_cache_reuses(self):
        agent = make_agent()
        config = agent.configurator.generate(inputs(1)[0])
        first = agent._generator_for(config)
        assert agent._generator_for(config) is first

    def _distinct_configs(self, agent, n):
        configs, seen = [], set()
        for fi in inputs(200, seed=17):
            config = agent.configurator.generate(fi)
            key = agent._config_key(config)
            if key not in seen:
                seen.add(key)
                configs.append((key, config))
            if len(configs) == n:
                return configs
        raise AssertionError("could not generate enough distinct configs")

    def test_generator_cache_evicts_least_recently_used(self):
        agent = make_agent()
        agent.GENERATOR_CACHE_LIMIT = 3
        configs = self._distinct_configs(agent, 4)
        for key, config in configs[:3]:
            agent._generator_for(config, key)
        # Insertion order is recency order: evicting must drop configs[0].
        agent._generator_for(configs[3][1], configs[3][0])
        assert configs[0][0] not in agent._generators
        assert all(k in agent._generators for k, _ in configs[1:4])

    def test_generator_cache_hit_refreshes_recency(self):
        agent = make_agent()
        agent.GENERATOR_CACHE_LIMIT = 3
        configs = self._distinct_configs(agent, 4)
        for key, config in configs[:3]:
            agent._generator_for(config, key)
        # Touch the oldest entry; the *second*-oldest becomes the victim.
        agent._generator_for(configs[0][1], configs[0][0])
        agent._generator_for(configs[3][1], configs[3][0])
        assert configs[0][0] in agent._generators
        assert configs[1][0] not in agent._generators

    def test_amd_agent(self):
        agent = make_agent(vendor=Vendor.AMD)
        for fi in inputs(4):
            agent.run_case(fi)
        assert agent.coverage_fraction > 0.1

    def test_xen_agent_watchdog_on_host_crash(self):
        # Xen + fuzzed activity states will eventually hang the host;
        # the agent must absorb it and keep going.
        agent = make_agent(hypervisor="xen")
        crashes = 0
        for fi in inputs(40, seed=9):
            outcome = agent.run_case(fi)
            crashes += outcome.feedback.crashed
        # Whether or not a hang occurred, the agent survived 40 cases.
        assert agent.cases_run == 40
        assert agent.watchdog.restarts == crashes or crashes == 0

    def test_ablated_agent_runs(self):
        agent = make_agent(toggles=ComponentToggles.none())
        outcome = agent.run_case(inputs(1)[0])
        assert outcome.feedback is not None


class TestReportStore:
    def _report(self, iteration=1):
        return CrashReport(
            iteration=iteration,
            anomaly=Anomaly(DetectionMethod.UBSAN, "load_pdptrs", "oob"),
            fuzz_input=FuzzInput(bytes(2048)),
            command_line="modprobe kvm-intel ept=0",
            hypervisor="kvm")

    def test_in_memory_store(self):
        store = ReportStore()
        store.save(self._report())
        assert len(store) == 1
        assert store.by_method() == {"UBSAN": store.reports}

    def test_unique_locations(self):
        store = ReportStore()
        store.save(self._report(1))
        store.save(self._report(2))
        assert len(store.unique_locations()) == 1

    def test_disk_mirroring(self, tmp_path: Path):
        store = ReportStore(directory=tmp_path / "reports")
        store.save(self._report(7))
        saved = list((tmp_path / "reports").iterdir())
        assert len(saved) == 2  # .json + .bin
        json_file = next(p for p in saved if p.suffix == ".json")
        assert "modprobe" in json_file.read_text()
        bin_file = next(p for p in saved if p.suffix == ".bin")
        assert len(bin_file.read_bytes()) == 2048

    def test_file_name_deterministic(self):
        assert self._report(3).file_name() == "crash-00000003-UBSAN_load_pdptrs"

    def test_agent_saves_reports_to_dir(self, tmp_path: Path):
        agent = make_agent(reports_dir=tmp_path / "out")
        # Craft a case known to trigger bug #3: golden state has EPT on
        # and an invisible EPTP comes from injection eventually; instead
        # drive the hypervisor directly for determinism.
        rng = Rng(2)
        found = False
        for _ in range(120):
            outcome = agent.run_case(FuzzInput.from_rng(rng))
            if outcome.anomalies:
                found = True
                break
        if found:
            assert list((tmp_path / "out").iterdir())
