"""Tests for the top-level NecoFuzz campaign API."""

from repro import ComponentToggles, NecoFuzz, Vendor
from repro.core.necofuzz import golden_seed
from repro.fuzzer.input import INPUT_SIZE, VM_STATE_REGION
from repro.fuzzer.rng import Rng


class TestGoldenSeed:
    def test_size(self):
        assert len(golden_seed(Vendor.INTEL)) == INPUT_SIZE
        assert len(golden_seed(Vendor.AMD)) == INPUT_SIZE

    def test_vm_state_region_is_golden(self):
        from repro.validator.golden import golden_vmcs
        from repro.vmx.msr_caps import default_capabilities

        seed = golden_seed(Vendor.INTEL)
        start, end = VM_STATE_REGION
        assert seed[start:end] == golden_vmcs(default_capabilities()).serialize()

    def test_directive_regions_vary_with_rng(self):
        a = golden_seed(Vendor.INTEL, Rng(1))
        b = golden_seed(Vendor.INTEL, Rng(2))
        start, end = VM_STATE_REGION
        assert a[start:end] == b[start:end]       # same golden state
        assert a[end:] != b[end:]                 # different directives


class TestCampaign:
    def test_short_campaign_runs(self):
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=2)
        result = campaign.run(iterations=30)
        assert result.engine_stats.iterations == 30
        assert 0.3 < result.coverage_fraction < 1.0
        assert result.timeline.points

    def test_campaign_deterministic(self):
        a = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5).run(20)
        b = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=5).run(20)
        assert a.covered_lines == b.covered_lines
        assert a.coverage_percent == b.coverage_percent

    def test_amd_campaign(self):
        result = NecoFuzz(hypervisor="kvm", vendor=Vendor.AMD, seed=2).run(30)
        assert result.coverage_fraction > 0.3

    def test_xen_campaign(self):
        result = NecoFuzz(hypervisor="xen", vendor=Vendor.INTEL, seed=2).run(30)
        assert result.coverage_fraction > 0.2

    def test_vbox_campaign(self):
        result = NecoFuzz(hypervisor="virtualbox", vendor=Vendor.INTEL,
                          seed=2).run(30)
        assert result.coverage_fraction > 0.2

    def test_ablated_campaign_covers_less(self):
        full = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=4).run(60)
        bare = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=4,
                        toggles=ComponentToggles.none()).run(60)
        assert bare.coverage_fraction < full.coverage_fraction

    def test_blackbox_mode(self):
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=3,
                            coverage_guided=False)
        result = campaign.run(30)
        assert result.engine_stats.queue_adds == 0
        assert result.coverage_fraction > 0.3

    def test_summary_format(self):
        result = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=2).run(10)
        summary = result.summary()
        assert "coverage" in summary and "iterations" in summary

    def test_timeline_sampling(self):
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=2)
        result = campaign.run(25, sample_every=5)
        assert len(result.timeline.points) == 5

    def test_coverage_monotone_over_time(self):
        campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=6)
        result = campaign.run(40, sample_every=5)
        coverages = [p.coverage for p in result.timeline.points]
        assert coverages == sorted(coverages)


class TestCorpusResume:
    def test_resumed_campaign_deterministic(self, tmp_path):
        corpus = tmp_path / "corpus"
        first = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=6)
        first.run(30)
        first.engine.save_corpus(corpus)

        def resume():
            campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL,
                                seed=9, corpus_dir=corpus)
            return campaign, campaign.run(20)

        camp_a, a = resume()
        camp_b, b = resume()
        assert a.covered_lines == b.covered_lines
        assert a.engine_stats == b.engine_stats
        assert a.timeline.series() == b.timeline.series()
        # The saved corpus actually seeded the resumed queue.
        assert len(camp_a.engine.queue) > len(first.engine.queue) - 30

    def test_resume_starts_from_saved_queue(self, tmp_path):
        corpus = tmp_path / "corpus"
        first = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=6)
        first.run(30)
        saved = first.engine.save_corpus(corpus)
        resumed = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=6,
                           corpus_dir=corpus)
        # 5 built-in seeds + every saved entry.
        assert len(resumed.engine.queue) == 5 + saved
