"""Unit tests for the paging models (EPTP, PDPTE cache, page walks)."""

import pytest

from repro.arch import paging as P


class TestEptPointer:
    def test_valid_wb_4level(self):
        eptp = P.EptPointer(0x20000 | 6 | (3 << 3))
        assert eptp.valid()
        assert eptp.memory_type == 6
        assert eptp.walk_length == 4
        assert eptp.pml4_address == 0x20000

    def test_bad_memory_type(self):
        assert not P.EptPointer(0x20000 | 3 | (3 << 3)).valid()

    def test_bad_walk_length(self):
        assert not P.EptPointer(0x20000 | 6 | (1 << 3)).valid()

    def test_five_level_gated(self):
        eptp = P.EptPointer(0x20000 | 6 | (4 << 3))
        assert not eptp.valid()
        assert eptp.valid(ept_5level=True)

    def test_reserved_bits(self):
        assert not P.EptPointer(0x20000 | 6 | (3 << 3) | (1 << 8)).valid()

    def test_address_width(self):
        assert not P.EptPointer((1 << 50) | 6 | (3 << 3)).valid()

    def test_accessed_dirty_flag(self):
        assert P.EptPointer(6 | (3 << 3) | (1 << 6)).accessed_dirty


class TestCr3:
    def test_long_mode_width(self):
        assert P.cr3_valid(0x1000, long_mode=True)
        assert not P.cr3_valid(1 << 50, long_mode=True)

    def test_legacy_always_ok(self):
        assert P.cr3_valid(1 << 50, long_mode=False)


class TestPdpteCache:
    def test_in_bounds_load(self):
        cache = P.PdpteCache()
        cache.load(3, 0x1001)
        assert cache.entry(3) == 0x1001
        assert cache.oob_write is None

    def test_out_of_bounds_recorded(self):
        cache = P.PdpteCache()
        cache.load(511, 0xDEAD)
        assert cache.oob_write == (511, 0xDEAD)

    def test_entry_bounds_checked(self):
        with pytest.raises(IndexError):
            P.PdpteCache().entry(4)


class TestPdpteIndex:
    def test_legacy_pae_index_bounded(self):
        for address in (0, 0xFFFF_FFFF, 0x7FFF_FFFF_F000, (1 << 64) - 1):
            assert 0 <= P.pae_pdpte_index(address, long_mode_guest=False) <= 3

    def test_long_mode_index_can_exceed_four(self):
        # The CVE-2023-30456 confusion: long-mode bits 38:30 index a
        # 4-entry array.
        assert P.pae_pdpte_index(0x7FFF_FFFF_F000, long_mode_guest=True) > 3

    def test_long_mode_small_address_in_bounds(self):
        assert P.pae_pdpte_index(0x4000_0000, long_mode_guest=True) == 1


class TestPageTableMemory:
    def test_table_creation_and_rw(self):
        mem = P.PageTableMemory()
        mem.write_entry(0x1000, 5, 0xABC)
        assert mem.read_entry(0x1000, 5) == 0xABC
        assert mem.read_entry(0x1000, 6) == 0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            P.PageTableMemory().table_at(0x1001)

    def test_index_wraps(self):
        mem = P.PageTableMemory()
        mem.write_entry(0x2000, 512, 7)  # wraps to index 0
        assert mem.read_entry(0x2000, 0) == 7
