"""Instruction templates for the VM execution harness (paper §3.3/§4.2).

Two template families:

* the **initialization sequence** — the largely fixed vmxon→vmclear→
  vmptrld→vmwrite*→vmlaunch chain (or its SVM twin), written once by
  hand and *mutated* in argument values, ordering, and repetition by the
  fuzzing input; and
* the **exit-triggering library** — one template per instruction class
  of Table 1, each wrapping the instruction with minimal setup and
  deriving its parameters (registers, ports, MSR indices) from fuzzing
  input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch import msr as MSR
from repro.arch.cpuid import Vendor
from repro.fuzzer.input import InputCursor
from repro.hypervisors.base import GuestInstruction

#: Guest-physical addresses the harness uses for its structures.
VMXON_GPA = 0x1000
VMCS12_GPA = 0x3000
VMCB12_GPA = 0x3000
ALT_VMCS_GPA = 0x4000
MSR_AREA_GPA = 0x15000
HSAVE_GPA = 0x6000

#: MSR indices worth probing — architectural MSRs plus the canonical-
#: address family central to CVE-2024-21106.
INTERESTING_MSRS = (
    MSR.IA32_TSC, MSR.IA32_APIC_BASE, MSR.IA32_FEATURE_CONTROL,
    MSR.IA32_SYSENTER_CS, MSR.IA32_SYSENTER_ESP, MSR.IA32_SYSENTER_EIP,
    MSR.IA32_DEBUGCTL, MSR.IA32_PAT, MSR.IA32_EFER, MSR.IA32_STAR,
    MSR.IA32_LSTAR, MSR.IA32_FS_BASE, MSR.IA32_GS_BASE,
    MSR.IA32_KERNEL_GS_BASE, MSR.IA32_TSC_AUX, MSR.IA32_VMX_BASIC,
    MSR.IA32_VMX_PINBASED_CTLS, MSR.IA32_VMX_PROCBASED_CTLS,
    MSR.VM_CR, MSR.VM_HSAVE_PA,
)

#: Values likely to sit on validity boundaries.
BOUNDARY_VALUES = (
    0, 1, 0x7F, 0x80, 0xFF, 0xFFF, 0x1000, 0xFFFF, 0x8000_0000,
    0xFFFF_FFFF, 0x0000_8000_0000_0000, 0x8000_0000_0000_0000,
    0xFFFF_7FFF_FFFF_FFFF, 0xFFFF_FFFF_FFFF_FFFF,
)


@dataclass(frozen=True)
class ExitTemplate:
    """One exit-triggering instruction template."""

    name: str
    mnemonic: str
    #: Operand builder: cursor -> operand dict.
    build: Callable[[InputCursor], dict[str, int]]
    #: Levels this template may execute at (1=L1 hypervisor, 2=L2 guest).
    levels: tuple[int, ...] = (1, 2)

    def instantiate(self, cursor: InputCursor, level: int) -> GuestInstruction:
        """Materialise an instruction from fuzzing input."""
        return GuestInstruction(self.mnemonic, self.build(cursor), level=level)


def _no_operands(cursor: InputCursor) -> dict[str, int]:
    return {}


def _msr_operands(cursor: InputCursor) -> dict[str, int]:
    if cursor.chance(3, 4):
        index = INTERESTING_MSRS[cursor.below(len(INTERESTING_MSRS))]
    else:
        index = cursor.u32()
    return {"msr": index, "value": BOUNDARY_VALUES[cursor.below(len(BOUNDARY_VALUES))]
            if cursor.chance(1, 2) else cursor.u64()}


def _io_operands(cursor: InputCursor) -> dict[str, int]:
    return {"port": cursor.u16(), "value": cursor.u32(),
            "size": (1, 2, 4)[cursor.below(3)]}


def _cr_operands(cursor: InputCursor) -> dict[str, int]:
    return {"cr": (0, 3, 4, 8)[cursor.below(4)],
            "write": cursor.below(2),
            "value": BOUNDARY_VALUES[cursor.below(len(BOUNDARY_VALUES))]
            if cursor.chance(1, 2) else cursor.u64()}


def _dr_operands(cursor: InputCursor) -> dict[str, int]:
    return {"dr": cursor.below(8), "write": cursor.below(2),
            "value": cursor.u64()}


def _exception_operands(cursor: InputCursor) -> dict[str, int]:
    return {"vector": cursor.below(32), "value": cursor.u32()}


def _memaccess_operands(cursor: InputCursor) -> dict[str, int]:
    return {"value": cursor.u64()}


def _invept_operands(cursor: InputCursor) -> dict[str, int]:
    return {"type": cursor.below(4), "eptp": cursor.u64()}


def _invvpid_operands(cursor: InputCursor) -> dict[str, int]:
    return {"type": cursor.below(5), "vpid": cursor.u16(),
            "linear_addr": cursor.u64()}


def _invlpga_operands(cursor: InputCursor) -> dict[str, int]:
    return {"asid": cursor.below(4), "value": cursor.u64()}


#: Runtime-phase library shared by both vendors (Table 1 MISC / reg / IO
#: classes). VMX/SVM-specific entries are appended per vendor.
_COMMON_TEMPLATES: tuple[ExitTemplate, ...] = (
    ExitTemplate("cpuid", "cpuid", _no_operands),
    ExitTemplate("hlt", "hlt", _no_operands),
    ExitTemplate("pause", "pause", _no_operands),
    ExitTemplate("rdtsc", "rdtsc", _no_operands),
    ExitTemplate("rdtscp", "rdtscp", _no_operands),
    ExitTemplate("rdpmc", "rdpmc", _no_operands),
    ExitTemplate("rdrand", "rdrand", _no_operands),
    ExitTemplate("rdseed", "rdseed", _no_operands),
    ExitTemplate("invd", "invd", _no_operands),
    ExitTemplate("wbinvd", "wbinvd", _no_operands),
    ExitTemplate("invlpg", "invlpg", _memaccess_operands),
    ExitTemplate("monitor", "monitor", _memaccess_operands),
    ExitTemplate("mwait", "mwait", _no_operands),
    ExitTemplate("xsetbv", "xsetbv", _memaccess_operands),
    ExitTemplate("rdmsr", "rdmsr", _msr_operands),
    ExitTemplate("wrmsr", "wrmsr", _msr_operands),
    ExitTemplate("io_in", "in", _io_operands),
    ExitTemplate("io_out", "out", _io_operands),
    ExitTemplate("mov_cr", "mov_cr", _cr_operands),
    ExitTemplate("mov_dr", "mov_dr", _dr_operands),
    ExitTemplate("exception", "exception", _exception_operands, levels=(2,)),
    ExitTemplate("memaccess", "memaccess", _memaccess_operands, levels=(2,)),
    ExitTemplate("sgdt", "sgdt", _memaccess_operands),
    ExitTemplate("sidt", "sidt", _memaccess_operands),
)

def _vmwrite_cr_operands(cursor: InputCursor) -> dict[str, int]:
    """L1 reprogramming the VMCS12 guest mode between vmresumes.

    The VMX twin of :data:`VMCB_STORE_TARGETS`: targeted vmwrites to the
    mode-defining guest fields with values straddling architectural
    boundaries (CR4 with/without PAE, CR0 with/without PG, EFER LMA/LME
    combinations, large page-walk addresses).
    """
    from repro.vmx import fields as F

    targets: tuple[tuple[int, tuple[int, ...]], ...] = (
        (F.GUEST_CR0, (0x80000031, 0x80000011, 0x31, 0x11)),
        (F.GUEST_CR4, (0x2020, 0x2000, 0x20, 0x0)),
        (F.GUEST_IA32_EFER, (0xD01, 0x501, 0x101, 0x0)),
        (F.GUEST_RIP, (0x40000, 0x7FFF_FFFF_F000, 0xFFFF_8000_0000_0000)),
        (F.GUEST_CR3, (0x30000, 0x123, 0x7FFF_FFFF_F000)),
        (F.GUEST_ACTIVITY_STATE, (0, 1, 2, 3)),
        (F.VM_ENTRY_CONTROLS, (0x93FF, 0x91FF, 0x13FF)),
    )
    encoding, values = targets[cursor.below(len(targets))]
    if cursor.chance(3, 4):
        value = values[cursor.below(len(values))]
    else:
        value = cursor.u64()
    return {"field": encoding, "value": value}


def _vmcs_addr_operands(cursor: InputCursor) -> dict[str, int]:
    """An address for vmclear/vmptrld: usually a plausible VMCS page,
    sometimes the vmxon region or garbage (the error paths matter)."""
    choice = cursor.below(8)
    if choice < 4:
        return {"addr": (VMCS12_GPA, ALT_VMCS_GPA)[choice & 1]}
    if choice == 4:
        return {"addr": VMXON_GPA}
    if choice == 5:
        return {"addr": cursor.u32() | 1}  # misaligned
    return {"addr": cursor.u64()}


_INTEL_TEMPLATES: tuple[ExitTemplate, ...] = _COMMON_TEMPLATES + (
    ExitTemplate("vmcall", "vmcall", _no_operands),
    ExitTemplate("invept", "invept", _invept_operands, levels=(1,)),
    ExitTemplate("invvpid", "invvpid", _invvpid_operands, levels=(1,)),
    ExitTemplate("vmptrst", "vmptrst", _no_operands, levels=(1,)),
    ExitTemplate("invpcid", "invpcid", _memaccess_operands),
    ExitTemplate("encls", "encls", _memaccess_operands),
    ExitTemplate("xsaves", "xsaves", _memaccess_operands),
    ExitTemplate("xrstors", "xrstors", _memaccess_operands),
    ExitTemplate("l1_vmclear", "vmclear", _vmcs_addr_operands, levels=(1,)),
    ExitTemplate("l1_vmptrld", "vmptrld", _vmcs_addr_operands, levels=(1,)),
    ExitTemplate("l1_vmxon", "vmxon", _vmcs_addr_operands, levels=(1,)),
    ExitTemplate("l1_vmread", "vmread",
                 lambda c: {"field": c.u16()}, levels=(1,)),
    ExitTemplate("l1_vmwrite", "vmwrite",
                 lambda c: {"field": c.u16(), "value": c.u64()}, levels=(1,)),
    ExitTemplate("l1_vmwrite_cr", "vmwrite", _vmwrite_cr_operands, levels=(1,)),
    ExitTemplate("l1_vmwrite_cr2", "vmwrite", _vmwrite_cr_operands, levels=(1,)),
    ExitTemplate("l1_vmlaunch", "vmlaunch", _no_operands, levels=(1,)),
    ExitTemplate("l1_vmxoff", "vmxoff", _no_operands, levels=(1,)),
    ExitTemplate("l2_vmxon", "vmxon", lambda c: {"addr": VMXON_GPA}, levels=(2,)),
    ExitTemplate("l2_vmread", "vmread", lambda c: {"field": c.u16()}, levels=(2,)),
    ExitTemplate("vmfunc", "vmfunc", _memaccess_operands, levels=(2,)),
)

#: VMCB12 fields the store template gravitates to, with value pools that
#: sit on mode boundaries (CR0 with/without PG, EFER with/without LME...).
VMCB_STORE_TARGETS: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("cr0", (0x80000031, 0x80000011, 0x31, 0x11, 0x23)),
    ("cr4", (0x20, 0x0, 0x80000020, 1 << 31)),
    ("efer", (0x1D01, 0x1101, 0x1000, 0xD01, 0x0)),
    ("rflags", (0x2, 0x202, 0x3202)),
    ("rip", (0x40000, 0x0, 0x7FFF_FFFF_F000)),
    ("cs_attrib", (0x29B, 0x49B, 0x69B, 0x0)),
    ("guest_asid", (0, 1, 2, 0xFFFF)),
    ("intercept_misc2", (0, 1, 0xFFFF)),
    ("vintr_control", (0, 1 << 9, 1 << 25, (1 << 25) | (1 << 9))),
    ("n_cr3", (0x20000, 0x123, 0xF0000000)),
)


def _vmcb_store_operands(cursor: InputCursor) -> dict[str, int]:
    """L1 rewriting a VMCB12 field in memory between vmruns."""
    target = cursor.below(len(VMCB_STORE_TARGETS))
    _, values = VMCB_STORE_TARGETS[target]
    if cursor.chance(3, 4):
        value = values[cursor.below(len(values))]
    else:
        value = cursor.u64()
    return {"target": target, "value": value}


def _vmcb_addr_operands(cursor: InputCursor) -> dict[str, int]:
    """An address for vmload/vmsave: usually the VMCB12 page, sometimes
    misaligned or wild (the #GP paths matter)."""
    choice = cursor.below(8)
    if choice < 5:
        return {"addr": VMCB12_GPA}
    if choice == 5:
        return {"addr": cursor.u32() | 1}
    return {"addr": cursor.u64()}


_AMD_TEMPLATES: tuple[ExitTemplate, ...] = _COMMON_TEMPLATES + (
    ExitTemplate("vmmcall", "vmmcall", _no_operands),
    ExitTemplate("invlpga", "invlpga", _invlpga_operands, levels=(1,)),
    ExitTemplate("stgi", "stgi", _no_operands, levels=(1,)),
    ExitTemplate("clgi", "clgi", _no_operands, levels=(1,)),
    ExitTemplate("skinit", "skinit", _memaccess_operands, levels=(1,)),
    ExitTemplate("vmload", "vmload", _vmcb_addr_operands, levels=(1,)),
    ExitTemplate("vmsave", "vmsave", _vmcb_addr_operands, levels=(1,)),
    ExitTemplate("vmcb_store", "vmcb_store", _vmcb_store_operands, levels=(1,)),
    ExitTemplate("vmcb_store2", "vmcb_store", _vmcb_store_operands, levels=(1,)),
    ExitTemplate("l2_vmrun", "vmrun", lambda c: {"addr": VMCB12_GPA}, levels=(2,)),
)


def runtime_templates(vendor: Vendor) -> tuple[ExitTemplate, ...]:
    """The exit-triggering template library for *vendor*."""
    return _INTEL_TEMPLATES if vendor is Vendor.INTEL else _AMD_TEMPLATES


# ---------------------------------------------------------------------------
# Initialization sequence
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InitStep:
    """One step of the initialization template."""

    mnemonic: str
    operands: dict[str, int]
    #: Whether the mutation engine may perturb this step's arguments.
    mutable_args: bool = True


def intel_init_sequence() -> list[InitStep]:
    """The canonical VMX setup chain (§2.1). vmwrites are inserted by
    the harness between vmptrld and vmlaunch."""
    return [
        InitStep("vmxon", {"addr": VMXON_GPA}),
        InitStep("vmclear", {"addr": VMCS12_GPA}),
        InitStep("vmptrld", {"addr": VMCS12_GPA}),
        InitStep("vmlaunch", {}, mutable_args=False),
    ]


def amd_init_sequence() -> list[InitStep]:
    """The canonical SVM setup chain: enable SVME, set the host save
    area, clear GIF, vmrun."""
    return [
        InitStep("wrmsr", {"msr": MSR.IA32_EFER, "value": 1 << 12}),  # SVME
        InitStep("wrmsr", {"msr": MSR.VM_HSAVE_PA, "value": HSAVE_GPA}),
        InitStep("clgi", {}),
        InitStep("vmrun", {"addr": VMCB12_GPA}, mutable_args=False),
    ]


def init_sequence(vendor: Vendor) -> list[InitStep]:
    """The hand-written initialization template for *vendor*."""
    return intel_init_sequence() if vendor is Vendor.INTEL else amd_init_sequence()
