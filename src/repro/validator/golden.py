"""Known-good VM states ("golden" templates).

These are the default-initialised states a well-behaved hypervisor would
program: a flat 64-bit guest with valid host state. They serve three
roles: defaults the rounding procedures fall back to, the baseline for
the paper's Figure-5 "default-initialized values" comparison, and the
fixed template used when the VM state validator is ablated (§5.3).
"""

from __future__ import annotations

from repro.arch import msr as MSR
from repro.arch.registers import Cr0, Cr4, Efer, Rflags
from repro.arch.segments import flat_segment, ldtr_segment, tss_segment
from repro.svm import fields as SF
from repro.svm.fields import Misc1Intercept, Misc2Intercept
from repro.svm.vmcb import Vmcb
from repro.vmx import fields as F
from repro.vmx.controls import EntryControls, ExitControls, ProcBased, Secondary
from repro.vmx.msr_caps import VmxCapabilities, default_capabilities
from repro.vmx.vmcs import Vmcs

#: Physical addresses carved out for harness structures. Chosen above the
#: VMXON region / VMCS pool used by the execution harness.
IO_BITMAP_A_PA = 0x10000
IO_BITMAP_B_PA = 0x11000
MSR_BITMAP_PA = 0x12000
VIRTUAL_APIC_PA = 0x13000
APIC_ACCESS_PA = 0x14000
EPT_PML4_PA = 0x20000
MSR_AREA_PA = 0x15000

#: Default guest/host entry points and stacks.
GUEST_RIP = 0x40000
GUEST_RSP = 0x48000
HOST_RIP = 0x50000
HOST_RSP = 0x58000


#: Per-capability golden templates; builders are pure, so each template
#: is constructed once and handed out as fast copies.
_VMCS_TEMPLATES: dict[VmxCapabilities, Vmcs] = {}
_VMCB_TEMPLATES: dict[bool, Vmcb] = {}


def golden_vmcs(caps: VmxCapabilities | None = None) -> Vmcs:
    """Build a fully valid, launchable VMCS for a 64-bit guest."""
    caps = caps or default_capabilities()
    template = _VMCS_TEMPLATES.get(caps)
    if template is None:
        template = _build_golden_vmcs(caps)
        _VMCS_TEMPLATES[caps] = template
    return template.copy()


def _build_golden_vmcs(caps: VmxCapabilities) -> Vmcs:
    vmcs = Vmcs(caps.vmcs_revision_id)

    # Control fields: minimum required settings, rounded by capabilities.
    proc = ProcBased.HLT_EXITING | ProcBased.UNCOND_IO_EXITING
    proc2 = 0
    if caps.secondary.allowed1 & Secondary.ENABLE_EPT:
        proc |= ProcBased.ACTIVATE_SECONDARY_CONTROLS
        proc2 |= Secondary.ENABLE_EPT
    if caps.secondary.allowed1 & Secondary.ENABLE_VPID:
        proc |= ProcBased.ACTIVATE_SECONDARY_CONTROLS
        proc2 |= Secondary.ENABLE_VPID
        vmcs.write(F.VIRTUAL_PROCESSOR_ID, 1)
    vmcs.write(F.PIN_BASED_VM_EXEC_CONTROL, caps.pin_based.round(0))
    vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL, caps.proc_based.round(proc))
    vmcs.write(F.SECONDARY_VM_EXEC_CONTROL, caps.secondary.round(proc2))
    vmcs.write(F.VM_ENTRY_CONTROLS, caps.entry.round(
        EntryControls.IA32E_MODE_GUEST | EntryControls.LOAD_EFER))
    vmcs.write(F.VM_EXIT_CONTROLS, caps.exit.round(
        ExitControls.HOST_ADDR_SPACE_SIZE | ExitControls.LOAD_EFER
        | ExitControls.SAVE_EFER))

    if proc2 & Secondary.ENABLE_EPT:
        # WB memory type (6), 4-level walk (3 << 3), page-aligned root.
        vmcs.write(F.EPT_POINTER, EPT_PML4_PA | 6 | (3 << 3))

    # Guest state: flat 64-bit long mode.
    vmcs.write(F.GUEST_CR0, (Cr0.PE | Cr0.PG | Cr0.NE | Cr0.ET | Cr0.MP
                             | Cr0.WP))
    vmcs.write(F.GUEST_CR3, 0x30000)
    vmcs.write(F.GUEST_CR4, Cr4.PAE | Cr4.VMXE)
    vmcs.write(F.GUEST_IA32_EFER, Efer.LME | Efer.LMA | Efer.NXE)
    vmcs.write(F.GUEST_DR7, 0x400)
    vmcs.write(F.GUEST_RSP, GUEST_RSP)
    vmcs.write(F.GUEST_RIP, GUEST_RIP)
    # IF is set so the state stays valid even when a control-field
    # mutation injects an external interrupt (SDM 26.3.1.4).
    vmcs.write(F.GUEST_RFLAGS, Rflags.FIXED_1 | Rflags.IF)
    vmcs.write(F.GUEST_IA32_PAT, 0x0007040600070406)

    cs = flat_segment(0x8, code=True, long_mode=True)
    data = flat_segment(0x10)
    for name, seg in (("cs", cs), ("ss", data), ("ds", data), ("es", data),
                      ("fs", data), ("gs", data)):
        vmcs.write(F.SEGMENT_SELECTOR_FIELDS[name], seg.selector)
        vmcs.write(F.SEGMENT_BASE_FIELDS[name], seg.base)
        vmcs.write(F.SEGMENT_LIMIT_FIELDS[name], seg.limit)
        vmcs.write(F.SEGMENT_AR_FIELDS[name], seg.access_rights)
    tr = tss_segment(0x28, long_mode=True)
    vmcs.write(F.GUEST_TR_SELECTOR, tr.selector)
    vmcs.write(F.GUEST_TR_BASE, tr.base)
    vmcs.write(F.GUEST_TR_LIMIT, tr.limit)
    vmcs.write(F.GUEST_TR_AR_BYTES, tr.access_rights)
    ldtr = ldtr_segment(0x30)
    vmcs.write(F.GUEST_LDTR_SELECTOR, ldtr.selector)
    vmcs.write(F.GUEST_LDTR_BASE, ldtr.base)
    vmcs.write(F.GUEST_LDTR_LIMIT, ldtr.limit)
    vmcs.write(F.GUEST_LDTR_AR_BYTES, ldtr.access_rights)

    vmcs.write(F.GUEST_GDTR_BASE, 0x41000)
    vmcs.write(F.GUEST_GDTR_LIMIT, 0xFF)
    vmcs.write(F.GUEST_IDTR_BASE, 0x42000)
    vmcs.write(F.GUEST_IDTR_LIMIT, 0xFFF)
    vmcs.write(F.VMCS_LINK_POINTER, (1 << 64) - 1)

    # Host state: 64-bit flat.
    vmcs.write(F.HOST_CR0, Cr0.PE | Cr0.PG | Cr0.NE | Cr0.ET | Cr0.MP | Cr0.WP)
    vmcs.write(F.HOST_CR3, 0x60000)
    vmcs.write(F.HOST_CR4, Cr4.PAE | Cr4.VMXE)
    vmcs.write(F.HOST_IA32_EFER, Efer.LME | Efer.LMA | Efer.NXE)
    vmcs.write(F.HOST_CS_SELECTOR, 0x10)
    vmcs.write(F.HOST_TR_SELECTOR, 0x40)
    for name in ("es", "ss", "ds", "fs", "gs"):
        vmcs.write(F.HOST_SELECTOR_FIELDS[name], 0x18)
    vmcs.write(F.HOST_GDTR_BASE, 0x61000)
    vmcs.write(F.HOST_IDTR_BASE, 0x62000)
    vmcs.write(F.HOST_TR_BASE, 0x63000)
    vmcs.write(F.HOST_RSP, HOST_RSP)
    vmcs.write(F.HOST_RIP, HOST_RIP)
    vmcs.write(F.HOST_IA32_PAT, 0x0007040600070406)
    return vmcs


def golden_vmcb(*, nested_paging: bool = True) -> Vmcb:
    """Build a fully valid, runnable VMCB for a 64-bit guest."""
    template = _VMCB_TEMPLATES.get(nested_paging)
    if template is None:
        template = _build_golden_vmcb(nested_paging)
        _VMCB_TEMPLATES[nested_paging] = template
    return template.copy()


def _build_golden_vmcb(nested_paging: bool) -> Vmcb:
    vmcb = Vmcb()
    vmcb.write(SF.INTERCEPT_MISC1, Misc1Intercept.INTR | Misc1Intercept.NMI
               | Misc1Intercept.CPUID | Misc1Intercept.HLT
               | Misc1Intercept.IOIO_PROT | Misc1Intercept.MSR_PROT
               | Misc1Intercept.SHUTDOWN)
    vmcb.write(SF.INTERCEPT_MISC2, Misc2Intercept.VMRUN | Misc2Intercept.VMMCALL
               | Misc2Intercept.VMLOAD | Misc2Intercept.VMSAVE
               | Misc2Intercept.STGI | Misc2Intercept.CLGI
               | Misc2Intercept.SKINIT)
    vmcb.write(SF.IOPM_BASE_PA, IO_BITMAP_A_PA)
    vmcb.write(SF.MSRPM_BASE_PA, MSR_BITMAP_PA)
    vmcb.write(SF.GUEST_ASID, 1)
    if nested_paging:
        vmcb.write(SF.NP_CONTROL, SF.NpControl.NP_ENABLE)
        vmcb.write(SF.N_CR3, EPT_PML4_PA)

    vmcb.write(SF.EFER, Efer.SVME | Efer.LME | Efer.LMA | Efer.NXE)
    vmcb.write(SF.CR0, Cr0.PE | Cr0.PG | Cr0.NE | Cr0.ET | Cr0.MP | Cr0.WP)
    vmcb.write(SF.CR3, 0x30000)
    vmcb.write(SF.CR4, Cr4.PAE)
    vmcb.write(SF.DR6, 0xFFFF0FF0)
    vmcb.write(SF.DR7, 0x400)
    vmcb.write(SF.RFLAGS, Rflags.FIXED_1)
    vmcb.write(SF.RIP, GUEST_RIP)
    vmcb.write(SF.RSP, GUEST_RSP)
    vmcb.write(SF.G_PAT, 0x0007040600070406)

    # Flat segments: attrib layout is AR>>4 style (type|S|DPL|P in low
    # 12 bits, L at 9, DB at 10, G at 11).
    code_attrib = 0xB | (1 << 4) | (1 << 7) | (1 << 9)   # code, S, P, L
    data_attrib = 0x3 | (1 << 4) | (1 << 7) | (1 << 10)  # data, S, P, DB
    for seg, attrib, sel in (("cs", code_attrib, 0x8), ("ss", data_attrib, 0x10),
                             ("ds", data_attrib, 0x10), ("es", data_attrib, 0x10),
                             ("fs", data_attrib, 0x10), ("gs", data_attrib, 0x10)):
        vmcb.write(f"{seg}_selector", sel)
        vmcb.write(f"{seg}_attrib", attrib)
        vmcb.write(f"{seg}_limit", 0xFFFFFFFF)
        vmcb.write(f"{seg}_base", 0)
    vmcb.write("tr_selector", 0x28)
    vmcb.write("tr_attrib", 0xB | (1 << 7))
    vmcb.write("tr_limit", 0x67)
    vmcb.write("tr_base", 0x1000)
    vmcb.write("gdtr_limit", 0xFF)
    vmcb.write("gdtr_base", 0x41000)
    vmcb.write("idtr_limit", 0xFFF)
    vmcb.write("idtr_base", 0x42000)
    vmcb.write(SF.KERNEL_GS_BASE, 0)
    vmcb.write(SF.SYSENTER_CS, MSR.IA32_SYSENTER_CS & 0)
    return vmcb
